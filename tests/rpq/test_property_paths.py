"""Tests for the SPARQL property-path adapter."""

import pytest

from repro.graphdb.database import GraphDatabase
from repro.rpq.property_paths import (
    PropertyPathError,
    from_property_path,
    to_property_path,
)
from repro.rpq.rpq import RPQ, TwoRPQ


@pytest.fixture
def db():
    return GraphDatabase.from_edges(
        [
            ("ann", "knows", "bob"),
            ("bob", "knows", "cal"),
            ("ann", "worksAt", "acme"),
            ("bob", "worksAt", "acme"),
        ]
    )


class TestParsing:
    def test_bare_label(self, db):
        query = from_property_path("knows")
        assert isinstance(query, RPQ)
        assert query.evaluate(db) == {("ann", "bob"), ("bob", "cal")}

    def test_sequence(self, db):
        assert from_property_path("knows/knows").evaluate(db) == {("ann", "cal")}

    def test_alternative(self, db):
        answers = from_property_path("knows|worksAt").evaluate(db)
        assert ("ann", "acme") in answers and ("ann", "bob") in answers

    def test_inverse(self, db):
        query = from_property_path("^knows")
        assert isinstance(query, TwoRPQ) and not isinstance(query, RPQ)
        assert query.evaluate(db) == {("bob", "ann"), ("cal", "bob")}

    def test_inverse_of_sequence(self, db):
        """^(a/b) = ^b/^a — inversion distributes with reversal."""
        direct = from_property_path("^(knows/worksAt)")
        spelled = from_property_path("^worksAt/^knows")
        assert direct.evaluate(db) == spelled.evaluate(db)

    def test_colleagues_pattern(self, db):
        query = from_property_path("worksAt/^worksAt")
        assert ("ann", "bob") in query.evaluate(db)

    def test_closures(self, db):
        assert from_property_path("knows+").evaluate(db) == {
            ("ann", "bob"), ("bob", "cal"), ("ann", "cal")
        }
        star = from_property_path("knows*").evaluate(db)
        assert ("acme", "acme") in star  # identity on every node

    def test_prefixed_names(self):
        query = from_property_path("foaf:knows/^foaf:member")
        assert query.base_symbols() == {"foaf:knows", "foaf:member"}

    def test_precedence_sequence_binds_tighter_than_alt(self, db):
        query = from_property_path("knows/knows|worksAt")
        answers = query.evaluate(db)
        assert ("ann", "cal") in answers and ("ann", "acme") in answers

    @pytest.mark.parametrize("bad", ["", "a//b", "(a", "a)", "^", "a|"])
    def test_malformed(self, bad):
        with pytest.raises(PropertyPathError):
            from_property_path(bad)

    def test_negated_property_set_rejected(self):
        with pytest.raises(PropertyPathError) as excinfo:
            from_property_path("!knows")
        assert "not regular" in str(excinfo.value)


class TestRendering:
    CASES = ["knows", "^knows", "knows/knows", "a|b", "a+", "(a/b)*", "a/(b|c)?"]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip_language(self, text):
        query = from_property_path(text)
        rendered = to_property_path(query)
        again = from_property_path(rendered)
        from repro.automata.dfa import nfa_equivalent

        assert nfa_equivalent(
            query.nfa, again.nfa, query.nfa.alphabet
        ), (text, rendered)

    def test_inverse_of_compound_renders(self):
        query = from_property_path("^(knows/worksAt)")
        rendered = to_property_path(query)
        assert from_property_path(rendered).evaluate(
            GraphDatabase.from_edges([(1, "knows", 2), (2, "worksAt", 3)])
        ) == {(3, 1)}
