"""Tests for RPQ (Lemma 1) and 2RPQ (Theorem 5) containment."""

import pytest

from repro.report import Verdict
from repro.rpq.containment import (
    paper_divergence_example,
    rpq_contained,
    two_rpq_contained,
    two_rpq_equivalent,
)
from repro.rpq.rpq import RPQ, TwoRPQ


class TestRPQContainment:
    @pytest.mark.parametrize(
        "small,big",
        [("a a", "a+"), ("a b", "a (a|b)*"), ("a|b", "(a|b)?"), ("a a a", "(a a)* a")],
    )
    def test_holds(self, small, big):
        assert rpq_contained(RPQ.parse(small), RPQ.parse(big)).verdict is Verdict.HOLDS

    @pytest.mark.parametrize(
        "left,right", [("a+", "a a"), ("(a|b)+", "a+"), ("a*", "a+")]
    )
    def test_refuted_with_replayable_database(self, left, right):
        q1, q2 = RPQ.parse(left), RPQ.parse(right)
        result = rpq_contained(q1, q2)
        assert result.verdict is Verdict.REFUTED
        db = result.counterexample.database
        source, target = result.counterexample.output
        assert q1.matches(db, source, target)
        assert not q2.matches(db, source, target)

    def test_rejects_two_way_input(self):
        with pytest.raises(ValueError):
            rpq_contained(TwoRPQ.parse("a-"), TwoRPQ.parse("a"))  # type: ignore[arg-type]

    def test_alphabet_is_combined(self):
        """b is outside q1's own alphabet but inside the problem's."""
        result = rpq_contained(RPQ.parse("a"), RPQ.parse("a|b"))
        assert result.holds


class TestPaperDivergence:
    def test_example_of_section_3_2(self):
        """Q1 = p ⊑ Q2 = p p- p as queries, though not as languages."""
        example = paper_divergence_example()
        assert example.query_containment_holds
        assert not example.language_containment_holds


METHODS = ["shepherdson", "lemma4-onthefly", "lemma4-materialized"]


class TestTwoRPQContainment:
    @pytest.mark.parametrize("method", METHODS)
    def test_paper_example_all_methods(self, method):
        result = two_rpq_contained(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), method=method
        )
        assert result.holds, method

    @pytest.mark.parametrize("method", METHODS)
    def test_refutation_all_methods(self, method):
        result = two_rpq_contained(
            TwoRPQ.parse("p p"), TwoRPQ.parse("p p- p"), method=method
        )
        assert result.verdict is Verdict.REFUTED, method
        db = result.counterexample.database
        source, target = result.counterexample.output
        assert TwoRPQ.parse("p p").matches(db, source, target)
        assert not TwoRPQ.parse("p p- p").matches(db, source, target)

    def test_methods_agree_on_random_pairs(self, rng):
        from repro.automata.regex import random_regex

        for _ in range(10):
            q1 = TwoRPQ(random_regex(rng, ("a", "b"), 2, allow_inverse=True))
            q2 = TwoRPQ(random_regex(rng, ("a", "b"), 2, allow_inverse=True))
            reference = two_rpq_contained(q1, q2, method="shepherdson")
            other = two_rpq_contained(q1, q2, method="lemma4-onthefly")
            assert reference.holds == other.holds, (q1, q2)

    def test_one_way_queries_supported(self):
        result = two_rpq_contained(TwoRPQ.parse("a a"), TwoRPQ.parse("a+"))
        assert result.holds

    def test_inverse_on_both_sides(self):
        assert two_rpq_contained(TwoRPQ.parse("a-"), TwoRPQ.parse("a- a a-")).holds

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            two_rpq_contained(TwoRPQ.parse("a"), TwoRPQ.parse("a"), method="nope")

    def test_equivalence(self):
        assert two_rpq_equivalent(TwoRPQ.parse("a a*"), TwoRPQ.parse("a+"))
        assert not two_rpq_equivalent(TwoRPQ.parse("a"), TwoRPQ.parse("a a- a"))

    @pytest.mark.parametrize("method", METHODS)
    def test_tiny_max_configs_degrades_instead_of_raising(self, method):
        """Regression: max_configs used to leak SearchBudgetExceeded out
        of two_rpq_contained; it must report a bounded verdict."""
        result = two_rpq_contained(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), method=method, max_configs=1
        )
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND, method
        assert result.details["budget"]["exhausted"] in ("configs", "states")

    def test_refutations_agree_with_semantic_check_on_random_graphs(self, rng):
        """Soundness of HOLDS: no random graph separates the queries."""
        from repro.automata.regex import random_regex
        from repro.graphdb.generators import random_graph

        for trial in range(8):
            q1 = TwoRPQ(random_regex(rng, ("a", "b"), 2, allow_inverse=True))
            q2 = TwoRPQ(random_regex(rng, ("a", "b"), 2, allow_inverse=True))
            if not two_rpq_contained(q1, q2).holds:
                continue
            for seed in range(3):
                db = random_graph(5, 10, ("a", "b"), seed=seed * 131 + trial)
                assert q1.evaluate(db) <= q2.evaluate(db), (q1, q2, seed)
