"""Property tests for witness semipaths across both evaluation paths.

ISSUE 7 satellite: ``TwoRPQ.witness_semipath`` used to run the
object-state BFS even with the indexed kernels enabled.  Both paths must
produce witnesses that (a) conform to L(Q) — the label word is in the
language and each step is a real semipath step of the database — and
(b) are shortest among conforming semipaths.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.indexed import use_indexed_kernels
from repro.automata.regex import random_regex
from repro.cache import clear_caches
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import random_graph
from repro.rpq.rpq import TwoRPQ

ALPHABET = ("a", "b")
SETTINGS = settings(max_examples=25, deadline=None, derandomize=True)


def _query(seed: int) -> TwoRPQ:
    return TwoRPQ(random_regex(random.Random(seed), ALPHABET, 2, allow_inverse=True))


def _check_conforms(query: TwoRPQ, db: GraphDatabase, path: tuple) -> None:
    """The alternating sequence is a real semipath spelling a word of L(Q)."""
    nodes = path[0::2]
    word = path[1::2]
    assert query.accepts_word(tuple(word))
    for here, label, there in zip(nodes, word, nodes[1:]):
        assert there in db.successors(here, label)


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_witnesses_conform_and_match_lengths_across_paths(seed, db_seed):
    query = _query(seed)
    db = random_graph(6, 12, ALPHABET, seed=db_seed)
    clear_caches()
    for source, target in sorted(query.evaluate(db), key=repr):
        with use_indexed_kernels(True):
            fast = query.witness_semipath(db, source, target)
        with use_indexed_kernels(False):
            slow = query.witness_semipath(db, source, target)
        assert fast is not None and slow is not None
        assert fast[0] == source and fast[-1] == target
        _check_conforms(query, db, fast)
        _check_conforms(query, db, slow)
        # Both searches are BFS, so both witnesses are shortest; they may
        # differ in route but never in length.
        assert len(fast) == len(slow)


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_non_answers_have_no_witness_on_either_path(seed, db_seed):
    query = _query(seed)
    db = random_graph(5, 8, ALPHABET, seed=db_seed)
    clear_caches()
    answers = query.evaluate(db)
    nodes = db.nodes_in_order()
    non_answers = [
        (x, y) for x in nodes for y in nodes if (x, y) not in answers
    ][:10]
    for source, target in non_answers:
        with use_indexed_kernels(True):
            assert query.witness_semipath(db, source, target) is None
        with use_indexed_kernels(False):
            assert query.witness_semipath(db, source, target) is None


@SETTINGS
@given(st.integers(0, 10**6))
def test_witness_is_shortest_on_word_paths(db_seed):
    """On a labeled line graph the shortest witness length is exact."""
    rng = random.Random(db_seed)
    word = tuple(rng.choice(ALPHABET) for _ in range(rng.randint(1, 5)))
    db = GraphDatabase.from_edges(
        (i, label, i + 1) for i, label in enumerate(word)
    )
    query = TwoRPQ.parse(" ".join(word))
    clear_caches()
    with use_indexed_kernels(True):
        path = query.witness_semipath(db, 0, len(word))
    assert path is not None
    assert len(path) == 2 * len(word) + 1
