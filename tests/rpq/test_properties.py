"""Property-based tests tying 2RPQ containment to semantics.

The central invariant: whenever ``two_rpq_contained`` says HOLDS, no
sampled database separates the queries; whenever it says REFUTED, the
produced counterexample database does.  Together with the exactness of
the automata pipeline this cross-validates Lemmas 2-4 end to end.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.regex import random_regex
from repro.graphdb.generators import random_graph
from repro.report import Verdict
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import TwoRPQ

ALPHABET = ("a", "b")


def queries_from_seed(seed: int) -> tuple[TwoRPQ, TwoRPQ]:
    rng = random.Random(seed)
    return (
        TwoRPQ(random_regex(rng, ALPHABET, 2, allow_inverse=True)),
        TwoRPQ(random_regex(rng, ALPHABET, 2, allow_inverse=True)),
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9))
def test_containment_is_reflexive(seed):
    q1, _ = queries_from_seed(seed)
    assert two_rpq_contained(q1, q1).holds


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_holds_implies_no_separating_database(seed, db_seed):
    q1, q2 = queries_from_seed(seed)
    result = two_rpq_contained(q1, q2)
    if result.verdict is Verdict.HOLDS:
        db = random_graph(5, 9, ALPHABET, seed=db_seed)
        assert q1.evaluate(db) <= q2.evaluate(db)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**9))
def test_refuted_counterexample_replays(seed):
    q1, q2 = queries_from_seed(seed)
    result = two_rpq_contained(q1, q2)
    if result.verdict is Verdict.REFUTED:
        db = result.counterexample.database
        source, target = result.counterexample.output
        assert q1.matches(db, source, target)
        assert not q2.matches(db, source, target)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**9))
def test_union_always_contains(seed):
    """Q1 ⊑ Q1 | Q2 syntactically, so the checker must say so."""
    q1, q2 = queries_from_seed(seed)
    union = TwoRPQ(q1.regex | q2.regex)
    assert two_rpq_contained(q1, union).holds


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**9))
def test_query_containment_weaker_than_language_containment(seed):
    """L(Q1) ⊆ L(Q2) implies Q1 ⊑ Q2 (folding subsumes identity)."""
    from repro.automata.alphabet import Alphabet
    from repro.automata.dfa import nfa_contains

    q1, q2 = queries_from_seed(seed)
    sigma_pm = Alphabet(ALPHABET).two_way
    if nfa_contains(q1.nfa, q2.nfa, sigma_pm):
        assert two_rpq_contained(q1, q2).holds
