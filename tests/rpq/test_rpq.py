"""Tests for RPQ/2RPQ evaluation (Section 3.1 semantics)."""

import pytest

from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import cycle_graph, path_graph
from repro.rpq.rpq import RPQ, TwoRPQ


class TestRPQEvaluation:
    def test_single_edge(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        assert RPQ.parse("r").evaluate(db) == {("a", "b")}

    def test_plus_on_path(self):
        db = path_graph(3, "e")
        expected = {(i, j) for i in range(4) for j in range(i + 1, 4)}
        assert RPQ.parse("e+").evaluate(db) == expected

    def test_star_includes_identity_on_all_nodes(self):
        db = path_graph(2, "e")
        answers = RPQ.parse("e*").evaluate(db)
        for node in db.nodes:
            assert (node, node) in answers

    def test_star_on_isolated_node(self):
        db = GraphDatabase.from_edges([("a", "e", "b")], nodes=["lonely"])
        assert ("lonely", "lonely") in RPQ.parse("e*").evaluate(db)

    def test_union_and_concat(self):
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "s", "c"), ("a", "s", "c")]
        )
        assert RPQ.parse("r s|s").evaluate(db) == {("a", "c"), ("b", "c")}

    def test_cycle_wraps(self):
        db = cycle_graph(3, "e")
        assert (0, 0) in RPQ.parse("e e e").evaluate(db)
        assert (0, 1) not in RPQ.parse("e e e").evaluate(db)

    def test_rejects_inverse_letters(self):
        with pytest.raises(ValueError):
            RPQ.parse("r-")

    def test_matches_and_targets(self):
        db = path_graph(2, "e")
        query = RPQ.parse("e e")
        assert query.matches(db, 0, 2)
        assert not query.matches(db, 0, 1)
        assert query.targets(db, 0) == {2}

    def test_unknown_source(self):
        db = path_graph(1, "e")
        assert RPQ.parse("e").targets(db, "ghost") == frozenset()


class TestTwoRPQEvaluation:
    def test_backward_navigation(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        assert TwoRPQ.parse("r-").evaluate(db) == {("b", "a")}

    def test_colleague_pattern(self):
        """worksAt worksAt-: same-employer pairs (incl. self)."""
        db = GraphDatabase.from_edges(
            [("ann", "worksAt", "acme"), ("bob", "worksAt", "acme"),
             ("eve", "worksAt", "other")]
        )
        answers = TwoRPQ.parse("worksAt worksAt-").evaluate(db)
        assert ("ann", "bob") in answers and ("bob", "ann") in answers
        assert ("ann", "eve") not in answers

    def test_semipath_revisits_nodes(self):
        """The paper: semipath objects need not be distinct (p p- p)."""
        db = GraphDatabase.from_edges([("x", "p", "y")])
        assert TwoRPQ.parse("p p- p").evaluate(db) == {("x", "y")}

    def test_mixed_directions(self):
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("c", "r", "b"), ("c", "s", "d")]
        )
        # a forward-r, backward-r to c, forward-s to d.
        assert TwoRPQ.parse("r r- s").evaluate(db) == {("a", "d"), ("c", "d")}

    def test_accepts_word_is_language_membership(self):
        query = TwoRPQ.parse("p p- p")
        assert query.accepts_word(("p", "p-", "p"))
        assert not query.accepts_word(("p",))

    def test_is_one_way(self):
        assert TwoRPQ.parse("a b").is_one_way()
        assert not TwoRPQ.parse("a b-").is_one_way()

    def test_base_symbols_strip_inverses(self):
        assert TwoRPQ.parse("a- b").base_symbols() == {"a", "b"}

    def test_rpq_as_two_way(self):
        query = RPQ.parse("a+")
        two_way = query.as_two_way()
        assert isinstance(two_way, TwoRPQ)
        db = path_graph(2, "a")
        assert two_way.evaluate(db) == query.evaluate(db)


class TestWitnessSemipath:
    def test_forward_witness(self):
        db = path_graph(3, "e")
        path = RPQ.parse("e e e").witness_semipath(db, 0, 3)
        assert path == (0, "e", 1, "e", 2, "e", 3)

    def test_two_way_witness(self):
        db = GraphDatabase.from_edges([("x", "p", "y")])
        path = TwoRPQ.parse("p p- p").witness_semipath(db, "x", "y")
        assert path == ("x", "p", "y", "p-", "x", "p", "y")

    def test_witness_word_in_language(self):
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "s", "c"), ("c", "r", "a")]
        )
        query = TwoRPQ.parse("r (s|r-)+")
        path = query.witness_semipath(db, "a", "c")
        assert path is not None
        word = tuple(path[1::2])
        assert query.accepts_word(word)
        assert db.has_semipath("a", "c", word)

    def test_witness_is_shortest(self):
        db = GraphDatabase.from_edges(
            [("a", "e", "b"), ("b", "e", "c"), ("a", "e", "c")]
        )
        path = RPQ.parse("e+").witness_semipath(db, "a", "c")
        assert path == ("a", "e", "c")

    def test_no_witness(self):
        db = path_graph(1, "e")
        assert RPQ.parse("e e").witness_semipath(db, 0, 1) is None
        assert RPQ.parse("e").witness_semipath(db, "ghost", 0) is None

    def test_empty_word_witness(self):
        db = path_graph(1, "e")
        assert RPQ.parse("e*").witness_semipath(db, 0, 0) == (0,)


class TestEvaluationAgainstBruteForce:
    def test_matches_word_enumeration(self):
        """Q(D) = union over words w in L(Q) of semipath pairs (oracle)."""
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "s", "c"), ("c", "r", "a"), ("b", "r", "b")]
        )
        query = TwoRPQ.parse("r (s|r-)?")
        expected = set()
        for word in query.nfa.enumerate_words(3):
            for x in db.nodes:
                for y in db.semipath_targets(x, word):
                    expected.add((x, y))
        # Language is finite (max length 2), so the oracle is exact.
        assert query.evaluate(db) == expected
