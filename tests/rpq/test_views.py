"""Tests for answering RPQs using views (maximally contained rewriting)."""

import pytest

from repro.automata.dfa import nfa_contains
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import random_graph
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rpq.views import answer_using_views, rewrite, view_graph


class TestRewriteConstruction:
    def test_identity_view(self):
        rewriting = rewrite(RPQ.parse("a+"), {"v": RPQ.parse("a+")})
        assert rewriting.automaton.accepts(("v",))
        assert rewriting.is_exact()

    def test_composition(self):
        """Q = (a b)+ with V = a b gives MCR = v+."""
        rewriting = rewrite(RPQ.parse("(a b)+"), {"v": RPQ.parse("a b")})
        for count in (1, 2, 3):
            assert rewriting.automaton.accepts(("v",) * count)
        assert not rewriting.automaton.accepts(())
        assert rewriting.is_exact()

    def test_selects_the_right_views(self):
        rewriting = rewrite(
            RPQ.parse("a b c"),
            {"ab": RPQ.parse("a b"), "c": RPQ.parse("c"), "bc": RPQ.parse("b c")},
        )
        assert rewriting.automaton.accepts(("ab", "c"))
        assert not rewriting.automaton.accepts(("bc",))
        assert not rewriting.automaton.accepts(("ab", "bc"))

    def test_no_rewriting_exists(self):
        rewriting = rewrite(RPQ.parse("a"), {"v": RPQ.parse("a a")})
        assert rewriting.is_empty

    def test_view_language_must_be_fully_contained(self):
        """V = a|b cannot rewrite a+ — the b-words escape L(Q)."""
        rewriting = rewrite(RPQ.parse("a+"), {"v": RPQ.parse("a|b")})
        assert rewriting.is_empty

    def test_partial_rewriting_is_not_exact(self):
        """Views cover only part of L(Q): MCR nonempty, not exact."""
        rewriting = rewrite(
            RPQ.parse("a|b b"), {"v": RPQ.parse("a")}
        )
        assert rewriting.automaton.accepts(("v",))
        assert not rewriting.is_exact()

    def test_expansion_always_contained_in_query(self):
        """Soundness invariant of the MCR: every expansion ⊆ L(Q)."""
        from repro.rpq.views import _expand

        cases = [
            ("(a b)+", {"v": "a b"}),
            ("a b c", {"ab": "a b", "c": "c"}),
            ("a* b", {"a": "a", "ab": "a* b"}),
        ]
        for query_text, view_texts in cases:
            query = RPQ.parse(query_text)
            views = {name: RPQ.parse(text) for name, text in view_texts.items()}
            rewriting = rewrite(query, views)
            if rewriting.is_empty:
                continue
            expansion = _expand(rewriting.automaton, views)
            assert nfa_contains(expansion, query.nfa, query.nfa.alphabet), query_text

    def test_two_way_rejected(self):
        with pytest.raises(ValueError):
            rewrite(TwoRPQ.parse("a-"), {"v": RPQ.parse("a")})  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            rewrite(RPQ.parse("a"), {"v": TwoRPQ.parse("a-")})  # type: ignore[dict-item]


class TestAnsweringFromViews:
    @pytest.fixture
    def db(self) -> GraphDatabase:
        return GraphDatabase.from_edges(
            [
                (0, "a", 1), (1, "b", 2), (2, "a", 3), (3, "b", 4),
                (4, "c", 5), (2, "c", 6),
            ]
        )

    def test_exact_rewriting_reproduces_answers(self, db):
        query = RPQ.parse("(a b)+")
        views = {"v": RPQ.parse("a b")}
        rewriting = rewrite(query, views)
        answers = answer_using_views(rewriting, view_graph(views, db))
        assert answers == query.evaluate(db)
        assert (0, 4) in answers  # two v-hops

    def test_answers_are_always_sound(self, db):
        query = RPQ.parse("a b c")
        views = {"ab": RPQ.parse("a b"), "c": RPQ.parse("c")}
        rewriting = rewrite(query, views)
        answers = answer_using_views(rewriting, view_graph(views, db))
        assert answers <= query.evaluate(db)
        assert (2, 5) in answers

    def test_soundness_on_random_graphs(self):
        query = RPQ.parse("(a|b) c*")
        views = {"ac": RPQ.parse("a c*"), "b": RPQ.parse("b")}
        rewriting = rewrite(query, views)
        assert not rewriting.is_empty
        for seed in range(4):
            db = random_graph(6, 16, ("a", "b", "c"), seed=seed)
            answers = answer_using_views(rewriting, view_graph(views, db))
            assert answers <= query.evaluate(db), seed

    def test_view_graph_materialization(self, db):
        views = {"v": RPQ.parse("a b")}
        materialized = view_graph(views, db)
        assert materialized.relation("v") == {(0, 2), (2, 4)}
