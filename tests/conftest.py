"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.automata.nfa import NFA
from repro.graphdb.database import GraphDatabase


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_graph() -> GraphDatabase:
    """A small two-label graph with cycles, shared by many tests."""
    return GraphDatabase.from_edges(
        [
            ("a", "r", "b"),
            ("b", "r", "c"),
            ("c", "r", "a"),
            ("a", "s", "c"),
            ("c", "s", "d"),
            ("d", "r", "d"),
        ]
    )


def _brute_force_language(nfa: NFA, alphabet: tuple[str, ...], max_length: int) -> set:
    """All words of L(nfa) over *alphabet* up to *max_length* (oracle)."""
    out = set()
    for length in range(max_length + 1):
        for word in itertools.product(alphabet, repeat=length):
            if nfa.accepts(word):
                out.add(word)
    return out


@pytest.fixture
def brute_force_language():
    """Oracle fixture: enumerate a language up to a length bound."""
    return _brute_force_language


def _random_two_nfa(
    rng: random.Random,
    num_states: int,
    alphabet: tuple[str, ...],
    density: float = 0.25,
):
    """A random 2NFA (with marker moves) for fuzzing the constructions."""
    from repro.automata.alphabet import LEFT_MARKER, RIGHT_MARKER
    from repro.automata.two_nfa import LEFT, RIGHT, STAY, TwoNFA

    states = list(range(num_states))
    symbols = list(alphabet) + [LEFT_MARKER, RIGHT_MARKER]
    transitions = []
    for state in states:
        for symbol in symbols:
            for target in states:
                for direction in (LEFT, STAY, RIGHT):
                    if symbol is LEFT_MARKER and direction == LEFT:
                        continue
                    if symbol is RIGHT_MARKER and direction == RIGHT:
                        continue
                    if rng.random() < density:
                        transitions.append((state, symbol, target, direction))
    initial = rng.sample(states, k=max(1, num_states // 3))
    final = rng.sample(states, k=max(1, num_states // 3))
    return TwoNFA.build(alphabet, states, initial, final, transitions)


@pytest.fixture
def random_two_nfa():
    """Factory fixture building random 2NFAs for fuzz tests."""
    return _random_two_nfa
