"""Tests for UC2RPQ minimization."""

import pytest

from repro.crpq.evaluation import evaluate_uc2rpq
from repro.crpq.minimization import (
    canonicalize_atoms,
    minimize_c2rpq,
    minimize_uc2rpq,
)
from repro.crpq.syntax import C2RPQ, UC2RPQ
from repro.graphdb.generators import random_graph


def assert_equivalent_on_samples(q1, q2, labels=("a", "b")):
    for seed in range(3):
        db = random_graph(5, 12, labels, seed=seed)
        assert evaluate_uc2rpq(q1, db) == evaluate_uc2rpq(q2, db), seed


class TestMinimizeC2RPQ:
    def test_duplicate_atom_dropped(self):
        query = C2RPQ.from_strings(
            "x,y", [("a", "x", "y"), ("a", "x", "y")]
        )
        core = minimize_c2rpq(query)
        assert len(core.atoms) == 1
        assert_equivalent_on_samples(core, query)

    def test_subsumed_dangling_atom_dropped(self):
        """E(x,y) & E(x,z): the dangling copy is redundant (as in CQs)."""
        query = C2RPQ.from_strings(
            "x,y", [("a", "x", "y"), ("a", "x", "z")]
        )
        core = minimize_c2rpq(query)
        assert len(core.atoms) == 1
        assert_equivalent_on_samples(core, query)

    def test_necessary_atoms_kept(self):
        query = C2RPQ.from_strings(
            "x,z", [("a", "x", "y"), ("b", "y", "z")]
        )
        assert minimize_c2rpq(query) == query

    def test_infinite_language_not_dropped_without_optin(self):
        """a+ atoms give bounded verdicts only; default keeps them."""
        query = C2RPQ.from_strings(
            "x,y", [("a+", "x", "y"), ("a+", "x", "z")]
        )
        conservative = minimize_c2rpq(query)
        assert len(conservative.atoms) == 2
        optimistic = minimize_c2rpq(query, allow_bounded=True)
        assert len(optimistic.atoms) == 1
        assert_equivalent_on_samples(optimistic, query)

    def test_head_variables_protected(self):
        query = C2RPQ.from_strings(
            "x,z", [("a", "x", "y"), ("a", "x", "z")]
        )
        core = minimize_c2rpq(query)
        head_vars = set(core.head_vars)
        body_vars = {v for atom in core.atoms for v in atom.variables()}
        assert head_vars <= body_vars


class TestMinimizeUC2RPQ:
    def test_subsumed_disjunct_dropped(self):
        union = UC2RPQ(
            (
                C2RPQ.from_strings("x,y", [("a", "x", "y")]),
                C2RPQ.from_strings("x,y", [("a", "x", "y"), ("b", "x", "z")]),
            )
        )
        pruned = minimize_uc2rpq(union)
        assert len(pruned) == 1
        assert_equivalent_on_samples(pruned, union)

    def test_equivalent_disjuncts_keep_one(self):
        union = UC2RPQ(
            (
                C2RPQ.from_strings("x,y", [("a", "x", "y")]),
                C2RPQ.from_strings("u,v", [("a", "u", "v")]),
            )
        )
        pruned = minimize_uc2rpq(union)
        assert len(pruned) == 1
        assert_equivalent_on_samples(pruned, union)

    def test_incomparable_disjuncts_kept(self):
        union = UC2RPQ(
            (
                C2RPQ.from_strings("x,y", [("a", "x", "y")]),
                C2RPQ.from_strings("x,y", [("b", "x", "y")]),
            )
        )
        assert len(minimize_uc2rpq(union)) == 2


class TestCanonicalizeAtoms:
    def test_redundant_union_shrinks(self):
        query = C2RPQ.from_strings("x,y", [("a|a|a a*", "x", "y")])
        canonical = canonicalize_atoms(query)
        assert len(str(canonical.atoms[0].query.regex)) < len("a|a|a a*")
        assert_equivalent_on_samples(canonical, query, labels=("a",))

    def test_already_small_untouched(self):
        query = C2RPQ.from_strings("x,y", [("a", "x", "y")])
        assert canonicalize_atoms(query) == query
