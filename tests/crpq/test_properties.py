"""Property-based tests for the C2RPQ/UC2RPQ layer."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.regex import random_regex
from repro.cq.syntax import Var
from repro.crpq.containment import uc2rpq_contained
from repro.crpq.evaluation import evaluate_c2rpq, satisfies_c2rpq
from repro.crpq.expansion import build_expansion, enumerate_expansions
from repro.crpq.syntax import C2RPQ, RegularAtom
from repro.graphdb.generators import random_graph
from repro.report import Verdict
from repro.rpq.rpq import TwoRPQ

LABELS = ("a", "b")


def random_c2rpq(rng: random.Random, num_atoms: int = 2) -> C2RPQ:
    """A random connected C2RPQ with head (v0, v1)."""
    names = [Var(f"v{i}") for i in range(3)]
    atoms = []
    for index in range(num_atoms):
        query = TwoRPQ(random_regex(rng, LABELS, 2, allow_inverse=True))
        source = names[rng.randrange(min(index + 1, len(names)))]
        target = rng.choice(names)
        atoms.append(RegularAtom(query, source, target))
    # Anchor the head variables.
    atoms.append(
        RegularAtom(
            TwoRPQ(random_regex(rng, LABELS, 1, allow_inverse=True)),
            names[0],
            names[1],
        )
    )
    return C2RPQ((names[0], names[1]), tuple(atoms))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_evaluation_and_satisfies_agree(seed, db_seed):
    query = random_c2rpq(random.Random(seed))
    db = random_graph(4, 8, LABELS, seed=db_seed)
    answers = evaluate_c2rpq(query, db)
    for x in db.nodes:
        for y in db.nodes:
            assert satisfies_c2rpq(query, db, (x, y)) == ((x, y) in answers)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9))
def test_expansions_satisfy_their_query(seed):
    query = random_c2rpq(random.Random(seed))
    for expansion in enumerate_expansions(query, 3, max_expansions=8):
        assert satisfies_c2rpq(query, expansion.database, expansion.head), (
            expansion.words
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_containment_holds_is_sound_on_samples(seed, db_seed):
    rng = random.Random(seed)
    q1 = random_c2rpq(rng, 1)
    q2 = random_c2rpq(rng, 1)
    result = uc2rpq_contained(q1, q2, max_total_length=4)
    if result.verdict is Verdict.HOLDS:
        db = random_graph(4, 8, LABELS, seed=db_seed)
        assert evaluate_c2rpq(q1, db) <= evaluate_c2rpq(q2, db)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9))
def test_refutations_replay(seed):
    rng = random.Random(seed)
    q1 = random_c2rpq(rng, 1)
    q2 = random_c2rpq(rng, 1)
    result = uc2rpq_contained(q1, q2, max_total_length=4)
    if result.verdict is Verdict.REFUTED:
        db = result.counterexample.database
        head = result.counterexample.output
        assert satisfies_c2rpq(q1, db, head)
        assert not satisfies_c2rpq(q2, db, head)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_evaluation_monotone_under_more_edges(seed, db_seed):
    query = random_c2rpq(random.Random(seed))
    small = random_graph(4, 6, LABELS, seed=db_seed)
    bigger = random_graph(4, 6, LABELS, seed=db_seed)
    rng = random.Random(db_seed + 1)
    for _ in range(4):
        bigger.add_edge(rng.randrange(4), rng.choice(LABELS), rng.randrange(4))
    assert evaluate_c2rpq(query, small) <= evaluate_c2rpq(query, bigger)
