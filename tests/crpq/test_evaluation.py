"""Tests for UC2RPQ evaluation."""

import pytest

from repro.crpq.evaluation import (
    evaluate_c2rpq,
    evaluate_uc2rpq,
    satisfies_c2rpq,
    satisfies_uc2rpq,
)
from repro.crpq.syntax import C2RPQ, UC2RPQ, paper_example_1
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import cycle_graph, path_graph, random_graph


class TestEvaluateC2RPQ:
    def test_paper_example_triangle(self):
        triangle, _ = paper_example_1()
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("a", "r", "c"), ("b", "r", "c")]
        )
        assert evaluate_c2rpq(triangle, db) == {("a", "b")}

    def test_conjunction_requires_both_paths(self):
        """Section 3.3: Q1(x,y) & Q2(x,y) means two (possibly different)
        paths — not one path matching both."""
        query = C2RPQ.from_strings("x,y", [("a", "x", "y"), ("b", "x", "y")])
        both = GraphDatabase.from_edges([("n", "a", "m"), ("n", "b", "m")])
        only_a = GraphDatabase.from_edges([("n", "a", "m")])
        assert evaluate_c2rpq(query, both) == {("n", "m")}
        assert evaluate_c2rpq(query, only_a) == frozenset()

    def test_regular_atoms_with_closure(self):
        query = C2RPQ.from_strings("x,y", [("e+", "x", "y"), ("e+", "y", "x")])
        db = cycle_graph(3, "e")
        # On a cycle everything reaches everything both ways.
        assert evaluate_c2rpq(query, db) == {
            (i, j) for i in range(3) for j in range(3)
        }

    def test_projection_of_middle_variable(self):
        query = C2RPQ.from_strings("x", [("e", "x", "y"), ("e", "y", "z")])
        db = path_graph(2, "e")
        assert evaluate_c2rpq(query, db) == {(0,)}

    def test_empty_answer_when_atom_unsatisfiable(self):
        query = C2RPQ.from_strings("x,y", [("ghost", "x", "y")])
        db = path_graph(1, "e")
        assert evaluate_c2rpq(query, db) == frozenset()


class TestEvaluateUC2RPQ:
    def test_union_semantics(self):
        _, union = paper_example_1()
        three_cycle = cycle_graph(3, "r")
        assert evaluate_uc2rpq(union, three_cycle) == {(0, 1), (1, 2), (2, 0)}

    def test_single_disjunct_autowrap(self):
        triangle, _ = paper_example_1()
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("a", "r", "c"), ("b", "r", "c")]
        )
        assert evaluate_uc2rpq(triangle, db) == evaluate_c2rpq(triangle, db)


class TestSatisfies:
    def test_early_exit_variant_agrees(self):
        _, union = paper_example_1()
        for seed in range(3):
            db = random_graph(5, 10, ("r",), seed=seed)
            answers = evaluate_uc2rpq(union, db)
            for x in db.nodes:
                for y in db.nodes:
                    assert satisfies_uc2rpq(union, db, (x, y)) == ((x, y) in answers)

    def test_satisfies_c2rpq(self):
        triangle, _ = paper_example_1()
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("a", "r", "c"), ("b", "r", "c")]
        )
        assert satisfies_c2rpq(triangle, db, ("a", "b"))
        assert not satisfies_c2rpq(triangle, db, ("b", "a"))
