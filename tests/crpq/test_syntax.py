"""Tests for C2RPQ/UC2RPQ syntax."""

import pytest

from repro.cq.syntax import Var
from repro.crpq.syntax import (
    C2RPQ,
    UC2RPQ,
    RegularAtom,
    paper_example_1,
    two_rpq_as_uc2rpq,
)
from repro.rpq.rpq import TwoRPQ


class TestC2RPQ:
    def test_from_strings(self):
        query = C2RPQ.from_strings("x,y", [("r+", "x", "y"), ("s", "y", "z")])
        assert query.arity == 2
        assert query.variables() == {Var("x"), Var("y"), Var("z")}

    def test_head_must_occur(self):
        with pytest.raises(ValueError):
            C2RPQ.from_strings("w", [("r", "x", "y")])

    def test_needs_atoms(self):
        with pytest.raises(ValueError):
            C2RPQ((Var("x"),), ())

    def test_base_symbols(self):
        query = C2RPQ.from_strings("x,y", [("r- s", "x", "y")])
        assert query.base_symbols() == {"r", "s"}

    def test_is_one_way(self):
        assert C2RPQ.from_strings("x,y", [("r s", "x", "y")]).is_one_way()
        assert not C2RPQ.from_strings("x,y", [("r-", "x", "y")]).is_one_way()


class TestUC2RPQ:
    def test_arity_checked(self):
        a = C2RPQ.from_strings("x", [("r", "x", "y")])
        b = C2RPQ.from_strings("x,y", [("r", "x", "y")])
        with pytest.raises(ValueError):
            UC2RPQ((a, b))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UC2RPQ(())

    def test_iteration(self):
        _, union = paper_example_1()
        assert len(union) == 2
        assert all(isinstance(d, C2RPQ) for d in union)


class TestEmbeddings:
    def test_two_rpq_as_uc2rpq(self):
        union = two_rpq_as_uc2rpq(TwoRPQ.parse("a+"))
        assert union.arity == 2
        assert len(union) == 1
        (atom,) = union.disjuncts[0].atoms
        assert isinstance(atom, RegularAtom)

    def test_paper_example_1_shapes(self):
        """Example 1: the triangle C2RPQ and the 2-disjunct UC2RPQ."""
        triangle, union = paper_example_1()
        assert len(triangle.atoms) == 3
        assert triangle.head_vars == (Var("x"), Var("y"))
        assert triangle in union.disjuncts
