"""Tests for UC2RPQ containment (Theorem 6 class)."""

import pytest

from repro.crpq.containment import uc2rpq_contained, uc2rpq_equivalent
from repro.crpq.evaluation import satisfies_uc2rpq
from repro.crpq.syntax import C2RPQ, UC2RPQ, paper_example_1, two_rpq_as_uc2rpq
from repro.report import Verdict
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import TwoRPQ


class TestBasicContainment:
    def test_disjunct_in_union(self):
        triangle, union = paper_example_1()
        result = uc2rpq_contained(triangle, union)
        assert result.verdict is Verdict.HOLDS  # finite languages: exact

    def test_union_not_in_disjunct(self):
        triangle, union = paper_example_1()
        result = uc2rpq_contained(union, triangle)
        assert result.verdict is Verdict.REFUTED
        db = result.counterexample.database
        head = result.counterexample.output
        assert satisfies_uc2rpq(union, db, head)
        assert not satisfies_uc2rpq(triangle, db, head)

    def test_adding_atoms_shrinks(self):
        small = C2RPQ.from_strings("x,y", [("a", "x", "y"), ("b", "x", "z")])
        big = C2RPQ.from_strings("x,y", [("a", "x", "y")])
        assert uc2rpq_contained(small, big).verdict is Verdict.HOLDS
        assert uc2rpq_contained(big, small).verdict is Verdict.REFUTED

    def test_arity_mismatch(self):
        a = C2RPQ.from_strings("x", [("a", "x", "y")])
        b = C2RPQ.from_strings("x,y", [("a", "x", "y")])
        with pytest.raises(ValueError):
            uc2rpq_contained(a, b)


class TestBoundedVerdicts:
    def test_infinite_left_language_gives_bounded_holds(self):
        plus = C2RPQ.from_strings("x,y", [("a+", "x", "y")])
        star_of = C2RPQ.from_strings("x,y", [("a a*|()", "x", "y")])
        result = uc2rpq_contained(plus, star_of, max_total_length=5)
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND
        assert result.bound == 5

    def test_refutation_of_infinite_left_is_exact(self):
        plus = C2RPQ.from_strings("x,y", [("a+", "x", "y")])
        two = C2RPQ.from_strings("x,y", [("a a", "x", "y")])
        result = uc2rpq_contained(plus, two, max_total_length=5)
        assert result.verdict is Verdict.REFUTED
        assert satisfies_uc2rpq(plus, *_unpack(result))
        assert not satisfies_uc2rpq(two, *_unpack(result))

    def test_finite_left_is_exact_even_past_default_bound(self):
        """Exhaustion bound auto-raises above max_total_length."""
        long_word = "a a a a a a a a"  # length 8 > default bound 6
        query = C2RPQ.from_strings("x,y", [(long_word, "x", "y")])
        star = C2RPQ.from_strings("x,y", [("a+", "x", "y")])
        result = uc2rpq_contained(query, star, max_total_length=2)
        assert result.verdict is Verdict.HOLDS


class TestAgainstTwoRPQEngine:
    """Single-atom UC2RPQs must agree with the exact Theorem 5 engine."""

    PAIRS = [
        ("p", "p p- p"),
        ("p p", "p p- p"),
        ("a b", "a b|b a"),
        ("a", "a|b"),
        ("a b-", "a b- a a-"),
    ]

    @pytest.mark.parametrize("left,right", PAIRS)
    def test_agreement(self, left, right):
        q1, q2 = TwoRPQ.parse(left), TwoRPQ.parse(right)
        exact = two_rpq_contained(q1, q2)
        expansion = uc2rpq_contained(
            two_rpq_as_uc2rpq(q1), two_rpq_as_uc2rpq(q2), max_total_length=6
        )
        assert exact.holds == expansion.holds, (left, right)


class TestConjunctionVsIntersection:
    def test_paper_section_3_3_separation(self):
        """(Q1 ∩ Q2)(x,y) ⊑ Q1(x,y) & Q2(x,y), but not conversely.

        Q1 = a (b|c), Q2 = (a|d) b, so L(Q1) ∩ L(Q2) = {ab}.  One path
        labeled ab satisfies both conjuncts, hence the first containment;
        a database with an ac-path and a separate db-path satisfies the
        conjunction but has no single path in the intersection.
        """
        intersection = C2RPQ.from_strings("x,y", [("a b", "x", "y")])
        conjunction = C2RPQ.from_strings(
            "x,y", [("a (b|c)", "x", "y"), ("(a|d) b", "x", "y")]
        )
        assert uc2rpq_contained(intersection, conjunction).holds
        result = uc2rpq_contained(conjunction, intersection)
        assert result.verdict is Verdict.REFUTED
        db, head = _unpack(result)
        assert satisfies_uc2rpq(conjunction, db, head)
        assert not satisfies_uc2rpq(intersection, db, head)

    def test_equivalence_helper(self):
        a = C2RPQ.from_strings("x,y", [("a a*", "x", "y")])
        b = C2RPQ.from_strings("x,y", [("a+", "x", "y")])
        assert uc2rpq_equivalent(a, b, max_total_length=4)


def _unpack(result):
    return result.counterexample.database, result.counterexample.output
