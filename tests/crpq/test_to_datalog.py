"""Tests for the UC2RPQ -> Datalog product-construction translation."""

import pytest

from repro.crpq.evaluation import evaluate_uc2rpq
from repro.crpq.syntax import C2RPQ, UC2RPQ, paper_example_1
from repro.crpq.to_datalog import uc2rpq_to_datalog
from repro.datalog.analysis import is_nonrecursive
from repro.datalog.evaluation import evaluate
from repro.graphdb.generators import random_graph
from repro.grq.membership import is_grq
from repro.relational.instance import graph_to_instance


def incident_restricted(db, answers):
    incident = {n for edge in db.edges() for n in (edge[0], edge[2])}
    return frozenset(
        row for row in answers if all(value in incident for value in row)
    )


def assert_translation_agrees(query, labels, seeds=range(4)):
    program = uc2rpq_to_datalog(query)
    for seed in seeds:
        db = random_graph(5, 12, labels, seed=seed)
        got = evaluate(program, graph_to_instance(db))
        want = incident_restricted(db, evaluate_uc2rpq(query, db))
        assert got == want, seed


class TestTranslation:
    def test_paper_example_1(self):
        _, union = paper_example_1()
        assert_translation_agrees(union, ("r",))

    def test_single_word_atom_is_nonrecursive(self):
        tri, _ = paper_example_1()
        program = uc2rpq_to_datalog(tri)
        assert is_nonrecursive(program)
        assert is_grq(program)

    def test_two_way_atom(self):
        query = C2RPQ.from_strings("x,y", [("a b-", "x", "y")])
        assert_translation_agrees(query, ("a", "b"))

    def test_closure_atom_is_recursive_but_not_grq(self):
        """Run-predicate recursion is state-annotated, not TC-shaped."""
        query = C2RPQ.from_strings("x,y", [("a (b|a-)+", "x", "y")])
        program = uc2rpq_to_datalog(query)
        assert not is_nonrecursive(program)
        assert not is_grq(program)
        assert_translation_agrees(query, ("a", "b"))

    def test_multi_atom_conjunction(self):
        query = C2RPQ.from_strings(
            "x,z", [("a+", "x", "y"), ("b", "y", "z"), ("a", "x", "z")]
        )
        assert_translation_agrees(query, ("a", "b"))

    def test_union_of_disjuncts(self):
        union = UC2RPQ(
            (
                C2RPQ.from_strings("x,y", [("a", "x", "y")]),
                C2RPQ.from_strings("u,v", [("b b", "u", "v")]),
            )
        )
        assert_translation_agrees(union, ("a", "b"))

    def test_epsilon_atom_over_active_domain(self):
        query = C2RPQ.from_strings("x,y", [("a?", "x", "y")])
        program = uc2rpq_to_datalog(query)
        db = random_graph(4, 6, ("a",), seed=0)
        got = evaluate(program, graph_to_instance(db))
        incident = {n for edge in db.edges() for n in (edge[0], edge[2])}
        for node in incident:
            assert (node, node) in got

    def test_goal_name(self):
        tri, _ = paper_example_1()
        assert uc2rpq_to_datalog(tri, goal="q").goal == "q"
