"""Tests for C2RPQ expansion enumeration."""

import pytest

from repro.crpq.expansion import (
    build_expansion,
    enumerate_expansions,
    exhaustive_length_bound,
    expansion_space_is_finite,
)
from repro.crpq.evaluation import satisfies_c2rpq
from repro.crpq.syntax import C2RPQ


class TestBuildExpansion:
    def test_forward_word(self):
        query = C2RPQ.from_strings("x,y", [("a b", "x", "y")])
        expansion = build_expansion(query, [("a", "b")])
        assert expansion.database.num_edges == 2
        assert expansion.total_length == 2
        source, target = expansion.head
        assert expansion.database.has_semipath(source, target, ("a", "b"))

    def test_inverse_letters_produce_backward_edges(self):
        query = C2RPQ.from_strings("x,y", [("a-", "x", "y")])
        expansion = build_expansion(query, [("a-",)])
        (edge,) = list(expansion.database.edges())
        source, target = expansion.head
        assert edge == (target, "a", source)

    def test_empty_word_identifies_endpoints(self):
        query = C2RPQ.from_strings("x,y", [("a?", "x", "y")])
        expansion = build_expansion(query, [()])
        assert expansion.head[0] == expansion.head[1]

    def test_epsilon_chain_merges_transitively(self):
        query = C2RPQ.from_strings(
            "x,z", [("a?", "x", "y"), ("a?", "y", "z"), ("b", "x", "w")]
        )
        expansion = build_expansion(query, [(), (), ("b",)])
        assert expansion.head[0] == expansion.head[1]

    def test_word_count_mismatch(self):
        query = C2RPQ.from_strings("x,y", [("a", "x", "y")])
        with pytest.raises(ValueError):
            build_expansion(query, [("a",), ("a",)])

    def test_shared_variables_glue_paths(self):
        query = C2RPQ.from_strings("x,z", [("a", "x", "y"), ("b", "y", "z")])
        expansion = build_expansion(query, [("a",), ("b",)])
        source, target = expansion.head
        assert expansion.database.has_semipath(source, target, ("a", "b"))


class TestEnumerateExpansions:
    def test_order_is_by_total_length(self):
        query = C2RPQ.from_strings("x,y", [("a+", "x", "y")])
        lengths = [e.total_length for e in enumerate_expansions(query, 4)]
        assert lengths == sorted(lengths) == [1, 2, 3, 4]

    def test_multi_atom_compositions(self):
        query = C2RPQ.from_strings("x,z", [("a*", "x", "y"), ("b*", "y", "z")])
        expansions = list(enumerate_expansions(query, 2))
        # total 0: (eps, eps); total 1: (a, eps), (eps, b); total 2: three splits.
        assert len(expansions) == 1 + 2 + 3

    def test_max_expansions_cap(self):
        query = C2RPQ.from_strings("x,y", [("a*", "x", "y")])
        assert len(list(enumerate_expansions(query, 10, max_expansions=3))) == 3

    def test_every_expansion_satisfies_its_query(self):
        """Soundness: the canonical database answers the query at the head."""
        query = C2RPQ.from_strings(
            "x,z", [("a (b|a)*", "x", "y"), ("b+", "z", "y")]
        )
        for expansion in enumerate_expansions(query, 4):
            assert satisfies_c2rpq(query, expansion.database, expansion.head), (
                expansion.words
            )


class TestFiniteness:
    def test_finite_space_detected(self):
        finite = C2RPQ.from_strings("x,y", [("a|b b", "x", "y"), ("a?", "y", "z")])
        assert expansion_space_is_finite(finite)
        assert exhaustive_length_bound(finite) == 3

    def test_infinite_space_detected(self):
        infinite = C2RPQ.from_strings("x,y", [("a+", "x", "y")])
        assert not expansion_space_is_finite(infinite)
        assert exhaustive_length_bound(infinite) is None

    def test_exhaustion_covers_all_expansions(self):
        query = C2RPQ.from_strings("x,y", [("a|b b", "x", "y")])
        bound = exhaustive_length_bound(query)
        expansions = list(enumerate_expansions(query, bound))
        assert len(expansions) == 2  # words a, bb
