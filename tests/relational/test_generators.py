"""Unit tests for the relational workload generators."""

from repro.relational.generators import (
    bipartite_instance,
    chain_instance,
    random_instance,
    tree_instance,
)


class TestChain:
    def test_facts(self):
        db = chain_instance(3)
        assert db.tuples("edge") == {(0, 1), (1, 2), (2, 3)}


class TestTree:
    def test_complete_binary_tree(self):
        db = tree_instance(depth=2, fanout=2)
        assert len(db.tuples("edge")) == 6  # 2 + 4

    def test_edges_go_parent_to_child(self):
        db = tree_instance(depth=1, fanout=3)
        for parent, child in db.tuples("edge"):
            assert child[: len(parent)] == parent


class TestRandom:
    def test_schema_respected(self):
        db = random_instance({"r": 2, "s": 3}, domain_size=5, facts_per_relation=10, seed=1)
        assert db.arity("r") == 2 and db.arity("s") == 3

    def test_deterministic(self):
        a = random_instance({"r": 2}, 5, 10, seed=9)
        b = random_instance({"r": 2}, 5, 10, seed=9)
        assert a == b

    def test_domain_bounds(self):
        db = random_instance({"r": 1}, domain_size=3, facts_per_relation=50, seed=2)
        assert all(0 <= value < 3 for (value,) in db.tuples("r"))


class TestBipartite:
    def test_density_extremes(self):
        full = bipartite_instance(3, 4, density=1.0)
        empty = bipartite_instance(3, 4, density=0.0)
        assert len(full.tuples("rel")) == 12
        assert len(empty.tuples("rel")) == 0

    def test_sides_are_disjoint(self):
        db = bipartite_instance(2, 2, density=1.0)
        for left, right in db.tuples("rel"):
            assert left.startswith("l") and right.startswith("r")
