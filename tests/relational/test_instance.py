"""Unit tests for relational instances and graph conversions."""

import pytest

from repro.graphdb.database import GraphDatabase
from repro.relational.instance import (
    Instance,
    graph_to_instance,
    instance_to_graph,
)


class TestInstance:
    def test_from_facts(self):
        db = Instance.from_facts([("edge", (1, 2)), ("edge", (2, 3))])
        assert db.tuples("edge") == {(1, 2), (2, 3)}
        assert db.num_facts == 2

    def test_arity_enforced(self):
        db = Instance.from_facts([("r", (1, 2))])
        with pytest.raises(ValueError):
            db.add("r", (1, 2, 3))

    def test_declare_registers_empty_relation(self):
        db = Instance()
        db.declare("r", 2)
        assert db.tuples("r") == frozenset()
        with pytest.raises(ValueError):
            db.declare("r", 3)

    def test_unknown_predicate_is_empty(self):
        assert Instance().tuples("nope") == frozenset()

    def test_active_domain(self):
        db = Instance.from_facts([("r", (1, "x")), ("s", (2,))])
        assert db.active_domain == {1, "x", 2}

    def test_union(self):
        a = Instance.from_facts([("r", (1,))])
        b = Instance.from_facts([("r", (2,)), ("s", (3,))])
        merged = a.union(b)
        assert merged.tuples("r") == {(1,), (2,)}
        assert merged.tuples("s") == {(3,)}
        # inputs untouched
        assert a.tuples("r") == {(1,)}

    def test_copy_is_independent(self):
        a = Instance.from_facts([("r", (1,))])
        b = a.copy()
        b.add("r", (2,))
        assert a.tuples("r") == {(1,)}

    def test_contains(self):
        db = Instance.from_facts([("r", (1, 2))])
        assert ("r", (1, 2)) in db
        assert ("r", (2, 1)) not in db

    def test_equality_ignores_empty_relations(self):
        a = Instance.from_facts([("r", (1,))])
        b = Instance.from_facts([("r", (1,))])
        b.declare("s", 2)
        assert a == b


class TestGraphConversion:
    def test_roundtrip(self):
        graph = GraphDatabase.from_edges([("a", "r", "b"), ("b", "s", "a")])
        instance = graph_to_instance(graph)
        assert instance.tuples("r") == {("a", "b")}
        back = instance_to_graph(instance)
        assert back.relation("r") == {("a", "b")}
        assert back.relation("s") == {("b", "a")}

    def test_non_binary_rejected(self):
        instance = Instance.from_facts([("t", (1, 2, 3))])
        with pytest.raises(ValueError):
            instance_to_graph(instance)
