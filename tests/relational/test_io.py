"""Tests for relational-instance serialization."""

import pytest

from repro.relational import io
from repro.relational.instance import Instance


class TestFactText:
    def test_roundtrip(self):
        db = Instance.from_facts(
            [("edge", (1, 2)), ("edge", (2, 3)), ("label", ("a", 5))]
        )
        assert io.from_fact_text(io.to_fact_text(db)) == db

    def test_quoted_strings(self):
        db = io.from_fact_text("person('alice', 30).")
        assert db.tuples("person") == {("alice", 30)}

    def test_bare_tokens_are_strings(self):
        db = io.from_fact_text("edge(a, b).")
        assert db.tuples("edge") == {("a", "b")}

    def test_comments(self):
        db = io.from_fact_text("% header\nedge(1, 2).  % trailing\n")
        assert db.num_facts == 1

    def test_zero_arity(self):
        db = io.from_fact_text("flag().")
        assert db.tuples("flag") == {()}

    def test_malformed(self):
        with pytest.raises(ValueError):
            io.from_fact_text("edge(1, 2) :- nope(3).")


class TestJSON:
    def test_roundtrip(self):
        db = Instance.from_facts([("r", (1, "x", 2)), ("s", ())])
        loaded = io.from_json(io.to_json(db))
        assert loaded.tuples("r") == {(1, "x", 2)}
        assert loaded.tuples("s") == {()}


class TestFiles:
    def test_save_load(self, tmp_path):
        db = Instance.from_facts([("edge", (1, 2))])
        for name in ("d.facts", "d.json"):
            path = tmp_path / name
            io.save(db, path)
            assert io.load(path).tuples("edge") == {(1, 2)}
