"""Edge-case sweep: empty and degenerate inputs across every engine.

Systems code earns trust at the boundaries: empty databases, empty
languages, single-node graphs, self-loops, and arity-0 queries must not
crash and must return the mathematically right answer.
"""

import pytest

from repro.automata.regex import EmptySet, parse_regex
from repro.core.engine import check_containment
from repro.cq.evaluation import evaluate_cq
from repro.cq.syntax import cq_from_strings
from repro.crpq.containment import uc2rpq_contained
from repro.crpq.evaluation import evaluate_c2rpq
from repro.crpq.syntax import C2RPQ
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program
from repro.graphdb.database import GraphDatabase
from repro.relational.instance import Instance
from repro.report import Verdict
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.evaluation import evaluate_rq
from repro.rq.syntax import TransitiveClosure, edge


class TestEmptyDatabases:
    def test_rpq_on_empty_graph(self):
        assert RPQ.parse("a+").evaluate(GraphDatabase()) == frozenset()

    def test_rpq_star_on_nodes_only(self):
        db = GraphDatabase.from_edges([], nodes=["a", "b"])
        assert RPQ.parse("x*").evaluate(db) == {("a", "a"), ("b", "b")}

    def test_c2rpq_on_empty_graph(self):
        query = C2RPQ.from_strings("x,y", [("a", "x", "y")])
        assert evaluate_c2rpq(query, GraphDatabase()) == frozenset()

    def test_rq_on_empty_graph(self):
        assert evaluate_rq(TransitiveClosure(edge("a", "x", "y")), GraphDatabase()) == frozenset()

    def test_datalog_on_empty_instance(self):
        assert evaluate(transitive_closure_program(), Instance()) == frozenset()

    def test_cq_on_empty_instance(self):
        assert evaluate_cq(cq_from_strings("x", ["e(x,y)"]), Instance()) == frozenset()


class TestDegenerateGraphs:
    def test_self_loop_star(self):
        db = GraphDatabase.from_edges([("n", "a", "n")])
        assert RPQ.parse("a a a").evaluate(db) == {("n", "n")}

    def test_self_loop_two_way(self):
        db = GraphDatabase.from_edges([("n", "a", "n")])
        assert TwoRPQ.parse("a a- a a-").evaluate(db) == {("n", "n")}

    def test_single_node_no_edges(self):
        db = GraphDatabase.from_edges([], nodes=["solo"])
        assert RPQ.parse("a").evaluate(db) == frozenset()
        assert RPQ.parse("a?").evaluate(db) == {("solo", "solo")}


class TestEmptyLanguages:
    def test_empty_regex_query(self):
        query = TwoRPQ(EmptySet())
        db = GraphDatabase.from_edges([("a", "p", "b")])
        assert query.evaluate(db) == frozenset()

    def test_empty_language_contained_in_everything(self):
        empty = TwoRPQ(EmptySet())
        assert two_rpq_contained(empty, TwoRPQ.parse("p")).holds

    def test_nothing_nonempty_contained_in_empty(self):
        empty = TwoRPQ(EmptySet())
        result = two_rpq_contained(TwoRPQ.parse("p"), empty)
        assert result.verdict is Verdict.REFUTED


class TestEpsilonQueries:
    def test_epsilon_rpq_is_identity(self):
        db = GraphDatabase.from_edges([("a", "p", "b")], nodes=["c"])
        assert RPQ.parse("()").evaluate(db) == {
            ("a", "a"), ("b", "b"), ("c", "c")
        }

    def test_epsilon_contained_in_star(self):
        assert two_rpq_contained(TwoRPQ.parse("()"), TwoRPQ.parse("p*")).holds

    def test_star_not_contained_in_epsilon(self):
        result = two_rpq_contained(TwoRPQ.parse("p*"), TwoRPQ.parse("()"))
        assert result.verdict is Verdict.REFUTED


class TestBooleanAndConstants:
    def test_boolean_datalog_goal(self):
        program = parse_program("hit() :- e(x, y).", goal="hit")
        assert evaluate(program, Instance.from_facts([("e", (1, 2))])) == {()}
        assert evaluate(program, Instance()) == frozenset()

    def test_constants_in_datalog(self):
        program = parse_program("from_one(y) :- e(1, y).", goal="from_one")
        db = Instance.from_facts([("e", (1, 2)), ("e", (3, 4))])
        assert evaluate(program, db) == {(2,)}


class TestContainmentDegenerate:
    def test_identical_queries_hold_everywhere(self):
        for query in (RPQ.parse("a+"), TwoRPQ.parse("a-")):
            assert check_containment(query, query).holds

    def test_uc2rpq_epsilon_only_disjunct(self):
        eps = C2RPQ.from_strings("x,y", [("()", "x", "y")])
        star = C2RPQ.from_strings("x,y", [("a*", "x", "y")])
        assert uc2rpq_contained(eps, star).verdict is Verdict.HOLDS
        assert uc2rpq_contained(star, eps).verdict is Verdict.REFUTED

    def test_single_fact_datalog_program(self):
        facts_only = parse_program("seed(1, 2). goal(x, y) :- seed(x, y).", goal="goal")
        assert evaluate(facts_only, Instance()) == {(1, 2)}
