"""Integration tests: every lemma, theorem and worked example of the paper.

One test (class) per claim, cross-referenced to the section that states
it.  These are the executable counterpart of EXPERIMENTS.md.
"""

import itertools

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.complement import complement_two_nfa, lemma4_state_bound
from repro.automata.dfa import nfa_contains, reduce_nfa
from repro.automata.fold import fold_two_nfa, folds_onto, lemma3_state_bound
from repro.automata.regex import parse_regex
from repro.core.engine import check_containment
from repro.core.witness import verify_counterexample
from repro.cq.containment import cq_contained
from repro.cq.syntax import cq_from_strings
from repro.crpq.containment import uc2rpq_contained
from repro.crpq.evaluation import evaluate_uc2rpq
from repro.crpq.syntax import C2RPQ, paper_example_1
from repro.datalog.analysis import is_monadic, is_nonrecursive
from repro.datalog.containment import datalog_in_datalog
from repro.datalog.evaluation import bounded_evaluate, evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.datalog.unfolding import unfold_nonrecursive
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import cycle_graph, random_graph
from repro.grq.containment import grq_contained
from repro.grq.membership import is_grq
from repro.relational.generators import chain_instance, random_instance
from repro.relational.instance import graph_to_instance
from repro.report import Verdict
from repro.rpq.containment import rpq_contained, two_rpq_contained
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.containment import rq_contained
from repro.rq.evaluation import evaluate_rq
from repro.rq.syntax import TransitiveClosure, edge, triangle_plus, triangle_query
from repro.rq.to_datalog import rq_to_datalog


class TestSection2_ChandraMerlin:
    """[18]: CQ containment is decidable via homomorphisms."""

    def test_known_containments(self):
        p3 = cq_from_strings("x,w", ["E(x,y)", "E(y,z)", "E(z,w)"])
        has_edge = cq_from_strings("x,w", ["E(x,y)", "E(z,w)"])
        assert cq_contained(p3, has_edge)
        assert not cq_contained(has_edge, p3)


class TestSection2_NonrecursiveDatalogIsUCQ:
    """Section 2.2: a nonrecursive program equals a finite UCQ."""

    def test_semantic_equality_on_random_instances(self):
        program = parse_program(
            """
            q(x) :- a(x, y), helper(y).
            helper(y) :- b(y).
            helper(y) :- a(y, z), b(z).
            """,
            goal="q",
        )
        assert is_nonrecursive(program)
        ucq = unfold_nonrecursive(program)
        from repro.cq.evaluation import evaluate_ucq

        for seed in range(5):
            db = random_instance({"a": 2, "b": 1}, 5, 8, seed=seed)
            assert frozenset(evaluate(program, db)) == evaluate_ucq(ucq, db)


class TestSection2_DatalogSemantics:
    """Section 2.2: P^inf(D) = U_i P^i(D)."""

    def test_union_of_stages(self):
        tc = transitive_closure_program("edge", "tc")
        db = chain_instance(6)
        stages = [bounded_evaluate(tc, db, i) for i in range(9)]
        union = frozenset().union(*stages)
        assert union == evaluate(tc, db)
        for earlier, later in zip(stages, stages[1:]):
            assert earlier <= later


class TestSection2_MonadicDatalog:
    """Section 2.3: reachability is monadic; E+ is not expressible
    monadically (witnessed here by the classifier, not a proof)."""

    def test_paper_programs_classified(self):
        assert is_monadic(reachability_program())
        assert not is_monadic(transitive_closure_program())

    def test_reachability_program_semantics(self):
        program = reachability_program("E", "P", "Q")
        db = graph_to_instance(
            GraphDatabase.from_edges(
                [(1, "E", 2), (2, "E", 3), (4, "E", 5)]
            )
        )
        db.add("P", (3,))
        assert evaluate(program, db) == {(1,), (2,)}


class TestLemma1_RPQContainmentIsLanguageContainment:
    """Lemma 1: Q1 ⊑ Q2 iff L(Q1) ⊆ L(Q2) for (one-way) RPQs."""

    PAIRS = [
        ("a a", "a+"), ("a+", "a a"), ("a|b", "(a|b)*"),
        ("(a b)+", "a (b a)* b"), ("a", "b"),
    ]

    @pytest.mark.parametrize("left,right", PAIRS)
    def test_equivalence_of_the_two_notions(self, left, right):
        q1, q2 = RPQ.parse(left), RPQ.parse(right)
        language = nfa_contains(q1.nfa, q2.nfa, ("a", "b"))
        query = rpq_contained(q1, q2).holds
        assert language == query, (left, right)


class TestSection3_2_Divergence:
    """The example Q1 = p, Q2 = p p- p: query containment holds,
    language containment fails — Lemma 1 is false for 2RPQs."""

    def test_query_containment_holds(self):
        result = two_rpq_contained(TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"))
        assert result.verdict is Verdict.HOLDS

    def test_language_containment_fails(self):
        q1 = reduce_nfa(parse_regex("p").to_nfa())
        q2 = reduce_nfa(parse_regex("p p- p").to_nfa())
        assert not nfa_contains(q1, q2, Alphabet(("p",)).two_way)

    def test_semantic_verification_on_all_small_graphs(self):
        """Exhaustively: on every p-graph with <= 3 nodes, Q1 ⊆ Q2."""
        q1, q2 = TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")
        nodes = [0, 1, 2]
        pairs = [(a, b) for a in nodes for b in nodes]
        for bits in range(2 ** len(pairs)):
            edges = [
                (a, "p", b)
                for index, (a, b) in enumerate(pairs)
                if bits >> index & 1
            ]
            db = GraphDatabase.from_edges(edges, nodes=nodes)
            assert q1.evaluate(db) <= q2.evaluate(db), edges


class TestLemma2_FoldCharacterization:
    """Lemma 2: Q1 ⊑ Q2 iff L(Q1) ⊆ fold(L(Q2)), spot-checked by
    comparing the fold-based verdict against semantic evaluation."""

    def test_fold_example(self):
        assert folds_onto(("a", "b", "b-", "b", "c"), ("a", "b", "c"))

    def test_fold_based_verdicts_match_semantics(self, rng):
        from repro.automata.regex import random_regex

        for _ in range(6):
            q1 = TwoRPQ(random_regex(rng, ("a",), 2, allow_inverse=True))
            q2 = TwoRPQ(random_regex(rng, ("a",), 2, allow_inverse=True))
            verdict = two_rpq_contained(q1, q2)
            for seed in range(3):
                db = random_graph(4, 7, ("a",), seed=seed)
                if verdict.holds:
                    assert q1.evaluate(db) <= q2.evaluate(db)


class TestLemma3_FoldAutomatonSize:
    """Lemma 3: fold(L(A)) has a 2NFA with n(|Sigma±|+1) states; the
    marker-based construction achieves 2n, within the bound."""

    @pytest.mark.parametrize("text", ["p", "p p- p", "(p|q)* p-", "p+ q+"])
    def test_size_within_bound(self, text):
        nfa = reduce_nfa(parse_regex(text).to_nfa())
        sigma_pm = Alphabet(("p", "q")).two_way
        two = fold_two_nfa(nfa, sigma_pm)
        assert two.num_states == 2 * nfa.num_states
        assert two.num_states <= lemma3_state_bound(nfa, sigma_pm)


class TestLemma4_SingleExponentialComplement:
    """Lemma 4: the complement NFA is exact and within 2^{O(n)}."""

    def test_exact_and_bounded(self):
        sigma_pm = Alphabet(("p",)).two_way
        two = fold_two_nfa(reduce_nfa(parse_regex("p p-").to_nfa()), sigma_pm)
        complement = complement_two_nfa(two)
        assert complement.num_states <= lemma4_state_bound(two)
        for length in range(4):
            for word in itertools.product(sigma_pm, repeat=length):
                assert complement.accepts(word) != two.accepts(word)


class TestTheorem5_TwoRPQContainment:
    """Theorem 5: 2RPQ containment decided by the five-step pipeline."""

    def test_positive_negative_and_replay(self):
        positive = two_rpq_contained(TwoRPQ.parse("a b-"), TwoRPQ.parse("a b- b b-"))
        assert positive.holds
        negative = two_rpq_contained(TwoRPQ.parse("a b- b"), TwoRPQ.parse("a b-"))
        assert negative.verdict is Verdict.REFUTED
        assert verify_counterexample(
            TwoRPQ.parse("a b- b"), TwoRPQ.parse("a b-"), negative
        )


class TestTheorem6_UC2RPQ:
    """Theorem 6 class: Example 1 queries and their containments."""

    def test_example_1_containments(self):
        triangle, union = paper_example_1()
        assert uc2rpq_contained(triangle, union).verdict is Verdict.HOLDS
        refuted = uc2rpq_contained(union, triangle)
        assert refuted.verdict is Verdict.REFUTED
        # The counterexample is (an expansion of) the directed 3-cycle.
        db = refuted.counterexample.database
        assert evaluate_uc2rpq(union, db)

    def test_example_1_on_three_cycle(self):
        _, union = paper_example_1()
        assert evaluate_uc2rpq(union, cycle_graph(3, "r")) == {
            (0, 1), (1, 2), (2, 0)
        }


class TestSection3_4_RQClosure:
    """Section 3.4: UC2RPQ is not closed under TC; RQ is.  triangle+ is
    an RQ; no bounded-length UC2RPQ approximation equals it."""

    def test_triangle_plus_strictly_extends_triangle(self):
        result = rq_contained(triangle_plus(), triangle_query(), max_expansions=40)
        assert result.verdict is Verdict.REFUTED
        assert rq_contained(triangle_query(), triangle_plus()).holds

    def test_triangle_plus_differs_from_unrolled_approximations(self):
        """Q+ disagrees with the k-fold unrolling for every small k."""
        def unrolled(k):
            query = triangle_query()
            parts = [query]
            from repro.rq.syntax import And, Project, rename
            from repro.cq.syntax import Var

            # Compose the triangle with itself i times, union the results.
            composed = query
            union = query
            for i in range(1, k):
                renamed = rename(
                    triangle_query(), {"x": f"m{i}", "y": "y", "z": f"t{i}"}
                )
                left = rename(composed, {"y": f"m{i}"})
                composed = Project(And(left, renamed), composed.head_vars)
                union = union | composed
            return union

        for k in (1, 2):
            approx = unrolled(k)
            # approx ⊑ triangle+ always; the converse must fail.  Each
            # chained triangle costs ~8 rule applications in the Datalog
            # image, so k+1 triangles need a deeper application bound.
            assert rq_contained(approx, triangle_plus(), max_expansions=60).holds
            assert not rq_contained(
                triangle_plus(), approx, max_applications=40, max_expansions=60
            ).holds


class TestSection4_1_Embedding:
    """Section 4.1: the RQ -> Datalog translation preserves semantics
    and lands in GRQ."""

    def test_translation_is_grq_and_semantics_preserved(self):
        query = TransitiveClosure(
            edge("a", "x", "y")
        )
        program = rq_to_datalog(query)
        assert is_grq(program)
        for seed in range(3):
            db = random_graph(5, 9, ("a",), seed=seed)
            assert evaluate(program, graph_to_instance(db)) == evaluate_rq(query, db)


class TestTheorem8_GRQ:
    """Theorem 8 class: GRQ containment through the unified engine."""

    def test_grq_containment_via_engine(self):
        tc = transitive_closure_program("edge", "tc")
        rq_tc = TransitiveClosure(edge("edge", "x", "y"))
        # The RQ and its hand-written GRQ program are equivalent.
        assert check_containment(rq_tc, tc, max_expansions=25).holds
        assert check_containment(tc, rq_tc, max_expansions=25).holds

    def test_undecidable_fragment_falls_back(self):
        """Outside GRQ, the engine degrades to the semi-decision."""
        nonlinear = parse_program(
            """
            t(x, y) :- e(x, y).
            t(x, z) :- t(x, y), t(y, z).
            """
        )
        linear = transitive_closure_program("e", "t")
        result = check_containment(nonlinear, linear, max_expansions=20)
        assert result.method == "expansion-vs-evaluation"
        assert result.holds  # the two are equivalent; bounded verdict
