"""Robustness: query objects are proper values (hashable, picklable,
printable, equality-stable) — what a downstream user silently assumes."""

import pickle

import pytest

from repro.cq.syntax import UCQ, cq_from_strings
from repro.crpq.syntax import C2RPQ, paper_example_1
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program
from repro.graphdb.database import GraphDatabase
from repro.relational.instance import Instance
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.parser import parse_rq
from repro.rq.syntax import triangle_plus

QUERIES = {
    "rpq": RPQ.parse("a (b|a)* b?"),
    "2rpq": TwoRPQ.parse("a b- a"),
    "c2rpq": paper_example_1()[0],
    "uc2rpq": paper_example_1()[1],
    "rq": triangle_plus(),
    "rq-parsed": parse_rq("ans(x, y) :- [a+](x, y)."),
    "cq": cq_from_strings("x,z", ["e(x,y)", "e(y,z)"]),
    "ucq": UCQ((cq_from_strings("x", ["e(x,y)"]),)),
    "datalog": transitive_closure_program(),
}


class TestValueSemantics:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_pickle_roundtrip(self, name):
        query = QUERIES[name]
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_hashable(self, name):
        assert {QUERIES[name]}  # must not raise

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_repr_is_nonempty(self, name):
        assert repr(QUERIES[name])

    def test_pickled_query_still_evaluates(self):
        query = pickle.loads(pickle.dumps(QUERIES["rpq"]))
        db = GraphDatabase.from_edges([(0, "a", 1), (1, "b", 2)])
        assert (0, 1) in query.evaluate(db)


class TestDatabaseValueSemantics:
    def test_graph_pickle_roundtrip(self):
        db = GraphDatabase.from_edges([("a", "r", "b")], nodes=["c"])
        clone = pickle.loads(pickle.dumps(db))
        assert clone == db
        assert clone.successors("a", "r") == {"b"}

    def test_instance_pickle_roundtrip(self):
        db = Instance.from_facts([("r", (1, 2)), ("s", ("x",))])
        clone = pickle.loads(pickle.dumps(db))
        assert clone == db
        assert clone.arity("r") == 2

    def test_results_pickle(self):
        from repro.core.engine import check_containment

        result = check_containment(RPQ.parse("a+"), RPQ.parse("a a"))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.verdict == result.verdict
        assert clone.counterexample.output == result.counterexample.output
