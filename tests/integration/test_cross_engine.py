"""Cross-engine consistency: independent procedures must agree.

The package contains several decision procedures whose domains overlap:
the automata pipeline (2RPQ), expansion checking (UC2RPQ, RQ, GRQ),
homomorphism checking (CQ/UCQ), and canonical-database evaluation
(anything vs Datalog).  These tests drive randomized inputs through two
or more of them and require identical verdicts — the strongest
correctness evidence the package has beyond brute force.
"""

import random

import pytest

from repro.core.engine import check_containment
from repro.core.witness import verify_counterexample
from repro.crpq.containment import uc2rpq_contained
from repro.crpq.syntax import two_rpq_as_uc2rpq
from repro.datalog.containment import datalog_in_datalog
from repro.report import Verdict
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import TwoRPQ
from repro.rq.containment import rq_contained
from repro.rq.embeddings import two_rpq_to_rq
from repro.rq.to_datalog import rq_to_datalog


def random_two_rpqs(seed: int, count: int, alphabet=("a", "b"), depth=2):
    from repro.automata.regex import random_regex

    rng = random.Random(seed)
    return [
        TwoRPQ(random_regex(rng, alphabet, depth, allow_inverse=True))
        for _ in range(count)
    ]


class TestTwoRPQvsExpansion:
    def test_agreement_on_random_pairs(self):
        queries = random_two_rpqs(101, 8)
        compared = 0
        for q1 in queries[:4]:
            for q2 in queries[4:]:
                exact = two_rpq_contained(q1, q2)
                expansion = uc2rpq_contained(
                    two_rpq_as_uc2rpq(q1),
                    two_rpq_as_uc2rpq(q2),
                    max_total_length=5,
                )
                if expansion.verdict is Verdict.REFUTED:
                    assert exact.verdict is Verdict.REFUTED, (q1, q2)
                if exact.holds:
                    assert expansion.holds, (q1, q2)
                compared += 1
        assert compared == 16


class TestTwoRPQvsRQEmbedding:
    def test_agreement_through_the_rq_engine(self):
        queries = random_two_rpqs(77, 6, alphabet=("a",), depth=2)
        for q1 in queries[:3]:
            for q2 in queries[3:]:
                exact = two_rpq_contained(q1, q2)
                via_rq = rq_contained(
                    two_rpq_to_rq(q1, ("a",)),
                    two_rpq_to_rq(q2, ("a",)),
                    max_applications=16,
                    max_expansions=120,
                )
                if via_rq.verdict is Verdict.REFUTED:
                    assert exact.verdict is Verdict.REFUTED, (q1, q2)
                if exact.holds:
                    assert via_rq.holds, (q1, q2)


class TestRQvsDatalog:
    def test_rq_engine_agrees_with_datalog_engine(self):
        """rq_contained vs datalog_in_datalog on the translated programs."""
        from repro.rq.syntax import Or, TransitiveClosure, edge, path_query

        candidates = [
            edge("a", "x", "y"),
            path_query(["a", "a"]),
            TransitiveClosure(edge("a", "x", "y")),
            Or(edge("a", "x", "y"), path_query(["a", "a"])),
        ]
        for q1 in candidates:
            for q2 in candidates:
                via_rq = rq_contained(q1, q2, max_expansions=40)
                via_datalog = datalog_in_datalog(
                    rq_to_datalog(q1, prefix="l"),
                    rq_to_datalog(q2, prefix="r"),
                    max_expansions=40,
                )
                assert via_rq.holds == via_datalog.holds, (q1, q2)


class TestEveryRefutationReplays:
    def test_engine_refutations_verify(self):
        queries = random_two_rpqs(55, 6)
        refutations = 0
        for q1 in queries[:3]:
            for q2 in queries[3:]:
                result = check_containment(q1, q2)
                if result.verdict is Verdict.REFUTED:
                    assert verify_counterexample(q1, q2, result), (q1, q2)
                    refutations += 1
        # Random pairs nearly always produce at least one refutation.
        assert refutations >= 1
