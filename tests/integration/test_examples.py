"""Every example script must run to completion (they assert internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


def test_all_examples_are_covered():
    """The README's examples table and the directory must agree."""
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    for script in EXAMPLES:
        assert script.name in readme, f"{script.name} missing from README"
