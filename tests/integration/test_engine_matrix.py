"""The full dispatch matrix: every query-class pair through the engine.

One representative query per class, all ordered pairs checked both for
not crashing and for the expected verdict.  The representatives are
chosen so the semantic relationships are known by construction: each is
(equivalent to) the transitive closure of the ``e`` relation, or the
single-step ``e`` relation, so cross-class verdicts are predictable.
"""

import pytest

from repro.core.classify import QueryClass, classify
from repro.core.engine import check_containment
from repro.core.witness import verify_counterexample
from repro.cq.syntax import UCQ, cq_from_strings
from repro.crpq.syntax import C2RPQ
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program
from repro.report import Verdict
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import TransitiveClosure, edge

# Representatives of "exactly one e-step":
STEP = {
    "RPQ": RPQ.parse("e"),
    "2RPQ": TwoRPQ.parse("e e- e"),          # ≡ e? no — ⊒ e; see notes below
    "UC2RPQ": C2RPQ.from_strings("x,y", [("e", "x", "y")]),
    "RQ": edge("e", "x", "y"),
    "CQ": cq_from_strings("x,y", ["e(x,y)"]),
    "UCQ": UCQ((cq_from_strings("x,y", ["e(x,y)"]),)),
    "Datalog": parse_program("p(x, y) :- e(x, y).", goal="p"),
}

# Representatives of "e-reachability" (the transitive closure):
CLOSURE = {
    "RPQ": RPQ.parse("e+"),
    "UC2RPQ": C2RPQ.from_strings("x,y", [("e+", "x", "y")]),
    "RQ": TransitiveClosure(edge("e", "x", "y")),
    "GRQ": transitive_closure_program("e", "tc"),
}

GRAPH_KINDS = ("RPQ", "2RPQ", "UC2RPQ", "RQ")


def is_graph_kind(name: str) -> bool:
    return name in GRAPH_KINDS


class TestStepInClosure:
    """'one step' ⊑ 'closure' must hold for every pair of classes."""

    @pytest.mark.parametrize("left", sorted(STEP))
    @pytest.mark.parametrize("right", sorted(CLOSURE))
    def test_holds(self, left, right):
        if left == "2RPQ":
            pytest.skip("the 2RPQ representative is not a step query")
        q1, q2 = STEP[left], CLOSURE[right]
        if is_graph_kind(left) != is_graph_kind(right) and not (
            left in ("CQ", "UCQ", "Datalog") or right == "GRQ"
        ):
            pytest.skip("no embedding for this direction")
        result = check_containment(q1, q2, max_expansions=40)
        assert result.verdict is not Verdict.REFUTED, (left, right, result)


class TestClosureNotInStep:
    """'closure' ⊑ 'one step' must be refuted, with a replayable witness."""

    @pytest.mark.parametrize("left", sorted(CLOSURE))
    @pytest.mark.parametrize("right", sorted(STEP))
    def test_refuted(self, left, right):
        if right == "2RPQ":
            pytest.skip("e e- e is not equivalent to a step")
        q1, q2 = CLOSURE[left], STEP[right]
        result = check_containment(q1, q2, max_expansions=40)
        assert result.verdict is Verdict.REFUTED, (left, right, result)
        assert verify_counterexample(q1, q2, result), (left, right)


class TestClosureEquivalences:
    """All closure representatives agree pairwise (up to bounds)."""

    @pytest.mark.parametrize("left", sorted(CLOSURE))
    @pytest.mark.parametrize("right", sorted(CLOSURE))
    def test_mutual_containment_not_refuted(self, left, right):
        result = check_containment(
            CLOSURE[left], CLOSURE[right], max_expansions=40
        )
        assert result.verdict is not Verdict.REFUTED, (left, right, result)


class TestClassificationOfRepresentatives:
    def test_step_classes(self):
        assert classify(STEP["RPQ"]) is QueryClass.RPQ
        assert classify(STEP["2RPQ"]) is QueryClass.TWO_RPQ
        assert classify(STEP["UC2RPQ"]) is QueryClass.UC2RPQ
        assert classify(STEP["RQ"]) is QueryClass.RQ
        assert classify(STEP["CQ"]) is QueryClass.CQ
        assert classify(STEP["UCQ"]) is QueryClass.UCQ
        # A single nonrecursive rule classifies as UCQ (≡ per §2.2).
        assert classify(STEP["Datalog"]) is QueryClass.UCQ

    def test_closure_classes(self):
        assert classify(CLOSURE["RPQ"]) is QueryClass.RPQ
        assert classify(CLOSURE["UC2RPQ"]) is QueryClass.UC2RPQ
        assert classify(CLOSURE["RQ"]) is QueryClass.RQ
        assert classify(CLOSURE["GRQ"]) is QueryClass.GRQ
