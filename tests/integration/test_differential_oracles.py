"""Differential oracles: hypothesis-driven agreement between independent engines.

Each property drives randomized queries through two procedures that were
implemented independently and requires their answers to agree:

- the RPQ automata pipeline vs brute-force word enumeration;
- UC2RPQ direct evaluation / containment vs the Section 4.1 Datalog
  translation (:mod:`repro.crpq.to_datalog`) run through the Datalog
  engine;
- RQ algebra evaluation / containment vs its Datalog image
  (:mod:`repro.rq.to_datalog`);
- the snapshot-based set-at-a-time evaluation engine (ISSUE 7) vs the
  object-state baseline vs sequential (uncached, per-call) CRPQ
  instantiation, over random regexes/graphs including mixed-type and
  non-string node names.

All properties are derandomized (``derandomize=True``) so CI replays the
exact same example sequence on every run: a red run is reproducible, and
a green run certifies a fixed corpus rather than a lucky draw.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.automata.indexed import use_indexed_kernels
from repro.automata.regex import random_regex
from repro.cache import clear_caches, use_caching
from repro.crpq.evaluation import evaluate_uc2rpq, satisfies_uc2rpq
from repro.crpq.containment import uc2rpq_contained
from repro.crpq.syntax import C2RPQ
from repro.crpq.to_datalog import uc2rpq_to_datalog
from repro.datalog.evaluation import evaluate
from repro.graphdb.generators import random_graph
from repro.relational.instance import graph_to_instance
from repro.report import Verdict
from repro.rpq.containment import rpq_contained
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.containment import rq_contained
from repro.rq.evaluation import evaluate_rq
from repro.rq.generators import random_rq
from repro.rq.to_datalog import rq_to_datalog

ALPHABET = ("a", "b")

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.filter_too_much],
)


def _brute_words(nfa, alphabet, max_length):
    import itertools

    return {
        word
        for length in range(max_length + 1)
        for word in itertools.product(alphabet, repeat=length)
        if nfa.accepts(word)
    }


def _rpq_pair(seed: int) -> tuple[RPQ, RPQ]:
    rng = random.Random(seed)
    return (
        RPQ(random_regex(rng, ALPHABET, 3)),
        RPQ(random_regex(rng, ALPHABET, 3)),
    )


def _incident(db, labels):
    """Nodes incident to an edge labeled within *labels* — the active
    domain the Datalog translations quantify over."""
    return {
        node
        for source, label, target in db.edges()
        if label in labels
        for node in (source, target)
    }


# -- RPQ pipeline vs brute-force enumeration ---------------------------------


@SETTINGS
@given(st.integers(0, 10**9))
def test_rpq_holds_agrees_with_brute_force(seed):
    """HOLDS from the automata pipeline means no short word separates."""
    q1, q2 = _rpq_pair(seed)
    result = rpq_contained(q1, q2)
    if result.holds:
        for word in _brute_words(q1.nfa, ALPHABET, 5):
            assert q2.accepts_word(word), (q1, q2, word)


@SETTINGS
@given(st.integers(0, 10**9))
def test_rpq_refutation_replays_and_brute_force_confirms(seed):
    """REFUTED comes with a database only Q1 answers; and conversely a
    brute-force separating word forces the pipeline to refute."""
    q1, q2 = _rpq_pair(seed)
    result = rpq_contained(q1, q2)
    if result.verdict is Verdict.REFUTED:
        db = result.counterexample.database
        source, target = result.counterexample.output
        assert q1.matches(db, source, target)
        assert not q2.matches(db, source, target)
    separating = _brute_words(q1.nfa, ALPHABET, 4) - _brute_words(
        q2.nfa, ALPHABET, 4
    )
    if separating:
        assert result.verdict is Verdict.REFUTED, (q1, q2, sorted(separating)[:3])


# -- UC2RPQ vs its Datalog translation ---------------------------------------


def _c2rpq(seed: int) -> C2RPQ:
    rng = random.Random(seed)
    # The first atom spans the head so the query is always well-formed.
    atoms = [(str(random_regex(rng, ALPHABET, 2)), "x", "y")]
    if rng.random() < 0.5:
        source, target = rng.sample(["x", "y", "z"], 2)
        atoms.append((str(random_regex(rng, ALPHABET, 2)), source, target))
    return C2RPQ.from_strings("x,y", atoms)


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_uc2rpq_evaluation_agrees_with_datalog_translation(seed, db_seed):
    """Direct C2RPQ evaluation == Datalog engine on the translated program."""
    query = _c2rpq(seed)
    program = uc2rpq_to_datalog(query)
    db = random_graph(5, 10, ALPHABET, seed=db_seed)
    via_datalog = evaluate(program, graph_to_instance(db))
    incident = _incident(db, query.base_symbols())
    direct = frozenset(
        row
        for row in evaluate_uc2rpq(query, db)
        if all(value in incident for value in row)
    )
    assert via_datalog == direct, (query, db_seed)


@SETTINGS
@given(st.integers(0, 10**9))
def test_uc2rpq_refutation_separates_the_datalog_translations(seed):
    """A containment counterexample separates the translated programs too."""
    q1, q2 = _c2rpq(seed), _c2rpq(seed + 1)
    result = uc2rpq_contained(q1, q2, max_total_length=4, max_expansions=300)
    if result.verdict is not Verdict.REFUTED:
        return
    db = result.counterexample.database
    head = result.counterexample.output
    if not all(value in _incident(db, q1.base_symbols()) for value in head):
        # Epsilon-word expansions put head nodes outside the active
        # domain the translation quantifies over; the translations are
        # only claimed equivalent on adom tuples.
        return
    instance = graph_to_instance(db)
    assert head in evaluate(uc2rpq_to_datalog(q1), instance)
    assert head not in evaluate(uc2rpq_to_datalog(q2), instance)


# -- RQ vs its Datalog translation -------------------------------------------


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_rq_evaluation_agrees_with_datalog_translation(seed, db_seed):
    """RQ algebra semantics == Datalog engine on the translated program."""
    rng = random.Random(seed)
    query = random_rq(rng, ALPHABET, 2)
    program = rq_to_datalog(query)
    db = random_graph(5, 10, ALPHABET, seed=db_seed)
    via_datalog = evaluate(program, graph_to_instance(db))
    direct = frozenset(evaluate_rq(query, db))
    assert via_datalog == direct, (query, db_seed)


@SETTINGS
@given(st.integers(0, 10**9))
def test_rq_refutation_separates_the_datalog_translations(seed):
    """An RQ containment counterexample separates the Datalog images."""
    rng = random.Random(seed)
    q1 = random_rq(rng, ALPHABET, 2)
    q2 = random_rq(rng, ALPHABET, 2)
    if q1.arity != q2.arity:
        return
    result = rq_contained(q1, q2, max_applications=8, max_expansions=120)
    if result.verdict is not Verdict.REFUTED:
        return
    db = result.counterexample.database
    head = result.counterexample.output
    instance = graph_to_instance(db)
    assert head in evaluate(rq_to_datalog(q1), instance)
    assert head not in evaluate(rq_to_datalog(q2), instance)


# -- snapshot engine vs object-state baseline vs sequential instantiation ----


def _mixed_node_graph(db_seed: int):
    """A random graph whose nodes mix ints, strings, and tuples — the
    node-name shapes canonical databases and user data actually use."""
    base = random_graph(6, 14, ALPHABET, seed=db_seed)
    rename = {}
    for index, node in enumerate(base.nodes_in_order()):
        kind = index % 3
        rename[node] = node if kind == 0 else (
            f"n{node}" if kind == 1 else ("t", node)
        )
    return base.renamed(rename)


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_snapshot_evaluation_agrees_with_object_state(seed, db_seed):
    """Set-at-a-time snapshot BFS == per-source object-state BFS."""
    rng = random.Random(seed)
    query = TwoRPQ(random_regex(rng, ALPHABET, 3, allow_inverse=True))
    db = _mixed_node_graph(db_seed)
    clear_caches()
    with use_indexed_kernels(True):
        fast = query.evaluate(db)
    with use_indexed_kernels(False):
        slow = query.evaluate(db)
    assert fast == slow, (query, db_seed)


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_crpq_cached_instantiation_agrees_with_sequential(seed, db_seed):
    """Per-snapshot cached atom instantiation == sequential re-materialize.

    Three arms: snapshot engine with caches, snapshot engine with caching
    disabled (sequential instantiation), and the object-state baseline.
    """
    query = _c2rpq(seed)
    db = _mixed_node_graph(db_seed)
    clear_caches()
    with use_indexed_kernels(True), use_caching(True):
        cached = evaluate_uc2rpq(query, db)
        again = evaluate_uc2rpq(query, db)  # second call exercises hits
    with use_indexed_kernels(True), use_caching(False):
        sequential = evaluate_uc2rpq(query, db)
    with use_indexed_kernels(False), use_caching(False):
        baseline = evaluate_uc2rpq(query, db)
    assert cached == again == sequential == baseline, (query, db_seed)


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_crpq_membership_agrees_across_arms(seed, db_seed):
    """satisfies_uc2rpq (the containment hot loop) agrees on every head."""
    query = _c2rpq(seed)
    db = _mixed_node_graph(db_seed)
    nodes = db.nodes_in_order()[:4]
    heads = [(x, y) for x in nodes for y in nodes][:8]
    clear_caches()
    for head in heads:
        with use_indexed_kernels(True), use_caching(True):
            cached = satisfies_uc2rpq(query, db, head)
        with use_indexed_kernels(False), use_caching(False):
            baseline = satisfies_uc2rpq(query, db, head)
        assert cached == baseline, (query, head, db_seed)
