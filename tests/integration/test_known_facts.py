"""A regression corpus of known containment facts.

Each row is a (query, query, expected) triple whose ground truth is
established by hand (standard theory examples).  The corpus locks the
engine's behavior: a regression in any procedure flips a row.

Expected values: True = must not be refuted; False = must be REFUTED.
"""

import pytest

from repro.core.engine import check_containment
from repro.cq.syntax import cq_from_strings
from repro.crpq.syntax import C2RPQ
from repro.datalog.parser import parse_program
from repro.report import Verdict
from repro.rpq.rpq import RPQ, TwoRPQ


def rpq(text):
    return RPQ.parse(text)


def rpq2(text):
    return TwoRPQ.parse(text)


def cq(head, *atoms):
    return cq_from_strings(head, list(atoms))


def c2(head, *atoms):
    return C2RPQ.from_strings(head, [tuple(a) for a in atoms])


CORPUS = [
    # --- RPQ: pure language containment (Lemma 1) -------------------------------
    ("a ⊑ a|b", rpq("a"), rpq("a|b"), True),
    ("a|b ⊑ a", rpq("a|b"), rpq("a"), False),
    ("a a ⊑ a+", rpq("a a"), rpq("a+"), True),
    ("a+ ⊑ a a*", rpq("a+"), rpq("a a*"), True),
    ("a a* ⊑ a+", rpq("a a*"), rpq("a+"), True),
    ("a* ⊑ a+", rpq("a*"), rpq("a+"), False),
    ("(a b)+ a ⊑ a (b a)+", rpq("(a b)+ a"), rpq("a (b a)+"), True),
    ("a b ⊑ b a", rpq("a b"), rpq("b a"), False),
    # --- 2RPQ: folding matters (Lemma 2 / Theorem 5) -----------------------------
    ("p ⊑ p p- p", rpq2("p"), rpq2("p p- p"), True),
    ("p p- p ⊑ p", rpq2("p p- p"), rpq2("p"), False),
    ("p p ⊑ p p- p", rpq2("p p"), rpq2("p p- p"), False),
    ("a ⊑ a a- a a- a", rpq2("a"), rpq2("a a- a a- a"), True),
    ("a b- ⊑ a b- b b-", rpq2("a b-"), rpq2("a b- b b-"), True),
    ("a- ⊑ a- a a-", rpq2("a-"), rpq2("a- a a-"), True),
    ("p p- ⊑ p p", rpq2("p p-"), rpq2("p p"), False),
    # --- CQ: homomorphisms (Chandra-Merlin) --------------------------------------
    (
        "path3 ⊑ two-edges",
        cq("x,w", "E(x,y)", "E(y,z)", "E(z,w)"),
        cq("x,w", "E(x,y)", "E(z,w)"),
        True,
    ),
    (
        "two-edges ⊑ path3",
        cq("x,w", "E(x,y)", "E(z,w)"),
        cq("x,w", "E(x,y)", "E(y,z)", "E(z,w)"),
        False,
    ),
    (
        "hexagon ⊑ triangle is false",
        cq("x", "E(x,a)", "E(a,b)", "E(b,c)", "E(c,d)", "E(d,f)", "E(f,x)"),
        cq("x", "E(x,y)", "E(y,z)", "E(z,x)"),
        False,
    ),
    (
        "triangle ⊑ hexagon (wrap twice)",
        cq("x", "E(x,y)", "E(y,z)", "E(z,x)"),
        cq("x", "E(x,a)", "E(a,b)", "E(b,c)", "E(c,d)", "E(d,f)", "E(f,x)"),
        True,
    ),
    ("self-loop ⊑ edge", cq("x", "E(x,x)"), cq("x", "E(x,y)"), True),
    ("edge ⊑ self-loop", cq("x", "E(x,y)"), cq("x", "E(x,x)"), False),
    # --- UC2RPQ: two paths vs one ------------------------------------------------
    (
        "same-word conj ⊑ single atom",
        c2("x,y", ("a b", "x", "y"), ("a b", "x", "y")),
        c2("x,y", ("a b", "x", "y")),
        True,
    ),
    (
        "conj of different words ⊄ intersection",
        c2("x,y", ("a (b|c)", "x", "y"), ("(a|d) b", "x", "y")),
        c2("x,y", ("a b", "x", "y")),
        False,
    ),
    # --- Datalog / GRQ -----------------------------------------------------------
    (
        "left-linear tc ⊑ right-linear tc",
        parse_program("t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)."),
        parse_program("t(x,y) :- e(x,y). t(x,z) :- e(x,y), t(y,z)."),
        True,
    ),
    (
        "tc ⊑ bounded 2-hop",
        parse_program("t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)."),
        parse_program("h(x,y) :- e(x,y). h(x,z) :- e(x,y), e(y,z)."),
        False,
    ),
    (
        "even-chain tc ⊑ tc",
        parse_program("p(x,z) :- e(x,y), e(y,z). p(x,z) :- p(x,y), p(y,z)."),
        parse_program("t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)."),
        True,
    ),
]


@pytest.mark.parametrize(
    "label,q1,q2,expected", CORPUS, ids=[row[0] for row in CORPUS]
)
def test_known_fact(label, q1, q2, expected):
    result = check_containment(q1, q2, max_expansions=60)
    if expected:
        assert result.verdict is not Verdict.REFUTED, (label, result.describe())
    else:
        assert result.verdict is Verdict.REFUTED, (label, result.describe())
