"""Tests for Chandra-Merlin and Sagiv-Yannakakis containment."""

import pytest

from repro.cq.containment import (
    cq_contained,
    cq_equivalent,
    ucq_contained,
    ucq_equivalent,
)
from repro.cq.evaluation import evaluate_cq, evaluate_ucq
from repro.cq.syntax import UCQ, cq_from_strings
from repro.relational.generators import random_instance


class TestCQContainment:
    def test_longer_path_in_shorter_is_false(self):
        path2 = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        path3 = cq_from_strings("x,w", ["E(x,y)", "E(y,z)", "E(z,w)"])
        assert not cq_contained(path2, path3)
        assert not cq_contained(path3, path2)

    def test_adding_atoms_shrinks(self):
        small = cq_from_strings("x", ["E(x,y)", "E(y,z)"])
        big = cq_from_strings("x", ["E(x,y)"])
        assert cq_contained(small, big)
        assert not cq_contained(big, small)

    def test_triangle_in_cycle_queries(self):
        triangle = cq_from_strings("x", ["E(x,y)", "E(y,z)", "E(z,x)"])
        hexagon = cq_from_strings(
            "x",
            ["E(x,a)", "E(a,b)", "E(b,c)", "E(c,d)", "E(d,e)", "E(e,x)"],
        )
        # A triangle maps onto... itself twice around = hexagon pattern maps
        # into triangle (6 = 2*3), but not vice versa.
        assert cq_contained(triangle, hexagon)
        assert not cq_contained(hexagon, triangle)

    def test_constants_matter(self):
        with_const = cq_from_strings("x", ["E(x, 5)"])
        without = cq_from_strings("x", ["E(x, y)"])
        assert cq_contained(with_const, without)
        assert not cq_contained(without, with_const)

    def test_equivalent_renamings(self):
        a = cq_from_strings("x", ["E(x,y)"])
        b = cq_from_strings("x", ["E(x,z)"])
        assert cq_equivalent(a, b)

    def test_containment_implies_answers_subset(self):
        """Semantic soundness on random instances."""
        small = cq_from_strings("x", ["E(x,y)", "E(y,x)"])
        big = cq_from_strings("x", ["E(x,y)"])
        assert cq_contained(small, big)
        for seed in range(5):
            db = random_instance({"E": 2}, 6, 12, seed=seed)
            assert evaluate_cq(small, db) <= evaluate_cq(big, db)


class TestUCQContainment:
    def test_disjunct_wise(self):
        e = cq_from_strings("x,y", ["E(x,y)"])
        p2 = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        union = UCQ((e, p2))
        assert ucq_contained(e, union).holds
        assert ucq_contained(p2, union).holds
        assert not ucq_contained(union, p2).holds

    def test_needs_whole_union(self):
        """A CQ can be contained in a UCQ without being in any single
        disjunct only through case analysis on instances — for plain CQs
        over one relation the per-disjunct rule is complete, which this
        test pins down (Sagiv-Yannakakis)."""
        p2 = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        e = cq_from_strings("x,y", ["E(x,y)"])
        union = UCQ((e, p2))
        result = ucq_contained(union, UCQ((e,)))
        assert not result.holds
        instance, head = result.counterexample
        # Replay: the counterexample separates the queries.
        assert head in evaluate_ucq(union, instance)
        assert head not in evaluate_ucq(UCQ((e,)), instance)

    def test_arity_mismatch_raises(self):
        a = cq_from_strings("x", ["E(x,y)"])
        b = cq_from_strings("x,y", ["E(x,y)"])
        with pytest.raises(ValueError):
            ucq_contained(a, b)

    def test_equivalence(self):
        e = cq_from_strings("x,y", ["E(x,y)"])
        e_twice = UCQ((e, cq_from_strings("x,y", ["E(x,y)", "E(x,w)"])))
        assert ucq_equivalent(UCQ((e,)), e_twice)

    def test_counterexamples_always_replay(self):
        """Every refutation this module produces must be replayable."""
        pairs = [
            (cq_from_strings("x", ["E(x,y)"]), cq_from_strings("x", ["E(x,x)"])),
            (
                cq_from_strings("x,y", ["E(x,y)"]),
                cq_from_strings("x,y", ["E(y,x)"]),
            ),
        ]
        for q1, q2 in pairs:
            result = ucq_contained(q1, q2)
            assert not result.holds
            instance, head = result.counterexample
            assert head in evaluate_cq(q1, instance)
            assert head not in evaluate_cq(q2, instance)
