"""Unit tests for CQ/UCQ evaluation."""

import pytest

from repro.cq.evaluation import (
    bindings,
    evaluate_cq,
    evaluate_ucq,
    satisfies,
    satisfies_ucq,
)
from repro.cq.syntax import UCQ, Var, cq_from_strings
from repro.relational.generators import chain_instance
from repro.relational.instance import Instance


@pytest.fixture
def chain():
    return chain_instance(4, "E")


class TestEvaluateCQ:
    def test_path_of_length_two(self, chain):
        cq = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        assert evaluate_cq(cq, chain) == {(0, 2), (1, 3), (2, 4)}

    def test_boolean_query(self, chain):
        boolean = cq_from_strings("", ["E(x,y)"])
        assert evaluate_cq(boolean, chain) == {()}
        assert evaluate_cq(boolean, Instance()) == frozenset()

    def test_constants_filter(self, chain):
        cq = cq_from_strings("y", ["E(0, y)"])
        assert evaluate_cq(cq, chain) == {(1,)}

    def test_repeated_variable_in_atom(self):
        db = Instance.from_facts([("E", (1, 1)), ("E", (1, 2))])
        loops = cq_from_strings("x", ["E(x,x)"])
        assert evaluate_cq(loops, db) == {(1,)}

    def test_cartesian_product_when_no_shared_vars(self):
        db = Instance.from_facts([("a", (1,)), ("a", (2,)), ("b", (9,))])
        cq = cq_from_strings("x,y", ["a(x)", "b(y)"])
        assert evaluate_cq(cq, db) == {(1, 9), (2, 9)}

    def test_triangle(self):
        db = Instance.from_facts(
            [("E", (1, 2)), ("E", (2, 3)), ("E", (3, 1)), ("E", (3, 4))]
        )
        triangle = cq_from_strings("x", ["E(x,y)", "E(y,z)", "E(z,x)"])
        assert evaluate_cq(triangle, db) == {(1,), (2,), (3,)}

    def test_empty_relation_yields_empty(self, chain):
        cq = cq_from_strings("x", ["nope(x)"])
        assert evaluate_cq(cq, chain) == frozenset()


class TestSatisfies:
    def test_positive_and_negative(self, chain):
        cq = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        assert satisfies(cq, chain, (0, 2))
        assert not satisfies(cq, chain, (0, 3))

    def test_arity_mismatch_is_false(self, chain):
        cq = cq_from_strings("x", ["E(x,y)"])
        assert not satisfies(cq, chain, (0, 1))

    def test_repeated_head_variable_constraint(self, chain):
        cq_rep = cq_from_strings("x,x", ["E(x,y)"])
        assert satisfies(cq_rep, chain, (0, 0))
        assert not satisfies(cq_rep, chain, (0, 1))


class TestUCQEvaluation:
    def test_union_of_answers(self, chain):
        one = cq_from_strings("x,y", ["E(x,y)"])
        two = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        union = UCQ((one, two))
        assert evaluate_ucq(union, chain) == evaluate_cq(one, chain) | evaluate_cq(
            two, chain
        )

    def test_satisfies_ucq(self, chain):
        one = cq_from_strings("x,y", ["E(x,y)"])
        two = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        union = UCQ((one, two))
        assert satisfies_ucq(union, chain, (0, 2))  # only via disjunct two
        assert satisfies_ucq(union, chain, (0, 1))  # only via disjunct one
        assert not satisfies_ucq(union, chain, (4, 0))


class TestBindings:
    def test_all_bindings_enumerated(self, chain):
        cq = cq_from_strings("x", ["E(x,y)"])
        assert len(list(bindings(cq, chain))) == 4

    def test_binding_maps_every_variable(self, chain):
        cq = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        for binding in bindings(cq, chain):
            assert set(binding) == {Var("x"), Var("y"), Var("z")}
