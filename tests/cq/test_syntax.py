"""Unit tests for CQ/UCQ syntax."""

import pytest

from repro.cq.syntax import (
    CQ,
    UCQ,
    Atom,
    Var,
    cq_from_strings,
    is_var,
)


class TestTerms:
    def test_var_identity(self):
        assert Var("x") == Var("x") and Var("x") != Var("y")

    def test_is_var(self):
        assert is_var(Var("x"))
        assert not is_var("x") and not is_var(3)


class TestAtom:
    def test_variables(self):
        atom = Atom("r", (Var("x"), 5, Var("y")))
        assert atom.variables() == (Var("x"), Var("y"))

    def test_substitute(self):
        atom = Atom("r", (Var("x"), Var("y")))
        out = atom.substitute({Var("x"): 7})
        assert out == Atom("r", (7, Var("y")))


class TestCQ:
    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError):
            CQ((Var("z"),), (Atom("r", (Var("x"),)),))

    def test_repeated_head_vars_allowed(self):
        cq = CQ((Var("x"), Var("x")), (Atom("r", (Var("x"),)),))
        assert cq.arity == 2

    def test_variable_partition(self):
        cq = cq_from_strings("x", ["r(x,y)", "s(y,z)"])
        assert cq.variables() == {Var("x"), Var("y"), Var("z")}
        assert cq.existential_variables() == {Var("y"), Var("z")}

    def test_substitute_protects_head(self):
        cq = cq_from_strings("x", ["r(x,y)"])
        with pytest.raises(ValueError):
            cq.substitute({Var("x"): 3})

    def test_rename_apart(self):
        cq = cq_from_strings("x", ["r(x,y)"])
        renamed = cq.rename_apart([Var("y")])
        assert Var("y") not in renamed.variables()
        assert renamed.head_vars == cq.head_vars

    def test_canonical_instance_freezes_variables(self):
        cq = cq_from_strings("x", ["r(x,y)", "s(y, 3)"])
        instance, head = cq.canonical_instance()
        assert head == (("_frozen", "x"),)
        assert (("_frozen", "x"), ("_frozen", "y")) in instance.tuples("r")
        assert (("_frozen", "y"), 3) in instance.tuples("s")


class TestUCQ:
    def test_arity_must_agree(self):
        a = cq_from_strings("x", ["r(x,y)"])
        b = cq_from_strings("x,y", ["r(x,y)"])
        with pytest.raises(ValueError):
            UCQ((a, b))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UCQ(())

    def test_predicates_union(self):
        a = cq_from_strings("x", ["r(x,y)"])
        b = cq_from_strings("x", ["s(x,y)"])
        assert UCQ((a, b)).predicates() == {"r", "s"}


class TestParsing:
    def test_basic(self):
        cq = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        assert cq.arity == 2
        assert cq.body[0] == Atom("E", (Var("x"), Var("y")))

    def test_constants(self):
        cq = cq_from_strings("x", ["r(x, 5)", "s(x, 'alice')"])
        assert cq.body[0].args[1] == 5
        assert cq.body[1].args[1] == "alice"

    def test_head_must_be_variables(self):
        with pytest.raises(ValueError):
            cq_from_strings("5", ["r(x, 5)"])

    def test_malformed_atom(self):
        with pytest.raises(ValueError):
            cq_from_strings("x", ["r(x"])
