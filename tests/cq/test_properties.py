"""Property-based tests for the CQ layer.

Random CQs are generated structurally (not via hypothesis recursion, to
keep them safe/connected), then hypothesis drives seeds and instances.
Key invariants: Chandra-Merlin agrees with semantic containment on
sampled instances, evaluation is monotone under adding facts, and
minimization preserves equivalence.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.cq.containment import cq_contained
from repro.cq.evaluation import evaluate_cq
from repro.cq.minimization import minimize_cq
from repro.cq.syntax import CQ, Atom, Var
from repro.relational.generators import random_instance
from repro.relational.instance import Instance


def random_cq(rng: random.Random, num_atoms: int, num_vars: int) -> CQ:
    """A random connected-ish binary CQ with head (v0,)."""
    variables = [Var(f"v{i}") for i in range(num_vars)]
    atoms = []
    for index in range(num_atoms):
        # Chain-bias: reuse an existing variable as source to stay connected.
        source = variables[rng.randrange(min(index + 1, num_vars))]
        target = rng.choice(variables)
        atoms.append(Atom("E", (source, target)))
    # Guarantee the head variable occurs.
    atoms.append(Atom("E", (variables[0], rng.choice(variables))))
    return CQ((variables[0],), tuple(atoms))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10**9))
def test_containment_is_reflexive(seed):
    cq = random_cq(random.Random(seed), 3, 3)
    assert cq_contained(cq, cq)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**9))
def test_containment_sound_on_sampled_instances(seed1, seed2):
    """If Q1 ⊑ Q2 is claimed, answers agree on a random instance."""
    rng = random.Random(seed1)
    q1 = random_cq(rng, 3, 3)
    q2 = random_cq(rng, 2, 3)
    db = random_instance({"E": 2}, 5, 10, seed=seed2)
    if cq_contained(q1, q2):
        assert evaluate_cq(q1, db) <= evaluate_cq(q2, db)
    if cq_contained(q2, q1):
        assert evaluate_cq(q2, db) <= evaluate_cq(q1, db)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**9))
def test_evaluation_monotone_under_more_facts(seed1, seed2):
    rng = random.Random(seed1)
    cq = random_cq(rng, 3, 4)
    small = random_instance({"E": 2}, 5, 6, seed=seed2)
    big = small.union(random_instance({"E": 2}, 5, 6, seed=seed2 + 1))
    assert evaluate_cq(cq, small) <= evaluate_cq(cq, big)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9))
def test_minimization_yields_equivalent_subquery(seed):
    cq = random_cq(random.Random(seed), 4, 3)
    core = minimize_cq(cq)
    assert len(core.body) <= len(cq.body)
    assert cq_contained(cq, core) and cq_contained(core, cq)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9))
def test_canonical_instance_satisfies_own_query(seed):
    """Q always answers its own canonical database at the frozen head."""
    from repro.cq.evaluation import satisfies

    cq = random_cq(random.Random(seed), 3, 3)
    instance, head = cq.canonical_instance()
    assert satisfies(cq, instance, head)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**9))
def test_containment_transitive_on_samples(seed1, seed2):
    rng = random.Random(seed1)
    q1 = random_cq(rng, 2, 2)
    q2 = random_cq(rng, 3, 3)
    q3 = random_cq(random.Random(seed2), 2, 3)
    if cq_contained(q1, q2) and cq_contained(q2, q3):
        assert cq_contained(q1, q3)
