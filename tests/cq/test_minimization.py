"""Tests for CQ core computation (minimization)."""

from repro.cq.containment import cq_equivalent
from repro.cq.minimization import is_minimal, minimize_cq
from repro.cq.syntax import cq_from_strings


class TestMinimize:
    def test_redundant_sibling_atom_removed(self):
        redundant = cq_from_strings("x", ["E(x,y)", "E(x,z)"])
        core = minimize_cq(redundant)
        assert len(core.body) == 1
        assert cq_equivalent(core, redundant)

    def test_already_minimal_untouched(self):
        path2 = cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])
        assert minimize_cq(path2) == path2
        assert is_minimal(path2)

    def test_cycle_folds_onto_smaller_cycle(self):
        """A 6-cycle body with a 3-cycle core (classic example)."""
        six = cq_from_strings(
            "",
            ["E(a,b)", "E(b,c)", "E(c,d)", "E(d,e)", "E(e,f)", "E(f,a)",
             "E(a,d)", "E(d,a)"],  # chords making it fold to the 2-cycle
        )
        core = minimize_cq(six)
        assert len(core.body) < len(six.body)
        assert cq_equivalent(core, six)

    def test_head_variables_protected(self):
        """Atoms carrying the only occurrence of a head variable stay."""
        cq = cq_from_strings("x,z", ["E(x,y)", "E(y,z)", "E(x,w)"])
        core = minimize_cq(cq)
        head_vars = set(core.head_vars)
        body_vars = {v for atom in core.body for v in atom.variables()}
        assert head_vars <= body_vars
        assert cq_equivalent(core, cq)

    def test_core_is_unique_in_size(self):
        """Minimizing twice (or from different orders) gives the same size."""
        cq = cq_from_strings("x", ["E(x,y)", "E(x,z)", "E(z,w)", "E(y,u)"])
        once = minimize_cq(cq)
        twice = minimize_cq(once)
        assert len(once.body) == len(twice.body)

    def test_ucq_minimization_prunes_and_preserves(self):
        from repro.cq.minimization import minimize_ucq
        from repro.cq.syntax import UCQ
        from repro.cq.evaluation import evaluate_ucq
        from repro.relational.generators import random_instance

        union = UCQ(
            (
                cq_from_strings("x,y", ["E(x,y)"]),
                cq_from_strings("x,y", ["E(x,y)", "E(x,w)"]),
                cq_from_strings("x,z", ["E(x,y)", "E(y,z)"]),
            )
        )
        pruned = minimize_ucq(union)
        assert len(pruned) == 2
        for seed in range(3):
            db = random_instance({"E": 2}, 5, 9, seed=seed)
            assert evaluate_ucq(union, db) == evaluate_ucq(pruned, db)

    def test_ucq_minimization_keeps_one_of_equivalent_pair(self):
        from repro.cq.minimization import minimize_ucq
        from repro.cq.syntax import UCQ

        union = UCQ(
            (
                cq_from_strings("x", ["E(x,y)"]),
                cq_from_strings("x", ["E(x,z)"]),
            )
        )
        assert len(minimize_ucq(union)) == 1

    def test_minimization_preserves_semantics_on_instances(self):
        from repro.cq.evaluation import evaluate_cq
        from repro.relational.generators import random_instance

        cq = cq_from_strings("x", ["E(x,y)", "E(x,z)", "E(z,u)"])
        core = minimize_cq(cq)
        for seed in range(4):
            db = random_instance({"E": 2}, 5, 10, seed=seed)
            assert evaluate_cq(cq, db) == evaluate_cq(core, db)
