"""Tests for homomorphism search."""

from repro.cq.homomorphism import (
    cq_homomorphism,
    has_homomorphism,
    homomorphism_to_instance,
)
from repro.cq.syntax import Var, cq_from_strings
from repro.relational.instance import Instance


class TestHomomorphismToInstance:
    def test_finds_mapping(self):
        cq = cq_from_strings("x", ["E(x,y)", "E(y,z)"])
        db = Instance.from_facts([("E", (1, 2)), ("E", (2, 3))])
        mapping = homomorphism_to_instance(cq, db, (1,))
        assert mapping is not None
        assert mapping[Var("x")] == 1
        assert mapping[Var("y")] == 2
        assert mapping[Var("z")] == 3

    def test_none_when_head_image_impossible(self):
        cq = cq_from_strings("x", ["E(x,y)"])
        db = Instance.from_facts([("E", (1, 2))])
        assert homomorphism_to_instance(cq, db, (2,)) is None

    def test_arity_mismatch(self):
        cq = cq_from_strings("x", ["E(x,y)"])
        db = Instance.from_facts([("E", (1, 2))])
        assert homomorphism_to_instance(cq, db, (1, 2)) is None


class TestCQHomomorphism:
    def test_hom_direction_is_contravariant(self):
        """hom: big-query -> small-query canonical db witnesses small ⊑ big."""
        small = cq_from_strings("x", ["E(x,y)", "E(y,z)"])
        big = cq_from_strings("x", ["E(x,y)"])
        # big maps into small's canonical db (containment small ⊑ big).
        assert cq_homomorphism(big, small) is not None
        # small does not map into big's canonical db.
        assert cq_homomorphism(small, big) is None

    def test_mapping_hits_head(self):
        source = cq_from_strings("x", ["E(x,y)"])
        target = cq_from_strings("x", ["E(x,y)", "E(y,x)"])
        mapping = cq_homomorphism(source, target)
        assert mapping is not None
        assert mapping[Var("x")] == ("_frozen", "x")

    def test_boolean_fast_path_agrees(self):
        pairs = [
            (cq_from_strings("x", ["E(x,y)"]), cq_from_strings("x", ["E(x,x)"])),
            (cq_from_strings("x", ["E(x,x)"]), cq_from_strings("x", ["E(x,y)"])),
            (
                cq_from_strings("x", ["E(x,y)", "F(y,z)"]),
                cq_from_strings("x", ["E(x,y)", "F(y,y)"]),
            ),
        ]
        for source, target in pairs:
            assert has_homomorphism(source, target) == (
                cq_homomorphism(source, target) is not None
            )
