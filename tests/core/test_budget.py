"""Tests for the unified resource governor (repro.budget) and its
integration through the engine: graceful degradation, legacy kwarg
aliases, option validation, bound-aware caching, staged escalation, and
deadline compliance on a complement blow-up pair.
"""

from __future__ import annotations

import time

import pytest

from repro.budget import (
    UNLIMITED,
    Budget,
    BudgetExhausted,
    as_budget,
    bounded_result,
)
from repro.cache import cache_stats, clear_caches
from repro.core.engine import check_containment, check_equivalence
from repro.cq.syntax import cq_from_strings
from repro.crpq.containment import uc2rpq_contained
from repro.crpq.syntax import paper_example_1
from repro.datalog.syntax import transitive_closure_program
from repro.report import EquivalenceResult, Verdict
from repro.rpq.containment import two_rpq_contained, two_rpq_equivalent
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import TransitiveClosure, edge


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches(reset_stats=True)
    yield
    clear_caches(reset_stats=True)


class TestBudgetSpec:
    def test_null_budget(self):
        assert UNLIMITED.is_null
        assert not Budget(max_configs=10).is_null
        assert not Budget(deadline_ms=5).is_null
        assert not Budget(escalate=True).is_null

    def test_budget_is_hashable_and_cacheable(self):
        assert hash(Budget(deadline_ms=10)) == hash(Budget(deadline_ms=10))
        assert Budget(max_configs=5) != Budget(max_configs=6)

    def test_merged_keeps_explicit_fields(self):
        merged = Budget(max_configs=7).merged(max_configs=100, max_expansions=3)
        assert merged.max_configs == 7
        assert merged.max_expansions == 3

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            Budget().merged(max_widgets=1)

    def test_as_budget_legacy_aliases(self):
        assert as_budget(None) is UNLIMITED
        assert as_budget(None, max_configs=4).max_configs == 4
        eff = as_budget(Budget(max_configs=9), max_configs=4, max_states=2)
        assert eff.max_configs == 9  # explicit Budget field wins
        assert eff.max_states == 2  # unset field filled by legacy kwarg

    def test_auto_budget_escalates_with_deadline(self):
        auto = Budget.auto()
        assert auto.escalate and auto.deadline_ms is not None

    def test_limit_lookup(self):
        budget = Budget(deadline_ms=12.5, max_expansions=3)
        assert budget.limit("deadline") == 12.5
        assert budget.limit("expansions") == 3
        assert budget.limit("configs") is None


class TestBudgetMeter:
    def test_charge_raises_past_limit_with_accounting(self):
        meter = Budget(max_configs=3).start()
        meter.charge("configs", 3)
        with pytest.raises(BudgetExhausted) as info:
            meter.charge("configs")
        assert info.value.resource == "configs"
        assert info.value.spent == 4 and info.value.limit == 3

    def test_note_never_raises(self):
        meter = Budget(max_expansions=1).start()
        meter.note("expansions", 100)
        assert meter.spend()["expansions"] == 100

    def test_deadline_check(self):
        meter = Budget(deadline_ms=0.0).start()
        time.sleep(0.002)
        with pytest.raises(BudgetExhausted) as info:
            meter.check_deadline()
        assert info.value.resource == "deadline"

    def test_spend_snapshot_has_elapsed(self):
        meter = Budget(max_configs=10).start()
        meter.charge("configs", 2)
        snapshot = meter.spend()
        assert snapshot["configs"] == 2 and "elapsed_ms" in snapshot


class TestBoundedResult:
    def test_counter_exhaustion_is_bounded_verdict(self):
        exc = BudgetExhausted(resource="configs", spent=11, limit=10)
        result = bounded_result("m", exc)
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND and result.bound == 10
        assert result.details["budget"]["exhausted"] == "configs"

    def test_deadline_exhaustion_is_inconclusive(self):
        exc = BudgetExhausted(resource="deadline", spent=50.0, limit=40.0)
        result = bounded_result("m", exc)
        assert result.verdict is Verdict.INCONCLUSIVE
        assert not result.holds  # falsy: wall clock bounds nothing structural
        assert not result.is_exact


class TestSearchBudgetNoLongerLeaks:
    """Satellite 1: max_configs used to raise SearchBudgetExceeded out of
    two_rpq_contained / check_containment; it must degrade instead."""

    @pytest.mark.parametrize("method", ["shepherdson", "lemma4-onthefly"])
    def test_tiny_max_configs_returns_bounded_verdict(self, method):
        result = two_rpq_contained(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), method=method, max_configs=1
        )
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND
        assert result.details["budget"]["exhausted"] == "configs"
        assert result.details["budget"]["spend"]

    def test_materialized_state_budget_degrades_too(self):
        result = two_rpq_contained(
            TwoRPQ.parse("p"),
            TwoRPQ.parse("p p- p"),
            method="lemma4-materialized",
            max_configs=1,
        )
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND
        assert result.details["budget"]["exhausted"] in ("states", "configs")

    def test_engine_route_never_raises(self):
        result = check_containment(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), max_configs=1
        )
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND

    def test_direct_kernel_callers_keep_the_exception(self):
        from repro.automata.onthefly import SearchBudgetExceeded, find_accepted_word

        nfa = RPQ.parse("a a a").nfa
        with pytest.raises(SearchBudgetExceeded):
            find_accepted_word([nfa], ("a",), max_configs=1)
        assert issubclass(SearchBudgetExceeded, BudgetExhausted)


class TestDeadlineNeverRaises:
    """A deadline budget must produce a structured verdict for every
    dispatch class, never an exception."""

    @pytest.fixture
    def tight(self):
        return Budget(deadline_ms=200.0)

    def test_rpq(self, tight):
        assert check_containment(RPQ.parse("a a"), RPQ.parse("a+"), budget=tight)

    def test_two_rpq(self, tight):
        result = check_containment(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), budget=tight
        )
        assert result.verdict in (Verdict.HOLDS, Verdict.INCONCLUSIVE)

    def test_uc2rpq(self, tight):
        triangle, union = paper_example_1()
        result = check_containment(triangle, union, budget=tight)
        assert result.verdict is not Verdict.REFUTED

    def test_rq(self, tight):
        result = check_containment(
            edge("e", "x", "y"), TransitiveClosure(edge("e", "x", "y")), budget=tight
        )
        assert result.verdict in (Verdict.HOLDS, Verdict.INCONCLUSIVE)

    def test_cq(self, tight):
        small = cq_from_strings("x", ["e(x,y)", "e(y,z)"])
        big = cq_from_strings("x", ["e(x,y)"])
        assert check_containment(small, big, budget=tight).holds

    def test_datalog(self, tight):
        tc = transitive_closure_program("e", "tc")
        result = check_containment(tc, tc, max_expansions=50, budget=tight)
        assert result.verdict in (
            Verdict.HOLDS_UP_TO_BOUND,
            Verdict.INCONCLUSIVE,
        )

    def test_grq(self, tight):
        left = transitive_closure_program("edge", "tc")
        right = transitive_closure_program("edge", "tc", left_linear=False)
        result = check_containment(left, right, max_expansions=25, budget=tight)
        assert result.verdict is not Verdict.REFUTED

    def test_cross_tower(self, tight):
        tc = transitive_closure_program("e", "tc")
        result = check_containment(TwoRPQ.parse("e e"), tc, budget=tight)
        assert result.verdict in (Verdict.HOLDS, Verdict.INCONCLUSIVE)


class TestOptionValidation:
    """Satellite 3: unknown options are a TypeError at the boundary;
    valid-but-ignored options are recorded, not silently dropped."""

    def test_unknown_option_raises(self):
        with pytest.raises(TypeError, match="max_expnasions"):
            check_containment(
                RPQ.parse("a"), RPQ.parse("a|b"), max_expnasions=5
            )

    def test_unknown_budget_type_raises(self):
        with pytest.raises(TypeError, match="budget"):
            check_containment(RPQ.parse("a"), RPQ.parse("a|b"), budget=42)

    def test_ignored_options_are_recorded(self):
        # max_total_length belongs to the UC2RPQ procedure; an RPQ pair
        # dispatches past it.
        result = check_containment(
            RPQ.parse("a"), RPQ.parse("a|b"), max_total_length=3
        )
        assert result.details["ignored_options"] == ("max_total_length",)

    def test_applicable_options_are_not_recorded_as_ignored(self):
        result = check_containment(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), method="shepherdson"
        )
        assert "ignored_options" not in result.details


class TestBoundAwareCache:
    def test_small_budget_then_large_budget_reaches_exact(self):
        q1, q2 = TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")
        first = check_containment(q1, q2, max_configs=1)
        assert first.verdict is Verdict.HOLDS_UP_TO_BOUND
        second = check_containment(q1, q2, max_configs=10_000)
        assert second.verdict is Verdict.HOLDS
        assert second.details["cache"] == "miss"  # not shadowed by the bounded entry

    def test_exact_result_serves_any_budget(self):
        q1, q2 = TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")
        exact = check_containment(q1, q2)
        assert exact.verdict is Verdict.HOLDS
        replay = check_containment(q1, q2, max_configs=1)
        assert replay.verdict is Verdict.HOLDS
        assert replay.details["cache"] == "hit"

    def test_same_bounded_budget_is_still_cached(self):
        q1, q2 = TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")
        check_containment(q1, q2, max_configs=1)
        repeat = check_containment(q1, q2, max_configs=1)
        assert repeat.verdict is Verdict.HOLDS_UP_TO_BOUND
        assert repeat.details["cache"] == "hit"

    def test_deadline_results_are_not_cached(self):
        q1, q2 = TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")
        budget = Budget(deadline_ms=10_000.0)
        first = check_containment(q1, q2, budget=budget)
        assert first.verdict is Verdict.HOLDS
        # Exact verdicts are cached even from deadline runs (they are
        # budget-independent facts); only bounded ones are dropped.
        second = check_containment(q1, q2, budget=budget)
        assert second.details["cache"] == "hit"


class TestEscalation:
    def test_auto_reaches_exact_on_easy_pair(self):
        result = check_containment(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), budget="auto"
        )
        assert result.verdict is Verdict.HOLDS
        assert result.details["escalation"]["rounds"]

    def test_escalation_bounds_grow_geometrically(self):
        tc = transitive_closure_program("e", "tc")
        result = check_containment(
            tc, tc, budget=Budget.auto(deadline_ms=500.0)
        )
        rounds = result.details["escalation"]["rounds"]
        limits = [r["limits"]["expansions"] for r in rounds]
        assert limits == sorted(limits)
        if len(limits) > 1:
            assert limits[1] > limits[0]

    def test_escalation_respects_overall_deadline(self):
        q1 = TwoRPQ.parse("(a|b)* b")
        q2 = TwoRPQ.parse("(a|b)* a (a|b) (a|b) (a|b) (a|b) (a|b) (a|b) a a-")
        start = time.monotonic()
        result = check_containment(
            q1, q2, method="lemma4-materialized", budget=Budget.auto(deadline_ms=500.0)
        )
        elapsed_ms = (time.monotonic() - start) * 1000.0
        assert elapsed_ms <= 500.0 * 1.4  # generous slack for slow CI machines
        assert result.verdict in (Verdict.INCONCLUSIVE, Verdict.HOLDS_UP_TO_BOUND)


class TestEquivalenceStrictness:
    """Satellite 4: exact= distinguishes HOLDS from HOLDS_UP_TO_BOUND."""

    def test_exact_equivalence_of_rpqs(self):
        eq = check_equivalence(RPQ.parse("a a*"), RPQ.parse("a+"), exact=True)
        assert eq and eq.is_exact and eq.bounded_directions == ()

    def test_bounded_direction_fails_exact_but_not_lenient(self):
        tc = transitive_closure_program("e", "tc")
        lenient = check_equivalence(tc, tc, max_expansions=10)
        strict = check_equivalence(tc, tc, max_expansions=10, exact=True)
        assert isinstance(lenient, EquivalenceResult)
        assert lenient  # both directions non-refuted (legacy truthiness)
        assert not strict  # bounded directions do not count as exact
        assert set(strict.bounded_directions) == {"forward", "backward"}

    def test_two_rpq_equivalent_surfaces_directions(self):
        eq = two_rpq_equivalent(
            TwoRPQ.parse("p"),
            TwoRPQ.parse("p p- p"),
            exact=True,
            budget=Budget(max_configs=1),
        )
        assert not eq
        assert "forward" in eq.bounded_directions

    def test_refuted_direction_is_not_reported_as_bounded(self):
        eq = check_equivalence(RPQ.parse("a"), RPQ.parse("a+"))
        assert not eq and eq.bounded_directions == ()


class TestUC2RPQBoundReporting:
    """Satellite 2: the reported bound is the bound actually used."""

    def test_finite_disjunct_bound_raised_to_exhaustion(self):
        triangle, union = paper_example_1()
        result = uc2rpq_contained(triangle, union, max_total_length=1)
        # All atom languages in the pattern are finite: the run is
        # exhaustive and exact despite the tiny requested bound.
        assert result.verdict is Verdict.HOLDS
        assert all(b >= 1 for b in result.details["disjunct_bounds"])

    def test_truncation_by_expansion_cap_is_reported(self):
        triangle, union = paper_example_1()
        result = uc2rpq_contained(union, union, max_total_length=2, max_expansions=1)
        if result.verdict is Verdict.HOLDS_UP_TO_BOUND:
            assert result.details["truncated_by_budget"] is True


class TestDeadlineSmoke:
    def test_pathological_pair_returns_within_deadline(self):
        """A Lemma 4 complement blow-up pair (the E4 family's failure
        mode) must come back within deadline + 10%."""
        q1 = TwoRPQ.parse("(a|b)* b")
        q2 = TwoRPQ.parse("(a|b)* a (a|b) (a|b) (a|b) (a|b) (a|b) (a|b) a a-")
        deadline_ms = 2000.0
        start = time.monotonic()
        result = check_containment(
            q1, q2, method="lemma4-materialized", budget=Budget(deadline_ms=deadline_ms)
        )
        elapsed_ms = (time.monotonic() - start) * 1000.0
        assert result.verdict is Verdict.INCONCLUSIVE
        assert result.details["budget"]["exhausted"] == "deadline"
        assert elapsed_ms <= deadline_ms * 1.1, elapsed_ms
