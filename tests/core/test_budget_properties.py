"""Property-based tests for the resource governor's degradation contract.

Two invariants over random query pairs:

- **Monotonicity**: growing the budget never flips an exact verdict.  A
  REFUTED stays REFUTED (the counterexample does not disappear with more
  resources) and an exact HOLDS stays HOLDS; only bounded verdicts may
  upgrade.
- **Accounting**: every budget-exhausted result carries spend accounting
  in ``details["budget"]`` — which resource ran out and what was spent.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.regex import random_regex
from repro.budget import Budget
from repro.report import Verdict
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import TwoRPQ

ALPHABET = ("a", "b")

BUDGET_LADDER = (
    Budget(max_configs=2),
    Budget(max_configs=64),
    Budget(max_configs=100_000),
)


def queries_from_seed(seed: int) -> tuple[TwoRPQ, TwoRPQ]:
    rng = random.Random(seed)
    return (
        TwoRPQ(random_regex(rng, ALPHABET, 2, allow_inverse=True)),
        TwoRPQ(random_regex(rng, ALPHABET, 2, allow_inverse=True)),
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9))
def test_exact_verdicts_are_monotone_under_growing_budgets(seed):
    q1, q2 = queries_from_seed(seed)
    verdicts = [
        two_rpq_contained(q1, q2, budget=budget).verdict
        for budget in BUDGET_LADDER
    ]
    for small, large in zip(verdicts, verdicts[1:]):
        if small is Verdict.REFUTED:
            assert large is Verdict.REFUTED, (q1, q2, verdicts)
        if small is Verdict.HOLDS:
            assert large is Verdict.HOLDS, (q1, q2, verdicts)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9))
def test_bounded_verdict_agrees_with_the_unbounded_one(seed):
    """A bounded HOLDS_UP_TO_BOUND must never contradict an exact
    REFUTED obtained with a larger budget on a *shorter* witness: the
    bounded search explores a prefix of the same space, so any
    refutation it finds is also found unbudgeted."""
    q1, q2 = queries_from_seed(seed)
    bounded = two_rpq_contained(q1, q2, budget=Budget(max_configs=8))
    exact = two_rpq_contained(q1, q2)
    if bounded.verdict is Verdict.REFUTED:
        assert exact.verdict is Verdict.REFUTED, (q1, q2)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9))
def test_exhausted_results_always_carry_spend_accounting(seed):
    q1, q2 = queries_from_seed(seed)
    result = two_rpq_contained(q1, q2, budget=Budget(max_configs=2))
    if result.verdict in (Verdict.HOLDS_UP_TO_BOUND, Verdict.INCONCLUSIVE):
        accounting = result.details["budget"]
        assert accounting["exhausted"] in (
            "configs",
            "states",
            "deadline",
        )
        assert accounting["spent"] is not None
        assert "elapsed_ms" in accounting["spend"]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**9))
def test_deadline_exhaustion_is_inconclusive_not_bounded(seed):
    """With an already-spent deadline every non-trivial pair must come
    back INCONCLUSIVE (never an exception, never a fake bound)."""
    q1, q2 = queries_from_seed(seed)
    result = two_rpq_contained(q1, q2, budget=Budget(deadline_ms=0.0))
    assert result.verdict in (
        Verdict.HOLDS,
        Verdict.REFUTED,
        Verdict.INCONCLUSIVE,
    )
    if result.verdict is Verdict.INCONCLUSIVE:
        assert result.details["budget"]["exhausted"] == "deadline"
