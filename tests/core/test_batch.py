"""Concurrency regression suite for the batch containment front door.

Three pillars (ISSUE: concurrent batch containment):

- **Differential oracle**: the worker-pool batch must return verdicts
  identical to the sequential loop on a seeded E1-style workload, at
  ``workers ∈ {1, 4}`` on both backends — concurrency may change
  wall-clock, never answers.
- **Trace isolation**: traced concurrent checks never interleave spans
  across workers (each item owns its tracer and yields one well-formed
  single-root tree).
- **Counter exactness**: cache and metrics counters sum correctly
  across threads — N cold checks are N engine.checks and N cache
  misses, no lost increments, and single-flight keeps one miss + one
  compute per cold key no matter how many threads race.

Each test carries a ``pytest.mark.timeout`` so a deadlock shows up as
a failure, not a hung CI job (active when pytest-timeout is installed,
as in the concurrency CI job).
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.regex import parse_regex, random_regex
from repro.budget import Budget
from repro.cache import cache_stats, clear_caches, containment_cache
from repro.core.batch import (
    BatchItem,
    BatchResult,
    ContainmentExecutor,
    check_containment_many,
    sequential_baseline,
)
from repro.obs.metrics import REGISTRY, reset_metrics
from repro.report import ContainmentResult, Verdict
from repro.rpq.rpq import RPQ

pytestmark = pytest.mark.timeout(120)

BACKENDS = ("thread", "process")
WORKER_COUNTS = (1, 4)


@pytest.fixture(autouse=True)
def fresh_state():
    clear_caches(reset_stats=True)
    reset_metrics()
    yield
    clear_caches(reset_stats=True)
    reset_metrics()


def e1_workload(n_random: int = 12) -> list[tuple[RPQ, RPQ]]:
    """A seeded E1-style workload: atom pairs plus random regex pairs.

    The same generator family as the E1 oracle experiment in
    :mod:`repro.obs.perf` — deterministic, so the expected verdicts
    are fixed across runs and machines.
    """
    atoms = ["a", "b", "a b", "a|b", "a*", "a+"]
    alphabet = ("a", "b")
    rng = random.Random(1)
    pairs = [
        (RPQ(parse_regex(x)), RPQ(parse_regex(y))) for x in atoms for y in atoms
    ]
    pairs += [
        (RPQ(random_regex(rng, alphabet, 3)), RPQ(random_regex(rng, alphabet, 3)))
        for _ in range(n_random)
    ]
    return pairs


class TestDifferentialOracle:
    """Batch verdicts are bit-identical to the sequential loop."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_sequential_loop(self, backend, workers):
        pairs = e1_workload()
        expected = [r.verdict for r in sequential_baseline(pairs)]
        clear_caches(reset_stats=True)  # batch recomputes from cold
        batch = check_containment_many(pairs, workers=workers, backend=backend)
        assert [item.result.verdict for item in batch.items] == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_preserves_input_order_and_length(self, backend):
        pairs = e1_workload()
        batch = check_containment_many(pairs, workers=4, backend=backend)
        assert len(batch) == len(pairs)
        assert [item.index for item in batch.items] == list(range(len(pairs)))

    def test_budget_threads_through_to_items(self):
        from repro.datalog.parser import parse_program

        program = parse_program("t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z).")
        pairs = [(program, program)] * 3
        budget = Budget(max_expansions=5)
        batch = check_containment_many(pairs, workers=3, budget=budget)
        for item in batch.items:
            assert item.result.verdict is Verdict.HOLDS_UP_TO_BOUND
            assert item.result.details["budget"]["spend"]["expansions"] == 5

    def test_empty_batch(self):
        batch = check_containment_many([], workers=4)
        assert isinstance(batch, BatchResult)
        assert len(batch) == 0
        assert batch.results == ()


class TestFailureIsolation:
    """One item's exception is that item's ERROR, never a batch abort."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_poisoned_item_is_isolated(self, backend):
        good = (RPQ(parse_regex("a a")), RPQ(parse_regex("a+")))
        poisoned = ("not a query", RPQ(parse_regex("a")))
        batch = check_containment_many(
            [good, poisoned, good], workers=2, backend=backend
        )
        verdicts = [item.result.verdict for item in batch.items]
        assert verdicts == [Verdict.HOLDS, Verdict.ERROR, Verdict.HOLDS]
        error = batch.items[1].result.details["error"]
        assert error["type"] == "TypeError"
        assert "Traceback" in error["traceback"]
        assert batch.errors == (batch.items[1],)

    def test_error_results_are_falsy_and_inexact(self):
        poisoned = [(object(), object())]
        batch = check_containment_many(poisoned, workers=1)
        result = batch.items[0].result
        assert not result.holds
        assert not result.is_exact
        assert result.method == "batch-isolated"
        assert result.details["budget"] == {"spend": {}}

    def test_unknown_option_raises_eagerly(self):
        # A typo is caller error, exactly as in the sequential loop —
        # not something to bury in per-item ERROR results.
        with pytest.raises(TypeError, match="unknown option"):
            check_containment_many(e1_workload()[:2], workers=1, bogus=1)

    def test_bad_backend_and_workers_raise(self):
        with pytest.raises(ValueError, match="backend"):
            check_containment_many([], backend="greenlet")
        with pytest.raises(ValueError, match="workers"):
            check_containment_many([], workers=0)


class TestPoolDeadline:
    """Expired pool deadlines degrade unstarted items to INCONCLUSIVE."""

    def test_tiny_deadline_degrades_tail(self):
        pairs = e1_workload()
        batch = check_containment_many(
            pairs, workers=1, pool_deadline_ms=0.01
        )
        assert len(batch) == len(pairs)
        degraded = [
            item for item in batch.items
            if item.result.method == "batch-pool-deadline"
        ]
        assert degraded, "a 0.01ms deadline must starve most of the batch"
        for item in degraded:
            accounting = item.result.details["budget"]
            assert item.result.verdict is Verdict.INCONCLUSIVE
            assert accounting["exhausted"] == "pool_deadline"
            assert accounting["limit"] == 0.01
            assert accounting["spent"] >= 0
            assert item.wall_ms == 0.0
            assert item.worker is None

    def test_generous_deadline_degrades_nothing(self):
        pairs = e1_workload()[:6]
        batch = check_containment_many(
            pairs, workers=4, pool_deadline_ms=120_000.0
        )
        assert all(
            item.result.method != "batch-pool-deadline" for item in batch.items
        )


class TestKernelOption:
    """The ``kernel`` option threads through the pool to every item."""

    def test_kernels_agree_on_batch_verdicts(self):
        pairs = e1_workload()
        verdicts = {}
        for kernel in ("subset", "antichain"):
            clear_caches(reset_stats=True)
            batch = check_containment_many(pairs, workers=4, kernel=kernel)
            verdicts[kernel] = [item.result.verdict for item in batch.items]
            for item in batch.items:
                info = item.result.details["kernel"]
                assert info["requested"] == kernel
                assert info["selected"] == kernel  # RPQ pairs all search
        assert verdicts["subset"] == verdicts["antichain"]

    def test_to_dict_carries_kernel_details(self):
        batch = check_containment_many(
            e1_workload()[:3], workers=1, kernel="antichain"
        )
        for item in batch.items:
            payload = item.to_dict()
            assert payload["kernel"]["requested"] == "antichain"

    def test_unknown_kernel_raises_in_caller_frame(self):
        # A bad kernel value is caller error like any unknown option —
        # rejected before the pool spins up, not buried per-item.
        with pytest.raises(ValueError, match="unknown kernel"):
            check_containment_many(e1_workload()[:2], workers=1, kernel="bogus")

    def test_error_items_carry_requested_kernel(self):
        poisoned = [("not a query", RPQ(parse_regex("a")))]
        batch = check_containment_many(poisoned, workers=1, kernel="subset")
        details = batch.items[0].result.details
        assert batch.items[0].result.verdict is Verdict.ERROR
        assert details["kernel"] == {"requested": "subset", "selected": None}

    def test_pool_deadline_items_carry_requested_kernel(self):
        batch = check_containment_many(
            e1_workload(), workers=1, pool_deadline_ms=0.01, kernel="antichain"
        )
        degraded = [
            item for item in batch.items
            if item.result.method == "batch-pool-deadline"
        ]
        assert degraded
        for item in degraded:
            assert item.result.details["kernel"] == {
                "requested": "antichain",
                "selected": None,
            }


class TestTraceIsolation:
    """Per-item tracers: concurrent span trees never interleave."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_each_item_gets_one_single_root_tree(self, backend):
        pairs = e1_workload()[:8]
        batch = check_containment_many(
            pairs, workers=4, backend=backend, trace=True
        )
        for item in batch.items:
            trace = dict(item.result.details)["trace"]
            # One root named for the engine's own span: a shared tracer
            # would have accumulated sibling roots / foreign children.
            assert trace["name"] == "check-containment"
            for child in trace["children"]:
                assert child["start_ms"] >= 0
                assert child["duration_ms"] <= trace["duration_ms"] + 1.0

    def test_trace_spans_cover_only_own_check(self):
        # Cold distinct pairs, 4 workers: every trace must contain at
        # most one cache event (its own), proving no cross-talk.
        pairs = e1_workload()[:8]
        batch = check_containment_many(pairs, workers=4, trace=True)
        for item in batch.items:
            trace = dict(item.result.details)["trace"]
            events = [
                event
                for event in trace.get("events", [])
                if event["name"] == "cache"
            ]
            assert len(events) == 1


class TestCounterExactness:
    """Metrics and cache stats sum exactly across worker threads."""

    def test_engine_checks_counter_sums(self):
        pairs = e1_workload()
        check_containment_many(pairs, workers=4, backend="thread")
        assert REGISTRY.counter("engine.checks").value == len(pairs)
        assert REGISTRY.counter("batch.items").value == len(pairs)
        assert REGISTRY.histogram("batch.wall_ms").count == 1

    def test_cache_stats_sum_over_cold_distinct_pairs(self):
        pairs = e1_workload()
        # Dedupe: distinct pairs only, so the expected miss count is exact.
        seen, distinct = set(), []
        for q1, q2 in pairs:
            key = (repr(q1), repr(q2))
            if key not in seen:
                seen.add(key)
                distinct.append((q1, q2))
        check_containment_many(distinct, workers=4, backend="thread")
        stats = cache_stats()["containment"]
        assert stats["hits"] + stats["misses"] == len(distinct)
        assert stats["misses"] == len(distinct)

    def test_repeated_pair_hits_cache_across_workers(self):
        pair = (RPQ(parse_regex("a a")), RPQ(parse_regex("a+")))
        batch = check_containment_many([pair] * 12, workers=4, backend="thread")
        outcomes = [dict(item.result.details)["cache"] for item in batch.items]
        assert all(outcome in ("hit", "miss") for outcome in outcomes)
        # All verdicts identical regardless of who computed first.
        assert len({item.result.verdict for item in batch.items}) == 1
        stats = containment_cache.stats
        assert stats.hits + stats.misses == 12

    def test_worker_utilization_gauge_in_unit_range(self):
        check_containment_many(e1_workload()[:6], workers=2)
        utilization = REGISTRY.gauge("batch.worker_utilization").value
        assert 0.0 <= utilization <= 1.0


class TestSingleFlight:
    """Concurrent misses on one cold key compute once (tentpole fix
    folded back into the sequential path — see repro.cache)."""

    def test_one_miss_one_compute_under_concurrent_callers(self):
        from repro.cache import LRUCache

        cache = LRUCache("test-single-flight", maxsize=8)
        computes = []
        barrier = threading.Barrier(8)
        release = threading.Event()

        def compute():
            computes.append(threading.get_ident())
            release.wait(timeout=30)
            return "value"

        def caller():
            barrier.wait(timeout=30)
            return cache.get_or_compute("cold-key", compute)

        threads = [threading.Thread(target=caller) for _ in range(7)]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=30)  # all callers racing on the same key
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        # Straggler call after the flight resolves: a plain hit.
        assert cache.get_or_compute("cold-key", compute) == "value"
        assert len(computes) == 1, "single-flight: compute ran once"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 7

    def test_leader_failure_propagates_to_followers_and_caches_nothing(self):
        from repro.cache import LRUCache

        cache = LRUCache("test-single-flight-error", maxsize=8)
        barrier = threading.Barrier(4)
        release = threading.Event()
        failures = []

        def compute():
            # Hold the flight open until main releases it, so the other
            # callers are provably enqueued as followers when it fails.
            release.wait(timeout=30)
            raise RuntimeError("compute exploded")

        def caller():
            barrier.wait(timeout=30)
            try:
                cache.get_or_compute("bad-key", compute)
            except RuntimeError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=caller) for _ in range(3)]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=30)  # all callers racing on the same key
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        # Every caller sees the leader's exception; errors are not cached.
        assert failures == ["compute exploded"] * 3
        assert len(cache) == 0


class TestUtilizationAccounting:
    """worker_utilization / wall_ms stay finite and in [0, 1] for every
    batch shape, including the zero-item and instant degenerate cases
    that used to divide by zero (satellite fix)."""

    def make_batch(self, item_walls, wall_ms, workers):
        items = tuple(
            BatchItem(i, ContainmentResult(Verdict.HOLDS, "stub"), w, "w")
            for i, w in enumerate(item_walls)
        )
        return BatchResult(items, wall_ms, workers, "thread")

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(
        item_walls=st.lists(
            st.floats(min_value=-1.0, max_value=1e5, allow_nan=False),
            max_size=16,
        ),
        wall_ms=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        workers=st.integers(min_value=1, max_value=32),
    )
    def test_always_finite_and_clamped(self, item_walls, wall_ms, workers):
        batch = self.make_batch(item_walls, wall_ms, workers)
        utilization = batch.worker_utilization
        assert 0.0 <= utilization <= 1.0
        assert utilization == batch.utilization  # historical alias
        batch.describe()  # formats without raising for every shape

    def test_zero_item_batch_reports_zero(self):
        batch = self.make_batch([], 0.0, 4)
        assert batch.worker_utilization == 0.0
        assert "0 items" in batch.describe()

    def test_instant_batch_reports_zero_not_nan(self):
        # Coarse clocks can measure wall_ms == 0 even when items ran.
        batch = self.make_batch([1.0, 2.0], 0.0, 2)
        assert batch.worker_utilization == 0.0

    def test_jitter_above_one_clamps(self):
        # Summed per-item time above workers*wall (measurement skew).
        batch = self.make_batch([100.0, 100.0], 10.0, 2)
        assert batch.worker_utilization == 1.0

    def test_empty_batch_records_wall_and_gauges(self):
        batch = check_containment_many([], workers=3)
        assert len(batch) == 0
        assert batch.wall_ms >= 0.0
        assert batch.worker_utilization == 0.0
        # The common exit path still runs: pool facts + metrics land.
        assert (batch.workers, batch.backend) == (3, "thread")
        assert REGISTRY.gauge("batch.workers").value == 3
        assert 0.0 <= REGISTRY.gauge("batch.worker_utilization").value <= 1.0


class TestContainmentExecutor:
    """The persistent single-pair submission path under the serve layer."""

    def pair(self, left="a a", right="a+"):
        return RPQ(parse_regex(left)), RPQ(parse_regex(right))

    def test_submit_resolves_to_batch_item(self):
        with ContainmentExecutor(workers=2) as executor:
            q1, q2 = self.pair()
            item = executor.submit(q1, q2, index=7).result(timeout=60)
            assert item.index == 7
            assert item.result.verdict is Verdict.HOLDS
            assert item.wall_ms >= 0.0
            assert item.worker and "batch-worker" in item.worker

    def test_matches_sequential_baseline_across_submissions(self):
        pairs = e1_workload()[:10]
        expected = [r.verdict for r in sequential_baseline(pairs)]
        with ContainmentExecutor(workers=4) as executor:
            futures = [
                executor.submit(q1, q2, index=i)
                for i, (q1, q2) in enumerate(pairs)
            ]
            verdicts = [f.result(timeout=120).result.verdict for f in futures]
        assert verdicts == expected

    def test_worker_exception_is_isolated(self):
        with ContainmentExecutor(workers=1) as executor:
            item = executor.submit(object(), object(), index=3).result(timeout=60)
            assert item.result.verdict is Verdict.ERROR
            assert item.result.details["error"]["index"] == 3

    def test_submit_after_shutdown_is_an_error_item_not_a_raise(self):
        executor = ContainmentExecutor(workers=1)
        executor.shutdown(wait=True)
        q1, q2 = self.pair()
        item = executor.submit(q1, q2, index=5).result(timeout=60)
        assert item.result.verdict is Verdict.ERROR
        assert item.index == 5

    def test_expired_start_deadline_sheds_instead_of_running(self):
        import time as _time

        with ContainmentExecutor(workers=1) as executor:
            q1, q2 = self.pair()
            item = executor.submit(
                q1, q2, start_deadline=_time.monotonic() - 1.0
            ).result(timeout=60)
            assert item.result.verdict is Verdict.INCONCLUSIVE
            assert item.result.method == "start-deadline"
            assert item.result.details["budget"]["exhausted"] == "start_deadline"
            assert item.worker is None and item.wall_ms == 0.0

    def test_expired_result_factory_overrides_default(self):
        import time as _time

        marker = ContainmentResult(
            Verdict.INCONCLUSIVE, "custom-shed", details={"admission": {}}
        )
        with ContainmentExecutor(workers=1) as executor:
            q1, q2 = self.pair()
            item = executor.submit(
                q1,
                q2,
                start_deadline=_time.monotonic() - 1.0,
                expired_result=lambda late_ms: marker,
            ).result(timeout=60)
            assert item.result is marker

    def test_per_call_options_override_defaults(self):
        with ContainmentExecutor(workers=1, kernel="antichain") as executor:
            q1, q2 = self.pair()
            item = executor.submit(
                q1, q2, options={"kernel": "subset"}
            ).result(timeout=60)
            assert item.result.details["kernel"]["requested"] == "subset"
            # And the executor default still applies when not overridden.
            item = executor.submit(q1, q2).result(timeout=60)
            assert item.result.details["kernel"]["requested"] == "antichain"

    def test_bad_per_call_option_raises_eagerly(self):
        with ContainmentExecutor(workers=1) as executor:
            q1, q2 = self.pair()
            with pytest.raises(TypeError):
                executor.submit(q1, q2, options={"no_such_option": 1})
            with pytest.raises(ValueError):
                executor.submit(q1, q2, options={"kernel": "warp"})

    def test_constructor_validates_eagerly(self):
        with pytest.raises(ValueError):
            ContainmentExecutor(workers=0)
        with pytest.raises(ValueError):
            ContainmentExecutor(backend="fiber")
        with pytest.raises(TypeError):
            ContainmentExecutor(bogus_option=1)

    def test_budget_deadline_bounds_submission(self):
        q1, q2 = self.pair("(a|b)*", "(a b|b a)*")
        with ContainmentExecutor(workers=1) as executor:
            item = executor.submit(
                q1, q2, budget=Budget(deadline_ms=1e9)
            ).result(timeout=120)
            assert item.result.verdict in (
                Verdict.HOLDS,
                Verdict.REFUTED,
                Verdict.INCONCLUSIVE,
            )


def _trace_shape(trace: dict) -> dict:
    """A trace tree reduced to its structure: keys, event names, children.

    Timings differ across runs; the *shape* of the span tree must not
    differ across backends for the same pair under the same cache state.
    """
    return {
        "name": trace.get("name"),
        "keys": sorted(trace),
        "events": [event["name"] for event in trace.get("events", [])],
        "children": [_trace_shape(child) for child in trace.get("children", [])],
    }


class TestProcessBackend:
    """The process pool as a first-class substrate: picklable shed
    hooks, trace round-trips, crash isolation, telemetry repatriation."""

    def pair(self, left="a a", right="a+"):
        return RPQ(parse_regex(left)), RPQ(parse_regex(right))

    def test_expired_start_deadline_sheds_on_process_backend(self):
        # Regression: the default expired_result path used to be a
        # thread-only contract; a queue-expired item on the process
        # backend must degrade identically, not crash on pickling.
        import time as _time

        with ContainmentExecutor(workers=1, backend="process") as executor:
            q1, q2 = self.pair()
            item = executor.submit(
                q1, q2, start_deadline=_time.monotonic() - 1.0
            ).result(timeout=60)
            assert item.result.verdict is Verdict.INCONCLUSIVE
            assert item.result.method == "start-deadline"
            assert item.result.details["budget"]["exhausted"] == "start_deadline"
            assert item.worker is None and item.wall_ms == 0.0

    def test_deadline_shed_spec_pickles_across_the_pool_boundary(self):
        # The serving layer's shed hook is a frozen dataclass precisely
        # so it crosses the process boundary; assert the worker-side
        # invocation produces the serve-admission degraded shape.
        import time as _time

        from repro.serve.admission import DeadlineShedSpec

        spec = DeadlineShedSpec(
            queue_depth=3, queue_limit=64, deadline_ms=5.0, kernel="auto"
        )
        with ContainmentExecutor(workers=1, backend="process") as executor:
            q1, q2 = self.pair()
            item = executor.submit(
                q1,
                q2,
                start_deadline=_time.monotonic() - 1.0,
                expired_result=spec,
            ).result(timeout=60)
            assert item.result.method == "serve-admission"
            admission = item.result.details["admission"]
            assert admission["shed"] == "deadline"
            assert admission["queue_depth"] == 3
            assert item.result.details["budget"]["exhausted"] == "admission:deadline"

    def test_trace_structure_identical_across_backends(self):
        # Same pair, same cache state (cold both times — under fork a
        # worker inherits the parent's caches, so the parent must be
        # cleared before each arm or one arm traces a hit and the other
        # a miss), so the span tree's *structure* must match exactly.
        pair = self.pair("a b a", "(a|b)+")
        shapes = {}
        for backend in BACKENDS:
            clear_caches()
            batch = check_containment_many(
                [pair], workers=1, backend=backend, trace=True
            )
            trace = dict(batch.items[0].result.details)["trace"]
            assert trace["name"] == "check-containment"
            shapes[backend] = _trace_shape(trace)
        assert shapes["thread"] == shapes["process"]

    def test_worker_crash_is_isolated_and_pool_recovers(self):
        from repro.obs.perf import _PoisonPill

        pairs = e1_workload()[:4]
        expected = [r.verdict for r in sequential_baseline(pairs)]
        crash_pairs = list(pairs)
        crash_pairs.insert(2, (_PoisonPill(), _PoisonPill()))
        clear_caches()
        batch = check_containment_many(crash_pairs, workers=2, backend="process")

        poison = batch.items[2].result
        assert poison.verdict is Verdict.ERROR
        assert "error" in poison.details
        assert poison.details["error"]["index"] == 2
        survivors = [
            item.result.verdict
            for index, item in enumerate(batch.items)
            if index != 2
        ]
        assert survivors == expected
        # The rebuild was counted — operators can see crashes happened.
        assert REGISTRY.counter("batch.pool_rebuilds").value >= 1

    def test_executor_accepts_submissions_after_a_crash(self):
        from repro.obs.perf import _PoisonPill

        with ContainmentExecutor(workers=1, backend="process") as executor:
            crashed = executor.submit(
                _PoisonPill(), _PoisonPill(), index=0
            ).result(timeout=60)
            assert crashed.result.verdict is Verdict.ERROR
            q1, q2 = self.pair()
            after = executor.submit(q1, q2, index=1).result(timeout=60)
            assert after.result.verdict is Verdict.HOLDS

    def test_worker_telemetry_repatriates_exactly(self):
        # Worker processes mutate their own registries; the executor
        # merges each item's delta exactly once, so the parent's
        # counters read as if the work ran in-process.
        pairs = e1_workload()
        seen, distinct = set(), []
        for q1, q2 in pairs:
            key = (repr(q1), repr(q2))
            if key not in seen:
                seen.add(key)
                distinct.append((q1, q2))
        batch = check_containment_many(distinct, workers=2, backend="process")
        assert all(item.telemetry is not None for item in batch.items)
        assert REGISTRY.counter("engine.checks").value == len(distinct)
        assert REGISTRY.histogram("engine.check_ms").count == len(distinct)
        stats = cache_stats()["containment"]
        assert stats["hits"] + stats["misses"] == len(distinct)

    def test_thread_backend_items_carry_no_telemetry_delta(self):
        # Thread workers share the parent registry: repatriating a
        # delta would double-count, so none is collected.
        batch = check_containment_many(
            e1_workload()[:4], workers=2, backend="thread"
        )
        assert all(item.telemetry is None for item in batch.items)
        assert REGISTRY.counter("engine.checks").value == 4
