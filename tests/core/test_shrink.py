"""Tests for counterexample shrinking."""

import pytest

from repro.core.engine import check_containment
from repro.core.shrink import shrink_counterexample
from repro.core.witness import holds_on
from repro.crpq.syntax import paper_example_1
from repro.datalog.syntax import transitive_closure_program
from repro.graphdb.database import GraphDatabase
from repro.report import ContainmentResult, Counterexample, Verdict
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import triangle_plus, triangle_query


def separated(q1, q2, witness):
    return holds_on(q1, witness.database, witness.output) and not holds_on(
        q2, witness.database, witness.output
    )


class TestShrink:
    def test_padded_witness_shrinks(self):
        """A witness with irrelevant extra edges loses them."""
        q1, q2 = RPQ.parse("a"), RPQ.parse("a a")
        bulky = GraphDatabase.from_edges(
            [(0, "a", 1), (5, "a", 6), (6, "b", 7), (9, "a", 9)]
        )
        result = ContainmentResult(
            Verdict.REFUTED, "manual", Counterexample(bulky, (0, 1))
        )
        small = shrink_counterexample(q1, q2, result)
        assert small.database.num_edges == 1
        assert separated(q1, q2, small)

    def test_engine_witnesses_stay_valid(self):
        cases = [
            (TwoRPQ.parse("p p"), TwoRPQ.parse("p p- p")),
            (triangle_plus(), triangle_query()),
        ]
        for q1, q2 in cases:
            result = check_containment(q1, q2, max_expansions=60)
            assert result.verdict is Verdict.REFUTED
            small = shrink_counterexample(q1, q2, result)
            assert separated(q1, q2, small)
            assert small.database.num_edges <= result.counterexample.database.num_edges

    def test_local_minimality(self):
        """Removing any remaining edge destroys the separation."""
        q1, q2 = triangle_plus(), triangle_query()
        result = check_containment(q1, q2, max_expansions=60)
        small = shrink_counterexample(q1, q2, result)
        edges = list(small.database.edges())
        for edge in edges:
            pruned = GraphDatabase.from_edges(
                [e for e in edges if e != edge], nodes=small.database.nodes
            )
            assert not (
                holds_on(q1, pruned, small.output)
                and not holds_on(q2, pruned, small.output)
            ), edge

    def test_relational_witness(self):
        tc = transitive_closure_program("e", "tc")
        from repro.cq.syntax import cq_from_strings

        two_hop = cq_from_strings("x,z", ["e(x,y)", "e(y,z)"])
        result = check_containment(tc, two_hop, max_expansions=20)
        assert result.verdict is Verdict.REFUTED
        small = shrink_counterexample(tc, two_hop, result)
        # The minimal separator is the single edge (tc answers it, the
        # 2-hop CQ does not).
        assert small.database.num_facts == 1

    def test_rejects_positive_results(self):
        result = ContainmentResult(Verdict.HOLDS, "manual")
        with pytest.raises(ValueError):
            shrink_counterexample(RPQ.parse("a"), RPQ.parse("a"), result)

    def test_rejects_bogus_counterexample(self):
        db = GraphDatabase.from_edges([(0, "a", 1)])
        bogus = ContainmentResult(
            Verdict.REFUTED, "manual", Counterexample(db, (0, 1))
        )
        with pytest.raises(ValueError):
            shrink_counterexample(RPQ.parse("a"), RPQ.parse("a|b"), bogus)
