"""Tests for the canonical-form-keyed cache layer (repro.cache).

Covers the LRU mechanics, the engine's containment cache (repeat calls
served from cache with identical results, hit/miss surfaced in
``details["cache"]`` and in :func:`cache_stats`), and the bypass rules
for unhashable options.
"""

from __future__ import annotations

import pytest

from repro.automata.onthefly import SearchStats
from repro.cache import (
    LRUCache,
    cache_stats,
    clear_caches,
    containment_cache,
    determinize_cache,
    query_cache_key,
    use_caching,
)
from repro.core.engine import check_containment
from repro.report import Verdict
from repro.rpq.rpq import RPQ, TwoRPQ


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches(reset_stats=True)
    yield
    clear_caches(reset_stats=True)


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache("test-basic", maxsize=4)
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache("test-lru", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_disabled_cache_stores_and_counts_nothing(self):
        cache = LRUCache("test-disabled", maxsize=4)
        with use_caching(False):
            cache.put("k", 1)
            assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.stats.requests == 0

    def test_get_or_compute_computes_once(self):
        cache = LRUCache("test-compute", maxsize=4)
        calls = []
        compute = lambda: calls.append(1) or "value"  # noqa: E731
        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_clear_empties_and_optionally_resets_stats(self):
        cache = LRUCache("test-clear", maxsize=4)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0 and cache.stats.hits == 1
        cache.clear(reset_stats=True)
        assert cache.stats.hits == 0

    def test_held_stats_handle_survives_clear(self):
        # Regression: clear(reset_stats=True) used to rebind self.stats
        # to a fresh CacheStats, silently orphaning any handle a metrics
        # exporter (or batch worker) grabbed earlier. The contract is now
        # reset-in-place: the held object keeps reporting live counters.
        cache = LRUCache("test-stats-handle", maxsize=4)
        handle = cache.stats
        cache.put("k", 1)
        cache.get("k")
        cache.clear(reset_stats=True)
        assert cache.stats is handle
        assert handle.hits == 0
        cache.put("k", 2)
        cache.get("k")
        assert handle.hits == 1  # live counters, not a stale snapshot

    def test_held_stats_handle_survives_global_clear_caches(self):
        handle = containment_cache.stats
        check_containment(RPQ.parse("a"), RPQ.parse("a|b"))
        assert handle.misses >= 1
        clear_caches(reset_stats=True)
        assert containment_cache.stats is handle
        assert handle.misses == 0 and handle.hits == 0
        check_containment(RPQ.parse("a"), RPQ.parse("a|b"))
        assert handle.misses == 1


class TestQueryCacheKey:
    def test_hashable_queries_key_by_type_and_value(self):
        q = RPQ.parse("a b*")
        assert query_cache_key(q) == query_cache_key(RPQ.parse("a b*"))
        assert query_cache_key(q) != query_cache_key(TwoRPQ.parse("a b*"))

    def test_unhashable_objects_opt_out(self):
        assert query_cache_key({"not": "hashable"}) is None


class TestEngineContainmentCache:
    def test_repeat_check_is_served_from_cache(self):
        q1, q2 = RPQ.parse("a a"), RPQ.parse("a+")
        first = check_containment(q1, q2)
        second = check_containment(q1, q2)
        assert first.details["cache"] == "miss"
        assert second.details["cache"] == "hit"
        assert first.verdict == second.verdict == Verdict.HOLDS
        stats = cache_stats()["containment"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_structurally_equal_queries_share_an_entry(self):
        check_containment(RPQ.parse("a"), RPQ.parse("a|b"))
        repeat = check_containment(RPQ.parse("a"), RPQ.parse("a|b"))
        assert repeat.details["cache"] == "hit"

    def test_cached_and_uncached_results_are_identical(self):
        pairs = [
            (RPQ.parse("a a"), RPQ.parse("a+")),
            (RPQ.parse("a+"), RPQ.parse("a a")),
            (TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")),
            (TwoRPQ.parse("p p- p"), TwoRPQ.parse("p")),
        ]
        for q1, q2 in pairs:
            warm = check_containment(q1, q2)
            cached = check_containment(q1, q2)
            with use_caching(False):
                cold = check_containment(q1, q2)
            assert cached.details["cache"] == "hit"
            assert cold.details["cache"] == "bypass"
            for result in (cached, cold):
                assert result.verdict == warm.verdict
                assert result.method == warm.method
                assert result.counterexample == warm.counterexample

    def test_mutable_stats_option_bypasses_the_cache(self):
        q1, q2 = TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")
        stats = SearchStats()
        result = check_containment(q1, q2, stats=stats)
        assert result.details["cache"] == "bypass"
        assert stats.explored > 0  # the instrumented run actually happened
        snapshot = cache_stats()["containment"]
        assert snapshot["hits"] == 0 and snapshot["misses"] == 0

    def test_distinct_options_get_distinct_entries(self):
        q1, q2 = TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")
        check_containment(q1, q2, method="shepherdson")
        other = check_containment(q1, q2, method="lemma4-onthefly")
        assert other.details["cache"] == "miss"
        assert check_containment(q1, q2, method="shepherdson").details["cache"] == "hit"

    def test_determinize_cache_fills_during_rpq_checks(self):
        check_containment(RPQ.parse("(a|b)* a"), RPQ.parse("(a|b)*"))
        stats = cache_stats()
        assert stats["regex-nfa"]["size"] > 0
        # Lemma 1 now runs on the on-the-fly kernel; determinize still
        # caches when the materializing paths (reduce_nfa) invoke it.
        assert "determinize" in stats
