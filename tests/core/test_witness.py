"""Tests for counterexample replay."""

import pytest

from repro.core.witness import holds_on, verify_counterexample
from repro.cq.syntax import UCQ, cq_from_strings
from repro.crpq.syntax import paper_example_1
from repro.datalog.syntax import transitive_closure_program
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import path_graph
from repro.relational.instance import Instance, graph_to_instance
from repro.report import ContainmentResult, Counterexample, Verdict
from repro.rpq.rpq import TwoRPQ
from repro.rq.syntax import TransitiveClosure, edge


class TestHoldsOn:
    def test_two_rpq_on_graph(self):
        db = path_graph(2, "e")
        assert holds_on(TwoRPQ.parse("e e"), db, (0, 2))
        assert not holds_on(TwoRPQ.parse("e e"), db, (0, 1))

    def test_uc2rpq(self):
        triangle, _ = paper_example_1()
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("a", "r", "c"), ("b", "r", "c")]
        )
        assert holds_on(triangle, db, ("a", "b"))

    def test_rq(self):
        db = path_graph(3, "e")
        assert holds_on(TransitiveClosure(edge("e", "x", "y")), db, (0, 3))

    def test_cq_on_instance(self):
        instance = Instance.from_facts([("e", (1, 2))])
        cq = cq_from_strings("x,y", ["e(x,y)"])
        assert holds_on(cq, instance, (1, 2))
        assert holds_on(UCQ((cq,)), instance, (1, 2))

    def test_datalog(self):
        tc = transitive_closure_program("e", "tc")
        instance = Instance.from_facts([("e", (1, 2)), ("e", (2, 3))])
        assert holds_on(tc, instance, (1, 3))

    def test_database_kind_conversion(self):
        """Graph queries accept instances and vice versa."""
        db = path_graph(2, "e")
        instance = graph_to_instance(db)
        assert holds_on(TwoRPQ.parse("e e"), instance, (0, 2))
        cq = cq_from_strings("x,z", ["e(x,y)", "e(y,z)"])
        assert holds_on(cq, db, (0, 2))

    def test_rejects_non_query(self):
        with pytest.raises(TypeError):
            holds_on("nope", path_graph(1), (0, 1))

    def test_rejects_non_database(self):
        with pytest.raises(TypeError):
            holds_on(TwoRPQ.parse("e"), "nope", (0, 1))


class TestVerifyCounterexample:
    def test_valid_counterexample(self):
        q1, q2 = TwoRPQ.parse("e e"), TwoRPQ.parse("e e e")
        db = path_graph(2, "e")
        result = ContainmentResult(
            Verdict.REFUTED, "manual", Counterexample(db, (0, 2))
        )
        assert verify_counterexample(q1, q2, result)

    def test_invalid_counterexample_detected(self):
        q1, q2 = TwoRPQ.parse("e"), TwoRPQ.parse("e e-e")  # actually contained
        db = path_graph(1, "e")
        bogus = ContainmentResult(
            Verdict.REFUTED, "manual", Counterexample(db, (0, 1))
        )
        assert not verify_counterexample(q1, q2, bogus)

    def test_rejects_non_refuted(self):
        with pytest.raises(ValueError):
            verify_counterexample(
                TwoRPQ.parse("e"),
                TwoRPQ.parse("e"),
                ContainmentResult(Verdict.HOLDS, "manual"),
            )
