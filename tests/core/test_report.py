"""Tests for the shared result types."""

import pytest

from repro.graphdb.database import GraphDatabase
from repro.report import ContainmentResult, Counterexample, Verdict


class TestVerdict:
    def test_truthiness(self):
        assert Verdict.HOLDS
        assert Verdict.HOLDS_UP_TO_BOUND
        assert not Verdict.REFUTED


class TestContainmentResult:
    def test_refuted_requires_counterexample(self):
        with pytest.raises(ValueError):
            ContainmentResult(Verdict.REFUTED, "x")

    def test_holds_forbids_counterexample(self):
        cex = Counterexample(GraphDatabase(), (0, 1))
        with pytest.raises(ValueError):
            ContainmentResult(Verdict.HOLDS, "x", cex)

    def test_bounded_requires_bound(self):
        with pytest.raises(ValueError):
            ContainmentResult(Verdict.HOLDS_UP_TO_BOUND, "x")

    def test_holds_property(self):
        assert ContainmentResult(Verdict.HOLDS, "m").holds
        assert ContainmentResult(Verdict.HOLDS_UP_TO_BOUND, "m", bound=5).holds
        cex = Counterexample(GraphDatabase(), (0,))
        assert not ContainmentResult(Verdict.REFUTED, "m", cex).holds

    def test_to_dict(self):
        result = ContainmentResult(
            Verdict.HOLDS_UP_TO_BOUND, "m", bound=7, details={"n": 3}
        )
        data = result.to_dict()
        assert data == {
            "verdict": "holds_up_to_bound",
            "method": "m",
            "bound": 7,
            "has_counterexample": False,
            "details": {"n": 3},
        }

    def test_describe(self):
        assert "HOLDS" in ContainmentResult(Verdict.HOLDS, "m").describe()
        assert "bound 7" in ContainmentResult(
            Verdict.HOLDS_UP_TO_BOUND, "m", bound=7
        ).describe()
        cex = Counterexample(GraphDatabase(), (0,))
        assert "REFUTED" in ContainmentResult(Verdict.REFUTED, "m", cex).describe()

    def test_shim_module_still_exports(self):
        from repro.core.report import ContainmentResult as Shimmed

        assert Shimmed is ContainmentResult
