"""Tests for query classification and tower promotion."""

import pytest

from repro.core.classify import (
    QueryClass,
    classify,
    describe_tower,
    least_common_class,
    promote,
)
from repro.cq.syntax import UCQ, cq_from_strings
from repro.crpq.syntax import C2RPQ, UC2RPQ, paper_example_1
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import triangle_plus


class TestClassify:
    def test_rpq(self):
        assert classify(RPQ.parse("a+")) is QueryClass.RPQ

    def test_one_way_two_rpq_downgrades_to_rpq(self):
        assert classify(TwoRPQ.parse("a b")) is QueryClass.RPQ

    def test_two_rpq(self):
        assert classify(TwoRPQ.parse("a-")) is QueryClass.TWO_RPQ

    def test_c2rpq_and_uc2rpq(self):
        triangle, union = paper_example_1()
        assert classify(triangle) is QueryClass.UC2RPQ
        assert classify(union) is QueryClass.UC2RPQ

    def test_rq(self):
        assert classify(triangle_plus()) is QueryClass.RQ

    def test_cq_and_ucq(self):
        cq = cq_from_strings("x", ["e(x,y)"])
        assert classify(cq) is QueryClass.CQ
        assert classify(UCQ((cq,))) is QueryClass.UCQ

    def test_nonrecursive_program_is_ucq(self):
        program = parse_program("p(x, z) :- e(x, y), e(y, z).")
        assert classify(program) is QueryClass.UCQ

    def test_tc_program_is_grq(self):
        assert classify(transitive_closure_program()) is QueryClass.GRQ

    def test_general_datalog(self):
        program = parse_program(
            """
            t(x, y) :- e(x, y).
            t(x, z) :- t(x, y), t(y, z).
            """
        )
        assert classify(program) is QueryClass.DATALOG

    def test_non_query_rejected(self):
        with pytest.raises(TypeError):
            classify("not a query")


class TestLeastCommonClass:
    def test_within_graph_tower(self):
        assert (
            least_common_class(QueryClass.RPQ, QueryClass.RQ) is QueryClass.RQ
        )
        assert (
            least_common_class(QueryClass.UC2RPQ, QueryClass.TWO_RPQ)
            is QueryClass.UC2RPQ
        )

    def test_within_relational_tower(self):
        assert (
            least_common_class(QueryClass.CQ, QueryClass.GRQ) is QueryClass.GRQ
        )

    def test_across_towers_is_none(self):
        assert least_common_class(QueryClass.RPQ, QueryClass.CQ) is None


class TestPromote:
    def test_identity(self):
        query = TwoRPQ.parse("a-")
        assert promote(query, QueryClass.TWO_RPQ) is query

    def test_two_rpq_to_uc2rpq(self):
        promoted = promote(TwoRPQ.parse("a+"), QueryClass.UC2RPQ)
        assert isinstance(promoted, UC2RPQ)

    def test_c2rpq_to_rq_semantics(self):
        from repro.crpq.evaluation import evaluate_c2rpq
        from repro.graphdb.generators import random_graph
        from repro.rq.evaluation import evaluate_rq

        triangle, _ = paper_example_1()
        promoted = promote(triangle, QueryClass.RQ)
        db = random_graph(5, 10, ("r",), seed=0)
        assert evaluate_rq(promoted, db) == evaluate_c2rpq(triangle, db)

    def test_rq_to_datalog(self):
        from repro.datalog.syntax import Program

        promoted = promote(triangle_plus(), QueryClass.DATALOG)
        assert isinstance(promoted, Program)

    def test_unsupported_lift(self):
        with pytest.raises(TypeError):
            promote(cq_from_strings("x", ["e(x,y)"]), QueryClass.RQ)


class TestDescribe:
    def test_tower_string(self):
        assert describe_tower(RPQ.parse("a")) == "RPQ (⊂ 2RPQ ⊂ UC2RPQ ⊂ RQ)"
        assert describe_tower(triangle_plus()) == "RQ"
