"""Tests for the unified containment engine."""

import pytest

from repro.budget import Budget
from repro.core.engine import check_containment, check_equivalence
from repro.core.witness import verify_counterexample
from repro.cq.syntax import UCQ, cq_from_strings
from repro.crpq.syntax import C2RPQ, paper_example_1
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program
from repro.report import Verdict
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import TransitiveClosure, edge, triangle_plus


class TestSameClassDispatch:
    def test_rpq_pair(self):
        result = check_containment(RPQ.parse("a a"), RPQ.parse("a+"))
        assert result.method == "rpq-language" and result.holds

    def test_two_rpq_pair(self):
        result = check_containment(TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"))
        assert result.method.startswith("2rpq-fold") and result.holds

    def test_one_way_pair_of_two_rpqs_uses_lemma1(self):
        result = check_containment(TwoRPQ.parse("a"), TwoRPQ.parse("a|b"))
        assert result.method == "rpq-language"

    def test_uc2rpq_pair(self):
        triangle, union = paper_example_1()
        assert check_containment(triangle, union).holds
        assert not check_containment(union, triangle).holds

    def test_rq_pair(self):
        result = check_containment(edge("e", "x", "y"), TransitiveClosure(edge("e", "x", "y")))
        assert result.verdict is Verdict.HOLDS

    def test_cq_pair(self):
        small = cq_from_strings("x", ["e(x,y)", "e(y,z)"])
        big = cq_from_strings("x", ["e(x,y)"])
        assert check_containment(small, big).method == "ucq-homomorphism"
        assert not check_containment(big, small).holds

    def test_grq_pair(self):
        left = transitive_closure_program("edge", "tc")
        right = transitive_closure_program("edge", "tc", left_linear=False)
        result = check_containment(left, right, max_expansions=25)
        assert result.method == "grq-expansion" and result.holds

    def test_general_datalog_pair(self):
        nonlinear = parse_program(
            """
            t(x, y) :- e(x, y).
            t(x, z) :- t(x, y), t(y, z).
            """
        )
        linear = parse_program(
            """
            t(x, y) :- e(x, y).
            t(x, z) :- t(x, y), e(y, z).
            """
        )
        result = check_containment(nonlinear, linear, max_expansions=25)
        assert result.method == "expansion-vs-evaluation" and result.holds


class TestMixedClassDispatch:
    def test_rpq_vs_rq(self):
        result = check_containment(TwoRPQ.parse("r r"), triangle_plus())
        assert result.verdict is Verdict.REFUTED
        assert verify_counterexample(TwoRPQ.parse("r r"), triangle_plus(), result)

    def test_two_rpq_vs_uc2rpq(self):
        triangle, _ = paper_example_1()
        single = TwoRPQ.parse("r")
        # triangle ⊑ r (an r-edge from x to y is part of the pattern).
        assert check_containment(triangle, single).holds

    def test_graph_query_vs_datalog(self):
        tc = transitive_closure_program("e", "tc")
        assert check_containment(TwoRPQ.parse("e e"), tc).holds
        result = check_containment(tc, TwoRPQ.parse("e e"), max_expansions=15)
        assert result.verdict is Verdict.REFUTED

    def test_cq_vs_datalog(self):
        tc = transitive_closure_program("e", "tc")
        path2 = cq_from_strings("x,z", ["e(x,y)", "e(y,z)"])
        assert check_containment(path2, tc).verdict is Verdict.HOLDS
        assert check_containment(tc, path2, max_expansions=15).verdict is Verdict.REFUTED

    def test_ucq_vs_nonrecursive_program(self):
        program = parse_program("p(x, z) :- e(x, y), e(y, z).")
        path2 = cq_from_strings("x,z", ["e(x,y)", "e(y,z)"])
        assert check_containment(UCQ((path2,)), program).holds
        assert check_containment(program, UCQ((path2,))).verdict is Verdict.HOLDS


class TestEquivalence:
    def test_equivalent_rpqs(self):
        assert check_equivalence(RPQ.parse("a a*"), RPQ.parse("a+"))

    def test_inequivalent(self):
        assert not check_equivalence(RPQ.parse("a"), RPQ.parse("a+"))


class TestOptionsForwarding:
    def test_method_option(self):
        result = check_containment(
            TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), method="lemma4-onthefly"
        )
        assert result.method == "2rpq-fold-lemma4-onthefly"

    def test_expansion_budget_option(self):
        tc = transitive_closure_program("e", "tc")
        result = check_containment(tc, tc, max_expansions=5)
        assert result.details["expansions_checked"] <= 5


def _class_matrix():
    """One containment pair per query class, with any options it needs."""
    triangle, union = paper_example_1()
    return {
        "rpq": (RPQ.parse("a a"), RPQ.parse("a+"), {}),
        "2rpq": (TwoRPQ.parse("p"), TwoRPQ.parse("p p- p"), {}),
        "uc2rpq": (triangle, union, {}),
        "rq": (
            edge("e", "x", "y"),
            TransitiveClosure(edge("e", "x", "y")),
            {},
        ),
        "datalog": (
            transitive_closure_program("e", "tc"),
            transitive_closure_program("e", "tc", left_linear=False),
            {"max_expansions": 25},
        ),
    }


class TestDetailsNormalization:
    """Every engine result carries both ``cache`` and ``budget`` keys."""

    @pytest.mark.parametrize("label", list(_class_matrix()))
    @pytest.mark.parametrize(
        "budget", [None, Budget(max_expansions=50)], ids=["no-budget", "budget"]
    )
    def test_details_carry_cache_and_budget(self, label, budget):
        q1, q2, options = _class_matrix()[label]
        result = check_containment(q1, q2, budget=budget, **options)
        assert "cache" in result.details, label
        assert "budget" in result.details, label
        assert "spend" in result.details["budget"], label


class TestKernelDetails:
    """Every engine result reports the requested/selected kernel."""

    #: Classes whose dispatch actually runs a language-inclusion search;
    #: the rest accept the option for uniformity and select nothing.
    SEARCHING = {"rpq", "2rpq"}

    @pytest.mark.parametrize("label", list(_class_matrix()))
    @pytest.mark.parametrize("kernel", ["subset", "antichain", "auto"])
    def test_kernel_details_matrix(self, label, kernel):
        from repro.cache import clear_caches

        clear_caches()
        q1, q2, options = _class_matrix()[label]
        result = check_containment(q1, q2, kernel=kernel, **options)
        info = result.details["kernel"]
        assert info["requested"] == kernel, label
        if label in self.SEARCHING:
            expected = "antichain" if kernel == "auto" else kernel
            assert info["selected"] == expected, label
            assert info["configs"] >= 0, label
        else:
            assert info["selected"] is None, label

    @pytest.mark.parametrize("label", list(_class_matrix()))
    def test_kernel_defaults_to_auto(self, label):
        from repro.cache import clear_caches

        clear_caches()
        q1, q2, options = _class_matrix()[label]
        result = check_containment(q1, q2, **options)
        assert result.details["kernel"]["requested"] == "auto", label

    def test_cache_hits_inherit_kernel_details(self):
        from repro.cache import clear_caches

        clear_caches()
        q1, q2 = RPQ.parse("a a"), RPQ.parse("a+")
        cold = check_containment(q1, q2, kernel="antichain")
        warm = check_containment(q1, q2, kernel="antichain")
        assert cold.details["cache"] == "miss"
        assert warm.details["cache"] == "hit"
        assert warm.details["kernel"] == cold.details["kernel"]

    def test_cached_results_are_keyed_by_kernel(self):
        from repro.cache import clear_caches

        clear_caches()
        q1, q2 = RPQ.parse("a a"), RPQ.parse("a+")
        anti = check_containment(q1, q2, kernel="antichain")
        sub = check_containment(q1, q2, kernel="subset")
        assert anti.verdict == sub.verdict
        # A subset request must never be served a cached antichain
        # result (its kernel stats would lie about what ran).
        assert sub.details["kernel"]["selected"] == "subset"

    def test_unknown_kernel_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            check_containment(RPQ.parse("a"), RPQ.parse("a"), kernel="bogus")

    def test_subset_and_antichain_verdicts_agree_across_matrix(self):
        from repro.cache import clear_caches

        for label, (q1, q2, options) in _class_matrix().items():
            verdicts = {}
            for kernel in ("subset", "antichain"):
                clear_caches()
                verdicts[kernel] = check_containment(
                    q1, q2, kernel=kernel, **options
                ).verdict
            assert verdicts["subset"] == verdicts["antichain"], label

    def test_inconclusive_escalation_result_carries_kernel(self):
        # A zero deadline spends the escalation budget before round 0:
        # the engine fabricates the INCONCLUSIVE result itself, which
        # must carry the kernel key like every other result.
        tc = transitive_closure_program("e", "tc")
        result = check_containment(
            tc, tc, budget=Budget.auto(deadline_ms=0.0), kernel="antichain"
        )
        assert result.verdict is Verdict.INCONCLUSIVE
        assert result.details["kernel"]["requested"] == "antichain"
        assert result.details["kernel"]["selected"] is None

    def test_bounded_rpq_result_carries_kernel(self):
        q1 = RPQ.parse("(a|b)* a (a|b) (a|b) (a|b)")
        q2 = RPQ.parse("(a|b)* a (a|b) (a|b) (a|b) (a|b)")
        result = check_containment(
            q1, q2, budget=Budget(max_configs=2), kernel="antichain"
        )
        info = result.details["kernel"]
        assert info["requested"] == "antichain"
        assert info["selected"] == "antichain"


class TestTracing:
    """``trace=True`` returns a span tree covering every pipeline stage."""

    STAGES = {
        "rpq": {"emptiness-search"},
        "2rpq": {"fold", "product-search"},
        "uc2rpq": {"disjunct-expansions"},
        "rq": {"translate-datalog", "expansion-loop"},
        "datalog": {"grq-membership", "expansion-loop"},
    }

    @pytest.mark.parametrize("label", list(_class_matrix()))
    def test_trace_covers_the_pipeline_stages(self, label):
        from repro.cache import clear_caches
        from repro.obs.export import flatten_trace

        clear_caches()  # a cache hit would (correctly) skip the tower stages
        q1, q2, options = _class_matrix()[label]
        result = check_containment(q1, q2, trace=True, **options)
        tree = result.details["trace"]
        assert tree["name"] == "check-containment"
        names = {key.rsplit("/", 1)[-1].split("#")[0] for key in flatten_trace(tree)}
        assert self.STAGES[label] <= names, (label, sorted(names))
        assert any(e["name"] == "cache" for e in tree.get("events", ()))
        assert tree["tags"]["q1_class"]

    def test_trace_is_never_cached(self):
        from repro.cache import clear_caches

        clear_caches()
        q1, q2 = RPQ.parse("a"), RPQ.parse("a|b")
        traced = check_containment(q1, q2, trace=True)
        assert traced.details["trace"] is not None
        cached = check_containment(q1, q2)
        assert "trace" not in cached.details
        assert cached.details["cache"] == "hit"

    def test_trace_false_adds_no_trace_key(self):
        result = check_containment(RPQ.parse("a"), RPQ.parse("a|b"))
        assert "trace" not in result.details

    def test_caller_supplied_tracer_is_reused(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        check_containment(RPQ.parse("a a"), RPQ.parse("a+"), trace=tracer)
        assert tracer.root is not None
        assert tracer.root.name == "check-containment"
