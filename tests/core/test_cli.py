"""Tests for the command-line interface."""

import pytest

from repro.cli import load_database, main, parse_query
from repro.datalog.syntax import Program
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import RQ


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("a knows b\nb knows c\n")
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "d.facts"
    path.write_text("edge(1, 2). edge(2, 3).")
    return str(path)


class TestParseQuery:
    def test_rpq(self):
        assert isinstance(parse_query("rpq:a+"), RPQ)

    def test_two_way_rpq(self):
        query = parse_query("rpq:a-")
        assert isinstance(query, TwoRPQ) and not isinstance(query, RPQ)

    def test_rq(self):
        assert isinstance(parse_query("rq:ans(x, y) :- [a+](x, y)."), RQ)

    def test_datalog(self):
        query = parse_query("datalog:t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z).")
        assert isinstance(query, Program)

    def test_file_spec(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("a b+")
        assert isinstance(parse_query(f"rpq:@{path}"), RPQ)

    def test_bad_kind(self):
        with pytest.raises(SystemExit):
            parse_query("sql:select")

    def test_missing_colon(self):
        with pytest.raises(SystemExit):
            parse_query("rpq")


class TestCommands:
    def test_classify(self, capsys):
        assert main(["classify", "rpq:a+"]) == 0
        assert "RPQ" in capsys.readouterr().out

    def test_evaluate_graph(self, graph_file, capsys):
        assert main(["evaluate", "rpq:knows+", "--database", graph_file]) == 0
        out = capsys.readouterr().out
        assert "a\tc" in out

    def test_evaluate_datalog(self, facts_file, capsys):
        program = "datalog:t(x,y) :- edge(x,y). t(x,z) :- t(x,y), edge(y,z)."
        assert main(["evaluate", program, "--database", facts_file]) == 0
        assert "1\t3" in capsys.readouterr().out

    def test_evaluate_rq_on_graph(self, graph_file, capsys):
        assert (
            main(
                [
                    "evaluate",
                    "rq:ans(x, y) :- [knows knows](x, y).",
                    "--database",
                    graph_file,
                ]
            )
            == 0
        )
        assert "a\tc" in capsys.readouterr().out

    def test_contain_holds_exit_zero(self, capsys):
        assert main(["contain", "rpq:a a", "rpq:a+"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_contain_refuted_exit_one(self, capsys):
        assert main(["contain", "rpq:a+", "rpq:a a"]) == 1
        assert "REFUTED" in capsys.readouterr().out

    def test_contain_show_witness(self, capsys):
        main(["contain", "rpq:a+", "rpq:a a", "--show-witness"])
        out = capsys.readouterr().out
        assert "counterexample database" in out
        assert "0 a 1" in out

    def test_contain_budget_flag(self, capsys):
        program = "datalog:t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)."
        code = main(["contain", program, program, "--max-expansions", "5"])
        assert code == 0
        assert "bound" in capsys.readouterr().out


class TestRewriteCommand:
    def test_exact_rewriting(self, capsys, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 a 1\n1 b 2\n2 a 3\n3 b 4\n")
        code = main(
            ["rewrite", "rpq:(a b)+", "--view", "v=a b", "--database", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact" in out
        assert "0\t4" in out

    def test_no_rewriting_exits_one(self, capsys):
        assert main(["rewrite", "rpq:a", "--view", "v=a a"]) == 1
        assert "no contained rewriting" in capsys.readouterr().out

    def test_rewriting_without_database(self, capsys):
        assert main(["rewrite", "rpq:a+", "--view", "v=a"]) == 0
        assert "rewriting" in capsys.readouterr().out

    def test_bad_view_spec(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "rpq:a", "--view", "nonsense"])

    def test_two_way_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "rpq:a-", "--view", "v=a"])


class TestLoadDatabase:
    def test_facts_extension(self, facts_file):
        from repro.relational.instance import Instance

        assert isinstance(load_database(facts_file), Instance)

    def test_edges_extension(self, graph_file):
        from repro.graphdb.database import GraphDatabase

        assert isinstance(load_database(graph_file), GraphDatabase)
