"""Tests for the command-line interface."""

import pytest

from repro.cli import load_database, main, parse_query
from repro.datalog.syntax import Program
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import RQ


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("a knows b\nb knows c\n")
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "d.facts"
    path.write_text("edge(1, 2). edge(2, 3).")
    return str(path)


class TestParseQuery:
    def test_rpq(self):
        assert isinstance(parse_query("rpq:a+"), RPQ)

    def test_two_way_rpq(self):
        query = parse_query("rpq:a-")
        assert isinstance(query, TwoRPQ) and not isinstance(query, RPQ)

    def test_rq(self):
        assert isinstance(parse_query("rq:ans(x, y) :- [a+](x, y)."), RQ)

    def test_datalog(self):
        query = parse_query("datalog:t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z).")
        assert isinstance(query, Program)

    def test_file_spec(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("a b+")
        assert isinstance(parse_query(f"rpq:@{path}"), RPQ)

    def test_bad_kind(self):
        with pytest.raises(SystemExit):
            parse_query("sql:select")

    def test_missing_colon(self):
        with pytest.raises(SystemExit):
            parse_query("rpq")


class TestCommands:
    def test_classify(self, capsys):
        assert main(["classify", "rpq:a+"]) == 0
        assert "RPQ" in capsys.readouterr().out

    def test_evaluate_graph(self, graph_file, capsys):
        assert main(["evaluate", "rpq:knows+", "--database", graph_file]) == 0
        out = capsys.readouterr().out
        assert "a\tc" in out

    def test_evaluate_datalog(self, facts_file, capsys):
        program = "datalog:t(x,y) :- edge(x,y). t(x,z) :- t(x,y), edge(y,z)."
        assert main(["evaluate", program, "--database", facts_file]) == 0
        assert "1\t3" in capsys.readouterr().out

    def test_evaluate_rq_on_graph(self, graph_file, capsys):
        assert (
            main(
                [
                    "evaluate",
                    "rq:ans(x, y) :- [knows knows](x, y).",
                    "--database",
                    graph_file,
                ]
            )
            == 0
        )
        assert "a\tc" in capsys.readouterr().out

    def test_evaluate_stats_reports_engine_activity(self, graph_file, capsys):
        assert (
            main(["evaluate", "rpq:knows+", "--database", graph_file, "--stats"])
            == 0
        )
        captured = capsys.readouterr()
        assert "a\tc" in captured.out
        assert "# evaluation stats" in captured.err
        assert "evaluation.snapshot_builds" in captured.err
        assert "cache evaluation:" in captured.err
        assert "eval-bfs" in captured.err

    def test_evaluate_without_stats_is_quiet(self, graph_file, capsys):
        assert main(["evaluate", "rpq:knows+", "--database", graph_file]) == 0
        assert "evaluation stats" not in capsys.readouterr().err

    def test_contain_holds_exit_zero(self, capsys):
        assert main(["contain", "rpq:a a", "rpq:a+"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_contain_refuted_exit_one(self, capsys):
        assert main(["contain", "rpq:a+", "rpq:a a"]) == 1
        assert "REFUTED" in capsys.readouterr().out

    def test_contain_show_witness(self, capsys):
        main(["contain", "rpq:a+", "rpq:a a", "--show-witness"])
        out = capsys.readouterr().out
        assert "counterexample database" in out
        assert "0 a 1" in out

    def test_contain_budget_flag(self, capsys):
        program = "datalog:t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)."
        code = main(["contain", program, program, "--max-expansions", "5"])
        assert code == 0
        assert "bound" in capsys.readouterr().out

    def test_contain_kernel_flag_agreement(self, capsys):
        for kernel in ("subset", "antichain", "auto"):
            assert main(["contain", "rpq:a a", "rpq:a+", "--kernel", kernel]) == 0
            assert "HOLDS" in capsys.readouterr().out
            assert main(["contain", "rpq:a+", "rpq:a a", "--kernel", kernel]) == 1
            assert "REFUTED" in capsys.readouterr().out

    def test_contain_kernel_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["contain", "rpq:a", "rpq:a", "--kernel", "bogus"])
        assert excinfo.value.code == 2  # argparse choices rejection
        assert "invalid choice" in capsys.readouterr().err


class TestRewriteCommand:
    def test_exact_rewriting(self, capsys, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 a 1\n1 b 2\n2 a 3\n3 b 4\n")
        code = main(
            ["rewrite", "rpq:(a b)+", "--view", "v=a b", "--database", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact" in out
        assert "0\t4" in out

    def test_no_rewriting_exits_one(self, capsys):
        assert main(["rewrite", "rpq:a", "--view", "v=a a"]) == 1
        assert "no contained rewriting" in capsys.readouterr().out

    def test_rewriting_without_database(self, capsys):
        assert main(["rewrite", "rpq:a+", "--view", "v=a"]) == 0
        assert "rewriting" in capsys.readouterr().out

    def test_bad_view_spec(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "rpq:a", "--view", "nonsense"])

    def test_two_way_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "rpq:a-", "--view", "v=a"])


class TestLoadDatabase:
    def test_facts_extension(self, facts_file):
        from repro.relational.instance import Instance

        assert isinstance(load_database(facts_file), Instance)

    def test_edges_extension(self, graph_file):
        from repro.graphdb.database import GraphDatabase

        assert isinstance(load_database(graph_file), GraphDatabase)


class TestTraceFlags:
    def test_contain_trace_renders_span_tree(self, capsys):
        assert main(["contain", "rpq:a a", "rpq:a+", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "check-containment" in out
        assert "ms" in out

    def test_contain_trace_json_round_trips(self, capsys, tmp_path):
        from repro.obs.export import trace_from_ndjson, trace_to_ndjson

        target = tmp_path / "trace.ndjson"
        assert main(
            ["contain", "rpq:a a", "rpq:a+", "--trace-json", str(target)]
        ) == 0
        err = capsys.readouterr().err
        assert str(target) in err
        text = target.read_text()
        tree = trace_from_ndjson(text)
        assert tree["name"] == "check-containment"
        assert trace_to_ndjson(tree) == text  # exact ndjson round-trip

    def test_trace_json_implies_tracing_without_rendering(self, capsys, tmp_path):
        target = tmp_path / "t.ndjson"
        main(["contain", "rpq:a a", "rpq:a+", "--trace-json", str(target)])
        out = capsys.readouterr().out
        # verdict line yes, rendered tree no
        assert "HOLDS" in out
        assert "└─" not in out
        assert target.exists()

    def test_trace_json_on_refuted_check(self, tmp_path):
        from repro.obs.export import trace_from_ndjson

        target = tmp_path / "refuted.ndjson"
        assert main(
            ["contain", "rpq:a+", "rpq:a a", "--trace-json", str(target)]
        ) == 1
        assert trace_from_ndjson(target.read_text())["name"] == (
            "check-containment"
        )


class TestBenchCommands:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        """One recorded smoke run shared by the class (bench runs cost ~1s)."""
        directory = tmp_path_factory.mktemp("bench")
        import contextlib
        import os

        @contextlib.contextmanager
        def chdir(path):
            previous = os.getcwd()
            os.chdir(path)
            try:
                yield
            finally:
                os.chdir(previous)

        with chdir(directory):
            assert main(["bench", "run", "--suite", "smoke", "--repeats", "1"]) == 0
        return directory

    def _run_file(self, run_dir):
        candidates = sorted(run_dir.glob("BENCH_*.json"))
        assert len(candidates) == 1
        return candidates[0]

    def test_run_writes_schema_valid_document(self, run_dir):
        import json

        from repro.obs.perf import validate_run

        document = json.loads(self._run_file(run_dir).read_text())
        assert validate_run(document) == []
        assert document["suite"] == "smoke"
        assert "profile" in document

    def test_compare_identical_exits_zero(self, run_dir, capsys):
        path = str(self._run_file(run_dir))
        assert main(["bench", "compare", path, "--baseline", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_perturbed_exact_exits_nonzero(self, run_dir, tmp_path, capsys):
        import json

        document = json.loads(self._run_file(run_dir).read_text())
        document["experiments"][0]["exact"]["pairs"] = 99999
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(document))
        code = main(
            ["bench", "compare", str(perturbed),
             "--baseline", str(self._run_file(run_dir))]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_fail_on_timing_flag(self, run_dir, tmp_path):
        import json

        document = json.loads(self._run_file(run_dir).read_text())
        for experiment in document["experiments"]:
            for timing in experiment["timings"].values():
                timing["median_ms"] = timing["median_ms"] * 1000 + 100
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(document))
        base = str(self._run_file(run_dir))
        assert main(["bench", "compare", str(slow), "--baseline", base]) == 0
        assert main(
            ["bench", "compare", str(slow), "--baseline", base,
             "--fail-on-timing"]
        ) == 1

    def test_compare_missing_baseline_errors(self, run_dir):
        with pytest.raises(SystemExit):
            main(
                ["bench", "compare", str(self._run_file(run_dir)),
                 "--baseline", "/nonexistent/baseline.json"]
            )

    def test_profile_renders_hotspots(self, run_dir, capsys):
        assert main(
            ["bench", "profile", str(self._run_file(run_dir)), "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "hotspot profile" in out
        assert "check-containment" in out

    def test_profile_without_section_exits_one(self, tmp_path, capsys):
        import json

        from repro.obs.perf import run_suite

        document = run_suite("smoke", repeats=1, profile=False)
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(document))
        assert main(["bench", "profile", str(bare)]) == 1
        assert "no profile" in capsys.readouterr().err


class TestBatchCommand:
    """`repro batch` on NDJSON workloads (shared serve-protocol path)."""

    def run_batch(self, tmp_path, text, *extra):
        workload = tmp_path / "w.ndjson"
        workload.write_text(text)
        return main(["batch", str(workload), "--workers", "2", *extra])

    def test_workload_round_trip(self, tmp_path, capsys):
        import json

        text = (
            '{"id": "p1", "left": "rpq:a a", "right": "rpq:a+"}\n'
            '{"id": "p2", "left": "rpq:a+", "right": "rpq:a a"}\n'
        )
        assert self.run_batch(tmp_path, text) == 0
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert [l["id"] for l in lines] == ["p1", "p2"]
        assert [l["verdict"] for l in lines] == ["holds", "refuted"]
        assert "2 items" in captured.err

    def test_empty_workload_is_empty_result_exit_zero(self, tmp_path, capsys):
        """Regression: an empty NDJSON file used to crash the batch
        path; it must produce an empty result and exit 0."""
        assert self.run_batch(tmp_path, "") == 0
        captured = capsys.readouterr()
        assert captured.out == ""  # no stray blank line
        assert "0 items" in captured.err

    def test_blank_lines_only_workload_is_empty(self, tmp_path, capsys):
        assert self.run_batch(tmp_path, "\n   \n\t\n") == 0
        assert capsys.readouterr().out == ""

    def test_malformed_line_is_isolated_error_line(self, tmp_path, capsys):
        import json

        text = (
            '{"id": "ok", "left": "rpq:a a", "right": "rpq:a+"}\n'
            "not json\n"
        )
        assert self.run_batch(tmp_path, text) == 1
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert [l["index"] for l in lines] == [0, 1]
        assert lines[0]["verdict"] == "holds"
        assert lines[1]["verdict"] == "error"
        assert lines[1]["id"] is None
        assert "1 line(s) failed to parse" in captured.err

    def test_empty_workload_to_output_file(self, tmp_path, capsys):
        workload = tmp_path / "w.ndjson"
        workload.write_text("")
        out = tmp_path / "results.ndjson"
        assert main(["batch", str(workload), "--out", str(out)]) == 0
        assert out.read_text() == ""
        capsys.readouterr()
