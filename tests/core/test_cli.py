"""Tests for the command-line interface."""

import contextlib
import json
import threading
import time

import pytest

from repro.cli import load_database, main, parse_query
from repro.datalog.syntax import Program
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import RQ


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("a knows b\nb knows c\n")
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "d.facts"
    path.write_text("edge(1, 2). edge(2, 3).")
    return str(path)


class TestParseQuery:
    def test_rpq(self):
        assert isinstance(parse_query("rpq:a+"), RPQ)

    def test_two_way_rpq(self):
        query = parse_query("rpq:a-")
        assert isinstance(query, TwoRPQ) and not isinstance(query, RPQ)

    def test_rq(self):
        assert isinstance(parse_query("rq:ans(x, y) :- [a+](x, y)."), RQ)

    def test_datalog(self):
        query = parse_query("datalog:t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z).")
        assert isinstance(query, Program)

    def test_file_spec(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("a b+")
        assert isinstance(parse_query(f"rpq:@{path}"), RPQ)

    def test_bad_kind(self):
        with pytest.raises(SystemExit):
            parse_query("sql:select")

    def test_missing_colon(self):
        with pytest.raises(SystemExit):
            parse_query("rpq")


class TestCommands:
    def test_classify(self, capsys):
        assert main(["classify", "rpq:a+"]) == 0
        assert "RPQ" in capsys.readouterr().out

    def test_evaluate_graph(self, graph_file, capsys):
        assert main(["evaluate", "rpq:knows+", "--database", graph_file]) == 0
        out = capsys.readouterr().out
        assert "a\tc" in out

    def test_evaluate_datalog(self, facts_file, capsys):
        program = "datalog:t(x,y) :- edge(x,y). t(x,z) :- t(x,y), edge(y,z)."
        assert main(["evaluate", program, "--database", facts_file]) == 0
        assert "1\t3" in capsys.readouterr().out

    def test_evaluate_rq_on_graph(self, graph_file, capsys):
        assert (
            main(
                [
                    "evaluate",
                    "rq:ans(x, y) :- [knows knows](x, y).",
                    "--database",
                    graph_file,
                ]
            )
            == 0
        )
        assert "a\tc" in capsys.readouterr().out

    def test_evaluate_stats_reports_engine_activity(self, graph_file, capsys):
        assert (
            main(["evaluate", "rpq:knows+", "--database", graph_file, "--stats"])
            == 0
        )
        captured = capsys.readouterr()
        assert "a\tc" in captured.out
        assert "# evaluation stats" in captured.err
        assert "evaluation.snapshot_builds" in captured.err
        assert "cache evaluation:" in captured.err
        assert "eval-bfs" in captured.err

    def test_evaluate_without_stats_is_quiet(self, graph_file, capsys):
        assert main(["evaluate", "rpq:knows+", "--database", graph_file]) == 0
        assert "evaluation stats" not in capsys.readouterr().err

    def test_contain_holds_exit_zero(self, capsys):
        assert main(["contain", "rpq:a a", "rpq:a+"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_contain_refuted_exit_one(self, capsys):
        assert main(["contain", "rpq:a+", "rpq:a a"]) == 1
        assert "REFUTED" in capsys.readouterr().out

    def test_contain_show_witness(self, capsys):
        main(["contain", "rpq:a+", "rpq:a a", "--show-witness"])
        out = capsys.readouterr().out
        assert "counterexample database" in out
        assert "0 a 1" in out

    def test_contain_budget_flag(self, capsys):
        program = "datalog:t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)."
        code = main(["contain", program, program, "--max-expansions", "5"])
        assert code == 0
        assert "bound" in capsys.readouterr().out

    def test_contain_kernel_flag_agreement(self, capsys):
        for kernel in ("subset", "antichain", "auto"):
            assert main(["contain", "rpq:a a", "rpq:a+", "--kernel", kernel]) == 0
            assert "HOLDS" in capsys.readouterr().out
            assert main(["contain", "rpq:a+", "rpq:a a", "--kernel", kernel]) == 1
            assert "REFUTED" in capsys.readouterr().out

    def test_contain_kernel_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["contain", "rpq:a", "rpq:a", "--kernel", "bogus"])
        assert excinfo.value.code == 2  # argparse choices rejection
        assert "invalid choice" in capsys.readouterr().err


class TestRewriteCommand:
    def test_exact_rewriting(self, capsys, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 a 1\n1 b 2\n2 a 3\n3 b 4\n")
        code = main(
            ["rewrite", "rpq:(a b)+", "--view", "v=a b", "--database", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact" in out
        assert "0\t4" in out

    def test_no_rewriting_exits_one(self, capsys):
        assert main(["rewrite", "rpq:a", "--view", "v=a a"]) == 1
        assert "no contained rewriting" in capsys.readouterr().out

    def test_rewriting_without_database(self, capsys):
        assert main(["rewrite", "rpq:a+", "--view", "v=a"]) == 0
        assert "rewriting" in capsys.readouterr().out

    def test_bad_view_spec(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "rpq:a", "--view", "nonsense"])

    def test_two_way_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "rpq:a-", "--view", "v=a"])


class TestLoadDatabase:
    def test_facts_extension(self, facts_file):
        from repro.relational.instance import Instance

        assert isinstance(load_database(facts_file), Instance)

    def test_edges_extension(self, graph_file):
        from repro.graphdb.database import GraphDatabase

        assert isinstance(load_database(graph_file), GraphDatabase)


class TestTraceFlags:
    def test_contain_trace_renders_span_tree(self, capsys):
        assert main(["contain", "rpq:a a", "rpq:a+", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "check-containment" in out
        assert "ms" in out

    def test_contain_trace_json_round_trips(self, capsys, tmp_path):
        from repro.obs.export import trace_from_ndjson, trace_to_ndjson

        target = tmp_path / "trace.ndjson"
        assert main(
            ["contain", "rpq:a a", "rpq:a+", "--trace-json", str(target)]
        ) == 0
        err = capsys.readouterr().err
        assert str(target) in err
        text = target.read_text()
        tree = trace_from_ndjson(text)
        assert tree["name"] == "check-containment"
        assert trace_to_ndjson(tree) == text  # exact ndjson round-trip

    def test_trace_json_implies_tracing_without_rendering(self, capsys, tmp_path):
        target = tmp_path / "t.ndjson"
        main(["contain", "rpq:a a", "rpq:a+", "--trace-json", str(target)])
        out = capsys.readouterr().out
        # verdict line yes, rendered tree no
        assert "HOLDS" in out
        assert "└─" not in out
        assert target.exists()

    def test_trace_json_on_refuted_check(self, tmp_path):
        from repro.obs.export import trace_from_ndjson

        target = tmp_path / "refuted.ndjson"
        assert main(
            ["contain", "rpq:a+", "rpq:a a", "--trace-json", str(target)]
        ) == 1
        assert trace_from_ndjson(target.read_text())["name"] == (
            "check-containment"
        )


class TestBenchCommands:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        """One recorded smoke run shared by the class (bench runs cost ~1s)."""
        directory = tmp_path_factory.mktemp("bench")
        import contextlib
        import os

        @contextlib.contextmanager
        def chdir(path):
            previous = os.getcwd()
            os.chdir(path)
            try:
                yield
            finally:
                os.chdir(previous)

        with chdir(directory):
            assert main(["bench", "run", "--suite", "smoke", "--repeats", "1"]) == 0
        return directory

    def _run_file(self, run_dir):
        candidates = sorted(run_dir.glob("BENCH_*.json"))
        assert len(candidates) == 1
        return candidates[0]

    def test_run_writes_schema_valid_document(self, run_dir):
        import json

        from repro.obs.perf import validate_run

        document = json.loads(self._run_file(run_dir).read_text())
        assert validate_run(document) == []
        assert document["suite"] == "smoke"
        assert "profile" in document

    def test_compare_identical_exits_zero(self, run_dir, capsys):
        path = str(self._run_file(run_dir))
        assert main(["bench", "compare", path, "--baseline", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_perturbed_exact_exits_nonzero(self, run_dir, tmp_path, capsys):
        import json

        document = json.loads(self._run_file(run_dir).read_text())
        document["experiments"][0]["exact"]["pairs"] = 99999
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(document))
        code = main(
            ["bench", "compare", str(perturbed),
             "--baseline", str(self._run_file(run_dir))]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_fail_on_timing_flag(self, run_dir, tmp_path):
        import json

        document = json.loads(self._run_file(run_dir).read_text())
        for experiment in document["experiments"]:
            for timing in experiment["timings"].values():
                timing["median_ms"] = timing["median_ms"] * 1000 + 100
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(document))
        base = str(self._run_file(run_dir))
        assert main(["bench", "compare", str(slow), "--baseline", base]) == 0
        assert main(
            ["bench", "compare", str(slow), "--baseline", base,
             "--fail-on-timing"]
        ) == 1

    def test_compare_missing_baseline_errors(self, run_dir):
        with pytest.raises(SystemExit):
            main(
                ["bench", "compare", str(self._run_file(run_dir)),
                 "--baseline", "/nonexistent/baseline.json"]
            )

    def test_profile_renders_hotspots(self, run_dir, capsys):
        assert main(
            ["bench", "profile", str(self._run_file(run_dir)), "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "hotspot profile" in out
        assert "check-containment" in out

    def test_profile_without_section_exits_one(self, tmp_path, capsys):
        import json

        from repro.obs.perf import run_suite

        document = run_suite("smoke", repeats=1, profile=False)
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(document))
        assert main(["bench", "profile", str(bare)]) == 1
        assert "no profile" in capsys.readouterr().err


class TestBatchCommand:
    """`repro batch` on NDJSON workloads (shared serve-protocol path)."""

    def run_batch(self, tmp_path, text, *extra):
        workload = tmp_path / "w.ndjson"
        workload.write_text(text)
        return main(["batch", str(workload), "--workers", "2", *extra])

    def test_workload_round_trip(self, tmp_path, capsys):
        import json

        text = (
            '{"id": "p1", "left": "rpq:a a", "right": "rpq:a+"}\n'
            '{"id": "p2", "left": "rpq:a+", "right": "rpq:a a"}\n'
        )
        assert self.run_batch(tmp_path, text) == 0
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert [l["id"] for l in lines] == ["p1", "p2"]
        assert [l["verdict"] for l in lines] == ["holds", "refuted"]
        assert "2 items" in captured.err

    def test_empty_workload_is_empty_result_exit_zero(self, tmp_path, capsys):
        """Regression: an empty NDJSON file used to crash the batch
        path; it must produce an empty result and exit 0."""
        assert self.run_batch(tmp_path, "") == 0
        captured = capsys.readouterr()
        assert captured.out == ""  # no stray blank line
        assert "0 items" in captured.err

    def test_blank_lines_only_workload_is_empty(self, tmp_path, capsys):
        assert self.run_batch(tmp_path, "\n   \n\t\n") == 0
        assert capsys.readouterr().out == ""

    def test_malformed_line_is_isolated_error_line(self, tmp_path, capsys):
        import json

        text = (
            '{"id": "ok", "left": "rpq:a a", "right": "rpq:a+"}\n'
            "not json\n"
        )
        assert self.run_batch(tmp_path, text) == 1
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert [l["index"] for l in lines] == [0, 1]
        assert lines[0]["verdict"] == "holds"
        assert lines[1]["verdict"] == "error"
        assert lines[1]["id"] is None
        assert "1 line(s) failed to parse" in captured.err

    def test_empty_workload_to_output_file(self, tmp_path, capsys):
        workload = tmp_path / "w.ndjson"
        workload.write_text("")
        out = tmp_path / "results.ndjson"
        assert main(["batch", str(workload), "--out", str(out)]) == 0
        assert out.read_text() == ""
        capsys.readouterr()


@contextlib.contextmanager
def _live_server():
    """A real TCP server on a background thread for client commands."""
    import asyncio

    from repro.serve.server import ContainmentServer, ServeConfig

    server = ContainmentServer(ServeConfig(port=0, workers=2))
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_tcp()), daemon=True
    )
    thread.start()
    try:
        for _ in range(500):
            if server._server is not None and server._server.sockets:
                break
            time.sleep(0.01)
        else:
            raise RuntimeError("server never started listening")
        yield server, server._server.sockets[0].getsockname()[1]
    finally:
        server._loop.call_soon_threadsafe(server.initiate_drain)
        thread.join(timeout=15)


class TestMetricsCommand:
    def test_local_snapshot_is_json(self, capsys):
        assert main(["metrics"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert isinstance(snapshot, dict)

    def test_local_prom_rendering(self, capsys):
        from repro.core.engine import check_containment  # noqa: F401

        assert main(["metrics", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE engine_checks counter" in out

    def test_addr_fetches_a_live_server(self, capsys):
        with _live_server() as (server, port):
            assert main(["metrics", "--addr", f"127.0.0.1:{port}"]) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert "serve.requests" in snapshot
            assert (
                main(["metrics", "--addr", f"127.0.0.1:{port}", "--prom"])
                == 0
            )
            assert "serve_requests" in capsys.readouterr().out

    def test_unreachable_addr_exits_with_message(self, capsys):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["metrics", "--addr", "127.0.0.1:1", "--timeout", "0.2"])


class TestTopCommand:
    def test_polls_and_renders_deltas(self, capsys):
        with _live_server() as (server, port):
            assert (
                main(
                    [
                        "top",
                        f"127.0.0.1:{port}",
                        "--interval",
                        "0.05",
                        "--count",
                        "2",
                    ]
                )
                == 0
            )
        out = capsys.readouterr().out
        refreshes = [
            line for line in out.splitlines() if line.startswith("127.0.0.1:")
        ]
        assert len(refreshes) == 2
        for line in refreshes:
            assert "req/s=" in line
            assert "shed/s=" in line

    def test_unreachable_server_exits_with_message(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["top", "127.0.0.1:1", "--timeout", "0.2", "--count", "1"])
