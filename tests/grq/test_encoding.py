"""Tests for the arity-reduction encoding (Theorem 8 machinery)."""

import random

from repro.cq.containment import cq_contained
from repro.cq.evaluation import evaluate_cq
from repro.cq.syntax import cq_from_strings
from repro.grq.encoding import (
    encode_cq,
    encode_head,
    encode_instance,
    position_label,
)
from repro.relational.generators import random_instance
from repro.relational.instance import Instance, graph_to_instance


class TestEncodeInstance:
    def test_facts_become_fact_nodes(self):
        instance = Instance.from_facts([("R", (1, 2, 3))])
        graph = encode_instance(instance)
        assert graph.num_edges == 3
        assert graph.relation(position_label("R", 0)) == {
            (("f", "R", (1, 2, 3)), ("c", 1))
        }

    def test_constants_shared_between_facts(self):
        instance = Instance.from_facts([("R", (1, 2)), ("S", (2,))])
        graph = encode_instance(instance)
        assert ("c", 2) in graph.nodes
        # Two edges end at the shared constant node.
        ends = [e for e in graph.edges() if e[2] == ("c", 2)]
        assert len(ends) == 2


class TestEncodeCQ:
    def test_shape(self):
        cq = cq_from_strings("x", ["R(x,y,z)"])
        encoded = encode_cq(cq)
        assert len(encoded.body) == 3
        assert {atom.predicate for atom in encoded.body} == {
            position_label("R", i) for i in range(3)
        }

    def test_evaluation_commutes_with_encoding(self):
        """Q(D) and enc(Q)(enc(D)) agree up to constant tagging."""
        cq = cq_from_strings("x", ["R(x,y,z)", "S(z,x)"])
        for seed in range(4):
            instance = random_instance({"R": 3, "S": 2}, 4, 8, seed=seed)
            direct = evaluate_cq(cq, instance)
            encoded_db = graph_to_instance(encode_instance(instance))
            encoded = evaluate_cq(encode_cq(cq), encoded_db)
            assert {encode_head(row) for row in direct} == encoded, seed

    def test_containment_preserved_both_ways(self):
        """Q1 ⊑ Q2 iff enc(Q1) ⊑ enc(Q2) — the Theorem 8 reduction's core."""
        rng = random.Random(17)
        bodies = [
            ["R(x,y,z)"],
            ["R(x,y,z)", "R(y,z,x)"],
            ["R(x,x,y)"],
            ["R(x,y,y)"],
            ["R(x,y,z)", "R(x,u,v)"],
        ]
        queries = [cq_from_strings("x", body) for body in bodies]
        for q1 in queries:
            for q2 in queries:
                plain = cq_contained(q1, q2)
                encoded = cq_contained(encode_cq(q1), encode_cq(q2))
                assert plain == encoded, (q1, q2)

    def test_constants_in_atoms(self):
        cq = cq_from_strings("x", ["R(x, 5)"])
        encoded = encode_cq(cq)
        assert encoded.body[1].args[1] == ("c", 5)
