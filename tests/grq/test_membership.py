"""Tests for the GRQ membership checker."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.grq.membership import check_grq, is_graph_grq, is_grq


class TestAccepts:
    def test_left_linear_tc(self):
        assert is_grq(transitive_closure_program(left_linear=True))

    def test_right_linear_tc(self):
        assert is_grq(transitive_closure_program(left_linear=False))

    def test_nonrecursive_programs_are_grq(self):
        program = parse_program("p(x, z) :- e(x, y), e(y, z).")
        assert is_grq(program)

    def test_stacked_tcs(self):
        program = parse_program(
            """
            inner(x, y) :- edge(x, y).
            inner(x, z) :- inner(x, y), edge(y, z).
            outer(x, y) :- inner(x, y).
            outer(x, z) :- outer(x, y), inner(y, z).
            """,
            goal="outer",
        )
        assert is_grq(program)

    def test_multiple_base_rules(self):
        program = parse_program(
            """
            tc(x, y) :- a(x, y).
            tc(x, y) :- b(x, y).
            tc(x, z) :- tc(x, y), a(y, z).
            """,
        )
        assert is_grq(program)

    def test_rq_translation_images(self):
        from repro.rq.syntax import triangle_plus
        from repro.rq.to_datalog import rq_to_datalog

        assert is_grq(rq_to_datalog(triangle_plus()))


class TestRejects:
    def test_monadic_recursion(self):
        """The paper's reachability program recursion is unary, not TC."""
        report = check_grq(reachability_program())
        assert not report.is_grq
        assert any("arity 1" in violation for violation in report.violations)

    def test_nonlinear_recursion(self):
        program = parse_program(
            """
            tc(x, y) :- edge(x, y).
            tc(x, z) :- tc(x, y), tc(y, z).
            """
        )
        report = check_grq(program)
        assert not report.is_grq
        assert any("linear" in violation for violation in report.violations)

    def test_mutual_recursion(self):
        program = parse_program(
            """
            a(x, y) :- edge(x, y).
            a(x, z) :- b(x, y), edge(y, z).
            b(x, z) :- a(x, y), edge(y, z).
            """,
            goal="a",
        )
        report = check_grq(program)
        assert not report.is_grq
        assert any("mutually recursive" in violation for violation in report.violations)

    def test_ternary_recursion(self):
        program = parse_program(
            """
            t(x, y, z) :- base(x, y, z).
            t(x, y, w) :- t(x, y, z), step(z, w).
            """
        )
        assert not is_grq(program)

    def test_step_rule_with_extra_atom(self):
        program = parse_program(
            """
            tc(x, y) :- edge(x, y).
            tc(x, z) :- tc(x, y), edge(y, z), mark(x).
            """
        )
        assert not is_grq(program)

    def test_step_rule_with_twisted_variables(self):
        program = parse_program(
            """
            tc(x, y) :- edge(x, y).
            tc(x, z) :- tc(y, x), edge(y, z).
            """
        )
        assert not is_grq(program)

    def test_missing_base_rule(self):
        program = parse_program(
            """
            seedless(x, z) :- seedless(x, y), edge(y, z).
            """
        )
        assert not is_grq(program)


class TestGraphGRQ:
    def test_binary_edb_required(self):
        program = parse_program(
            """
            tc(x, y) :- fact(x, y, w).
            tc(x, z) :- tc(x, y), hop(y, z).
            hop(y, z) :- fact(y, z, w).
            """
        )
        # The recursive step uses binary hop, so GRQ holds; but the EDB
        # is ternary, so it is not an RQ-style (graph) program.
        assert is_grq(program)
        assert not is_graph_grq(program)
