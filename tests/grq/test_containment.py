"""Tests for GRQ containment (Theorem 8 class)."""

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.grq.containment import NotGRQError, grq_contained, grq_equivalent
from repro.report import Verdict


@pytest.fixture
def tc():
    return transitive_closure_program("edge", "tc")


class TestVerdicts:
    def test_left_right_linear_equivalent(self, tc):
        other = transitive_closure_program("edge", "tc", left_linear=False)
        assert grq_equivalent(tc, other)

    def test_tc_in_tc_over_richer_base(self, tc):
        rich = parse_program(
            """
            base(x, y) :- edge(x, y).
            base(x, y) :- shortcut(x, y).
            tcr(x, y) :- base(x, y).
            tcr(x, z) :- tcr(x, y), base(y, z).
            """,
            goal="tcr",
        )
        assert grq_contained(tc, rich, max_expansions=25).holds
        result = grq_contained(rich, tc, max_expansions=25)
        assert result.verdict is Verdict.REFUTED  # shortcut-edges escape tc

    def test_nonrecursive_left_exact(self, tc):
        hop = parse_program("hop(x, z) :- edge(x, y), edge(y, z).", goal="hop")
        assert grq_contained(hop, tc).verdict is Verdict.HOLDS

    def test_refutation_replays(self, tc):
        hop = parse_program("hop(x, z) :- edge(x, y), edge(y, z).", goal="hop")
        result = grq_contained(tc, hop, max_expansions=20)
        assert result.verdict is Verdict.REFUTED
        instance = result.counterexample.database
        head = result.counterexample.output
        assert head in evaluate(tc, instance)
        assert head not in evaluate(hop, instance)

    def test_arity_mismatch(self, tc):
        unary = parse_program("u(x) :- edge(x, y).", goal="u")
        with pytest.raises(ValueError):
            grq_contained(tc, unary)


class TestMembershipGate:
    def test_non_grq_left_rejected(self, tc):
        with pytest.raises(NotGRQError) as excinfo:
            grq_contained(reachability_program(), tc)
        assert "left" in str(excinfo.value)

    def test_non_grq_right_rejected(self, tc):
        nonlinear = parse_program(
            """
            t(x, y) :- edge(x, y).
            t(x, z) :- t(x, y), t(y, z).
            """
        )
        with pytest.raises(NotGRQError) as excinfo:
            grq_contained(tc, nonlinear)
        assert "right" in str(excinfo.value)


class TestArbitraryArityEDB:
    def test_grq_over_ternary_edb(self):
        """GRQ proper: EDB atoms may have any arity (Section 4.1)."""
        left = parse_program(
            """
            pair(x, y) :- fact(x, y, w).
            tc(x, y) :- pair(x, y).
            tc(x, z) :- tc(x, y), pair(y, z).
            """,
            goal="tc",
        )
        right = parse_program(
            """
            anypair(x, y) :- fact(x, u, v), fact(w, y, t).
            """,
            goal="anypair",
        )
        # tc(x,y) implies x is a first and y a second component somewhere.
        result = grq_contained(left, right, max_expansions=20)
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND
        assert not grq_contained(right, left, max_expansions=20).holds
