"""Tests for the GRQ -> RQ reduction (Theorem 8 machinery)."""

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.grq.containment import NotGRQError
from repro.grq.to_rq import grq_to_rq
from repro.graphdb.generators import random_graph
from repro.relational.instance import graph_to_instance
from repro.rq.evaluation import evaluate_rq
from repro.rq.syntax import (
    And,
    Or,
    RQError,
    Select,
    TransitiveClosure,
    edge,
    triangle_plus,
)
from repro.rq.to_datalog import rq_to_datalog
from repro.cq.syntax import Var


def assert_same_semantics(program, term, labels, seeds=range(3), size=(5, 11)):
    for seed in seeds:
        db = random_graph(size[0], size[1], labels, seed=seed)
        assert evaluate_rq(term, db) == evaluate(program, graph_to_instance(db)), seed


class TestDirectPrograms:
    def test_left_linear_tc(self):
        program = transitive_closure_program("e", "tc")
        assert_same_semantics(program, grq_to_rq(program), ("e",))

    def test_right_linear_tc(self):
        program = transitive_closure_program("e", "tc", left_linear=False)
        assert_same_semantics(program, grq_to_rq(program), ("e",))

    def test_mixed_linear_steps(self):
        """X = base ∪ X;A ∪ B;X must translate to B*;base;A*."""
        program = parse_program(
            """
            p(x, y) :- a(x, y).
            p(x, z) :- p(x, y), a(y, z).
            p(x, z) :- b(x, y), p(y, z).
            """,
            goal="p",
        )
        assert_same_semantics(program, grq_to_rq(program), ("a", "b"))

    def test_multiple_base_rules(self):
        program = parse_program(
            """
            p(x, y) :- a(x, y).
            p(x, y) :- b(x, y).
            p(x, z) :- p(x, y), a(y, z).
            """,
            goal="p",
        )
        assert_same_semantics(program, grq_to_rq(program), ("a", "b"))

    def test_stacked_tc(self):
        program = parse_program(
            """
            inner(x, y) :- e(x, y).
            inner(x, z) :- inner(x, y), e(y, z).
            outer(x, y) :- inner(x, y).
            outer(x, z) :- outer(x, y), inner(y, z).
            """,
            goal="outer",
        )
        assert_same_semantics(program, grq_to_rq(program), ("e",), size=(4, 8))

    def test_nonrecursive_join(self):
        program = parse_program(
            "p(x, z) :- a(x, y), b(y, z), a(z, w).", goal="p"
        )
        assert_same_semantics(program, grq_to_rq(program), ("a", "b"))

    def test_repeated_body_variable(self):
        program = parse_program("p(x) :- a(x, x).", goal="p")
        assert_same_semantics(program, grq_to_rq(program), ("a",))

    def test_repeated_head_variable(self):
        program = parse_program("p(x, x) :- a(x, y).", goal="p")
        assert_same_semantics(program, grq_to_rq(program), ("a",))


class TestRoundTrips:
    """rq -> datalog -> rq preserves semantics for every operator."""

    CASES = {
        "tc": TransitiveClosure(edge("a", "x", "y")),
        "triangle-plus": triangle_plus("a"),
        "tc-of-union": TransitiveClosure(
            Or(edge("a", "x", "y"), edge("b", "x", "y"))
        ),
        "select": Select(
            And(edge("a", "x", "y"), edge("b", "y", "z")), Var("x"), Var("z")
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_roundtrip(self, name):
        query = self.CASES[name]
        back = grq_to_rq(rq_to_datalog(query))
        for seed in range(3):
            db = random_graph(5, 11, ("a", "b"), seed=seed)
            assert evaluate_rq(back, db) == evaluate_rq(query, db), (name, seed)


class TestRejections:
    def test_non_grq_rejected(self):
        with pytest.raises(NotGRQError):
            grq_to_rq(reachability_program())

    def test_non_binary_edb_rejected(self):
        program = parse_program("p(x, y) :- fact(x, y, z).", goal="p")
        with pytest.raises(RQError):
            grq_to_rq(program)

    def test_constants_rejected(self):
        program = parse_program("p(x, y) :- a(x, y), a(x, 5).", goal="p")
        with pytest.raises(RQError):
            grq_to_rq(program)
