"""In-process tests for the asyncio containment server.

Each test runs a real :class:`ContainmentServer` on a loopback socket
inside ``asyncio.run`` (no subprocess — the soak suite covers that) and
drives it with an in-process client, so the admission/shed paths can be
forced deterministically by blocking the worker pool on an event.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
import os
import signal
import threading

import pytest

from repro.obs.metrics import metrics_snapshot
from repro.obs.telemetry import validate_access_record
from repro.report import ContainmentResult, Verdict
from repro.serve.server import ContainmentServer, ServeConfig

HOLDS_FRAME = '{"id": "p1", "left": "rpq:a a", "right": "rpq:a+"}'
REFUTED_FRAME = '{"id": "p2", "left": "rpq:a+", "right": "rpq:a a"}'


@contextlib.asynccontextmanager
async def running_server(**overrides):
    config = ServeConfig(port=0, workers=overrides.pop("workers", 2), **overrides)
    server = ContainmentServer(config)
    task = asyncio.create_task(server.serve_tcp())
    try:
        for _ in range(500):
            if server._server is not None and server._server.sockets:
                break
            await asyncio.sleep(0.01)
        else:
            raise RuntimeError("server never started listening")
        port = server._server.sockets[0].getsockname()[1]
        yield server, port
    finally:
        server.initiate_drain()
        await asyncio.wait_for(task, 15)


async def roundtrip(port: int, lines: list[str]) -> list[dict]:
    """Send frames, half-close, and collect every response in order."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(("".join(line + "\n" for line in lines)).encode())
    await writer.drain()
    writer.write_eof()
    responses = []
    while True:
        line = await reader.readline()
        if not line:
            break
        responses.append(json.loads(line))
    writer.close()
    with contextlib.suppress(Exception):
        await writer.wait_closed()
    return responses


def blocking_check(gate: threading.Event):
    """A check_containment stand-in that parks workers on *gate*."""

    def check(q1, q2, **kwargs):
        gate.wait(timeout=30)
        return ContainmentResult(Verdict.HOLDS, "stub")

    return check


class TestControlVerbs:
    def test_health_reports_queue_state(self):
        async def run():
            async with running_server(queue_limit=5, workers=2) as (server, port):
                [resp] = await roundtrip(port, ['{"op": "health", "id": "h"}'])
                assert resp["op"] == "health"
                assert resp["id"] == "h"
                assert resp["status"] == "ok"
                assert resp["queue_depth"] == 0
                assert resp["queue_limit"] == 5
                assert resp["workers"] == 2
                assert resp["uptime_ms"] >= 0

        asyncio.run(run())

    def test_metrics_exposes_serve_instruments_and_cache(self):
        async def run():
            async with running_server() as (server, port):
                first, second = await roundtrip(
                    port, [HOLDS_FRAME, '{"op": "metrics"}']
                )
                assert first["verdict"] == "holds"
                metrics = second["metrics"]
                for name in (
                    "serve.requests",
                    "serve.responses",
                    "serve.connections",
                    "serve.shed",
                    "serve.queue_depth",
                    "serve.latency_ms",
                    "serve.worker_utilization",
                ):
                    assert name in metrics, name
                assert metrics["serve.requests"]["value"] >= 2
                assert "containment" in second["cache"]

        asyncio.run(run())


class TestOrderingAndIsolation:
    def test_mixed_frames_answered_in_input_order(self):
        async def run():
            async with running_server() as (server, port):
                responses = await roundtrip(
                    port,
                    [
                        HOLDS_FRAME,
                        "definitely not json",
                        REFUTED_FRAME,
                        '{"left": "rpq:((", "right": "rpq:a"}',
                    ],
                )
                assert [r["index"] for r in responses] == [0, 1, 2, 3]
                assert responses[0]["id"] == "p1"
                assert responses[0]["verdict"] == "holds"
                assert responses[0]["holds"] is True
                # Malformed frames: isolated error, id null (batch rule).
                assert responses[1]["id"] is None
                assert responses[1]["verdict"] == "error"
                assert responses[1]["error"]["type"]
                assert responses[2]["id"] == "p2"
                assert responses[2]["verdict"] == "refuted"
                assert responses[3]["verdict"] == "error"

        asyncio.run(run())

    def test_file_specs_rejected_on_the_wire(self, tmp_path):
        secret = tmp_path / "secret.txt"
        secret.write_text("top secret contents")

        async def run():
            async with running_server() as (server, port):
                frame = json.dumps(
                    {"id": "f", "left": f"rpq:@{secret}", "right": "rpq:a+"}
                )
                [resp] = await roundtrip(port, [frame])
                # An isolated error response — and nothing of the file
                # leaks back over the connection.
                assert resp["verdict"] == "error"
                assert resp["error"]["type"] == "ProtocolError"
                assert "top secret contents" not in json.dumps(resp)

        asyncio.run(run())

    def test_concurrent_connections_each_keep_their_order(self):
        async def run():
            async with running_server(workers=4) as (server, port):
                batches = await asyncio.gather(
                    *(
                        roundtrip(port, [HOLDS_FRAME, REFUTED_FRAME])
                        for _ in range(4)
                    )
                )
                for responses in batches:
                    assert [r["verdict"] for r in responses] == [
                        "holds",
                        "refuted",
                    ]

        asyncio.run(run())


class TestLoadShedding:
    def test_queue_full_sheds_with_admission_details(self, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.core.batch.check_containment", blocking_check(gate)
        )

        async def run():
            async with running_server(workers=1, queue_limit=1) as (server, port):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(
                    ("".join([HOLDS_FRAME + "\n"] * 3)).encode()
                )
                await writer.drain()
                writer.write_eof()
                # The first frame holds the only admission slot on a
                # blocked worker; the next two must shed at the door.
                for _ in range(500):
                    if server._admission.shed_total >= 2:
                        break
                    await asyncio.sleep(0.01)
                gate.set()
                responses = []
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    responses.append(json.loads(line))
                writer.close()
                assert len(responses) == 3
                assert responses[0]["verdict"] == "holds"
                for shed in responses[1:]:
                    assert shed["verdict"] == "inconclusive"
                    assert shed["method"] == "serve-admission"
                    assert shed["admission"]["shed"] == "queue_full"
                    assert shed["admission"]["queue_limit"] == 1
                    assert "queued_ms" in shed["admission"]["spend"]
                    assert shed["budget"]["exhausted"] == "admission:queue_full"

        asyncio.run(run())

    def test_start_deadline_sheds_queued_request(self, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.core.batch.check_containment", blocking_check(gate)
        )

        async def run():
            async with running_server(workers=1, queue_limit=8) as (server, port):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                deadline_frame = json.dumps(
                    {
                        "id": "late",
                        "left": "rpq:a a",
                        "right": "rpq:a+",
                        "deadline_ms": 50,
                    }
                )
                writer.write((HOLDS_FRAME + "\n" + deadline_frame + "\n").encode())
                await writer.drain()
                writer.write_eof()
                # Both admitted; the second sits queued past its 50 ms
                # start deadline while the only worker is parked.
                for _ in range(500):
                    if server._admission.pending >= 2:
                        break
                    await asyncio.sleep(0.01)
                await asyncio.sleep(0.1)
                gate.set()
                responses = []
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    responses.append(json.loads(line))
                writer.close()
                assert [r["id"] for r in responses] == ["p1", "late"]
                assert responses[0]["verdict"] == "holds"
                late = responses[1]
                assert late["verdict"] == "inconclusive"
                assert late["method"] == "serve-admission"
                assert late["admission"]["shed"] == "deadline"
                assert late["admission"]["deadline_ms"] == 50
                assert late["admission"]["spend"]["queued_ms"] >= 50
                # Deadline sheds count on the controller too, so the
                # health verb agrees with the serve.shed metrics.
                assert server._admission.shed_total == 1

        asyncio.run(run())


class TestWriterFailure:
    """A peer that stops reading must never wedge admission."""

    def test_dead_writer_releases_every_admission_slot(self):
        class FailingStdout:
            """A peer that vanished: every write is a reset."""

            def write(self, data):
                raise ConnectionResetError("peer went away")

            def flush(self):
                pass

        frames = (HOLDS_FRAME + "\n") * 3 + REFUTED_FRAME + "\n"
        stdin = io.BytesIO(frames.encode())
        server = ContainmentServer(ServeConfig(workers=2, queue_limit=8))

        async def run():
            await server.serve_pipe(stdin=stdin, stdout=FailingStdout())

        asyncio.run(run())
        # All four frames were admitted; although no response could be
        # written, every _finish task still ran: slots released, frames
        # accounted.  A leak here would wedge a shared server once
        # pending hit queue_limit.
        assert server._admission.admitted_total == 4
        assert server._admission.pending == 0
        assert server._frames_answered == 4

    def test_peer_reset_ends_connection_cleanly(self):
        import socket as socket_module
        import struct

        async def run():
            async with running_server(workers=2) as (server, port):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write((HOLDS_FRAME + "\n").encode())
                await writer.drain()
                for _ in range(500):
                    if server._connections:
                        break
                    await asyncio.sleep(0.01)
                [conn_task] = server._connections
                # SO_LINGER(1, 0) turns close() into a hard RST: the
                # server's next read raises ConnectionResetError.
                sock = writer.get_extra_info("socket")
                sock.setsockopt(
                    socket_module.SOL_SOCKET,
                    socket_module.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                writer.close()
                await asyncio.wait_for(
                    asyncio.wait({conn_task}), timeout=10
                )
                # A vanished peer is a normal connection end: no
                # exception escapes the handler task, and the admitted
                # frame's slot was still released.
                assert conn_task.exception() is None
                assert server._admission.pending == 0

        asyncio.run(run())


class TestDrain:
    def test_drain_sheds_new_frames_but_answers_them(self):
        async def run():
            async with running_server() as (server, port):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write((HOLDS_FRAME + "\n").encode())
                await writer.drain()
                first = json.loads(await reader.readline())
                assert first["verdict"] == "holds"
                server.initiate_drain()
                writer.write((REFUTED_FRAME + "\n").encode())
                writer.write(('{"op": "health"}' + "\n").encode())
                await writer.drain()
                writer.write_eof()
                shed = json.loads(await reader.readline())
                assert shed["verdict"] == "inconclusive"
                assert shed["admission"]["shed"] == "draining"
                health = json.loads(await reader.readline())
                assert health["status"] == "draining"
                assert await reader.readline() == b""
                writer.close()
                # New connections are refused once the listener closed.
                with pytest.raises(OSError):
                    await asyncio.open_connection("127.0.0.1", port)

        asyncio.run(run())


class TestRequestIds:
    def test_server_assigns_unique_ids_and_echoes_client_ones(self):
        async def run():
            async with running_server() as (server, port):
                client_frame = json.dumps(
                    {
                        "id": "p9",
                        "left": "rpq:a a",
                        "right": "rpq:a+",
                        "request_id": "trace-me-0007",
                    }
                )
                responses = await roundtrip(
                    port,
                    [HOLDS_FRAME, REFUTED_FRAME, "garbage", client_frame],
                )
                ids = [r["request_id"] for r in responses]
                assert len(set(ids)) == 4
                # Server-assigned ids are r<pid-hex>-<seq>; the
                # client-supplied one comes back verbatim.
                for rid in ids[:3]:
                    assert rid.startswith("r")
                    assert "-" in rid
                assert ids[3] == "trace-me-0007"

        asyncio.run(run())

    def test_control_payloads_carry_request_ids(self):
        async def run():
            async with running_server() as (server, port):
                health, metrics, debug = await roundtrip(
                    port,
                    [
                        '{"op": "health"}',
                        '{"op": "metrics", "request_id": "probe-2"}',
                        '{"op": "debug"}',
                    ],
                )
                assert health["request_id"]
                assert metrics["request_id"] == "probe-2"
                assert debug["request_id"]

        asyncio.run(run())


class TestTelemetry:
    def test_access_log_covers_every_frame_exactly_once(self, tmp_path):
        log_path = tmp_path / "access.ndjson"

        async def run():
            async with running_server(access_log=str(log_path)) as (
                server,
                port,
            ):
                await roundtrip(
                    port,
                    [
                        HOLDS_FRAME,
                        "garbage",
                        REFUTED_FRAME,
                        '{"op": "health"}',
                        '{"op": "metrics"}',
                        '{"op": "debug"}',
                    ],
                )

        asyncio.run(run())
        # Drain closed the writer, so the log is complete on disk.
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(records) == 6
        for record in records:
            assert validate_access_record(record) == [], record
        ids = [r["request_id"] for r in records]
        assert len(set(ids)) == 6
        by_op: dict[str, int] = {}
        for record in records:
            by_op[record["op"]] = by_op.get(record["op"], 0) + 1
        assert by_op == {
            "contain": 2,
            "invalid": 1,
            "health": 1,
            "metrics": 1,
            "debug": 1,
        }
        contain = [r for r in records if r["op"] == "contain"]
        assert {r["verdict"] for r in contain} == {"holds", "refuted"}
        for record in contain:
            assert record["shed"] is None
            assert record["total_ms"] >= record["exec_ms"] >= 0

    def test_sheds_land_in_the_access_log_with_reasons(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.core.batch.check_containment", blocking_check(gate)
        )
        log_path = tmp_path / "access.ndjson"

        async def run():
            async with running_server(
                workers=1, queue_limit=1, access_log=str(log_path)
            ) as (server, port):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(("".join([HOLDS_FRAME + "\n"] * 3)).encode())
                await writer.drain()
                writer.write_eof()
                for _ in range(500):
                    if server._admission.shed_total >= 2:
                        break
                    await asyncio.sleep(0.01)
                gate.set()
                while await reader.readline():
                    pass
                writer.close()

        asyncio.run(run())
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert len(records) == 3
        sheds = [r for r in records if r["shed"] is not None]
        assert len(sheds) == 2
        for record in sheds:
            assert record["shed"] == "queue_full"
            assert record["verdict"] == "inconclusive"

    def test_debug_verb_returns_flight_entries_for_slow_and_shed(self):
        async def run():
            # slow_ms=0: every request counts as slow, so sampled
            # traces are retained and the debug verb must show them.
            async with running_server(
                slow_ms=0.0, trace_sample_rate=1.0
            ) as (server, port):
                responses = await roundtrip(
                    port,
                    [HOLDS_FRAME, REFUTED_FRAME, '{"op": "debug", "last": 10}'],
                )
                contain, debug = responses[:2], responses[2]
                flight = debug["flight"]
                assert flight["schema"] == "repro-flight/1"
                assert flight["recorded_total"] == 2
                entries = flight["entries"]
                assert [e["request_id"] for e in entries] == [
                    r["request_id"] for r in contain
                ]
                for entry in entries:
                    assert entry["trace"]["name"]

        asyncio.run(run())

    def test_debug_last_bounds_the_entries(self):
        async def run():
            async with running_server() as (server, port):
                responses = await roundtrip(
                    port,
                    [HOLDS_FRAME] * 4 + ['{"op": "debug", "last": 2}'],
                )
                entries = responses[-1]["flight"]["entries"]
                assert len(entries) == 2
                assert [e["request_id"] for e in entries] == [
                    r["request_id"] for r in responses[2:4]
                ]

        asyncio.run(run())

    def test_sampling_feeds_the_metrics_verb_profile(self):
        async def run():
            async with running_server(trace_sample_rate=1.0) as (
                server,
                port,
            ):
                responses = await roundtrip(
                    port, [HOLDS_FRAME, REFUTED_FRAME, '{"op": "metrics"}']
                )
                payload = responses[-1]
                assert payload["telemetry"]["sample_rate"] == 1.0
                assert payload["telemetry"]["sampled"] == 2
                recorder = payload["telemetry"]["flight_recorder"]
                assert recorder["recorded_total"] == 2
                profile = payload["profile"]
                assert profile["traces"] == 2
                assert any(
                    entry["path"].startswith("check-containment")
                    for entry in profile["entries"]
                )

        asyncio.run(run())

    def test_unsampled_requests_carry_no_trace(self):
        async def run():
            async with running_server(trace_sample_rate=0.0) as (
                server,
                port,
            ):
                await roundtrip(port, [HOLDS_FRAME])
                [entry] = server._telemetry.recorder.entries()
                assert "trace" not in entry
                assert server._telemetry.profile_snapshot()["traces"] == 0

        asyncio.run(run())

    def test_health_reports_schema_and_environment(self):
        async def run():
            async with running_server() as (server, port):
                [resp] = await roundtrip(port, ['{"op": "health"}'])
                assert resp["schema"] == "repro-serve/1"
                environment = resp["environment"]
                assert environment["python"]
                assert environment["platform"]
                assert "commit" in environment

        asyncio.run(run())

    def test_dequeue_shed_records_queued_ms_and_deadline_counter(
        self, monkeypatch
    ):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.core.batch.check_containment", blocking_check(gate)
        )

        async def run():
            before = metrics_snapshot()
            async with running_server(workers=1, queue_limit=8) as (
                server,
                port,
            ):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                deadline_frame = json.dumps(
                    {
                        "id": "late",
                        "left": "rpq:a a",
                        "right": "rpq:a+",
                        "deadline_ms": 50,
                    }
                )
                writer.write(
                    (HOLDS_FRAME + "\n" + deadline_frame + "\n").encode()
                )
                await writer.drain()
                writer.write_eof()
                for _ in range(500):
                    if server._admission.pending >= 2:
                        break
                    await asyncio.sleep(0.01)
                await asyncio.sleep(0.1)
                gate.set()
                while await reader.readline():
                    pass
                writer.close()
                after = metrics_snapshot()
                # The dequeue-shed request still contributes its full
                # queue wait to serve.queued_ms (its wall_ms is 0), and
                # the shed reason lands on the suffixed counter.
                queued_before = before.get("serve.queued_ms", {})
                queued_after = after["serve.queued_ms"]
                assert (
                    queued_after["count"] - queued_before.get("count", 0) == 2
                )
                assert (
                    queued_after["sum"] - queued_before.get("sum", 0.0) >= 50
                )
                shed_deadline = after["serve.shed.deadline"]["value"] - (
                    before.get("serve.shed.deadline", {}).get("value", 0)
                )
                assert shed_deadline == 1
                # The access record for the shed request mirrors it.
                shed_records = [
                    entry
                    for entry in server._telemetry.recorder.entries()
                    if entry["shed"] == "deadline"
                ]
                assert len(shed_records) == 1
                assert shed_records[0]["queued_ms"] >= 50
                assert shed_records[0]["exec_ms"] == 0

        asyncio.run(run())

    def test_sigterm_drains_and_dumps_the_flight_recorder(self, tmp_path):
        dump_path = tmp_path / "flight.json"

        async def run():
            config = ServeConfig(
                port=0, workers=2, flight_dump=str(dump_path)
            )
            server = ContainmentServer(config)
            task = asyncio.create_task(server.serve_tcp())
            for _ in range(500):
                if server._server is not None and server._server.sockets:
                    break
                await asyncio.sleep(0.01)
            port = server._server.sockets[0].getsockname()[1]
            responses = await roundtrip(port, [HOLDS_FRAME, REFUTED_FRAME])
            assert [r["verdict"] for r in responses] == ["holds", "refuted"]
            # A real SIGTERM: the loop's signal handler initiates the
            # drain, and the drain path writes the dump.
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(task, 15)

        asyncio.run(run())
        dump = json.loads(dump_path.read_text())
        assert dump["schema"] == "repro-flight/1"
        assert dump["recorded_total"] == 2
        assert len(dump["entries"]) == 2
        verdicts = {entry["verdict"] for entry in dump["entries"]}
        assert verdicts == {"holds", "refuted"}


class TestPrometheusEndpoint:
    def test_scrape_returns_exposition_with_serve_metrics(self):
        async def run():
            async with running_server(prom_port=0) as (server, port):
                await roundtrip(port, [HOLDS_FRAME])
                prom_port = (
                    server._prom_server.sockets[0].getsockname()[1]
                )
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", prom_port
                )
                writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                payload = await reader.read()
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                head, _, body = payload.partition(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.0 200 OK")
                assert b"text/plain; version=0.0.4" in head
                text = body.decode("utf-8")
                assert "# TYPE serve_requests counter" in text
                assert "# TYPE serve_latency_ms histogram" in text
                assert 'serve_latency_ms_bucket{le="+Inf"}' in text
                assert "serve_latency_ms_count" in text

        asyncio.run(run())


class TestPipeMode:
    def test_pipe_mode_answers_workload_on_stdout(self):
        stdin = io.BytesIO(
            (HOLDS_FRAME + "\n" + "garbage\n" + REFUTED_FRAME + "\n").encode()
        )
        stdout = io.BytesIO()

        async def run():
            server = ContainmentServer(ServeConfig(workers=2))
            await server.serve_pipe(stdin=stdin, stdout=stdout)

        asyncio.run(run())
        lines = stdout.getvalue().decode().splitlines()
        responses = [json.loads(line) for line in lines]
        assert [r["index"] for r in responses] == [0, 1, 2]
        assert responses[0]["verdict"] == "holds"
        assert responses[1]["verdict"] == "error"
        assert responses[2]["verdict"] == "refuted"
