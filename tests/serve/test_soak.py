"""Concurrency soak tests: real clients against a live server process.

The smoke variants run in CI (``-m "not slow"``, a few seconds total);
the ``slow``-marked soak scales the same scenario up.  Invariants under
load (the ISSUE acceptance criteria):

- every client's verdicts agree with :func:`sequential_baseline` run
  in-process over the same workload — concurrency never changes
  answers;
- zero connection resets — overload degrades via shed responses, never
  via dropped sockets;
- SIGTERM mid-burst drains gracefully: every frame the clients managed
  to send is answered (or shed with ``details['admission']``), and the
  server exits 0.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.batch import sequential_baseline
from repro.serve import protocol

REPO = pathlib.Path(__file__).resolve().parents[2]
WORKLOAD = REPO / "benchmarks" / "workloads" / "batch_smoke.ndjson"


def start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` on a free port; return (process, port)."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    assert process.stderr is not None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if line.startswith("# serving on "):
            return process, int(line.split()[3].rsplit(":", 1)[1])
        if not line and process.poll() is not None:
            break
    process.kill()
    raise RuntimeError("server never announced its port")


def stop_server(process: subprocess.Popen) -> int:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
    if process.stderr is not None:
        process.stderr.close()
    return process.returncode


class Client(threading.Thread):
    """One soak client: replay a workload, collect every response line."""

    def __init__(self, port: int, lines: list[str]):
        super().__init__(daemon=True)
        self.port = port
        self.lines = lines
        self.responses: list[dict] = []
        self.reset: Exception | None = None

    def run(self) -> None:
        try:
            with socket.create_connection(("127.0.0.1", self.port), 10) as sock:
                sock.settimeout(60)
                sock.sendall(
                    "".join(line + "\n" for line in self.lines).encode()
                )
                sock.shutdown(socket.SHUT_WR)
                with sock.makefile("r", encoding="utf-8") as stream:
                    for line in stream:
                        self.responses.append(json.loads(line))
        except OSError as exc:  # connection reset / refused / timeout
            self.reset = exc


def run_soak(clients: int, repetitions: int, backend: str = "thread") -> None:
    """The soak scenario shared by the smoke and slow variants."""
    workload_text = WORKLOAD.read_text()
    lines = [
        line for line in workload_text.splitlines() if line.strip()
    ] * repetitions
    parsed = protocol.parse_workload(workload_text)
    assert not parsed.failures
    oracle = sequential_baseline(
        [(request.left, request.right) for request in parsed.requests]
    )
    expected = [result.verdict.value for result in oracle] * repetitions

    process, port = start_server(
        "--workers", "4", "--queue-limit", "512", "--backend", backend
    )
    try:
        fleet = [Client(port, lines) for _ in range(clients)]
        for client in fleet:
            client.start()
        for client in fleet:
            client.join(timeout=120)
            assert not client.is_alive(), "client hung"
        for client in fleet:
            assert client.reset is None, f"connection reset: {client.reset}"
            assert len(client.responses) == len(lines)
            # Responses come back in input order with verdicts agreeing
            # with the sequential oracle — and with capacity for the
            # whole fleet, nothing was shed.
            assert [r["index"] for r in client.responses] == list(
                range(len(lines))
            )
            assert [r["verdict"] for r in client.responses] == expected
            assert all(
                r["method"] != "serve-admission" for r in client.responses
            )
    finally:
        assert stop_server(process) == 0


def test_soak_smoke_four_concurrent_clients():
    run_soak(clients=4, repetitions=1)


def test_soak_smoke_process_backend():
    # The same fleet against process workers: crash-isolated execution
    # must be answer-for-answer identical to the thread pool.
    run_soak(clients=4, repetitions=1, backend="process")


@pytest.mark.slow
def test_soak_eight_clients_replaying_three_times():
    run_soak(clients=8, repetitions=3)


@pytest.mark.slow
def test_soak_process_backend_under_repetition():
    run_soak(clients=4, repetitions=3, backend="process")


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_sigterm_mid_burst_answers_or_sheds_every_frame(backend):
    """Drain contract: SIGTERM mid-burst loses no accepted frame —
    on either pool substrate (drain must wait on process workers too)."""
    lines = [
        line for line in WORKLOAD.read_text().splitlines() if line.strip()
    ]
    process, port = start_server(
        "--workers", "2", "--queue-limit", "64", "--drain-grace-ms", "10000",
        "--backend", backend,
    )
    responses: list[dict] = []
    sent = 0
    with socket.create_connection(("127.0.0.1", port), 10) as sock:
        sock.settimeout(60)
        stream_in = sock.makefile("rb")
        # Health round-trip first: proves the server *accepted* this
        # connection (a connection still in the kernel backlog when
        # SIGTERM closes the listener was never accepted work).
        sock.sendall(b'{"op": "health"}\n')
        sent += 1
        responses.append(json.loads(stream_in.readline()))
        assert responses[0]["status"] == "ok"
        # First half of the burst, then SIGTERM, then the rest: the
        # post-signal frames must still be answered (likely shed).
        for line in lines[:10]:
            sock.sendall((line + "\n").encode())
            sent += 1
        process.send_signal(signal.SIGTERM)
        for line in lines[10:]:
            sock.sendall((line + "\n").encode())
            sent += 1
        sock.shutdown(socket.SHUT_WR)
        for line in stream_in:
            responses.append(json.loads(line))
        stream_in.close()
    # The mid-burst SIGTERM already initiated drain — the process must
    # now exit 0 on its own, without another signal.
    try:
        assert process.wait(timeout=30) == 0
    finally:
        stop_server(process)
    assert len(responses) == sent, "a frame went unanswered across drain"
    assert [r["index"] for r in responses] == list(range(sent))
    for response in responses[1:]:
        if response["method"] == "serve-admission":
            assert response["admission"]["shed"] in ("draining", "queue_full")
            assert "spend" in response["admission"]
        else:
            assert response["verdict"] in ("holds", "refuted")


def test_slow_marker_is_registered():
    """The CI smoke filter (-m 'not slow') must never warn-and-run-all."""
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "--markers"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert "slow" in result.stdout
