"""Unit tests for admission control and the shed-response contract."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.budget import Budget
from repro.report import Verdict
from repro.serve.admission import (
    SHED_REASONS,
    AdmissionController,
    AdmissionPolicy,
    shed_result,
)

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)


class TestController:
    def test_admits_until_capacity_then_sheds_queue_full(self):
        controller = AdmissionController(AdmissionPolicy(capacity=3))
        assert [controller.try_admit() for _ in range(3)] == [None, None, None]
        assert controller.try_admit() == "queue_full"
        assert controller.pending == 3
        controller.release()
        assert controller.try_admit() is None
        assert controller.admitted_total == 4
        assert controller.shed_total == 1

    def test_draining_sheds_regardless_of_load(self):
        controller = AdmissionController(AdmissionPolicy(capacity=8))
        assert controller.try_admit(draining=True) == "draining"
        assert controller.pending == 0

    def test_release_without_admission_is_a_bug(self):
        controller = AdmissionController(AdmissionPolicy(capacity=1))
        with pytest.raises(RuntimeError):
            controller.release()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(capacity=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(default_deadline_ms=0)

    @SETTINGS
    @given(
        requested=st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
        ),
        default=st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
        ),
    )
    def test_effective_deadline_only_tightens(self, requested, default):
        controller = AdmissionController(
            AdmissionPolicy(default_deadline_ms=default)
        )
        effective = controller.effective_deadline_ms(requested)
        bounds = [d for d in (requested, default) if d is not None]
        assert effective == (min(bounds) if bounds else None)
        # Matches Budget.tightened's inheritance rule exactly.
        if default is not None and requested is not None:
            assert (
                Budget(deadline_ms=default).tightened(requested).deadline_ms
                == effective
            )


class TestShedResult:
    @SETTINGS
    @given(
        reason=st.sampled_from(SHED_REASONS),
        queue_depth=st.integers(min_value=0, max_value=1000),
        queue_limit=st.integers(min_value=1, max_value=1000),
        waited_ms=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_always_inconclusive_with_admission_spend(
        self, reason, queue_depth, queue_limit, waited_ms
    ):
        """The acceptance-criterion shape: every shed response carries
        details['admission'] with spend accounting, and degrades like a
        budget-exhausted check."""
        result = shed_result(
            reason,
            queue_depth=queue_depth,
            queue_limit=queue_limit,
            waited_ms=waited_ms,
        )
        assert result.verdict is Verdict.INCONCLUSIVE
        assert not result.holds
        admission = result.details["admission"]
        assert admission["shed"] == reason
        assert admission["queue_depth"] == queue_depth
        assert admission["queue_limit"] == queue_limit
        assert admission["spend"]["queued_ms"] == pytest.approx(
            waited_ms, abs=1e-3
        )
        budget = result.details["budget"]
        assert budget["exhausted"] == f"admission:{reason}"
        assert budget["spend"] == admission["spend"]
        # Uniform details contract with engine results.
        assert result.details["kernel"]["selected"] is None
        assert result.details["cache"] == "bypass"

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            shed_result("tired", queue_depth=0, queue_limit=1)


class TestBudgetTightening:
    """Deadline inheritance from wire requests into Budget objects."""

    def test_none_inherits_unchanged(self):
        budget = Budget(deadline_ms=500.0, max_configs=7)
        assert budget.tightened(None) is budget

    def test_request_can_only_tighten(self):
        budget = Budget(deadline_ms=500.0, max_configs=7)
        assert budget.tightened(200.0).deadline_ms == 200.0
        assert budget.tightened(900.0).deadline_ms == 500.0
        # Non-deadline fields (and escalation policy) are inherited.
        assert budget.tightened(200.0).max_configs == 7
        assert Budget.auto().tightened(100.0).escalate is True

    def test_unbounded_server_adopts_request_deadline(self):
        assert Budget().tightened(250.0).deadline_ms == 250.0

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            Budget().tightened(0.0)
        with pytest.raises(ValueError):
            Budget().tightened(-10.0)
