"""Property tests for the serving wire protocol.

The protocol contract under test (mirroring ``repro batch`` semantics):

- request/response NDJSON frames round-trip on randomized payloads;
- malformed frames are *isolated* — each becomes an error response at
  its own input position, never an abort and never a shifted neighbour;
- input order is always preserved: the parsed requests' indices plus
  the failure positions partition the input line range exactly.

All properties are derandomized so CI replays the same corpus.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import BatchItem
from repro.report import Verdict
from repro.serve import protocol

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)

#: Valid kind:spec strings drawn by the generators (parse quickly).
VALID_SPECS = (
    "rpq:a a",
    "rpq:a+",
    "rpq:(a b)*",
    "rpq:a|b",
    "rpq:p p- p",
    "rq:ans(x, y) :- [e+](x, y).",
    "datalog:q(x,y) :- e(x,y).",
)

#: Frames that must fail parse_frame outright.
MALFORMED_FRAMES = (
    "not json at all",
    "[1, 2, 3]",
    '"just a string"',
    "{}",
    '{"left": "rpq:a"}',
    '{"left": "rpq:a", "right": 17}',
    '{"left": "nosuchkind:a", "right": "rpq:a"}',
    '{"left": "rpq:((", "right": "rpq:a"}',
    '{"left": "rpq:a", "right": "rpq:a", "op": "explode"}',
    '{"left": "rpq:a", "right": "rpq:a", "deadline_ms": -5}',
    '{"left": "rpq:a", "right": "rpq:a", "deadline_ms": true}',
    '{"left": "rpq:a", "right": "rpq:a", "kernel": "warp"}',
    '{"left": "rpq:a", "right": "rpq:a", "max_expansions": 0}',
)

#: Lines that must each be isolated as a *workload* parse failure —
#: the malformed frames plus control verbs, which are valid frames but
#: not workload lines.
MALFORMED_LINES = MALFORMED_FRAMES + ('{"op": "health"}', '{"op": "metrics"}')

identifiers = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=24),
    st.none(),
    st.booleans(),
)

valid_records = st.fixed_dictionaries(
    {"left": st.sampled_from(VALID_SPECS), "right": st.sampled_from(VALID_SPECS)},
    optional={
        "id": identifiers,
        "deadline_ms": st.floats(min_value=1.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
        "kernel": st.sampled_from(("subset", "antichain", "auto")),
        "max_expansions": st.integers(min_value=1, max_value=512),
        "unknown_extra": st.integers(),  # unknown keys are ignored
    },
)

#: A workload line paired with whether it must parse.
lines = st.one_of(
    valid_records.map(lambda r: (json.dumps(r), True)),
    st.sampled_from(MALFORMED_LINES).map(lambda l: (l, False)),
)


class TestFrameParsing:
    @SETTINGS
    @given(record=valid_records, index=st.integers(min_value=0, max_value=10**6))
    def test_valid_frame_parses_with_identity_preserved(self, record, index):
        frame = protocol.parse_frame(json.dumps(record), index)
        assert isinstance(frame, protocol.ContainRequest)
        assert frame.index == index
        assert frame.id == record.get("id", index)
        if "deadline_ms" in record:
            assert frame.deadline_ms == pytest.approx(record["deadline_ms"])
        else:
            assert frame.deadline_ms is None
        for key in ("kernel", "max_expansions"):
            assert frame.options.get(key) == record.get(key)
        assert "unknown_extra" not in frame.options

    @SETTINGS
    @given(line=st.sampled_from(MALFORMED_FRAMES))
    def test_malformed_frame_raises_isolatable_error(self, line):
        with pytest.raises(Exception):
            protocol.parse_frame(line, 0)

    def test_control_verbs_parse(self):
        for verb in protocol.CONTROL_VERBS:
            frame = protocol.parse_frame(json.dumps({"op": verb, "id": "x"}), 7)
            assert isinstance(frame, protocol.ControlRequest)
            assert (frame.verb, frame.id, frame.index) == (verb, "x", 7)
            assert frame.last is None
            assert frame.request_id is None

    def test_debug_verb_accepts_last(self):
        frame = protocol.parse_frame('{"op": "debug", "last": 20}', 0)
        assert isinstance(frame, protocol.ControlRequest)
        assert frame.verb == "debug"
        assert frame.last == 20

    @pytest.mark.parametrize("last", [0, -1, 1.5, True, "five"])
    def test_bad_last_rejected(self, last):
        with pytest.raises(protocol.ProtocolError, match="last"):
            protocol.parse_frame(json.dumps({"op": "debug", "last": last}), 0)

    def test_request_id_propagates_on_contain_and_control(self):
        contain = protocol.parse_frame(
            '{"left": "rpq:a", "right": "rpq:a+", "request_id": "trace-7"}', 0
        )
        assert contain.request_id == "trace-7"
        control = protocol.parse_frame(
            '{"op": "health", "request_id": "probe-1"}', 0
        )
        assert control.request_id == "probe-1"

    @pytest.mark.parametrize(
        "request_id", ["", 7, True, {"nested": 1}, "x" * 129]
    )
    def test_bad_request_id_rejected(self, request_id):
        record = {"left": "rpq:a", "right": "rpq:a+", "request_id": request_id}
        with pytest.raises(protocol.ProtocolError, match="request_id"):
            protocol.parse_frame(json.dumps(record), 0)

    def test_error_item_carries_request_id(self):
        item = protocol.error_item(3, ValueError("boom"), "rid-9")
        assert item.request_id == "rid-9"
        assert item.to_dict()["request_id"] == "rid-9"
        plain = protocol.error_item(3, ValueError("boom"))
        assert "request_id" not in plain.to_dict()


class TestWorkloadOrderPreservation:
    @SETTINGS
    @given(workload=st.lists(lines, max_size=12))
    def test_positions_partition_the_input(self, workload):
        """Requests + failures cover every line at its input position."""
        text = "\n".join(line for line, _ in workload) + "\n"
        parsed = protocol.parse_workload(text)
        assert parsed.count == len(workload)
        request_positions = [request.index for request in parsed.requests]
        failure_positions = sorted(parsed.failures)
        assert sorted(request_positions + failure_positions) == list(
            range(len(workload))
        )
        # Order preserved: requests come back in input order, and each
        # position's validity matches what was generated for it.
        assert request_positions == sorted(request_positions)
        for position, (_, ok) in enumerate(workload):
            assert (position in parsed.failures) == (not ok)

    @SETTINGS
    @given(workload=st.lists(lines, max_size=12), blanks=st.data())
    def test_blank_lines_are_skipped_not_counted(self, workload, blanks):
        padded: list[str] = []
        for line, _ in workload:
            if blanks.draw(st.booleans()):
                padded.append(blanks.draw(st.sampled_from(["", "   ", "\t"])))
            padded.append(line)
        parsed = protocol.parse_workload("\n".join(padded) + "\n")
        assert parsed.count == len(workload)

    @SETTINGS
    @given(workload=st.lists(lines, max_size=12))
    def test_failures_are_error_items_with_traceback(self, workload):
        text = "\n".join(line for line, _ in workload) + "\n"
        parsed = protocol.parse_workload(text)
        for position, item in parsed.failures.items():
            assert isinstance(item, BatchItem)
            assert item.index == position
            assert item.result.verdict is Verdict.ERROR
            error = item.result.details["error"]
            assert error["type"] and error["message"] is not None


class TestResponseRoundTrip:
    @SETTINGS
    @given(
        identifier=identifiers,
        index=st.integers(min_value=0, max_value=10**6),
        payload_extra=st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.one_of(identifiers, st.floats(allow_nan=False, allow_infinity=False)),
            max_size=4,
        ),
    )
    def test_encode_decode_round_trips(self, identifier, index, payload_extra):
        item = protocol.error_item(index, ValueError("boom"))
        payload = protocol.response_payload(identifier, item, index=index)
        payload.update(payload_extra)
        line = protocol.encode_frame(payload)
        assert line.endswith("\n") and "\n" not in line[:-1]
        decoded = json.loads(line)
        assert decoded == json.loads(json.dumps(payload, default=str))
        assert decoded["id"] == identifier
        assert decoded["index"] == index
        assert decoded["verdict"] == "error"

    def test_response_payload_carries_admission_details(self):
        from repro.serve.admission import shed_result

        result = shed_result(
            "queue_full", queue_depth=9, queue_limit=8, waited_ms=1.5
        )
        payload = protocol.response_payload(
            "r1", BatchItem(4, result, 0.0, None), index=4
        )
        assert payload["admission"]["shed"] == "queue_full"
        assert payload["admission"]["spend"]["queued_ms"] == 1.5
        decoded = json.loads(protocol.encode_frame(payload))
        assert decoded["admission"]["queue_limit"] == 8


class TestSharedWithBatch:
    """The workload parser is the one `repro batch` runs on."""

    def test_smoke_workload_parses_fully(self):
        text = open("benchmarks/workloads/batch_smoke.ndjson").read()
        parsed = protocol.parse_workload(text)
        assert len(parsed.requests) == 20
        assert not parsed.failures

    def test_query_spec_errors_are_protocol_errors(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_query_spec("rpq")  # no spec at all
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_query_spec("klingon:a b")


class TestFileSpecGating:
    """``@`` file specs are a local convenience, rejected on the wire."""

    def test_wire_frames_reject_file_specs(self, tmp_path):
        secret = tmp_path / "secret.txt"
        secret.write_text("should never be read")
        frame = json.dumps({"left": f"rpq:@{secret}", "right": "rpq:a+"})
        with pytest.raises(protocol.ProtocolError, match="file specs"):
            protocol.parse_frame(frame, 0)
        with pytest.raises(protocol.ProtocolError, match="file specs"):
            protocol.parse_query_spec(f"rpq:@{secret}")
        # The gate fires before any filesystem access: a nonexistent
        # path raises the same ProtocolError, not FileNotFoundError.
        with pytest.raises(protocol.ProtocolError, match="file specs"):
            protocol.parse_query_spec("rpq:@/no/such/file")

    def test_operator_supplied_specs_may_read_files(self, tmp_path):
        query = tmp_path / "q.rpq"
        query.write_text("a a")
        parsed = protocol.parse_query_spec(f"rpq:@{query}", allow_files=True)
        assert parsed is not None
        line = json.dumps({"left": f"rpq:@{query}", "right": "rpq:a+"})
        workload = protocol.parse_workload(line + "\n")  # files on by default
        assert not workload.failures
        assert len(workload.requests) == 1

    def test_workload_parsing_can_disallow_files(self, tmp_path):
        query = tmp_path / "q.rpq"
        query.write_text("a a")
        line = json.dumps({"left": f"rpq:@{query}", "right": "rpq:a+"})
        workload = protocol.parse_workload(line + "\n", allow_files=False)
        assert not workload.requests
        assert 0 in workload.failures  # isolated, not an abort
