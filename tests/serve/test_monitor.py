"""The ``repro top`` client: snapshot deltas, quantile estimates, and a
live metrics-verb round-trip against an in-process server."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.serve.monitor import (
    delta_quantile_ms,
    fetch_control,
    fetch_metrics,
    parse_addr,
    render_top,
    top_deltas,
)


def _payload(uptime_ms, **metrics):
    return {"op": "metrics", "uptime_ms": uptime_ms, "metrics": metrics}


def _counter(value):
    return {"type": "counter", "value": value}


def _gauge(value):
    return {"type": "gauge", "value": value}


def _histogram(observations, boundaries=(1.0, 10.0, 100.0)):
    cumulative = {}
    running = 0
    for boundary in boundaries:
        running = sum(1 for obs in observations if obs <= boundary)
        cumulative[repr(boundary)] = running
    cumulative["+Inf"] = len(observations)
    return {
        "type": "histogram",
        "count": len(observations),
        "sum": sum(observations),
        "buckets": cumulative,
    }


class TestParseAddr:
    def test_host_port(self):
        assert parse_addr("10.1.2.3:9000") == ("10.1.2.3", 9000)

    def test_bare_host_uses_default_port(self):
        assert parse_addr("example.test") == ("example.test", 7407)

    def test_bare_port(self):
        assert parse_addr(":9000") == ("127.0.0.1", 9000)

    def test_garbage_port_rejected(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_addr("host:notaport")


class TestDeltas:
    def test_rates_come_from_counter_deltas_over_server_uptime(self):
        prev = _payload(
            10_000.0,
            **{
                "serve.requests": _counter(100),
                "serve.responses": _counter(100),
                "serve.shed": _counter(4),
                "serve.shed.queue_full": _counter(4),
            },
        )
        cur = _payload(
            12_000.0,
            **{
                "serve.requests": _counter(150),
                "serve.responses": _counter(148),
                "serve.shed": _counter(10),
                "serve.shed.queue_full": _counter(8),
                "serve.shed.deadline": _counter(2),
                "serve.queue_depth": _gauge(3),
                "serve.worker_utilization": _gauge(0.5),
            },
        )
        deltas = top_deltas(prev, cur)
        assert deltas["dt_s"] == 2.0
        assert deltas["requests_per_s"] == 25.0
        assert deltas["responses_per_s"] == 24.0
        assert deltas["shed_per_s"] == 3.0
        assert deltas["shed_by"] == {
            "queue_full": 2.0,
            "deadline": 1.0,
            "draining": 0.0,
        }
        assert deltas["queue_depth"] == 3
        assert deltas["worker_utilization"] == 0.5

    def test_non_positive_uptime_delta_yields_zero_rates(self):
        payload = _payload(5_000.0, **{"serve.requests": _counter(10)})
        restarted = _payload(100.0, **{"serve.requests": _counter(90)})
        deltas = top_deltas(payload, restarted)
        assert deltas["dt_s"] == 0.0
        assert deltas["requests_per_s"] == 0.0

    def test_quantiles_come_from_bucket_deltas(self):
        # Window observations: 8 fast (≤1ms), 2 slow (≤100ms): p50 lands
        # in the 1ms bucket, p95 in the 100ms bucket.
        prev = _payload(
            0.0, **{"serve.latency_ms": _histogram([0.5] * 10)}
        )
        cur = _payload(
            1_000.0,
            **{
                "serve.latency_ms": _histogram(
                    [0.5] * 10 + [0.5] * 8 + [50.0] * 2
                )
            },
        )
        assert delta_quantile_ms(
            prev["metrics"], cur["metrics"], "serve.latency_ms", 0.5
        ) == 1.0
        assert delta_quantile_ms(
            prev["metrics"], cur["metrics"], "serve.latency_ms", 0.95
        ) == 100.0

    def test_empty_window_quantile_is_none(self):
        payload = _payload(0.0, **{"serve.latency_ms": _histogram([1.0])})
        assert (
            delta_quantile_ms(
                payload["metrics"], payload["metrics"], "serve.latency_ms", 0.5
            )
            is None
        )

    def test_rank_in_the_overflow_bucket_reports_largest_finite_bound(self):
        prev = _payload(0.0, **{"serve.latency_ms": _histogram([])})
        cur = _payload(
            1_000.0, **{"serve.latency_ms": _histogram([500.0, 900.0])}
        )
        assert delta_quantile_ms(
            prev["metrics"], cur["metrics"], "serve.latency_ms", 0.95
        ) == 100.0

    def test_missing_instruments_render_as_zeroes(self):
        deltas = top_deltas(_payload(0.0), _payload(1_000.0))
        assert deltas["requests_per_s"] == 0.0
        assert deltas["latency_p50_ms"] is None

    def test_render_top_is_two_plain_lines(self):
        prev = _payload(0.0, **{"serve.requests": _counter(0)})
        cur = _payload(
            2_000.0,
            **{
                "serve.requests": _counter(10),
                "serve.queue_depth": _gauge(1),
                "serve.worker_utilization": _gauge(0.25),
            },
        )
        text = render_top(prev, cur, addr="127.0.0.1:7407")
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("127.0.0.1:7407 dt=2s req/s=5")
        assert "util=25%" in lines[1]
        assert "p50~-" in lines[1]  # no latency observations this window


class _LiveServer:
    """A real server on a background thread for blocking-client tests."""

    def __enter__(self):
        import asyncio

        from repro.serve.server import ContainmentServer, ServeConfig

        self.server = ContainmentServer(ServeConfig(port=0, workers=2))
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve_tcp()), daemon=True
        )
        self.thread.start()
        for _ in range(500):
            if self.server._server is not None and self.server._server.sockets:
                break
            time.sleep(0.01)
        else:
            raise RuntimeError("server never started listening")
        self.port = self.server._server.sockets[0].getsockname()[1]
        return self

    def __exit__(self, *exc_info):
        self.server._loop.call_soon_threadsafe(self.server.initiate_drain)
        self.thread.join(timeout=15)


class TestLiveFetch:
    def test_fetch_metrics_round_trip_and_rates(self):
        with _LiveServer() as live:
            before = fetch_metrics("127.0.0.1", live.port)
            assert before["op"] == "metrics"
            with socket.create_connection(("127.0.0.1", live.port)) as conn:
                conn.sendall(
                    b'{"id": "p1", "left": "rpq:a a", "right": "rpq:a+"}\n'
                )
                with conn.makefile("r") as stream:
                    response = json.loads(stream.readline())
            assert response["verdict"] == "holds"
            after = fetch_metrics("127.0.0.1", live.port)
            deltas = top_deltas(before, after)
            window = (
                after["metrics"]["serve.requests"]["value"]
                - before["metrics"]["serve.requests"]["value"]
            )
            assert window >= 1
            assert deltas["dt_s"] > 0
            text = render_top(before, after, addr=f"127.0.0.1:{live.port}")
            assert f"127.0.0.1:{live.port}" in text

    def test_fetch_control_debug(self):
        with _LiveServer() as live:
            payload = fetch_control("127.0.0.1", live.port, "debug", last=5)
            assert payload["op"] == "debug"
            assert payload["flight"]["schema"] == "repro-flight/1"
