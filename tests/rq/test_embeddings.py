"""Tests for the tower embeddings (regex/2RPQ/UC2RPQ -> RQ)."""

import pytest

from repro.automata.regex import parse_regex
from repro.cq.syntax import Var
from repro.crpq.evaluation import evaluate_uc2rpq
from repro.crpq.syntax import C2RPQ, UC2RPQ, paper_example_1
from repro.graphdb.generators import random_graph
from repro.rpq.rpq import TwoRPQ
from repro.rq.embeddings import (
    c2rpq_to_rq,
    identity_query,
    regex_to_rq,
    two_rpq_to_rq,
    uc2rpq_to_rq,
)
from repro.rq.evaluation import evaluate_rq
from repro.rq.syntax import RQError


def incident_pairs(db, answers):
    """Filter out isolated-node identity pairs (embedding caveat)."""
    incident = {n for e in db.edges() for n in (e[0], e[2])}
    return {p for p in answers if all(node in incident for node in p)}


class TestIdentityQuery:
    def test_identity_over_incident_nodes(self):
        db = random_graph(4, 6, ("a",), seed=1)
        query = identity_query(("a",), Var("x"), Var("y"))
        answers = evaluate_rq(query, db)
        incident = {n for e in db.edges() for n in (e[0], e[2])}
        assert answers == {(n, n) for n in incident}

    def test_empty_alphabet_rejected(self):
        with pytest.raises(RQError):
            identity_query((), Var("x"), Var("y"))


class TestRegexToRQ:
    CASES = ["a", "a-", "a b", "a|b", "a+", "a*", "a?", "(a|b)+ a-", "a (b a)*"]

    @pytest.mark.parametrize("text", CASES)
    def test_agrees_with_2rpq_semantics(self, text):
        query = TwoRPQ.parse(text)
        algebra = two_rpq_to_rq(query, ("a", "b"))
        for seed in range(3):
            db = random_graph(5, 10, ("a", "b"), seed=seed)
            expected = incident_pairs(db, query.evaluate(db))
            assert evaluate_rq(algebra, db) == expected, (text, seed)

    def test_empty_set_rejected(self):
        from repro.automata.regex import EmptySet

        with pytest.raises(RQError):
            regex_to_rq(EmptySet(), Var("x"), Var("y"), ("a",))

    def test_head_is_canonical(self):
        algebra = two_rpq_to_rq(TwoRPQ.parse("a+"))
        assert algebra.head_vars == (Var("x"), Var("y"))


class TestC2RPQToRQ:
    def test_triangle(self):
        triangle, _ = paper_example_1()
        algebra = c2rpq_to_rq(triangle)
        for seed in range(3):
            db = random_graph(5, 10, ("r",), seed=seed)
            from repro.crpq.evaluation import evaluate_c2rpq

            assert evaluate_rq(algebra, db) == evaluate_c2rpq(triangle, db)

    def test_star_atom_with_shared_endpoint(self):
        query = C2RPQ.from_strings("x,y", [("a*", "x", "y"), ("b", "x", "z")])
        algebra = c2rpq_to_rq(query, ("a", "b"))
        for seed in range(3):
            db = random_graph(4, 9, ("a", "b"), seed=seed)
            expected = incident_pairs(db, evaluate_uc2rpq(query, db))
            assert evaluate_rq(algebra, db) == expected


class TestUC2RPQToRQ:
    def test_paper_example_union(self):
        _, union = paper_example_1()
        algebra = uc2rpq_to_rq(union)
        for seed in range(3):
            db = random_graph(5, 11, ("r",), seed=seed)
            assert evaluate_rq(algebra, db) == evaluate_uc2rpq(union, db)

    def test_variable_name_collision_across_disjuncts(self):
        """Disjuncts reusing each other's variable names must not join."""
        one = C2RPQ.from_strings("x,y", [("a", "x", "y"), ("b", "x", "m")])
        two = C2RPQ.from_strings("u,v", [("b", "u", "v"), ("a", "u", "m")])
        union = UC2RPQ((one, two))
        algebra = uc2rpq_to_rq(union)
        for seed in range(3):
            db = random_graph(5, 12, ("a", "b"), seed=seed)
            assert evaluate_rq(algebra, db) == evaluate_uc2rpq(union, db)
