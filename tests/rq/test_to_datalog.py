"""Tests for the Section 4.1 RQ -> Datalog embedding."""

import pytest

from repro.cq.syntax import Var
from repro.datalog.analysis import is_nonrecursive, recursive_predicates
from repro.datalog.evaluation import evaluate
from repro.graphdb.generators import random_graph
from repro.grq.membership import is_graph_grq, is_grq
from repro.relational.instance import graph_to_instance
from repro.rq.evaluation import evaluate_rq
from repro.rq.syntax import (
    And,
    Or,
    Project,
    Select,
    TransitiveClosure,
    edge,
    path_query,
    triangle_plus,
    triangle_query,
)
from repro.rq.to_datalog import rq_to_datalog

QUERIES = {
    "atom": edge("a", "x", "y"),
    "inverse-atom": edge("a-", "x", "y"),
    "select": Select(And(edge("a", "x", "y"), edge("b", "y", "z")), Var("x"), Var("z")),
    "project": Project(And(edge("a", "x", "y"), edge("b", "y", "z")), (Var("x"), Var("z"))),
    "union": Or(edge("a", "x", "y"), edge("b", "x", "y")),
    "conjunction": And(edge("a", "x", "y"), edge("b", "y", "z")),
    "tc": TransitiveClosure(edge("a", "x", "y")),
    "path": path_query(["a", "b"]),
    "triangle": triangle_query("a"),
    "triangle-plus": triangle_plus("a"),
    "tc-of-union": TransitiveClosure(Or(edge("a", "x", "y"), edge("b", "x", "y"))),
    "nested": TransitiveClosure(
        Project(
            And(TransitiveClosure(edge("a", "x", "y")), edge("b", "y", "z")),
            (Var("x"), Var("z")),
        )
    ),
}


class TestSemanticPreservation:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_roundtrip_on_random_graphs(self, name):
        """Every operator's translation evaluates identically (E8 core)."""
        query = QUERIES[name]
        program = rq_to_datalog(query)
        for seed in range(3):
            db = random_graph(5, 11, ("a", "b"), seed=seed)
            via_algebra = evaluate_rq(query, db)
            via_datalog = evaluate(program, graph_to_instance(db))
            assert via_algebra == via_datalog, (name, seed)


class TestImageShape:
    def test_image_is_grq(self):
        """The embedding's whole point: recursion is TC-shaped only."""
        for name, query in QUERIES.items():
            program = rq_to_datalog(query)
            assert is_grq(program), name
            assert is_graph_grq(program), name

    def test_tc_free_image_is_nonrecursive(self):
        program = rq_to_datalog(triangle_query())
        assert is_nonrecursive(program)

    def test_tc_image_has_single_recursive_predicate_per_closure(self):
        program = rq_to_datalog(triangle_plus())
        assert len(recursive_predicates(program)) == 1

    def test_goal_arity_matches_head(self):
        assert rq_to_datalog(triangle_query()).goal_arity == 2
        assert rq_to_datalog(Project(edge("a", "x", "y"), (Var("x"),))).goal_arity == 1

    def test_predicate_prefix(self):
        program = rq_to_datalog(edge("a", "x", "y"), prefix="zz")
        assert program.goal.startswith("zz")
