"""Tests for direct RQ algebra evaluation."""

import pytest

from repro.cq.syntax import Var
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import cycle_graph, path_graph
from repro.rq.evaluation import evaluate_rq, satisfies_rq, transitive_closure_pairs
from repro.rq.syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    Select,
    TransitiveClosure,
    edge,
    path_query,
    triangle_plus,
    triangle_query,
)


class TestLeaves:
    def test_edge(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        assert evaluate_rq(edge("r", "x", "y"), db) == {("a", "b")}

    def test_inverse_edge(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        assert evaluate_rq(edge("r-", "x", "y"), db) == {("b", "a")}

    def test_self_loop_atom(self):
        db = GraphDatabase.from_edges([("a", "r", "a"), ("a", "r", "b")])
        assert evaluate_rq(EdgeAtom("r", Var("x"), Var("x")), db) == {("a",)}


class TestOperators:
    def test_select(self):
        db = GraphDatabase.from_edges([("a", "r", "a"), ("a", "r", "b")])
        query = Select(edge("r", "x", "y"), Var("x"), Var("y"))
        assert evaluate_rq(query, db) == {("a", "a")}

    def test_project_reorders(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        query = Project(edge("r", "x", "y"), (Var("y"), Var("x")))
        assert evaluate_rq(query, db) == {("b", "a")}

    def test_join_on_shared_variable(self):
        db = path_graph(2, "e")
        query = And(edge("e", "x", "y"), edge("e", "y", "z"))
        assert evaluate_rq(query, db) == {(0, 1, 2)}

    def test_join_without_shared_variables_is_product(self):
        db = GraphDatabase.from_edges([("a", "r", "b"), ("c", "s", "d")])
        query = And(edge("r", "x", "y"), edge("s", "u", "v"))
        assert evaluate_rq(query, db) == {("a", "b", "c", "d")}

    def test_or(self):
        db = GraphDatabase.from_edges([("a", "r", "b"), ("c", "s", "d")])
        query = Or(edge("r", "x", "y"), edge("s", "x", "y"))
        assert evaluate_rq(query, db) == {("a", "b"), ("c", "d")}

    def test_transitive_closure_on_path(self):
        db = path_graph(3, "e")
        query = TransitiveClosure(edge("e", "x", "y"))
        expected = {(i, j) for i in range(4) for j in range(i + 1, 4)}
        assert evaluate_rq(query, db) == expected

    def test_transitive_closure_on_cycle(self):
        db = cycle_graph(3, "e")
        query = TransitiveClosure(edge("e", "x", "y"))
        assert evaluate_rq(query, db) == {(i, j) for i in range(3) for j in range(3)}


class TestCompositeQueries:
    def test_path_query(self):
        db = GraphDatabase.from_edges([("a", "r", "b"), ("b", "s", "c")])
        assert evaluate_rq(path_query(["r", "s"]), db) == {("a", "c")}

    def test_triangle_query(self):
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "r", "c"), ("c", "r", "a"), ("a", "r", "z")]
        )
        assert evaluate_rq(triangle_query(), db) == {
            ("a", "b"), ("b", "c"), ("c", "a")
        }

    def test_triangle_plus_composes_triangles(self):
        """Q+ of the triangle: chains of triangle hops (Section 3.4)."""
        db = GraphDatabase.from_edges(
            # two triangles sharing node c: a-b-c and c-d-e
            [("a", "r", "b"), ("b", "r", "c"), ("c", "r", "a"),
             ("c", "r", "d"), ("d", "r", "e"), ("e", "r", "c")]
        )
        plus = evaluate_rq(triangle_plus(), db)
        single = evaluate_rq(triangle_query(), db)
        assert single < plus              # strictly more pairs
        assert ("a", "c") in plus         # a->b (hop 1), b->c (hop 2)... composed

    def test_agreement_with_rpq_for_regular_shapes(self):
        from repro.rpq.rpq import RPQ

        db = GraphDatabase.from_edges(
            [("a", "e", "b"), ("b", "e", "c"), ("c", "e", "a"), ("x", "e", "a")]
        )
        algebra = TransitiveClosure(edge("e", "x", "y"))
        assert evaluate_rq(algebra, db) == RPQ.parse("e+").evaluate(db)


class TestSatisfiesAndTC:
    def test_satisfies(self):
        db = path_graph(2, "e")
        query = TransitiveClosure(edge("e", "x", "y"))
        assert satisfies_rq(query, db, (0, 2))
        assert not satisfies_rq(query, db, (2, 0))

    def test_transitive_closure_pairs(self):
        closure = transitive_closure_pairs(frozenset({(1, 2), (2, 3)}))
        assert closure == {(1, 2), (2, 3), (1, 3)}

    def test_transitive_closure_pairs_empty(self):
        assert transitive_closure_pairs(frozenset()) == frozenset()

    def test_transitive_closure_is_idempotent(self):
        pairs = frozenset({(1, 2), (2, 1)})
        once = transitive_closure_pairs(pairs)
        assert transitive_closure_pairs(once) == once
