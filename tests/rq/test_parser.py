"""Tests for the RQ rule syntax parser."""

import pytest

from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import random_graph
from repro.rq.evaluation import evaluate_rq
from repro.rq.parser import RQSyntaxError, parse_rq
from repro.rq.syntax import triangle_plus, triangle_query


class TestBasicRules:
    def test_single_regex_atom(self):
        query = parse_rq("ans(x, y) :- [knows+](x, y).")
        db = GraphDatabase.from_edges([("a", "knows", "b"), ("b", "knows", "c")])
        assert evaluate_rq(query, db) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_conjunction_joins_shared_variables(self):
        query = parse_rq("ans(x, z) :- [a](x, y), [b](y, z).")
        db = GraphDatabase.from_edges([(1, "a", 2), (2, "b", 3), (9, "b", 3)])
        assert evaluate_rq(query, db) == {(1, 3)}

    def test_body_variables_projected(self):
        query = parse_rq("ans(x) :- [a](x, y), [a](y, z).")
        db = GraphDatabase.from_edges([(1, "a", 2), (2, "a", 3)])
        assert evaluate_rq(query, db) == {(1,)}

    def test_multiple_rules_disjoin(self):
        query = parse_rq(
            """
            ans(x, y) :- [a](x, y).
            ans(x, y) :- [b](x, y).
            """
        )
        db = GraphDatabase.from_edges([(1, "a", 2), (3, "b", 4)])
        assert evaluate_rq(query, db) == {(1, 2), (3, 4)}

    def test_self_variable_atom(self):
        query = parse_rq("loops(x) :- [e+](x, x).")
        db = GraphDatabase.from_edges([(1, "e", 2), (2, "e", 1), (3, "e", 3), (4, "e", 1)])
        assert evaluate_rq(query, db) == {(1,), (2,), (3,)}

    def test_comments(self):
        query = parse_rq("% comment\nans(x, y) :- [a](x, y).  % trailing")
        assert query.arity == 2


class TestNamedDefinitions:
    def test_reference_and_closure(self):
        query = parse_rq(
            """
            tri(x, y) :- [r](x, y), [r](y, z), [r](z, x).
            ans(x, y) :- tri+(x, y).
            """
        )
        db = random_graph(5, 12, ("r",), seed=3)
        assert evaluate_rq(query, db) == evaluate_rq(triangle_plus("r"), db)

    def test_plain_reference(self):
        query = parse_rq(
            """
            hop(u, v) :- [e](u, v).
            ans(x, z) :- hop(x, y), hop(y, z).
            """
        )
        db = GraphDatabase.from_edges([(1, "e", 2), (2, "e", 3)])
        assert evaluate_rq(query, db) == {(1, 3)}

    def test_goal_selection(self):
        query = parse_rq(
            """
            tri(x, y) :- [r](x, y), [r](y, z), [r](z, x).
            other(x, y) :- [r](x, y).
            """,
            goal="tri",
        )
        db = random_graph(5, 10, ("r",), seed=1)
        assert evaluate_rq(query, db) == evaluate_rq(triangle_query("r"), db)

    def test_call_site_variables_do_not_capture(self):
        query = parse_rq(
            """
            hop(x, y) :- [e](x, y).
            ans(y, x) :- hop(y, x).
            """
        )
        db = GraphDatabase.from_edges([(1, "e", 2)])
        assert evaluate_rq(query, db) == {(1, 2)}


class TestErrors:
    def test_undefined_reference(self):
        with pytest.raises(RQSyntaxError):
            parse_rq("ans(x, y) :- ghost(x, y). ghost(x, y) :- [a](x, y).", goal="ans")

    def test_head_variable_not_in_body(self):
        with pytest.raises(RQSyntaxError):
            parse_rq("ans(x, w) :- [a](x, y).")

    def test_arity_mismatch_across_rules(self):
        with pytest.raises(RQSyntaxError):
            parse_rq("ans(x, y) :- [a](x, y). ans(x) :- [a](x, y).")

    def test_call_arity_mismatch(self):
        with pytest.raises(RQSyntaxError):
            parse_rq(
                """
                hop(x, y) :- [e](x, y).
                ans(x) :- hop(x).
                """
            )

    def test_empty_text(self):
        with pytest.raises(RQSyntaxError):
            parse_rq("   % nothing")

    def test_malformed_rule(self):
        with pytest.raises(RQSyntaxError):
            parse_rq("this is not a rule.")

    def test_closure_of_non_binary(self):
        from repro.rq.syntax import RQError

        with pytest.raises((RQSyntaxError, RQError)):
            parse_rq(
                """
                u(x) :- [a](x, y).
                ans(x) :- u+(x).
                """
            )


class TestAlphabetHandling:
    def test_explicit_alphabet_for_star(self):
        query = parse_rq("ans(x, y) :- [a*](x, y).", alphabet=("a", "b"))
        db = GraphDatabase.from_edges([(1, "a", 2), (3, "b", 4)])
        answers = evaluate_rq(query, db)
        assert (3, 3) in answers  # identity over incident nodes incl. b-nodes

    def test_inferred_alphabet(self):
        query = parse_rq("ans(x, y) :- [a b-](x, y).")
        assert query.base_symbols() == {"a", "b"}
