"""Tests for RQ containment (Theorem 7 class)."""

import pytest

from repro.cq.syntax import Var
from repro.report import Verdict
from repro.rq.containment import rq_contained, rq_equivalent
from repro.rq.evaluation import satisfies_rq
from repro.rq.syntax import (
    And,
    Or,
    Project,
    TransitiveClosure,
    edge,
    path_query,
    triangle_plus,
    triangle_query,
)


class TestExactCases:
    def test_tc_free_left_is_exact(self):
        result = rq_contained(edge("e", "x", "y"), TransitiveClosure(edge("e", "x", "y")))
        assert result.verdict is Verdict.HOLDS

    def test_refutation_is_exact(self):
        result = rq_contained(TransitiveClosure(edge("e", "x", "y")), edge("e", "x", "y"))
        assert result.verdict is Verdict.REFUTED
        db = result.counterexample.database
        head = result.counterexample.output
        assert satisfies_rq(TransitiveClosure(edge("e", "x", "y")), db, head)
        assert not satisfies_rq(edge("e", "x", "y"), db, head)

    def test_triangle_in_triangle_plus(self):
        result = rq_contained(triangle_query(), triangle_plus())
        assert result.verdict is Verdict.HOLDS

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            rq_contained(edge("e", "x", "y"), Project(edge("e", "x", "y"), (Var("x"),)))


class TestBoundedCases:
    def test_tc_in_itself_is_bounded_positive(self):
        tc = TransitiveClosure(edge("e", "x", "y"))
        result = rq_contained(tc, tc, max_expansions=30)
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND
        assert result.details["expansions_checked"] > 0

    def test_tc_vs_tc_of_union(self):
        small = TransitiveClosure(edge("a", "x", "y"))
        big = TransitiveClosure(Or(edge("a", "x", "y"), edge("b", "x", "y")))
        assert rq_contained(small, big, max_expansions=25).holds
        # The converse is refuted (a b-edge chain).
        result = rq_contained(big, small, max_expansions=25)
        assert result.verdict is Verdict.REFUTED

    def test_triangle_plus_not_in_triangle(self):
        result = rq_contained(triangle_plus(), triangle_query(), max_expansions=40)
        assert result.verdict is Verdict.REFUTED

    def test_composition_vs_tc(self):
        """e;e ⊑ e+ (exact: TC-free left)."""
        two_hops = path_query(["e", "e"])
        tc = TransitiveClosure(edge("e", "x", "y"))
        assert rq_contained(two_hops, tc).verdict is Verdict.HOLDS


class TestEquivalence:
    def test_or_commutes(self):
        a = Or(edge("a", "x", "y"), edge("b", "x", "y"))
        b = Or(edge("b", "x", "y"), edge("a", "x", "y"))
        assert rq_equivalent(a, b)

    def test_tc_idempotent(self):
        tc = TransitiveClosure(edge("e", "x", "y"))
        tctc = TransitiveClosure(tc)
        assert rq_contained(tc, tctc, max_expansions=20).holds
        assert rq_contained(tctc, tc, max_expansions=20).holds


class TestCrossEngineConsistency:
    def test_agrees_with_2rpq_engine_on_regular_queries(self):
        """RQ expansion containment vs the exact Theorem 5 pipeline."""
        from repro.rpq.containment import two_rpq_contained
        from repro.rpq.rpq import TwoRPQ
        from repro.rq.embeddings import two_rpq_to_rq

        pairs = [("a a", "a+"), ("a+", "a a"), ("a b", "a (a|b)"), ("a", "a a- a")]
        for left, right in pairs:
            q1, q2 = TwoRPQ.parse(left), TwoRPQ.parse(right)
            exact = two_rpq_contained(q1, q2)
            via_rq = rq_contained(
                two_rpq_to_rq(q1, ("a", "b")),
                two_rpq_to_rq(q2, ("a", "b")),
                max_expansions=40,
            )
            assert exact.holds == via_rq.holds, (left, right)
