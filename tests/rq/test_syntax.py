"""Tests for the RQ algebra AST."""

import pytest

from repro.cq.syntax import Var
from repro.rq.syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    RQError,
    Select,
    TransitiveClosure,
    edge,
    path_query,
    rename,
    triangle_plus,
    triangle_query,
)


class TestNodes:
    def test_edge_atom_head(self):
        atom = edge("r", "x", "y")
        assert atom.head_vars == (Var("x"), Var("y"))
        assert atom.base_symbols() == {"r"}

    def test_self_loop_atom_is_unary(self):
        atom = EdgeAtom("r", Var("x"), Var("x"))
        assert atom.head_vars == (Var("x"),)

    def test_inverse_label_base_symbol(self):
        assert edge("r-", "x", "y").base_symbols() == {"r"}

    def test_select_validates_variables(self):
        with pytest.raises(RQError):
            Select(edge("r", "x", "y"), Var("x"), Var("z"))

    def test_project_validates_variables(self):
        with pytest.raises(RQError):
            Project(edge("r", "x", "y"), (Var("z"),))

    def test_project_rejects_duplicates(self):
        with pytest.raises(RQError):
            Project(edge("r", "x", "y"), (Var("x"), Var("x")))

    def test_and_head_is_union_in_order(self):
        conj = And(edge("r", "x", "y"), edge("s", "y", "z"))
        assert conj.head_vars == (Var("x"), Var("y"), Var("z"))

    def test_or_requires_matching_heads(self):
        with pytest.raises(RQError):
            Or(edge("r", "x", "y"), edge("s", "y", "x"))

    def test_tc_requires_binary(self):
        with pytest.raises(RQError):
            TransitiveClosure(Project(edge("r", "x", "y"), (Var("x"),)))

    def test_uses_transitive_closure(self):
        assert triangle_plus().uses_transitive_closure()
        assert not triangle_query().uses_transitive_closure()

    def test_size_counts_nodes(self):
        assert edge("r", "x", "y").size() == 1
        assert triangle_query().size() == 6  # 3 atoms + 2 ands + project

    def test_walk_visits_all(self):
        nodes = list(triangle_plus().walk())
        assert len(nodes) == triangle_plus().size()


class TestSugar:
    def test_operators(self):
        q = edge("r", "x", "y") & edge("s", "y", "z")
        assert isinstance(q, And)
        q2 = edge("r", "x", "y") | edge("s", "x", "y")
        assert isinstance(q2, Or)
        assert isinstance(edge("r", "x", "y").plus(), TransitiveClosure)

    def test_project_and_select_sugar(self):
        q = (edge("r", "x", "y") & edge("r", "y", "z")).project("x", "z")
        assert q.head_vars == (Var("x"), Var("z"))
        s = edge("r", "x", "y").select_eq("x", "y")
        assert isinstance(s, Select)


class TestHelpers:
    def test_path_query_head(self):
        q = path_query(["a", "b", "c"])
        assert q.head_vars == (Var("x"), Var("y"))
        assert q.base_symbols() == {"a", "b", "c"}

    def test_path_query_empty_rejected(self):
        with pytest.raises(RQError):
            path_query([])

    def test_rename(self):
        q = rename(edge("r", "x", "y"), {"x": "a"})
        assert q.head_vars == (Var("a"), Var("y"))

    def test_triangle_query_shape(self):
        q = triangle_query()
        assert q.head_vars == (Var("x"), Var("y"))
        assert q.arity == 2
