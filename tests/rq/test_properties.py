"""Property-based tests for the RQ layer.

Random algebra terms (from :mod:`repro.rq.generators`) drive the three
load-bearing invariants: the Section 4.1 Datalog translation preserves
semantics, simplification preserves semantics while never growing the
term, and the containment checker is sound on its refutations.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.datalog.evaluation import evaluate as datalog_evaluate
from repro.graphdb.generators import random_graph
from repro.grq.membership import is_grq
from repro.relational.instance import graph_to_instance
from repro.report import Verdict
from repro.rq.containment import rq_contained
from repro.rq.evaluation import evaluate_rq, satisfies_rq
from repro.rq.generators import random_rq
from repro.rq.optimize import simplify
from repro.rq.to_datalog import rq_to_datalog

LABELS = ("a", "b")


def term_from_seed(seed: int, depth: int = 3):
    return random_rq(random.Random(seed), LABELS, depth)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_datalog_translation_preserves_semantics(seed, db_seed):
    term = term_from_seed(seed)
    program = rq_to_datalog(term)
    db = random_graph(5, 10, LABELS, seed=db_seed)
    assert datalog_evaluate(program, graph_to_instance(db)) == evaluate_rq(term, db)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9))
def test_translation_image_is_always_grq(seed):
    assert is_grq(rq_to_datalog(term_from_seed(seed)))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_simplify_preserves_semantics_and_size(seed, db_seed):
    term = term_from_seed(seed, depth=4)
    simplified = simplify(term)
    assert simplified.size() <= term.size()
    db = random_graph(5, 10, LABELS, seed=db_seed)
    assert evaluate_rq(term, db) == evaluate_rq(simplified, db)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**9))
def test_containment_refutations_replay(seed):
    rng = random.Random(seed)
    q1 = random_rq(rng, LABELS, 2)
    q2 = random_rq(rng, LABELS, 2)
    if q1.arity != q2.arity:
        return
    result = rq_contained(q1, q2, max_applications=10, max_expansions=40)
    if result.verdict is Verdict.REFUTED:
        db = result.counterexample.database
        head = result.counterexample.output
        assert satisfies_rq(q1, db, head)
        assert not satisfies_rq(q2, db, head)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**9))
def test_containment_reflexive_never_refuted(seed):
    term = term_from_seed(seed, depth=2)
    result = rq_contained(term, term, max_applications=10, max_expansions=40)
    assert result.verdict is not Verdict.REFUTED


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_union_monotone(seed, db_seed):
    """t ⊑ t | s semantically on every sampled database."""
    rng = random.Random(seed)
    t = random_rq(rng, LABELS, 2)
    from repro.rq.generators import _align

    s = _align(random_rq(rng, LABELS, 2), t.head_vars, rng)
    if s is None:
        return
    from repro.rq.syntax import Or

    union = Or(t, s)
    db = random_graph(5, 10, LABELS, seed=db_seed)
    assert evaluate_rq(t, db) <= evaluate_rq(union, db)
