"""Tests for the RQ simplifier."""

import random

import pytest

from repro.cq.syntax import Var
from repro.graphdb.generators import random_graph
from repro.rq.evaluation import evaluate_rq
from repro.rq.generators import random_rq
from repro.rq.optimize import simplify, size_reduction
from repro.rq.syntax import (
    And,
    Or,
    Project,
    Select,
    TransitiveClosure,
    edge,
)


class TestRules:
    def test_projection_fusion(self):
        inner = And(edge("a", "x", "y"), edge("b", "y", "z"))
        term = Project(Project(inner, (Var("x"), Var("y"))), (Var("x"),))
        simplified = simplify(term)
        assert simplified == Project(inner, (Var("x"),))

    def test_identity_projection_removed(self):
        atom = edge("a", "x", "y")
        assert simplify(Project(atom, (Var("x"), Var("y")))) == atom

    def test_reordering_projection_kept(self):
        atom = edge("a", "x", "y")
        term = Project(atom, (Var("y"), Var("x")))
        assert simplify(term) == term

    def test_trivial_selection_removed(self):
        atom = edge("a", "x", "y")
        assert simplify(Select(atom, Var("x"), Var("x"))) == atom

    def test_tc_idempotence(self):
        atom = edge("a", "x", "y")
        assert simplify(TransitiveClosure(TransitiveClosure(atom))) == (
            TransitiveClosure(atom)
        )

    def test_or_deduplication(self):
        atom = edge("a", "x", "y")
        other = edge("b", "x", "y")
        term = Or(Or(atom, other), Or(atom, other))
        assert simplify(term) == Or(atom, other)

    def test_idempotent_join(self):
        atom = edge("a", "x", "y")
        assert simplify(And(atom, atom)) == atom

    def test_nested_cascade(self):
        atom = edge("a", "x", "y")
        term = Project(
            Project(TransitiveClosure(TransitiveClosure(atom)), (Var("x"), Var("y"))),
            (Var("x"), Var("y")),
        )
        assert simplify(term) == TransitiveClosure(atom)


class TestSemanticPreservation:
    def test_random_terms(self):
        rng = random.Random(11)
        for trial in range(25):
            term = random_rq(rng, ("a", "b"), depth=4)
            simplified = simplify(term)
            assert simplified.size() <= term.size()
            for seed in range(2):
                db = random_graph(5, 10, ("a", "b"), seed=seed * 100 + trial)
                assert evaluate_rq(term, db) == evaluate_rq(simplified, db), (
                    trial,
                    term,
                )

    def test_size_reduction_metric(self):
        atom = edge("a", "x", "y")
        bloated = Or(atom, atom)
        assert size_reduction(bloated, simplify(bloated)) > 0
        assert size_reduction(atom, simplify(atom)) == 0


class TestGenerators:
    def test_random_rq_is_deterministic(self):
        a = random_rq(random.Random(5), ("a",), 3)
        b = random_rq(random.Random(5), ("a",), 3)
        assert a == b

    def test_random_rq_is_wellformed(self):
        rng = random.Random(2)
        for _ in range(40):
            term = random_rq(rng, ("a", "b"), 4)
            assert term.arity >= 1
            # Evaluation must not raise.
            evaluate_rq(term, random_graph(4, 8, ("a", "b"), seed=1))
