"""Metrics registry semantics: instrument behavior, get-or-create
stability, snapshots, and in-place reset."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_negative_increment_rejected(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7
        assert g.snapshot() == {"type": "gauge", "value": 7}


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["buckets"] == {"1.0": 1, "10.0": 2, "100.0": 3, "+Inf": 4}
        assert snap["count"] == 4
        assert snap["min"] == 0.5
        assert snap["max"] == 500.0
        assert snap["sum"] == 555.5

    def test_boundary_observation_counts_into_its_bucket(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.snapshot()["buckets"]["1.0"] == 1

    def test_boundaries_are_sorted_and_deduped(self):
        h = Histogram("h", buckets=(10.0, 1.0, 10.0))
        assert h.boundaries == (1.0, 10.0)

    def test_empty_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_mean_and_quantiles(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        assert h.quantile(0.5) is None
        for value in (0.5, 1.5, 1.6, 3.0):
            h.observe(value)
        assert h.mean == pytest.approx(1.65)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_inf_bucket_quantile_reports_largest_boundary(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(1.0) == 1.0

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(st.lists(st.floats(0, 10_000), max_size=50))
    def test_cumulative_buckets_are_monotone_and_end_at_count(self, values):
        h = Histogram("h")
        for value in values:
            h.observe(value)
        buckets = h.snapshot()["buckets"]
        counts = list(buckets.values())
        assert counts == sorted(counts)
        assert counts[-1] == len(values)
        assert h.boundaries == tuple(sorted(set(DEFAULT_BUCKETS_MS)))


class TestRegistry:
    def test_get_or_create_returns_stable_objects(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        assert registry.counter("x") is first
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.gauge("alpha").set(3)
        snap = registry.snapshot()
        assert list(snap) == ["alpha", "zebra"]
        assert snap["alpha"] == {"type": "gauge", "value": 3}

    def test_snapshot_prefix_filters_instruments(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(2)
        registry.gauge("serve.queue_depth").set(1)
        registry.counter("engine.checks").inc()
        snap = registry.snapshot(prefix="serve.")
        assert list(snap) == ["serve.queue_depth", "serve.requests"]
        assert registry.snapshot(prefix="nothing.") == {}
        # No prefix keeps the full registry view.
        assert set(registry.snapshot()) == {
            "serve.requests",
            "serve.queue_depth",
            "engine.checks",
        }

    def test_reset_zeroes_in_place(self):
        """Hoisted handles must survive a reset — the hot-path contract."""
        registry = MetricsRegistry()
        hoisted = registry.counter("hits")
        hist = registry.histogram("lat", buckets=(1.0,))
        hoisted.inc(7)
        hist.observe(0.5)
        registry.reset()
        assert hoisted.value == 0
        assert hist.count == 0 and hist.min is None
        hoisted.inc()
        assert registry.counter("hits") is hoisted
        assert registry.snapshot()["hits"]["value"] == 1


class TestDefaultRegistry:
    def test_module_accessors_share_one_registry(self):
        from repro.obs.metrics import counter, metrics_snapshot, reset_metrics

        handle = counter("test.only.probe")
        before = handle.value
        handle.inc()
        assert metrics_snapshot()["test.only.probe"]["value"] == before + 1
        reset_metrics()
        assert metrics_snapshot()["test.only.probe"]["value"] == 0

    def test_engine_populates_default_metrics(self):
        from repro.cache import clear_caches
        from repro.core.engine import check_containment
        from repro.obs.metrics import metrics_snapshot, reset_metrics
        from repro.rpq.rpq import RPQ

        reset_metrics()
        clear_caches()
        check_containment(RPQ.parse("a"), RPQ.parse("a|b"))
        check_containment(RPQ.parse("a"), RPQ.parse("a|b"))
        snap = metrics_snapshot()
        assert snap["engine.checks"]["value"] == 2
        assert snap["engine.cache_hits"]["value"] == 1
        assert snap["engine.check_ms"]["count"] == 1
        assert snap["engine.verdict.holds"]["value"] == 1
        reset_metrics()
