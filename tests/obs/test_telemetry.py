"""Telemetry primitives: access records, the bounded log writer, the
flight recorder (including threaded writers), and the sampler."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.batch import BatchItem
from repro.obs.telemetry import (
    ACCESS_LOG_SCHEMA,
    FLIGHT_SCHEMA,
    AccessLogWriter,
    FlightRecorder,
    Sampler,
    Telemetry,
    TelemetryConfig,
    access_record,
    validate_access_record,
)
from repro.report import ContainmentResult, Verdict


def _item(verdict=Verdict.HOLDS, method="rpq-language", **details):
    details.setdefault("cache", "miss")
    details.setdefault("budget", {"spend": {}})
    result = ContainmentResult(verdict, method, details=details)
    return BatchItem(0, result, 2.5, "pid:1/w0", "rid-1")


class TestAccessRecord:
    def test_contain_record_carries_verdict_and_details(self):
        record = access_record(
            request_id="rid-1",
            op="contain",
            index=3,
            client_id="p1",
            item=_item(kernel={"requested": "auto", "selected": "antichain"}),
            queued_ms=1.0,
            exec_ms=2.5,
            total_ms=3.5,
            sampled=True,
        )
        assert record["schema"] == ACCESS_LOG_SCHEMA
        assert record["request_id"] == "rid-1"
        assert record["op"] == "contain"
        assert record["id"] == "p1"
        assert record["verdict"] == "holds"
        assert record["method"] == "rpq-language"
        assert record["holds"] is True
        assert record["shed"] is None
        assert record["queued_ms"] == 1.0
        assert record["exec_ms"] == 2.5
        assert record["total_ms"] == 3.5
        assert record["worker"] == "pid:1/w0"
        assert record["sampled"] is True
        assert record["cache"] == "miss"
        assert record["kernel"]["selected"] == "antichain"
        assert validate_access_record(record) == []

    def test_shed_reason_comes_from_admission_details(self):
        item = _item(
            verdict=Verdict.INCONCLUSIVE,
            method="serve-admission",
            admission={"shed": "queue_full", "spend": {}},
        )
        record = access_record(request_id="r", op="contain", index=0, item=item)
        assert record["shed"] == "queue_full"
        assert validate_access_record(record) == []

    def test_error_keeps_type_and_message_but_not_traceback(self):
        item = _item(
            verdict=Verdict.ERROR,
            method="batch-isolated",
            error={
                "type": "ValueError",
                "message": "boom",
                "traceback": "Traceback (most recent call last): ...",
            },
        )
        record = access_record(request_id="r", op="contain", index=0, item=item)
        assert record["error"] == {"type": "ValueError", "message": "boom"}
        assert "traceback" not in json.dumps(record)

    def test_control_record_has_no_verdict(self):
        record = access_record(
            request_id="r", op="health", index=0, exec_ms=0.1, total_ms=0.1
        )
        assert record["verdict"] is None
        assert validate_access_record(record) == []

    def test_record_never_contains_a_trace(self):
        item = _item(trace={"name": "check", "children": []})
        record = access_record(request_id="r", op="contain", index=0, item=item)
        assert "trace" not in record

    def test_negative_timings_clamp_to_zero(self):
        record = access_record(
            request_id="r", op="contain", index=0, item=_item(), queued_ms=-0.2
        )
        assert record["queued_ms"] == 0.0
        assert validate_access_record(record) == []


class TestValidate:
    def test_rejects_non_objects_and_bad_fields(self):
        assert validate_access_record("nope")
        assert validate_access_record({})
        base = access_record(request_id="r", op="contain", index=0, item=_item())
        for key, bad in [
            ("schema", "other/9"),
            ("request_id", ""),
            ("op", "unknown-op"),
            ("index", "zero"),
            ("queued_ms", -1.0),
            ("sampled", "yes"),
            ("verdict", None),
            ("shed", 7),
        ]:
            broken = dict(base)
            broken[key] = bad
            assert validate_access_record(broken), key

    def test_contain_records_must_carry_a_method(self):
        record = access_record(
            request_id="r", op="contain", index=0, item=_item()
        )
        del record["method"]
        problems = validate_access_record(record)
        assert any("method" in problem for problem in problems)


class TestAccessLogWriter:
    def test_writes_one_sorted_json_line_per_record(self, tmp_path):
        path = tmp_path / "access.ndjson"
        writer = AccessLogWriter(str(path))
        for index in range(5):
            assert writer.write(
                access_record(
                    request_id=f"r-{index}", op="contain", index=index,
                    item=_item(),
                )
            )
        writer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert [json.loads(line)["request_id"] for line in lines] == [
            f"r-{index}" for index in range(5)
        ]
        assert writer.stats()["written"] == 5
        assert writer.stats()["dropped"] == 0

    def test_full_queue_drops_and_counts(self, tmp_path):
        # Wedge the drain thread on the first record: serialization
        # goes through ``default=str``, so an unserializable object
        # whose str() parks on an event blocks the writer thread while
        # the producer floods the 2-slot queue.
        gate = threading.Event()

        class Blocker:
            def __str__(self) -> str:
                gate.wait(timeout=10)
                return "unblocked"

        path = tmp_path / "slow.ndjson"
        writer = AccessLogWriter(str(path), queue_size=2)
        writer.write({"n": Blocker()})
        accepted = [writer.write({"n": index}) for index in range(10)]
        gate.set()
        writer.close()
        assert accepted.count(False) >= 1
        assert writer.dropped == accepted.count(False)
        assert writer.written == accepted.count(True) + 1
        lines = path.read_text().splitlines()
        assert len(lines) == writer.written
        assert json.loads(lines[0]) == {"n": "unblocked"}

    def test_close_is_idempotent_and_rejects_late_writes(self, tmp_path):
        writer = AccessLogWriter(str(tmp_path / "x.ndjson"))
        writer.close()
        writer.close()
        assert writer.write({"late": True}) is False
        assert writer.dropped == 1

    def test_queue_size_validated(self, tmp_path):
        with pytest.raises(ValueError, match="queue_size"):
            AccessLogWriter(str(tmp_path / "x"), queue_size=0)


class TestFlightRecorder:
    def test_ring_keeps_only_the_newest_capacity_records(self):
        recorder = FlightRecorder(capacity=3, slow_ms=1000)
        for index in range(7):
            recorder.record({"request_id": f"r-{index}", "total_ms": 1.0})
        entries = recorder.entries()
        assert [e["request_id"] for e in entries] == ["r-4", "r-5", "r-6"]
        assert recorder.recorded_total == 7
        assert recorder.entries(last=2) == entries[-2:]

    def test_retention_policy_shed_error_slow(self):
        recorder = FlightRecorder(capacity=8, slow_ms=100.0)
        trace = {"name": "check", "children": []}
        cases = [
            ({"shed": "queue_full", "total_ms": 1.0}, True),
            ({"verdict": "error", "total_ms": 1.0}, True),
            ({"op": "invalid", "total_ms": 1.0}, True),
            ({"verdict": "holds", "total_ms": 250.0}, True),  # slow
            ({"verdict": "holds", "total_ms": 1.0, "shed": None}, False),
        ]
        for record, expected in cases:
            assert recorder.retains_trace(record) is expected, record
            recorder.record(record, trace)
        entries = recorder.entries()
        assert [("trace" in e) for e in entries] == [
            expected for _, expected in cases
        ]
        assert recorder.retained_traces == 4

    def test_fast_record_without_trace_still_lands_in_ring(self):
        recorder = FlightRecorder(capacity=4, slow_ms=100.0)
        recorder.record({"verdict": "holds", "total_ms": 1.0})
        assert len(recorder.entries()) == 1
        assert recorder.retained_traces == 0

    def test_dump_shape(self):
        recorder = FlightRecorder(capacity=2, slow_ms=50.0)
        recorder.record({"request_id": "r-1", "total_ms": 60.0},
                        {"name": "check"})
        dump = recorder.dump()
        assert dump["schema"] == FLIGHT_SCHEMA
        assert dump["capacity"] == 2
        assert dump["slow_ms"] == 50.0
        assert dump["recorded_total"] == 1
        assert dump["retained_traces"] == 1
        assert dump["entries"][0]["trace"] == {"name": "check"}

    def test_dump_to_file_round_trips(self, tmp_path):
        recorder = FlightRecorder(capacity=2)
        recorder.record({"request_id": "r-1", "total_ms": 1.0})
        path = recorder.dump_to_file(str(tmp_path / "flight.json"))
        dump = json.loads((tmp_path / "flight.json").read_text())
        assert path == str(tmp_path / "flight.json")
        assert dump["entries"][0]["request_id"] == "r-1"

    def test_threaded_writers_lose_no_records_below_capacity(self):
        # 8 threads x 50 records against a big ring: every append must
        # land exactly once (no torn or lost records under the lock).
        recorder = FlightRecorder(capacity=1000, slow_ms=10_000)
        threads = [
            threading.Thread(
                target=lambda w=writer: [
                    recorder.record({"request_id": f"w{w}-{n}", "total_ms": 0.0})
                    for n in range(50)
                ]
            )
            for writer in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        entries = recorder.entries()
        assert recorder.recorded_total == 400
        assert len(entries) == 400
        ids = [e["request_id"] for e in entries]
        assert len(set(ids)) == 400
        # Per-writer order is preserved within the interleaving.
        for writer in range(8):
            mine = [i for i in ids if i.startswith(f"w{writer}-")]
            assert mine == [f"w{writer}-{n}" for n in range(50)]

    def test_threaded_writers_at_capacity_keep_ring_consistent(self):
        # Overflowing ring under contention: the ring ends exactly at
        # capacity, recorded_total counts every append, and every entry
        # is a complete (untorn) record.
        recorder = FlightRecorder(capacity=32, slow_ms=10_000)
        threads = [
            threading.Thread(
                target=lambda w=writer: [
                    recorder.record(
                        {"request_id": f"w{w}-{n}", "total_ms": float(n)}
                    )
                    for n in range(100)
                ]
            )
            for writer in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        entries = recorder.entries()
        assert recorder.recorded_total == 400
        assert len(entries) == 32
        for entry in entries:
            writer, _, n = entry["request_id"].partition("-")
            assert writer.startswith("w")
            assert entry["total_ms"] == float(n)

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestSampler:
    def test_rate_zero_never_samples(self):
        sampler = Sampler(0.0)
        assert not any(sampler.sample() for _ in range(100))

    def test_rate_one_always_samples(self):
        sampler = Sampler(1.0)
        assert all(sampler.sample() for _ in range(100))

    def test_stride_is_deterministic_and_starts_at_the_first(self):
        sampler = Sampler(0.25)
        decisions = [sampler.sample() for _ in range(12)]
        assert decisions == [
            True, False, False, False,
            True, False, False, False,
            True, False, False, False,
        ]

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            Sampler(1.5)


class TestTelemetryFacade:
    def test_observe_fans_out_to_log_ring_and_profile(self, tmp_path):
        path = tmp_path / "access.ndjson"
        telemetry = Telemetry(
            TelemetryConfig(
                access_log=str(path), slow_ms=0.0, sample_rate=1.0
            )
        )
        trace = {"name": "check-containment", "duration_ms": 2.0,
                 "children": []}
        record = access_record(
            request_id="r-1", op="contain", index=0, item=_item(),
            total_ms=2.0, sampled=True,
        )
        assert telemetry.sample() is True
        telemetry.observe(record, trace)
        telemetry.close()
        assert json.loads(path.read_text())["request_id"] == "r-1"
        assert telemetry.recorder.entries()[0]["trace"] == trace
        profile = telemetry.profile_snapshot()
        assert profile["traces"] == 1
        stats = telemetry.stats()
        assert stats["flight_recorder"]["recorded_total"] == 1
        assert stats["access_log"]["written"] == 1

    def test_no_log_no_sampling_is_the_cheap_path(self):
        telemetry = Telemetry(TelemetryConfig())
        assert telemetry.log is None
        assert telemetry.sample() is False
        telemetry.observe(
            access_record(request_id="r", op="contain", index=0, item=_item())
        )
        assert telemetry.stats()["access_log"] is None
        assert telemetry.profile_snapshot()["traces"] == 0
        telemetry.close()  # no-op without a log

    def test_config_validation(self):
        with pytest.raises(ValueError, match="sample_rate"):
            TelemetryConfig(sample_rate=2.0)
        with pytest.raises(ValueError, match="slow_ms"):
            TelemetryConfig(slow_ms=-1.0)
        with pytest.raises(ValueError, match="flight_capacity"):
            TelemetryConfig(flight_capacity=0)
