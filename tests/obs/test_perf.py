"""Tests for the performance observatory (repro.obs.perf)."""

import copy
import json

import pytest

from repro.obs.perf import (
    SCHEMA,
    SUITES,
    compare_runs,
    environment_fingerprint,
    experiments_for,
    render_comparison,
    run_suite,
    time_workload,
    validate_run,
    write_run,
)


@pytest.fixture(scope="module")
def smoke_run():
    """One real smoke run shared by the module (repeats=1 keeps it fast)."""
    return run_suite("smoke", repeats=1)


def synthetic_run(run_id="base", median=10.0, mad=1.0, exact_value=7):
    """A minimal schema-valid document for detector unit tests."""
    return {
        "schema": SCHEMA,
        "run_id": run_id,
        "suite": "smoke",
        "created": "2026-08-06T00:00:00",
        "timing_repeats": 3,
        "environment": {
            "python": "3.11.0",
            "implementation": "CPython",
            "platform": "linux",
            "machine": "x86_64",
            "commit": None,
        },
        "metrics": {},
        "cache": {},
        "experiments": [
            {
                "id": "X1",
                "title": "synthetic",
                "exact": {"value": exact_value, "series": [[1, 2], [3, 4]]},
                "timings": {
                    "work": {
                        "reps": 3,
                        "best_ms": median - mad,
                        "median_ms": median,
                        "mad_ms": mad,
                        "samples_ms": [median - mad, median, median + mad],
                    }
                },
            }
        ],
    }


class TestTiming:
    def test_time_workload_stats(self):
        timing = time_workload(lambda: sum(range(100)), repeats=4)
        assert timing["reps"] == 4
        assert len(timing["samples_ms"]) == 4
        assert timing["best_ms"] == min(timing["samples_ms"])
        assert timing["best_ms"] <= timing["median_ms"]
        assert timing["mad_ms"] >= 0.0

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            time_workload(lambda: None, repeats=0)


class TestRegistry:
    def test_suites_known(self):
        assert SUITES == ("smoke", "full")
        with pytest.raises(ValueError):
            experiments_for("nightly")

    def test_smoke_subset_of_full(self):
        smoke = {spec.id for spec in experiments_for("smoke")}
        full = {spec.id for spec in experiments_for("full")}
        assert smoke <= full
        assert len(smoke) >= 5


class TestRunSuite:
    def test_schema_valid(self, smoke_run):
        assert validate_run(smoke_run) == []
        assert smoke_run["schema"] == SCHEMA
        assert smoke_run["suite"] == "smoke"

    def test_environment_fingerprint(self, smoke_run):
        environment = smoke_run["environment"]
        assert environment["python"]
        assert environment["platform"]
        assert "commit" in environment
        assert environment == {  # fingerprint fields are stable per process
            **environment_fingerprint(),
        }

    def test_experiment_rows(self, smoke_run):
        by_id = {exp["id"]: exp for exp in smoke_run["experiments"]}
        assert by_id["E1-oracle"]["exact"]["inconsistent"] == 0
        assert by_id["E3-fold-size"]["exact"]["fold_exactly_2n"] is True
        assert by_id["E4-complement"]["exact"]["all_within_bound"] is True
        assert by_id["budget-degradation"]["exact"]["verdict"] == (
            "holds_up_to_bound"
        )
        # timing values never leak into the exact gate
        assert "elapsed_ms" not in by_id["budget-degradation"]["exact"]["spend"]

    def test_cache_outcomes_cold_then_warm(self, smoke_run):
        by_id = {exp["id"]: exp for exp in smoke_run["experiments"]}
        outcomes = [row[1] for row in by_id["engine-cache"]["exact"]["outcomes"]]
        assert outcomes == ["miss"] * 3 + ["hit"] * 3

    def test_metrics_and_profile_attached(self, smoke_run):
        assert "engine.checks" in smoke_run["metrics"]
        assert smoke_run["profile"]["traces"] == 3
        paths = [row["path"] for row in smoke_run["profile"]["entries"]]
        assert any(path.startswith("check-containment") for path in paths)

    def test_document_is_json_serializable(self, smoke_run):
        json.dumps(smoke_run)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_suite("nightly")

    def test_full_suite_extends_smoke_series(self, smoke_run):
        full = run_suite("full", repeats=1, profile=False)
        assert validate_run(full) == []
        assert "profile" not in full
        smoke_by_id = {exp["id"]: exp for exp in smoke_run["experiments"]}
        full_by_id = {exp["id"]: exp for exp in full["experiments"]}
        # Full sweeps strictly extend the smoke workloads...
        assert len(full_by_id["E3-fold-size"]["exact"]["series"]) > len(
            smoke_by_id["E3-fold-size"]["exact"]["series"]
        )
        assert full_by_id["E1-oracle"]["exact"]["pairs"] > (
            smoke_by_id["E1-oracle"]["exact"]["pairs"]
        )
        # ...and the shape claims still hold at the larger tier.
        assert full_by_id["E1-oracle"]["exact"]["inconsistent"] == 0
        assert full_by_id["E4-complement"]["exact"]["all_within_bound"] is True

    def test_write_run_default_name(self, smoke_run, tmp_path):
        path = write_run(smoke_run, directory=tmp_path)
        assert path.endswith(f"BENCH_{smoke_run['run_id']}.json")
        assert validate_run(json.loads((tmp_path / path.split("/")[-1]).read_text())) == []

    def test_write_run_explicit_path(self, smoke_run, tmp_path):
        target = tmp_path / "baseline.json"
        assert write_run(smoke_run, path=target) == str(target)
        assert target.exists()


class TestValidate:
    def test_rejects_non_dict(self):
        assert validate_run([]) != []

    def test_flags_each_problem(self):
        document = synthetic_run()
        document["schema"] = "nope"
        document["suite"] = "nightly"
        del document["experiments"][0]["timings"]["work"]["mad_ms"]
        problems = validate_run(document)
        assert any("schema" in problem for problem in problems)
        assert any("suite" in problem for problem in problems)
        assert any("mad_ms" in problem for problem in problems)

    def test_empty_experiments_invalid(self):
        document = synthetic_run()
        document["experiments"] = []
        assert validate_run(document) != []


class TestCompare:
    def test_identical_real_runs_pass(self, smoke_run):
        rerun = run_suite("smoke", repeats=1)
        comparison = compare_runs(smoke_run, rerun)
        assert comparison.ok
        assert comparison.exact_failures == []
        assert comparison.exact_checked == len(smoke_run["experiments"])
        assert "OK" in render_comparison(comparison)

    def test_perturbed_exact_series_fails(self):
        baseline = synthetic_run()
        current = synthetic_run(run_id="current")
        current["experiments"][0]["exact"]["series"][1][0] = 999
        comparison = compare_runs(baseline, current)
        assert not comparison.ok
        assert any("series" in failure for failure in comparison.exact_failures)
        assert "FAIL" in render_comparison(comparison)

    def test_missing_experiment_fails(self):
        baseline = synthetic_run()
        current = synthetic_run(run_id="current")
        current["experiments"] = [
            {**current["experiments"][0], "id": "renamed"}
        ]
        comparison = compare_runs(baseline, current)
        assert any("missing" in failure for failure in comparison.exact_failures)
        assert any("renamed" in note for note in comparison.notes)

    def test_suite_mismatch_fails(self):
        baseline = synthetic_run()
        current = synthetic_run(run_id="current")
        current["suite"] = "full"
        assert not compare_runs(baseline, current).ok

    def test_invalid_document_fails_with_role_prefix(self):
        comparison = compare_runs({}, synthetic_run())
        assert any(
            failure.startswith("baseline:")
            for failure in comparison.exact_failures
        )

    def test_timing_regression_detected_but_soft(self):
        baseline = synthetic_run(median=10.0, mad=0.5)
        current = synthetic_run(run_id="current", median=30.0, mad=0.5)
        comparison = compare_runs(baseline, current)
        assert comparison.ok  # timing is the soft gate
        assert len(comparison.timing_regressions) == 1
        record = comparison.timing_regressions[0]
        assert record["workload"] == "work"
        assert "timing regressions" in render_comparison(comparison)

    def test_timing_improvement_reported(self):
        # A speedup can only beat the threshold when the floor is below
        # the drop (defaults allow drops up to 100% of the median).
        baseline = synthetic_run(median=30.0, mad=0.5)
        current = synthetic_run(run_id="current", median=10.0, mad=0.5)
        comparison = compare_runs(
            baseline, current, tolerance_mads=2.0, rel_floor=0.1
        )
        assert comparison.timing_regressions == []
        assert len(comparison.timing_improvements) == 1
        assert "improvement" in render_comparison(comparison)

    def test_timing_within_tolerance_passes(self):
        baseline = synthetic_run(median=10.0, mad=2.0)
        current = synthetic_run(run_id="current", median=12.0, mad=2.0)
        comparison = compare_runs(baseline, current)
        assert comparison.timing_regressions == []
        assert comparison.timings_checked == 1

    def test_tolerance_floor_shields_quiet_baselines(self):
        # MAD 0 would make any jitter a regression without the floors.
        baseline = synthetic_run(median=10.0, mad=0.0)
        current = synthetic_run(run_id="current", median=11.0, mad=0.0)
        assert compare_runs(baseline, current).timing_regressions == []

    def test_missing_workload_is_note_not_failure(self):
        baseline = synthetic_run()
        current = synthetic_run(run_id="current")
        current["experiments"][0]["timings"] = {}
        comparison = compare_runs(baseline, current)
        assert comparison.ok
        assert any("work" in note for note in comparison.notes)
