"""Export surface: ndjson round-trip, flat path keys, and the tree view."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    flatten_trace,
    metrics_from_ndjson,
    metrics_to_ndjson,
    render_trace,
    trace_from_ndjson,
    trace_to_ndjson,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("check-containment", q1_class="RPQ") as root:
        root.event("cache", outcome="miss")
        with tracer.span("complement"):
            pass
        with tracer.span("product") as product:
            product.count("configs", 12)
        with tracer.span("emptiness-search"):
            pass
    return tracer


class TestNdjson:
    def test_round_trip_reconstructs_the_tree(self):
        tracer = _sample_tracer()
        tree = tracer.to_dict()
        assert trace_from_ndjson(trace_to_ndjson(tree)) == tree

    def test_accepts_a_span_directly(self):
        tracer = _sample_tracer()
        assert trace_from_ndjson(trace_to_ndjson(tracer.root)) == tracer.to_dict()

    def test_ids_are_depth_first_and_dumps_are_deterministic(self):
        tracer = _sample_tracer()
        dump = trace_to_ndjson(tracer.to_dict())
        assert dump == trace_to_ndjson(tracer.root)
        records = [json.loads(line) for line in dump.splitlines()]
        assert [r["span_id"] for r in records] == list(range(len(records)))
        assert records[0]["parent_id"] is None
        assert [r["name"] for r in records] == [
            s.name for s in tracer.root.walk()
        ]

    def test_multiple_roots_rejected(self):
        line = json.dumps({"span_id": 0, "parent_id": None, "name": "a"})
        other = json.dumps({"span_id": 1, "parent_id": None, "name": "b"})
        with pytest.raises(ValueError, match="more than one root"):
            trace_from_ndjson(line + "\n" + other + "\n")

    def test_unknown_parent_rejected(self):
        line = json.dumps({"span_id": 0, "parent_id": None, "name": "a"})
        orphan = json.dumps({"span_id": 1, "parent_id": 99, "name": "b"})
        with pytest.raises(ValueError, match="unknown parent"):
            trace_from_ndjson(line + "\n" + orphan + "\n")

    def test_no_root_rejected(self):
        with pytest.raises(ValueError, match="no root"):
            trace_from_ndjson("\n  \n")


class TestFlatten:
    def test_paths_key_every_span(self):
        flat = flatten_trace(_sample_tracer().root)
        assert set(flat) == {
            "check-containment",
            "check-containment/complement",
            "check-containment/product",
            "check-containment/emptiness-search",
        }
        assert flat["check-containment"]["tags"] == {"q1_class": "RPQ"}
        assert flat["check-containment/product"]["counters"] == {"configs": 12}
        assert "counters" not in flat["check-containment/complement"]

    def test_repeated_siblings_get_ordinal_suffixes(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("round"):
                    pass
        flat = flatten_trace(tracer.root)
        assert set(flat) == {
            "root",
            "root/round",
            "root/round#2",
            "root/round#3",
        }


class TestRender:
    def test_tree_shows_spans_durations_and_events(self):
        text = render_trace(_sample_tracer().root)
        lines = text.splitlines()
        assert lines[0].startswith("check-containment  ")
        assert "ms" in lines[0]
        assert "[q1_class=RPQ]" in lines[0]
        assert any("· cache @" in line and "miss" in line for line in lines)
        assert any("├─ complement" in line for line in lines)
        assert any("└─ emptiness-search" in line for line in lines)
        assert any("configs=12" in line for line in lines)
        assert text.endswith("\n")

    def test_render_accepts_the_dict_form(self):
        tracer = _sample_tracer()
        assert render_trace(tracer.to_dict()) == render_trace(tracer.root)

    def test_self_time_is_duration_minus_children(self):
        # A synthetic nested fixture with exact durations: the parent's
        # self time is its duration minus the children's sum, the
        # grandparent's likewise, and leaves show no self column.
        tree = {
            "name": "root",
            "duration_ms": 10.0,
            "children": [
                {
                    "name": "mid",
                    "duration_ms": 6.0,
                    "children": [
                        {"name": "leaf-a", "duration_ms": 2.5, "children": []},
                        {"name": "leaf-b", "duration_ms": 1.5, "children": []},
                    ],
                },
                {"name": "leaf-c", "duration_ms": 1.0, "children": []},
            ],
        }
        lines = render_trace(tree).splitlines()
        assert lines[0] == "root  10.00 ms (self 3.00 ms)"
        [mid] = [line for line in lines if "mid" in line]
        assert "6.00 ms (self 2.00 ms)" in mid
        for leaf in ("leaf-a", "leaf-b", "leaf-c"):
            [line] = [line for line in lines if leaf in line]
            assert "self" not in line

    def test_self_time_clamps_at_zero_when_children_overrun(self):
        # Clock jitter can make children sum past their parent; the
        # rendered self time clamps at 0 rather than going negative.
        tree = {
            "name": "root",
            "duration_ms": 1.0,
            "children": [
                {"name": "child", "duration_ms": 1.4, "children": []},
            ],
        }
        first = render_trace(tree).splitlines()[0]
        assert "(self 0.00 ms)" in first
        assert "-" not in first


class TestMetricsNdjson:
    def _sample_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("engine.checks").inc(5)
        registry.gauge("pool.size").set(3)
        histogram = registry.histogram("engine.check_ms", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(25.0)
        return registry.snapshot()

    def test_round_trip(self):
        snapshot = self._sample_snapshot()
        assert metrics_from_ndjson(metrics_to_ndjson(snapshot)) == snapshot

    def test_one_instrument_per_line_name_sorted(self):
        lines = metrics_to_ndjson(self._sample_snapshot()).splitlines()
        names = [json.loads(line)["name"] for line in lines]
        assert names == sorted(names)
        assert len(names) == 3

    def test_default_registry_snapshot(self):
        # No argument: dumps the process registry (engine metrics exist
        # once the engine module has been imported anywhere).
        from repro.core.engine import check_containment  # noqa: F401

        dump = metrics_to_ndjson()
        assert "engine.checks" in dump

    def test_empty_snapshot_round_trips(self):
        assert metrics_to_ndjson({}) == ""
        assert metrics_from_ndjson("") == {}

    def test_blank_lines_skipped(self):
        snapshot = self._sample_snapshot()
        text = metrics_to_ndjson(snapshot).replace("\n", "\n\n")
        assert metrics_from_ndjson(text) == snapshot

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="missing a name"):
            metrics_from_ndjson('{"type": "counter", "value": 1}\n')

    def test_duplicate_name_rejected(self):
        line = '{"name": "x", "type": "counter", "value": 1}\n'
        with pytest.raises(ValueError, match="repeats"):
            metrics_from_ndjson(line + line)
