"""Prometheus exposition: name sanitization, family rendering, and the
minimal HTTP response."""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (
    CONTENT_TYPE,
    http_exposition,
    metric_name,
    render_prometheus,
)

# One exposition line: comment, blank, or `name{labels} value`.
_EXPOSITION_LINE = re.compile(
    r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.e+-]+(inf)?)$"
)


def _sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(7)
    registry.gauge("serve.queue_depth").set(3)
    histogram = registry.histogram("serve.latency_ms", buckets=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(5.0)
    histogram.observe(50.0)
    return registry.snapshot()


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("serve.latency_ms") == "serve_latency_ms"

    def test_invalid_characters_sanitize(self):
        assert metric_name("a-b c") == "a_b_c"

    def test_leading_digit_gets_prefixed(self):
        assert metric_name("7up").startswith("_")


class TestRender:
    def test_counter_and_gauge_families(self):
        text = render_prometheus(_sample_snapshot())
        assert "# TYPE serve_requests counter" in text
        assert "serve_requests 7" in text
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 3" in text
        # HELP lines map the sanitized family back to the dotted name.
        assert "# HELP serve_requests serve.requests" in text

    def test_histogram_buckets_sum_count(self):
        lines = render_prometheus(_sample_snapshot()).splitlines()
        assert 'serve_latency_ms_bucket{le="1.0"} 1' in lines
        assert 'serve_latency_ms_bucket{le="10.0"} 2' in lines
        assert 'serve_latency_ms_bucket{le="+Inf"} 3' in lines
        assert "serve_latency_ms_count 3" in lines
        assert any(line.startswith("serve_latency_ms_sum ") for line in lines)

    def test_every_line_matches_the_exposition_grammar(self):
        for line in render_prometheus(_sample_snapshot()).splitlines():
            assert _EXPOSITION_LINE.match(line), line

    def test_families_are_name_sorted_and_deterministic(self):
        snapshot = _sample_snapshot()
        text = render_prometheus(snapshot)
        assert text == render_prometheus(snapshot)
        families = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert families == sorted(families)

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_unknown_kinds_render_untyped(self):
        text = render_prometheus({"weird.thing": {"type": "mystery", "value": 2}})
        assert "# TYPE weird_thing untyped" in text
        assert "weird_thing 2" in text

    def test_null_values_render_as_zero(self):
        text = render_prometheus({"g": {"type": "gauge", "value": None}})
        assert "g 0" in text.splitlines()

    def test_histogram_without_overflow_bucket_synthesizes_inf(self):
        snapshot = {
            "h": {
                "type": "histogram",
                "count": 3,
                "sum": 4.5,
                "buckets": {"1.0": 2},
            }
        }
        lines = render_prometheus(snapshot).splitlines()
        assert 'h_bucket{le="+Inf"} 3' in lines

    def test_default_snapshot_is_the_process_registry(self):
        from repro.core.engine import check_containment  # noqa: F401

        assert "engine_checks" in render_prometheus()


class TestHttpExposition:
    def test_response_headers_and_body_length_agree(self):
        payload = http_exposition(_sample_snapshot())
        head, _, body = payload.partition(b"\r\n\r\n")
        lines = head.decode("ascii").split("\r\n")
        assert lines[0] == "HTTP/1.0 200 OK"
        assert f"Content-Type: {CONTENT_TYPE}" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: close" in lines
        assert body.decode("utf-8") == render_prometheus(_sample_snapshot())
