"""Tracer/Span semantics: nesting, timing monotonicity, error capture,
and the NullTracer no-op contract."""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
    maybe_span,
)


class TestSpanNesting:
    def test_children_attach_to_the_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-2"):
                pass
        root = tracer.root
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child-1", "child-2"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_walk_is_preorder_and_find_locates_stages(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        assert [s.name for s in tracer.root.walk()] == ["a", "b", "c", "d"]
        assert tracer.root.find("d").name == "d"
        assert tracer.root.find("missing") is None

    def test_sequential_roots_accumulate(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]
        assert tracer.root.name == "first"

    def test_current_tracks_the_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None


class TestTiming:
    def test_durations_are_monotone_in_nesting(self):
        """A parent span can never be shorter than any child."""
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                time.sleep(0.002)
        parent, child = tracer.root, tracer.root.children[0]
        assert parent.end is not None and child.end is not None
        assert parent.start <= child.start
        assert child.end <= parent.end
        assert parent.duration_ms >= child.duration_ms >= 2.0

    def test_open_span_duration_grows(self):
        span = Span("open")
        first = span.duration_ms
        time.sleep(0.001)
        assert span.duration_ms > first
        span.close()
        frozen = span.duration_ms
        assert span.duration_ms == frozen

    def test_close_is_idempotent(self):
        span = Span("s")
        span.close()
        end = span.end
        time.sleep(0.001)
        span.close()
        assert span.end == end

    def test_to_dict_reports_ms_relative_to_origin(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        tree = tracer.to_dict()
        assert tree["start_ms"] == 0.0
        child = tree["children"][0]
        assert child["start_ms"] >= 0.0
        assert child["duration_ms"] <= tree["duration_ms"]


class TestRecording:
    def test_counters_accumulate(self):
        span = Span("s")
        span.count("items")
        span.count("items", 4)
        assert span.counters == {"items": 5}

    def test_annotate_and_event(self):
        tracer = Tracer()
        with tracer.span("s", kind="test") as span:
            span.annotate(extra=1)
            span.event("cache", outcome="hit")
        assert span.tags == {"kind": "test", "extra": 1}
        (event,) = span.events
        assert event["name"] == "cache"
        assert event["outcome"] == "hit"
        assert event["at_ms"] >= 0.0

    def test_tracer_level_recording_targets_current_span(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            tracer.count("n", 2)
            tracer.annotate(tag="v")
            tracer.event("tick")
        assert span.counters == {"n": 2}
        assert span.tags == {"tag": "v"}
        assert span.events[0]["name"] == "tick"
        # With no open span these are silently dropped, not errors.
        tracer.count("n")
        tracer.annotate(tag="w")
        tracer.event("tock")
        assert span.counters == {"n": 2}


class TestErrorUnwind:
    def test_exception_tags_and_closes_the_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer, inner = tracer.root, tracer.root.children[0]
        assert inner.tags["error"] == "ValueError"
        assert outer.tags["error"] == "ValueError"
        assert inner.end is not None and outer.end is not None

    def test_nonlocal_exit_closes_dangling_spans(self):
        tracer = Tracer()
        scope = tracer.span("outer")
        scope.__enter__()
        tracer.span("dangling").__enter__()
        scope.__exit__(None, None, None)
        assert tracer.current is None
        assert all(s.end is not None for s in tracer.root.walk())


class TestNullTracer:
    def test_surface_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", tag=1) as span:
            span.count("n")
            span.annotate(x=1)
            span.event("e")
        assert tracer.to_dict() is None
        assert tracer.roots == []
        assert tracer.root is None
        assert not tracer.is_active
        assert NULL_TRACER.to_dict() is None

    def test_as_tracer_normalizes_none(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer

    def test_maybe_span_shares_one_noop_scope(self):
        assert maybe_span(None, "x") is maybe_span(NULL_TRACER, "y", tag=1)

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["span", "count", "annotate", "event"]),
                st.text(
                    alphabet="abcdefghij", min_size=1, max_size=8
                ),
                st.integers(0, 100),
            ),
            max_size=30,
        )
    )
    def test_null_tracer_noop_under_any_call_sequence(self, calls):
        """Property: no call sequence makes the null tracer observable."""
        tracer = NULL_TRACER
        open_scopes = []
        for kind, name, amount in calls:
            if kind == "span":
                scope = maybe_span(tracer, name, size=amount)
                open_scopes.append(scope)
                scope.__enter__()
            elif kind == "count":
                tracer.count(name, amount)
            elif kind == "annotate":
                tracer.annotate(**{name: amount})
            else:
                tracer.event(name, value=amount)
        for scope in reversed(open_scopes):
            scope.__exit__(None, None, None)
        assert tracer.to_dict() is None
        assert tracer.roots == []
        assert tracer.current is None
