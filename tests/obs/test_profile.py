"""Tests for the span-profile aggregator (repro.obs.profile)."""

import pytest

from repro.obs.profile import SpanProfile, aggregate_traces, render_profile
from repro.obs.trace import Tracer


def span(name, duration, children=()):
    """A minimal to_dict()-shaped span node."""
    return {
        "name": name,
        "start_ms": 0.0,
        "duration_ms": duration,
        "children": list(children),
    }


def entries_by_path(profile, top=None):
    return {row["path"]: row for row in profile.rows(top)}


class TestMerging:
    def trace_one(self):
        #  check(10) -> fold(2), search(6)
        return span("check", 10.0, [span("fold", 2.0), span("search", 6.0)])

    def trace_two(self):
        #  check(20) -> fold(4), search(10), render(1)
        return span(
            "check",
            20.0,
            [span("fold", 4.0), span("search", 10.0), span("render", 1.0)],
        )

    def test_call_counts_across_traces(self):
        profile = aggregate_traces([self.trace_one(), self.trace_two()])
        rows = entries_by_path(profile)
        assert profile.traces == 2
        assert rows["check"]["calls"] == 2
        assert rows["check/fold"]["calls"] == 2
        assert rows["check/search"]["calls"] == 2
        assert rows["check/render"]["calls"] == 1

    def test_cumulative_and_self_time(self):
        profile = aggregate_traces([self.trace_one(), self.trace_two()])
        rows = entries_by_path(profile)
        assert rows["check"]["cum_ms"] == pytest.approx(30.0)
        # self = cumulative - direct children, per occurrence, summed:
        # (10 - 8) + (20 - 15) = 7
        assert rows["check"]["self_ms"] == pytest.approx(7.0)
        # leaves: self == cum
        assert rows["check/fold"]["self_ms"] == pytest.approx(6.0)
        assert rows["check/fold"]["cum_ms"] == pytest.approx(6.0)

    def test_same_named_siblings_merge(self):
        trace = span("check", 9.0, [span("step", 3.0), span("step", 4.0)])
        rows = entries_by_path(aggregate_traces([trace]))
        assert rows["check/step"]["calls"] == 2
        assert rows["check/step"]["cum_ms"] == pytest.approx(7.0)

    def test_self_time_clamped_at_zero(self):
        # Clock jitter: children can sum past the parent duration.
        trace = span("check", 1.0, [span("step", 1.2)])
        rows = entries_by_path(aggregate_traces([trace]))
        assert rows["check"]["self_ms"] == 0.0


class TestRecursion:
    def test_recursive_spans_fold_to_stable_key(self):
        # expand -> expand -> expand: one key no matter the depth.
        trace = span(
            "check",
            10.0,
            [span("expand", 8.0, [span("expand", 5.0, [span("expand", 2.0)])])],
        )
        rows = entries_by_path(aggregate_traces([trace]))
        assert set(rows) == {"check", "check/expand"}
        assert rows["check/expand"]["calls"] == 3

    def test_recursive_cum_counts_topmost_only(self):
        trace = span(
            "check", 10.0, [span("expand", 8.0, [span("expand", 5.0)])]
        )
        rows = entries_by_path(aggregate_traces([trace]))
        # cum charges the outermost frame once (8), not 8 + 5.
        assert rows["check/expand"]["cum_ms"] == pytest.approx(8.0)
        # self still accumulates per frame: (8 - 5) + 5 = 8.
        assert rows["check/expand"]["self_ms"] == pytest.approx(8.0)

    def test_mutual_recursion_folds_to_nearest_ancestor(self):
        # a/b/a: inner "a" charges the root "a" key, children hang below it.
        trace = span(
            "a", 10.0, [span("b", 8.0, [span("a", 4.0, [span("c", 1.0)])])]
        )
        rows = entries_by_path(aggregate_traces([trace]))
        assert set(rows) == {"a", "a/b", "a/c"}
        assert rows["a"]["calls"] == 2
        assert rows["a"]["cum_ms"] == pytest.approx(10.0)

    def test_child_of_recursive_frame_keys_under_folded_path(self):
        trace = span(
            "check",
            10.0,
            [span("expand", 8.0, [span("expand", 5.0, [span("leaf", 1.0)])])],
        )
        rows = entries_by_path(aggregate_traces([trace]))
        assert "check/expand/leaf" in rows


class TestStats:
    def test_percentiles_nearest_rank(self):
        profile = SpanProfile()
        for duration in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
            profile.add(span("check", duration))
        row = entries_by_path(profile)["check"]
        assert row["p50_ms"] == pytest.approx(5.0)
        assert row["p95_ms"] == pytest.approx(10.0)
        assert row["max_ms"] == pytest.approx(10.0)
        assert row["calls"] == 10

    def test_rows_sorted_by_self_time_with_top(self):
        trace = span(
            "check", 100.0, [span("hot", 60.0), span("cold", 1.0)]
        )
        profile = aggregate_traces([trace])
        ordered = [row["path"] for row in profile.rows()]
        assert ordered == ["check/hot", "check", "check/cold"]
        assert [row["path"] for row in profile.rows(top=1)] == ["check/hot"]

    def test_to_dict_shape(self):
        profile = aggregate_traces([span("check", 1.0)])
        data = profile.to_dict(top=5)
        assert data["traces"] == 1
        assert data["entries"][0]["path"] == "check"


class TestInputsAndRendering:
    def test_accepts_live_tracer_spans(self):
        tracer = Tracer()
        with tracer.span("check"):
            with tracer.span("fold"):
                pass
        profile = SpanProfile()
        profile.add(tracer.root)  # a Span object, not a dict
        assert "check/fold" in entries_by_path(profile)

    def test_render_contains_paths_and_counts(self):
        profile = aggregate_traces(
            [span("check", 10.0, [span("fold", 2.0)])] * 2
        )
        text = render_profile(profile, top=10)
        assert "check/fold" in text
        assert "2 traces" in text
        assert "self ms" in text

    def test_render_accepts_dict_form(self):
        profile = aggregate_traces([span("check", 1.0)])
        assert render_profile(profile.to_dict()) == render_profile(profile)

    def test_render_respects_top(self):
        trace = span("check", 10.0, [span(f"s{i}", 1.0) for i in range(9)])
        text = render_profile(aggregate_traces([trace]), top=3)
        assert "top 3" in text
        assert len(text.strip().splitlines()) == 3 + 3  # header block + 3 rows
