"""Tests for the generic on-the-fly product-emptiness search."""

import pytest

from repro.automata.nfa import NFA
from repro.automata.onthefly import (
    ExplicitNFA,
    SearchBudgetExceeded,
    SearchStats,
    find_accepted_word,
    intersection_is_empty,
)
from repro.automata.regex import parse_regex


def wrap(text: str) -> ExplicitNFA:
    return ExplicitNFA(parse_regex(text).to_nfa())


class TestFindAcceptedWord:
    def test_single_machine(self):
        assert find_accepted_word([wrap("a b")], ("a", "b")) == ("a", "b")

    def test_intersection_witness_is_shortest(self):
        word = find_accepted_word([wrap("(a|b)* a"), wrap("a (a|b)*")], ("a", "b"))
        assert word == ("a",)

    def test_empty_intersection(self):
        assert find_accepted_word([wrap("a a"), wrap("b")], ("a", "b")) is None

    def test_epsilon_in_intersection(self):
        assert find_accepted_word([wrap("a*"), wrap("b*")], ("a", "b")) == ()

    def test_three_way_intersection(self):
        word = find_accepted_word(
            [wrap("(a|b)+"), wrap("(a|b)* b"), wrap("a (a|b)*")], ("a", "b")
        )
        assert word is not None
        assert word[0] == "a" and word[-1] == "b"

    def test_machine_with_no_initial_states(self):
        empty = ExplicitNFA(NFA.build(("a",), [0], [], [0], []))
        assert find_accepted_word([empty, wrap("a")], ("a",)) is None

    def test_budget_raises(self):
        with pytest.raises(SearchBudgetExceeded):
            find_accepted_word(
                [wrap("(a|b)(a|b)(a|b)(a|b)"), wrap("b b b b")],
                ("a", "b"),
                max_configs=2,
            )

    def test_stats_populated(self):
        stats = SearchStats()
        find_accepted_word([wrap("a a a"), wrap("a*")], ("a",), stats=stats)
        assert stats.explored > 0


class TestIntersectionIsEmpty:
    def test_yes_and_no(self):
        assert intersection_is_empty([wrap("a"), wrap("b")], ("a", "b"))
        assert not intersection_is_empty([wrap("a+"), wrap("a a")], ("a", "b"))
