"""Property-based cross-validation of the indexed kernels (hypothesis).

The design contract of :mod:`repro.automata.indexed` is that every
kernel is a drop-in semantic equivalent of the object-level baseline it
replaces.  These tests hold both implementations to that claim on random
regexes and random edge-list automata, with caching disabled so the two
arms cannot contaminate each other through the determinize cache.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.dfa import containment_counterexample, determinize
from repro.automata.indexed import (
    IndexedNFA,
    containment_counterexample_indexed,
    use_indexed_kernels,
)
from repro.automata.nfa import NFA
from repro.automata.regex import Regex, random_regex
from repro.cache import use_caching
from repro.graphdb.generators import random_graph
from repro.rpq.rpq import evaluate_nfa_on_graph, targets_from

ALPHABET = ("a", "b")


@st.composite
def regexes(draw, depth: int = 3) -> Regex:
    seed = draw(st.integers(min_value=0, max_value=10**9))
    return random_regex(random.Random(seed), ALPHABET, depth, False)


@st.composite
def edge_list_nfas(draw) -> NFA:
    """Random automata that need not come from a regex (odd shapes too)."""
    num_states = draw(st.integers(min_value=1, max_value=6))
    state_ids = st.integers(min_value=0, max_value=num_states - 1)
    edges = draw(
        st.lists(
            st.tuples(state_ids, st.sampled_from(ALPHABET), state_ids),
            max_size=14,
        )
    )
    initial = draw(st.lists(state_ids, min_size=1, max_size=2))
    final = draw(st.lists(state_ids, max_size=2))
    return NFA.build(ALPHABET, range(num_states), initial, final, edges)


@st.composite
def words(draw, max_len: int = 5):
    return tuple(draw(st.lists(st.sampled_from(ALPHABET), max_size=max_len)))


@settings(max_examples=50, deadline=None)
@given(edge_list_nfas())
def test_determinize_is_a_structural_drop_in(nfa):
    with use_caching(False):
        with use_indexed_kernels(True):
            fast = determinize(nfa, ALPHABET)
        with use_indexed_kernels(False):
            slow = determinize(nfa, ALPHABET)
    assert fast == slow


@settings(max_examples=50, deadline=None)
@given(edge_list_nfas(), edge_list_nfas())
def test_product_is_a_structural_drop_in(left, right):
    with use_indexed_kernels(True):
        fast = left.product(right)
    with use_indexed_kernels(False):
        slow = left.product(right)
    assert fast == slow


@settings(max_examples=50, deadline=None)
@given(edge_list_nfas())
def test_emptiness_and_shortest_word_agree_with_baseline(nfa):
    compiled = IndexedNFA.from_nfa(nfa)
    with use_indexed_kernels(False):
        baseline = nfa.shortest_word()
    fast = compiled.shortest_word()
    assert compiled.is_empty() == (baseline is None)
    assert (fast is None) == (baseline is None)
    if fast is not None:
        assert len(fast) == len(baseline)  # both BFS: shortest length
        assert nfa.accepts(fast)


@settings(max_examples=50, deadline=None)
@given(edge_list_nfas())
def test_trim_agrees_with_baseline(nfa):
    with use_indexed_kernels(True):
        fast = nfa.trim()
    with use_indexed_kernels(False):
        slow = nfa.trim()
    assert fast == slow


@settings(max_examples=40, deadline=None)
@given(regexes(), regexes())
def test_minimize_produces_identical_canonical_dfa(r1, r2):
    with use_caching(False):
        dfa = determinize(r1.to_nfa().union(r2.to_nfa()), ALPHABET)
    with use_indexed_kernels(True):
        fast = dfa.minimize()
    with use_indexed_kernels(False):
        slow = dfa.minimize()
    assert fast == slow


@settings(max_examples=40, deadline=None)
@given(regexes(), regexes())
def test_containment_counterexamples_agree_with_baseline(r1, r2):
    left, right = r1.to_nfa().trim(), r2.to_nfa().trim()
    fast = containment_counterexample_indexed(left, right, ALPHABET)
    with use_caching(False), use_indexed_kernels(False):
        slow = containment_counterexample(left, right, ALPHABET)
    assert (fast is None) == (slow is None)
    if fast is not None:
        assert len(fast) == len(slow)  # both searches are breadth-first
        assert left.accepts(fast) and not right.accepts(fast)
        assert left.accepts(slow) and not right.accepts(slow)


@settings(max_examples=25, deadline=None)
@given(regexes(depth=2), st.integers(min_value=0, max_value=10**6))
def test_rpq_graph_evaluation_agrees_with_baseline(regex, graph_seed):
    nfa = regex.to_nfa().trim()
    db = random_graph(6, 12, ALPHABET, seed=graph_seed)
    with use_indexed_kernels(True):
        fast = evaluate_nfa_on_graph(nfa, db)
    with use_indexed_kernels(False):
        slow = evaluate_nfa_on_graph(nfa, db)
    assert fast == slow
    source = sorted(db.nodes, key=repr)[0]
    with use_indexed_kernels(True):
        fast_targets = targets_from(nfa, db, source)
    with use_indexed_kernels(False):
        slow_targets = targets_from(nfa, db, source)
    assert fast_targets == slow_targets
