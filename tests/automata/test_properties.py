"""Property-based tests (hypothesis) for the automata substrate.

These check the algebraic laws the containment pipelines silently rely
on: De-Morgan-style relationships between product/complement, fold
soundness, involution of inversion, and agreement of the independent
2NFA pipelines (Lemma 4 vs Shepherdson).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.alphabet import Alphabet, inverse_word
from repro.automata.dfa import (
    complement_nfa,
    determinize,
    nfa_contains,
    reduce_nfa,
)
from repro.automata.fold import fold_two_nfa, folds_onto
from repro.automata.regex import Regex, parse_regex, random_regex
from repro.automata.shepherdson import two_nfa_to_dfa

ALPHABET = ("a", "b")
SIGMA_PM = Alphabet(ALPHABET).two_way


@st.composite
def regexes(draw, allow_inverse: bool = False, depth: int = 3) -> Regex:
    seed = draw(st.integers(min_value=0, max_value=10**9))
    return random_regex(random.Random(seed), ALPHABET, depth, allow_inverse)


@st.composite
def words(draw, alphabet=ALPHABET, max_len: int = 4):
    return tuple(
        draw(st.lists(st.sampled_from(alphabet), max_size=max_len))
    )


@settings(max_examples=60, deadline=None)
@given(regexes(), words())
def test_determinization_preserves_acceptance(regex, word):
    nfa = regex.to_nfa()
    assert determinize(nfa, ALPHABET).accepts(word) == nfa.accepts(word)


@settings(max_examples=60, deadline=None)
@given(regexes(), words())
def test_complement_is_exact(regex, word):
    nfa = regex.to_nfa()
    assert complement_nfa(nfa, ALPHABET).accepts(word) != nfa.accepts(word)


@settings(max_examples=60, deadline=None)
@given(regexes(), words())
def test_reduce_preserves_acceptance(regex, word):
    nfa = regex.to_nfa()
    assert reduce_nfa(nfa).accepts(word) == nfa.accepts(word)


@settings(max_examples=40, deadline=None)
@given(regexes(), regexes(), words())
def test_product_is_conjunction_of_acceptance(r1, r2, word):
    n1, n2 = r1.to_nfa(), r2.to_nfa()
    assert n1.product(n2).accepts(word) == (n1.accepts(word) and n2.accepts(word))


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_containment_is_reflexive(regex):
    nfa = regex.to_nfa()
    assert nfa_contains(nfa, nfa, ALPHABET)


@settings(max_examples=40, deadline=None)
@given(regexes(), regexes())
def test_containment_in_union_always_holds(r1, r2):
    n1 = r1.to_nfa()
    assert nfa_contains(n1, n1.union(r2.to_nfa()), ALPHABET)


@settings(max_examples=60, deadline=None)
@given(words(SIGMA_PM))
def test_fold_is_reflexive(word):
    assert folds_onto(word, word)


@settings(max_examples=60, deadline=None)
@given(words(SIGMA_PM, max_len=4), st.integers(min_value=0, max_value=3))
def test_fold_with_stutter_preserves(word, position):
    """Stuttering over a letter of u preserves folding.

    A fold cursor may cross u[i] forward, step back over it, and cross
    again: v = u[:i] + (u[i], u[i]-, u[i]) + u[i+1:] folds onto u.
    (Detours can only retrace letters of u itself — walking off the word
    is impossible, which an earlier draft of this property got wrong.)
    """
    if not word:
        assert folds_onto((), ())
        return
    i = position % len(word)
    letter = word[i]
    stuttered = word[:i] + (letter, inverse_word((letter,))[0], letter) + word[i + 1 :]
    assert folds_onto(stuttered, word)


@settings(max_examples=25, deadline=None)
@given(regexes(allow_inverse=True, depth=2), words(SIGMA_PM, max_len=3))
def test_fold_two_nfa_membership_matches_definition(regex, word):
    """The Lemma 3 automaton accepts u iff some v in L folds onto u.

    The right-hand side is decided by the independent Shepherdson
    determinization, making this a cross-pipeline consistency check.
    """
    nfa = reduce_nfa(regex.to_nfa())
    two = fold_two_nfa(nfa, SIGMA_PM)
    direct = two.accepts(word)
    via_dfa = two_nfa_to_dfa(two).accepts(word)
    assert direct == via_dfa


@settings(max_examples=30, deadline=None)
@given(regexes(depth=3))
def test_state_elimination_roundtrip(regex):
    """Kleene's theorem, executable: regex -> NFA -> regex is equivalent."""
    from repro.automata.state_elimination import nfa_to_regex
    from repro.automata.dfa import nfa_equivalent

    recovered = nfa_to_regex(regex.to_nfa())
    assert nfa_equivalent(regex.to_nfa(), recovered.to_nfa(), ALPHABET)


@settings(max_examples=30, deadline=None)
@given(regexes(allow_inverse=True, depth=3), words(SIGMA_PM))
def test_minimized_dfa_is_canonical_acceptor(regex, word):
    """Two routes to a minimal DFA accept the same words."""
    nfa = regex.to_nfa()
    direct = determinize(nfa, SIGMA_PM).minimize()
    via_reduction = determinize(reduce_nfa(nfa), SIGMA_PM).minimize()
    assert direct.accepts(word) == via_reduction.accepts(word)
    assert direct.num_states == via_reduction.num_states


@settings(max_examples=40, deadline=None)
@given(regexes(allow_inverse=True, depth=2))
def test_language_contained_in_its_fold(regex):
    """L(A) ⊆ fold(L(A)): folding straight ahead is always possible."""
    nfa = reduce_nfa(regex.to_nfa())
    two = fold_two_nfa(nfa, SIGMA_PM)
    for word in nfa.enumerate_words(3):
        assert two.accepts(word)
