"""Tests for the Shepherdson-style 2NFA determinization baseline."""

import itertools

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.complement import StateBudgetExceeded, complement_two_nfa
from repro.automata.dfa import reduce_nfa
from repro.automata.fold import fold_two_nfa
from repro.automata.regex import parse_regex
from repro.automata.shepherdson import (
    LazyShepherdsonComplement,
    naive_complement_two_nfa,
    two_nfa_to_dfa,
)
from repro.automata.two_nfa import one_way_as_two_way

SIGMA_P = Alphabet(("p",)).two_way
SIGMA_AB = Alphabet(("a", "b")).two_way


def fold_of(text: str, alphabet):
    return fold_two_nfa(reduce_nfa(parse_regex(text).to_nfa()), alphabet)


class TestDeterminization:
    @pytest.mark.parametrize(
        "text,alphabet",
        [("p p- p", SIGMA_P), ("a b", SIGMA_AB), ("a (a-|b)*", SIGMA_AB)],
    )
    def test_dfa_language_equals_two_nfa_language(self, text, alphabet):
        two = fold_of(text, alphabet)
        dfa = two_nfa_to_dfa(two)
        for length in range(4):
            for word in itertools.product(alphabet, repeat=length):
                assert dfa.accepts(word) == two.accepts(word), (text, word)

    def test_on_one_way_embedding(self):
        nfa = reduce_nfa(parse_regex("(a|b)* a").to_nfa())
        two = one_way_as_two_way(nfa)
        dfa = two_nfa_to_dfa(two)
        for length in range(5):
            for word in itertools.product(("a", "b"), repeat=length):
                assert dfa.accepts(word) == nfa.accepts(word), word

    def test_random_two_nfas(self, rng, random_two_nfa):
        for _ in range(8):
            two = random_two_nfa(rng, 3, ("a", "b"), density=0.15)
            dfa = two_nfa_to_dfa(two)
            for length in range(4):
                for word in itertools.product(("a", "b"), repeat=length):
                    assert dfa.accepts(word) == two.accepts(word), word

    def test_budget(self, rng, random_two_nfa):
        two = random_two_nfa(rng, 5, ("a", "b"), density=0.3)
        with pytest.raises(StateBudgetExceeded):
            two_nfa_to_dfa(two, max_states=1)


class TestNaiveComplement:
    def test_agrees_with_lemma4(self):
        two = fold_of("p p", SIGMA_P)
        naive = naive_complement_two_nfa(two)
        lemma4 = complement_two_nfa(two)
        for length in range(4):
            for word in itertools.product(SIGMA_P, repeat=length):
                assert naive.accepts(word) == lemma4.accepts(word), word


class TestLazyShepherdsonComplement:
    def test_is_deterministic(self):
        two = fold_of("p", SIGMA_P)
        lazy = LazyShepherdsonComplement(two)
        (initial,) = lazy.initial_states()
        (successor,) = lazy.successor_states(initial, "p")
        assert successor is not None

    def test_complement_semantics(self):
        two = fold_of("p p- p", SIGMA_P)
        lazy = LazyShepherdsonComplement(two)
        for length in range(4):
            for word in itertools.product(SIGMA_P, repeat=length):
                state = next(iter(lazy.initial_states()))
                for symbol in word:
                    (state,) = lazy.successor_states(state, symbol)
                assert lazy.is_final(state) == (not two.accepts(word)), word
