"""Tests for DOT export."""

from repro.automata.dot import graph_to_dot, nfa_to_dot, two_nfa_to_dot
from repro.automata.fold import fold_two_nfa
from repro.automata.regex import parse_regex
from repro.graphdb.database import GraphDatabase


class TestNFADot:
    def test_structure(self):
        dot = nfa_to_dot(parse_regex("a b|c").to_nfa())
        assert dot.startswith("digraph nfa {")
        assert dot.rstrip().endswith("}")
        assert "doublecircle" in dot        # a final state
        assert "__start" in dot             # an initial marker
        assert '[label="a"]' in dot or '[label="a,' in dot

    def test_parallel_edges_grouped(self):
        dot = nfa_to_dot(parse_regex("a|b").to_nfa())
        # After epsilon elimination a|b shares endpoints: labels grouped.
        assert '"a,b"' in dot or ('"a"' in dot and '"b"' in dot)

    def test_quoting(self):
        from repro.automata.nfa import NFA

        nfa = NFA.build(("a",), ['st"0', 1], ['st"0'], [1], [('st"0', "a", 1)])
        dot = nfa_to_dot(nfa)
        assert '\\"' in dot


class TestTwoNFADot:
    def test_directions_rendered(self):
        two = fold_two_nfa(parse_regex("p").to_nfa(), ("p", "p-"))
        dot = two_nfa_to_dot(two)
        assert "digraph" in dot
        assert "→" in dot and "←" in dot  # forward + backward moves


class TestGraphDot:
    def test_edges_and_nodes(self):
        db = GraphDatabase.from_edges([("a", "knows", "b")], nodes=["c"])
        dot = graph_to_dot(db)
        assert '"a" -> "b" [label="knows"]' in dot
        assert '"c";' in dot
