"""Unit tests for two-way automata with end-marker semantics."""

import pytest

from repro.automata.alphabet import LEFT_MARKER, RIGHT_MARKER
from repro.automata.regex import parse_regex
from repro.automata.two_nfa import LEFT, RIGHT, STAY, TwoNFA, one_way_as_two_way


class TestBuild:
    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            TwoNFA.build(("a",), [0], [0], [0], [(0, "a", 0, 2)])

    def test_moves_default_empty(self):
        two = TwoNFA.build(("a",), [0], [0], [0], [])
        assert two.moves(0, "a") == frozenset()


class TestAcceptance:
    def test_one_way_embedding_agrees(self):
        nfa = parse_regex("(a|b)* a").to_nfa()
        two = one_way_as_two_way(nfa)
        for word in [(), ("a",), ("b",), ("b", "a"), ("a", "b"), ("a", "a", "a")]:
            assert two.accepts(word) == nfa.accepts(word), word

    def test_empty_word_via_markers(self):
        nfa = parse_regex("a*").to_nfa()
        assert one_way_as_two_way(nfa).accepts(())

    def test_genuinely_two_way_language(self):
        """A 2NFA that zig-zags: accepts words whose first and last letters match.

        It walks to the right marker, then returns to re-read the first
        letter — impossible without two-way moves at this state budget.
        """
        # States: 0 = scan right remembering first letter is 'a' (else die),
        # 1 = at right marker, walking left to the left marker, 2 = verify.
        transitions = [
            (0, "a", 0, RIGHT),
            (0, "b", 0, RIGHT),
            (0, LEFT_MARKER, 0, RIGHT),
            (0, RIGHT_MARKER, 1, LEFT),
            (1, "a", 1, LEFT),
            (1, "b", 1, LEFT),
            (1, LEFT_MARKER, 2, RIGHT),
            (2, "a", 3, RIGHT),       # first letter must be 'a'
            (3, "a", 3, RIGHT),
            (3, "b", 3, RIGHT),
            (3, RIGHT_MARKER, 3, STAY),
        ]
        two = TwoNFA.build(("a", "b"), [0, 1, 2, 3], [0], [3], transitions)
        assert two.accepts(("a",))
        assert two.accepts(("a", "b", "b"))
        assert not two.accepts(("b", "a"))
        assert not two.accepts(())

    def test_stay_moves_do_not_loop_forever(self):
        two = TwoNFA.build(
            ("a",), [0], [0], [], [(0, "a", 0, STAY), (0, LEFT_MARKER, 0, RIGHT)]
        )
        assert not two.accepts(("a",))  # terminates despite the stay loop

    def test_cannot_fall_off_tape(self):
        # A left move at the left marker is simply not taken.
        two = TwoNFA.build(
            ("a",), [0, 1], [0], [1],
            [(0, LEFT_MARKER, 1, LEFT), (0, LEFT_MARKER, 1, RIGHT)],
        )
        assert two.accepts(())  # via the RIGHT move only


class TestEnumeration:
    def test_enumerate_words(self):
        nfa = parse_regex("a b").to_nfa()
        two = one_way_as_two_way(nfa)
        assert set(two.enumerate_words(3)) == {("a", "b")}


class TestRenumber:
    def test_renumber_preserves_language(self, rng, random_two_nfa):
        two = random_two_nfa(rng, 4, ("a", "b"))
        renumbered = two.renumber()
        for word in [(), ("a",), ("b", "a"), ("a", "a", "b")]:
            assert two.accepts(word) == renumbered.accepts(word), word
