"""Unit tests for determinization, complement, minimization, containment."""

import itertools
import random

import pytest

from repro.automata.dfa import (
    complement_nfa,
    containment_counterexample,
    determinize,
    nfa_contains,
    nfa_equivalent,
    reduce_nfa,
)
from repro.automata.regex import parse_regex, random_regex


def nfa_of(text: str):
    return parse_regex(text).to_nfa()


class TestDeterminize:
    def test_language_preserved(self):
        nfa = nfa_of("(a|b)* a (a|b)")
        dfa = determinize(nfa)
        for length in range(5):
            for word in itertools.product(("a", "b"), repeat=length):
                assert dfa.accepts(word) == nfa.accepts(word), word

    def test_result_is_complete(self):
        dfa = determinize(nfa_of("a"))
        for state in dfa.states:
            for symbol in dfa.alphabet:
                assert dfa.step(state, symbol) in dfa.states

    def test_explicit_alphabet_extends(self):
        dfa = determinize(nfa_of("a"), alphabet=("a", "b"))
        assert "b" in dfa.alphabet
        assert not dfa.accepts(("b",))


class TestComplement:
    def test_complement_flips_membership(self):
        nfa = nfa_of("a (a|b)*")
        complement = complement_nfa(nfa, ("a", "b"))
        for length in range(4):
            for word in itertools.product(("a", "b"), repeat=length):
                assert complement.accepts(word) == (not nfa.accepts(word)), word

    def test_complement_relative_to_larger_alphabet(self):
        complement = complement_nfa(nfa_of("a"), ("a", "b"))
        assert complement.accepts(("b",))


class TestMinimize:
    def test_minimal_size_of_known_language(self):
        # (a|b)* a (a|b): minimal DFA has exactly 4 states.
        dfa = determinize(nfa_of("(a|b)* a (a|b)")).minimize()
        assert dfa.num_states == 4

    def test_language_preserved(self):
        dfa = determinize(nfa_of("(a b)* | a"))
        minimal = dfa.minimize()
        for length in range(6):
            for word in itertools.product(("a", "b"), repeat=length):
                assert dfa.accepts(word) == minimal.accepts(word), word

    def test_minimize_is_idempotent_in_size(self):
        dfa = determinize(nfa_of("a* b a*")).minimize()
        assert dfa.minimize().num_states == dfa.num_states

    def test_empty_language(self):
        dfa = determinize(nfa_of("a").product(nfa_of("b")), alphabet=("a", "b"))
        minimal = dfa.minimize()
        assert minimal.num_states == 1
        assert not minimal.accepts(()) and not minimal.accepts(("a",))


class TestContainment:
    @pytest.mark.parametrize(
        "small,big",
        [("a a", "a*"), ("a|b", "(a|b)+"), ("a b a", "a (a|b)* a"), ("()", "a*")],
    )
    def test_positive(self, small, big):
        assert nfa_contains(nfa_of(small), nfa_of(big))

    @pytest.mark.parametrize(
        "left,right",
        [("a*", "a a"), ("(a|b)+", "a+"), ("a?", "a")],
    )
    def test_negative_with_witness(self, left, right):
        l, r = nfa_of(left), nfa_of(right)
        assert not nfa_contains(l, r)
        witness = containment_counterexample(l, r)
        assert witness is not None
        assert l.accepts(witness) and not r.accepts(witness)

    def test_witness_is_shortest(self):
        witness = containment_counterexample(nfa_of("a a a | b"), nfa_of("a a a"))
        assert witness == ("b",)

    def test_equivalence(self):
        assert nfa_equivalent(nfa_of("a a*"), nfa_of("a+"))
        assert not nfa_equivalent(nfa_of("a*"), nfa_of("a+"))

    def test_random_cross_validation_against_brute_force(self):
        """nfa_contains agrees with finite enumeration on random regexes."""
        rng = random.Random(42)
        alphabet = ("a", "b")
        for _ in range(40):
            e1 = random_regex(rng, alphabet, 3)
            e2 = random_regex(rng, alphabet, 3)
            n1, n2 = e1.to_nfa(), e2.to_nfa()
            contained = nfa_contains(n1, n2, alphabet)
            for length in range(4):
                for word in itertools.product(alphabet, repeat=length):
                    if n1.accepts(word) and not n2.accepts(word):
                        assert not contained, (e1, e2, word)
                        break
                else:
                    continue
                break
            else:
                assert contained, (e1, e2)


class TestReduceNFA:
    def test_preserves_language(self):
        nfa = nfa_of("(a|b)* (a b)+")
        reduced = reduce_nfa(nfa)
        for length in range(5):
            for word in itertools.product(("a", "b"), repeat=length):
                assert nfa.accepts(word) == reduced.accepts(word), word

    def test_shrinks_thompson_output(self):
        nfa = nfa_of("p p- p")
        assert reduce_nfa(nfa).num_states < nfa.num_states

    def test_empty_language(self):
        assert reduce_nfa(nfa_of("a").product(nfa_of("b"))).num_states == 0
