"""Unit tests for the regex AST, parser, and Thompson construction."""

import random

import pytest

from repro.automata.regex import (
    Concat,
    EmptySet,
    Epsilon,
    Optional_,
    Plus,
    RegexSyntaxError,
    Star,
    Sym,
    Union,
    enumerate_language,
    parse_regex,
    random_regex,
    word_regex,
)


class TestParser:
    def test_single_symbol(self):
        assert parse_regex("a") == Sym("a")

    def test_inverse_symbol(self):
        assert parse_regex("a-") == Sym("a-")

    def test_multi_char_symbol(self):
        assert parse_regex("worksAt") == Sym("worksAt")

    def test_concat_by_juxtaposition(self):
        assert parse_regex("a b") == Concat(Sym("a"), Sym("b"))

    def test_concat_by_dot(self):
        assert parse_regex("a.b") == Concat(Sym("a"), Sym("b"))

    def test_union_binds_looser_than_concat(self):
        assert parse_regex("a b|c") == Union(Concat(Sym("a"), Sym("b")), Sym("c"))

    def test_postfix_operators(self):
        assert parse_regex("a*") == Star(Sym("a"))
        assert parse_regex("a+") == Plus(Sym("a"))
        assert parse_regex("a?") == Optional_(Sym("a"))

    def test_postfix_binds_tightest(self):
        assert parse_regex("a b*") == Concat(Sym("a"), Star(Sym("b")))

    def test_parentheses(self):
        assert parse_regex("(a|b) c") == Concat(Union(Sym("a"), Sym("b")), Sym("c"))

    def test_epsilon_literal(self):
        assert parse_regex("()") == Epsilon()

    def test_paper_example_q2(self):
        """The paper's Q2 = p p- p parses as a two-way expression."""
        regex = parse_regex("p p- p")
        assert regex.uses_inverse()
        assert regex.symbols() == {"p", "p-"}

    @pytest.mark.parametrize("bad", ["", "a |", "(a", "a)", "*", "|a", "a @ b"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)

    def test_roundtrip_via_str(self):
        for text in ["a b|c", "(a|b)* c", "p p- p", "a+ b? c*"]:
            regex = parse_regex(text)
            assert parse_regex(str(regex)) == regex


class TestThompson:
    @pytest.mark.parametrize(
        "text,accepted,rejected",
        [
            ("a", [("a",)], [(), ("b",), ("a", "a")]),
            ("a b", [("a", "b")], [("a",), ("b", "a")]),
            ("a|b", [("a",), ("b",)], [(), ("a", "b")]),
            ("a*", [(), ("a",), ("a", "a", "a")], [("b",)]),
            ("a+", [("a",), ("a", "a")], [()]),
            ("a?", [(), ("a",)], [("a", "a")]),
            ("(a b)+", [("a", "b"), ("a", "b", "a", "b")], [("a",), ("a", "b", "a")]),
            ("()", [()], [("a",)]),
        ],
    )
    def test_acceptance(self, text, accepted, rejected):
        nfa = parse_regex(text).to_nfa()
        for word in accepted:
            assert nfa.accepts(word), word
        for word in rejected:
            assert not nfa.accepts(word), word

    def test_empty_set(self):
        nfa = EmptySet().to_nfa()
        assert nfa.is_empty()

    def test_word_regex(self):
        nfa = word_regex(("a", "b", "a")).to_nfa()
        assert nfa.accepts(("a", "b", "a"))
        assert not nfa.accepts(("a", "b"))
        assert word_regex(()).to_nfa().accepts(())


class TestInversion:
    def test_symbol_inverse(self):
        assert Sym("a").inverse() == Sym("a-")

    def test_concat_inverse_reverses(self):
        regex = parse_regex("a b")
        assert regex.inverse() == Concat(Sym("b-"), Sym("a-"))

    def test_inverse_language_matches(self):
        """L(e.inverse()) = { inverse_word(w) : w in L(e) }."""
        from repro.automata.alphabet import inverse_word

        regex = parse_regex("a (b|c-)* a-")
        alphabet = ("a", "a-", "b", "b-", "c", "c-")
        forward = set(enumerate_language(regex, alphabet, 3))
        backward = set(enumerate_language(regex.inverse(), alphabet, 3))
        assert backward == {inverse_word(word) for word in forward}


class TestRandomRegex:
    def test_is_deterministic_given_seed(self):
        a = random_regex(random.Random(5), ("a", "b"), 3)
        b = random_regex(random.Random(5), ("a", "b"), 3)
        assert a == b

    def test_respects_inverse_flag(self):
        rng = random.Random(11)
        for _ in range(50):
            regex = random_regex(rng, ("a",), 3, allow_inverse=False)
            assert not regex.uses_inverse()

    def test_compiles(self):
        rng = random.Random(2)
        for _ in range(25):
            regex = random_regex(rng, ("a", "b"), 4, allow_inverse=True)
            regex.to_nfa()  # must not raise
