"""Unit tests for the integer-indexed bitset kernels.

Each kernel is checked against hand-built automata and, where the
contract promises a *drop-in* structural equivalent (determinize,
minimize, product), against the object-level baseline with the kernels
switched off.  The random cross-validation lives in
``test_indexed_properties.py``.
"""

from __future__ import annotations

import pytest

from repro.automata.dfa import (
    containment_counterexample,
    determinize,
)
from repro.automata.indexed import (
    IndexedNFA,
    bits,
    containment_counterexample_indexed,
    epsilon_closures,
    graph_product_targets,
    indexed_kernels_enabled,
    minimize_dfa,
    set_indexed_kernels,
    use_indexed_kernels,
)
from repro.automata.nfa import NFA
from repro.automata.onthefly import find_accepted_word
from repro.automata.regex import parse_regex
from repro.cache import use_caching


def nfa_of(text: str) -> NFA:
    return parse_regex(text).to_nfa().trim().renumber()


def test_bits_enumerates_set_positions():
    assert list(bits(0)) == []
    assert list(bits(0b1)) == [0]
    assert list(bits(0b101001)) == [0, 3, 5]


def test_epsilon_closures_are_reflexive_transitive():
    closures = epsilon_closures(4, [(0, 1), (1, 2), (3, 3)])
    assert closures[0] == 0b0111
    assert closures[1] == 0b0110
    assert closures[2] == 0b0100
    assert closures[3] == 0b1000


def test_switch_restores_previous_value():
    assert indexed_kernels_enabled()
    previous = set_indexed_kernels(False)
    assert previous is True
    assert not indexed_kernels_enabled()
    set_indexed_kernels(True)
    with use_indexed_kernels(False):
        assert not indexed_kernels_enabled()
    assert indexed_kernels_enabled()


def test_from_nfa_to_nfa_roundtrip_preserves_structure():
    nfa = nfa_of("a(b|c)*a")
    compiled = IndexedNFA.from_nfa(nfa)
    back = compiled.to_nfa()
    assert back.states == nfa.states
    assert back.initial == nfa.initial
    assert back.final == nfa.final
    assert set(back.edges()) == set(nfa.edges())


def test_accepts_matches_object_level():
    nfa = nfa_of("a(b|c)*a")
    compiled = IndexedNFA.from_nfa(nfa)
    for word in [(), ("a",), ("a", "a"), ("a", "b", "a"), ("a", "b", "c", "a"), ("b",)]:
        assert compiled.accepts(word) == nfa.accepts(word)


def test_accepts_rejects_symbols_outside_the_alphabet():
    compiled = IndexedNFA.from_nfa(nfa_of("a*"))
    assert compiled.accepts(("a", "a"))
    assert not compiled.accepts(("a", "z"))


def test_implicit_nfa_protocol_drives_onthefly_search():
    left = IndexedNFA.from_nfa(nfa_of("a(a|b)*"), ("a", "b"))
    right = IndexedNFA.from_nfa(nfa_of("(a|b)*b"), ("a", "b"))
    word = find_accepted_word([left, right], ("a", "b"))
    assert word is not None
    assert word[0] == "a" and word[-1] == "b"


def test_emptiness_and_shortest_word():
    assert IndexedNFA.build(("a",), 1, [], [0], []).shortest_word() is None
    accepting_initial = IndexedNFA.build(("a",), 1, [], [0], [0])
    assert accepting_initial.shortest_word() == ()
    chain = IndexedNFA.build(
        ("a", "b"), 3, [(0, "a", 1), (1, "b", 2)], [0], [2]
    )
    assert not chain.is_empty()
    assert chain.shortest_word() == ("a", "b")
    no_final_reachable = IndexedNFA.build(("a",), 2, [(0, "a", 0)], [0], [1])
    assert no_final_reachable.is_empty()
    assert no_final_reachable.shortest_word() is None


def test_live_mask_drops_unreachable_and_dead_states():
    # 0 -a-> 1 -a-> 2(final); 3 unreachable; 4 reachable but dead.
    compiled = IndexedNFA.build(
        ("a",), 5, [(0, "a", 1), (1, "a", 2), (3, "a", 2), (0, "a", 4)], [0], [2]
    )
    assert set(bits(compiled.live_mask())) == {0, 1, 2}


def test_determinize_matches_baseline_exactly():
    nfa = nfa_of("(a|b)*a(a|b)")
    with use_caching(False):
        with use_indexed_kernels(True):
            fast = determinize(nfa, ("a", "b"))
        with use_indexed_kernels(False):
            slow = determinize(nfa, ("a", "b"))
    assert fast == slow


def test_indexed_dfa_complement_flips_acceptance():
    compiled = IndexedNFA.from_nfa(nfa_of("ab*"), ("a", "b")).determinize()
    flipped = compiled.complement()
    for word in [(), ("a",), ("a", "b"), ("b",), ("a", "a")]:
        assert compiled.accepts(word) != flipped.accepts(word)


def test_product_matches_baseline_exactly():
    left = nfa_of("a(a|b)*")
    right = nfa_of("(a|b)*b")
    with use_indexed_kernels(True):
        fast = left.product(right)
    with use_indexed_kernels(False):
        slow = left.product(right)
    assert fast == slow


def test_product_requires_shared_symbol_order():
    left = IndexedNFA.build(("a", "b"), 1, [], [0], [0])
    right = IndexedNFA.build(("b", "a"), 1, [], [0], [0])
    with pytest.raises(ValueError):
        left.product(right)


def test_minimize_matches_baseline_exactly():
    dfa = determinize(nfa_of("(a|b)*abb"), ("a", "b"))
    fast = minimize_dfa(dfa)
    with use_indexed_kernels(False):
        slow = dfa.minimize()
    assert fast == slow


def test_containment_counterexample_agrees_with_materializing_pipeline():
    cases = [
        ("a*", "(a|b)*", True),
        ("(a|b)*", "a*", False),
        ("ab", "a(b|c)", True),
        ("a(b|c)", "ab", False),
    ]
    for left_text, right_text, contained in cases:
        left, right = nfa_of(left_text), nfa_of(right_text)
        alpha = ("a", "b", "c")
        fast = containment_counterexample_indexed(left, right, alpha)
        with use_caching(False), use_indexed_kernels(False):
            slow = containment_counterexample(left, right, alpha)
        assert (fast is None) == contained
        assert (slow is None) == contained
        if fast is not None:
            assert len(fast) == len(slow)
            assert left.accepts(fast) and not right.accepts(fast)


def test_graph_product_targets_on_a_cycle():
    # Triangle 0 -a-> 1 -a-> 2 -a-> 0; query a a reaches two hops away.
    compiled = IndexedNFA.build(
        ("a",), 3, [(0, "a", 1), (1, "a", 2)], [0], [2]
    )
    adjacency = [[[1], [2], [0]]]
    assert set(bits(graph_product_targets(compiled, adjacency, 3, 0))) == {2}
    assert set(bits(graph_product_targets(compiled, adjacency, 3, 1))) == {0}
