"""Tests for Lemma 3: the fold relation and the fold 2NFA."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import reduce_nfa
from repro.automata.fold import (
    fold_language,
    fold_two_nfa,
    fold_witness,
    folds_onto,
    lemma3_state_bound,
)
from repro.automata.regex import parse_regex


def reduced(text: str):
    return reduce_nfa(parse_regex(text).to_nfa())


SIGMA_P = Alphabet(("p",)).two_way
SIGMA_AB = Alphabet(("a", "b")).two_way


class TestFoldsOnto:
    def test_paper_example(self):
        """The paper's worked fold: abb-bc ; abc with cursors 0,1,2,1,2,3."""
        assert folds_onto(("a", "b", "b-", "b", "c"), ("a", "b", "c"))
        witness = fold_witness(("a", "b", "b-", "b", "c"), ("a", "b", "c"))
        assert witness is not None
        assert witness.cursors == (0, 1, 2, 1, 2, 3)

    def test_every_word_folds_onto_itself(self):
        for word in [(), ("a",), ("a", "b-"), ("a", "b", "a-")]:
            assert folds_onto(word, word)

    def test_pp_inverse_p_folds_onto_p(self):
        """The crux of the paper's Q1 = p ⊑ Q2 = p p- p example."""
        assert folds_onto(("p", "p-", "p"), ("p",))

    def test_cannot_fold_onto_longer_word(self):
        assert not folds_onto(("p",), ("p", "p"))

    def test_cannot_fold_mismatched_letters(self):
        assert not folds_onto(("a",), ("b",))

    def test_fold_must_end_at_the_end(self):
        # ab folds partway onto abc but never reaches cursor 3.
        assert not folds_onto(("a", "b"), ("a", "b", "c"))

    def test_inverse_letters_in_u(self):
        # u itself may contain inverse letters: v = a- folds onto u = a-.
        assert folds_onto(("a-",), ("a-",))
        # Walking backward over an inverse letter of u consumes its inverse.
        assert folds_onto(("a-", "a", "a-"), ("a-",))

    def test_empty_onto_empty(self):
        assert folds_onto((), ())
        assert not folds_onto(("a",), ())


class TestFoldTwoNFA:
    def test_accepts_fold_of_paper_q2(self):
        two = fold_two_nfa(reduced("p p- p"), SIGMA_P)
        assert two.accepts(("p",))          # p in fold(L(Q2)): Q1 ⊑ Q2
        assert two.accepts(("p", "p-", "p"))
        assert not two.accepts(("p", "p"))
        assert not two.accepts(())

    def test_agrees_with_brute_force_fold(self):
        for text, alphabet in [
            ("p p- p", SIGMA_P),
            ("a b", SIGMA_AB),
            ("a (b|a-)*", SIGMA_AB),
            ("a- b a", SIGMA_AB),
        ]:
            nfa = reduced(text)
            two = fold_two_nfa(nfa, alphabet)
            expected = set(fold_language(nfa, alphabet, 3))
            actual = set(two.enumerate_words(3))
            assert actual == expected, text

    def test_state_count_is_2n_within_lemma3_bound(self):
        nfa = reduced("a b a")
        two = fold_two_nfa(nfa, SIGMA_AB)
        assert two.num_states == 2 * nfa.num_states
        assert two.num_states <= lemma3_state_bound(nfa, SIGMA_AB)

    def test_empty_word_in_fold_iff_epsilon_in_language(self):
        star = fold_two_nfa(reduced("a*"), SIGMA_AB)
        single = fold_two_nfa(reduced("a"), SIGMA_AB)
        assert star.accepts(())
        assert not single.accepts(())

    def test_fold_includes_language_itself(self):
        """L(A) ⊆ fold(L(A)) always (fold by walking straight forward)."""
        nfa = reduced("a (b|a)* b-")
        two = fold_two_nfa(nfa, SIGMA_AB)
        for word in nfa.enumerate_words(3):
            assert two.accepts(word), word
