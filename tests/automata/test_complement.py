"""Tests for Lemma 4: single-exponential 2NFA complementation."""

import itertools

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.complement import (
    LazyComplement,
    StateBudgetExceeded,
    complement_two_nfa,
    lemma4_state_bound,
)
from repro.automata.dfa import reduce_nfa
from repro.automata.fold import fold_two_nfa
from repro.automata.regex import parse_regex
from repro.automata.two_nfa import one_way_as_two_way


def fold_of(text: str, alphabet):
    return fold_two_nfa(reduce_nfa(parse_regex(text).to_nfa()), alphabet)


SIGMA_P = Alphabet(("p",)).two_way


class TestMaterializedComplement:
    @pytest.mark.parametrize("text", ["p", "p p", "p?"])
    def test_complement_of_fold_agrees_with_brute_force(self, text):
        two = fold_of(text, SIGMA_P)
        complement = complement_two_nfa(two)
        for length in range(4):
            for word in itertools.product(SIGMA_P, repeat=length):
                assert complement.accepts(word) == (not two.accepts(word)), (text, word)

    def test_complement_of_one_way_embedding(self):
        nfa = reduce_nfa(parse_regex("a b|a").to_nfa())
        two = one_way_as_two_way(nfa)
        complement = complement_two_nfa(two)
        for length in range(4):
            for word in itertools.product(("a", "b"), repeat=length):
                assert complement.accepts(word) == (not nfa.accepts(word)), word

    def test_random_two_nfas(self, rng, random_two_nfa):
        for _ in range(8):
            two = random_two_nfa(rng, 3, ("a",), density=0.2)
            complement = complement_two_nfa(two)
            for length in range(4):
                for word in itertools.product(("a",), repeat=length):
                    assert complement.accepts(word) == (not two.accepts(word)), word

    def test_state_budget(self):
        two = fold_of("p p- p", SIGMA_P)
        with pytest.raises(StateBudgetExceeded):
            complement_two_nfa(two, max_states=2)

    def test_stays_within_lemma4_bound(self):
        two = fold_of("p", SIGMA_P)
        complement = complement_two_nfa(two)
        assert complement.num_states <= lemma4_state_bound(two)


class TestLazyComplement:
    def test_initial_states_cover_s0(self):
        two = fold_of("p", SIGMA_P)
        lazy = LazyComplement(two)
        initial = frozenset(two.initial)
        for t0, _t1 in lazy.initial_states():
            assert initial <= t0

    def test_minimal_guess_comes_first(self):
        two = fold_of("p", SIGMA_P)
        lazy = LazyComplement(two)
        first_t0, _ = next(iter(lazy.initial_states()))
        assert first_t0 == frozenset(two.initial)

    def test_final_requires_no_accepting_state(self):
        two = fold_of("p", SIGMA_P)
        lazy = LazyComplement(two)
        bad = (frozenset(), frozenset(two.final))
        assert not lazy.is_final(bad)

    def test_lazy_language_matches_materialized(self):
        two = fold_of("p p", SIGMA_P)
        lazy = LazyComplement(two)
        materialized = complement_two_nfa(two)

        def lazy_accepts(word):
            current = set(lazy.initial_states())
            for symbol in word:
                nxt = set()
                for state in current:
                    nxt.update(lazy.successor_states(state, symbol))
                current = nxt
                if not current:
                    return False
            return any(lazy.is_final(state) for state in current)

        for length in range(3):
            for word in itertools.product(SIGMA_P, repeat=length):
                assert lazy_accepts(word) == materialized.accepts(word), word
