"""Tests for NFA -> regex state elimination (Kleene's theorem)."""

import random

import pytest

from repro.automata.dfa import nfa_equivalent, reduce_nfa
from repro.automata.nfa import NFA
from repro.automata.regex import EmptySet, parse_regex, random_regex
from repro.automata.state_elimination import nfa_to_regex


class TestRoundTrips:
    CASES = [
        "a",
        "a b",
        "a|b",
        "a*",
        "a+",
        "(a|b)* a",
        "a (b a)* b?",
        "()",
        "(a a)*|b",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_regex_nfa_regex(self, text):
        original = parse_regex(text)
        recovered = nfa_to_regex(original.to_nfa())
        assert nfa_equivalent(
            original.to_nfa(), recovered.to_nfa(), ("a", "b")
        ), f"{text} -> {recovered}"

    def test_random_roundtrips(self):
        rng = random.Random(31)
        for _ in range(25):
            regex = random_regex(rng, ("a", "b"), 3)
            recovered = nfa_to_regex(regex.to_nfa())
            assert nfa_equivalent(
                regex.to_nfa(), recovered.to_nfa(), ("a", "b")
            ), (regex, recovered)

    def test_two_way_letters_pass_through(self):
        regex = parse_regex("p p- p")
        recovered = nfa_to_regex(regex.to_nfa())
        assert nfa_equivalent(
            regex.to_nfa(), recovered.to_nfa(), ("p", "p-")
        )


class TestEdgeCases:
    def test_empty_language(self):
        nfa = parse_regex("a").to_nfa().product(parse_regex("b").to_nfa())
        assert nfa_to_regex(nfa) == EmptySet()

    def test_epsilon_only(self):
        recovered = nfa_to_regex(parse_regex("()").to_nfa())
        assert recovered.to_nfa().accepts(())
        assert not recovered.to_nfa().accepts(("a",))

    def test_from_product_automaton(self):
        """Regexes recovered from products re-parse and stay equivalent."""
        product = reduce_nfa(
            parse_regex("(a|b)* a").to_nfa().product(parse_regex("a (a|b)*").to_nfa())
        )
        recovered = nfa_to_regex(product)
        assert nfa_equivalent(recovered.to_nfa(), product, ("a", "b"))

    def test_output_reparses(self):
        for text in ("a (b|a)*", "(a b)+"):
            recovered = nfa_to_regex(parse_regex(text).to_nfa())
            assert parse_regex(str(recovered)) == recovered
