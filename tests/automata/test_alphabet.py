"""Unit tests for Sigma / Sigma± symbol handling."""

import pickle

import pytest

from repro.automata.alphabet import (
    Alphabet,
    LEFT_MARKER,
    RIGHT_MARKER,
    base_symbol,
    inverse,
    inverse_word,
    is_inverse,
)


class TestInverse:
    def test_inverse_of_base(self):
        assert inverse("r") == "r-"

    def test_inverse_is_involution(self):
        assert inverse(inverse("knows")) == "knows"

    def test_is_inverse(self):
        assert is_inverse("r-")
        assert not is_inverse("r")

    def test_base_symbol(self):
        assert base_symbol("r-") == "r"
        assert base_symbol("r") == "r"

    def test_inverse_word_reverses_and_inverts(self):
        assert inverse_word(("a", "b-", "c")) == ("c-", "b", "a-")

    def test_inverse_word_is_involution(self):
        word = ("a", "b-", "c", "c-")
        assert inverse_word(inverse_word(word)) == word

    def test_inverse_word_empty(self):
        assert inverse_word(()) == ()


class TestAlphabet:
    def test_two_way_interleaves_inverses(self):
        assert Alphabet(("a", "b")).two_way == ("a", "a-", "b", "b-")

    def test_rejects_inverse_symbols(self):
        with pytest.raises(ValueError):
            Alphabet(("a-",))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Alphabet(("a", "a"))

    def test_rejects_empty_symbol(self):
        with pytest.raises(ValueError):
            Alphabet(("",))

    def test_from_symbols_strips_and_sorts(self):
        alpha = Alphabet.from_symbols(["b-", "a", "b"])
        assert alpha.symbols == ("a", "b")

    def test_contains_checks_base(self):
        alpha = Alphabet(("a",))
        assert "a" in alpha and "a-" in alpha and "b" not in alpha

    def test_iteration_and_len(self):
        alpha = Alphabet(("x", "y"))
        assert list(alpha) == ["x", "y"]
        assert len(alpha) == 2


class TestEndMarkers:
    def test_markers_are_distinct(self):
        assert LEFT_MARKER is not RIGHT_MARKER

    def test_markers_survive_pickling_as_singletons(self):
        assert pickle.loads(pickle.dumps(LEFT_MARKER)) is LEFT_MARKER
        assert pickle.loads(pickle.dumps(RIGHT_MARKER)) is RIGHT_MARKER

    def test_marker_repr(self):
        assert repr(LEFT_MARKER) == "<|"
        assert repr(RIGHT_MARKER) == "|>"
