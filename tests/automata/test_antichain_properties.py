"""Property-based cross-validation of the antichain kernel (hypothesis).

The antichain search of :mod:`repro.automata.antichain` must be a
drop-in semantic equivalent of the subset search it replaces: identical
verdicts, equal (shortest) witness lengths, and witnesses that actually
separate the languages — on random regexes AND random edge-list automata
(odd shapes: unreachable states, no finals, multiple initials).  The
simulation quotient must preserve the language exactly, and the
simulation preorder itself must imply language containment state-wise.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.automata.antichain import (
    antichain_containment_search,
    resolve_kernel,
    simulation_preorder,
    simulation_quotient,
)
from repro.automata.dfa import containment_counterexample
from repro.automata.indexed import IndexedNFA, bits
from repro.automata.nfa import NFA
from repro.automata.regex import Regex, random_regex
from repro.budget import Budget, BudgetExhausted
from repro.cache import use_caching

ALPHABET = ("a", "b")


@st.composite
def regexes(draw, depth: int = 3) -> Regex:
    seed = draw(st.integers(min_value=0, max_value=10**9))
    return random_regex(random.Random(seed), ALPHABET, depth, False)


@st.composite
def edge_list_nfas(draw) -> NFA:
    """Random automata that need not come from a regex (odd shapes too)."""
    num_states = draw(st.integers(min_value=1, max_value=6))
    state_ids = st.integers(min_value=0, max_value=num_states - 1)
    edges = draw(
        st.lists(
            st.tuples(state_ids, st.sampled_from(ALPHABET), state_ids),
            max_size=14,
        )
    )
    initial = draw(st.lists(state_ids, min_size=1, max_size=2))
    final = draw(st.lists(state_ids, max_size=2))
    return NFA.build(ALPHABET, range(num_states), initial, final, edges)


def _brute_force_counterexample(left: NFA, right: NFA, max_len: int = 6):
    """Shortest word in L(left) - L(right) up to *max_len*, by enumeration."""
    for length in range(max_len + 1):
        for word in itertools.product(ALPHABET, repeat=length):
            if left.accepts(word) and not right.accepts(word):
                return word
    return None


@settings(max_examples=40, deadline=None)
@given(regexes(), regexes())
def test_antichain_agrees_with_subset_on_regexes(r1, r2):
    left, right = r1.to_nfa().trim(), r2.to_nfa().trim()
    with use_caching(False):
        anti = containment_counterexample(left, right, ALPHABET, kernel="antichain")
        sub = containment_counterexample(left, right, ALPHABET, kernel="subset")
    assert (anti is None) == (sub is None)
    if anti is not None:
        assert len(anti) == len(sub)  # both searches are breadth-first
        assert left.accepts(anti) and not right.accepts(anti)


@settings(max_examples=60, deadline=None)
@given(edge_list_nfas(), edge_list_nfas())
def test_antichain_agrees_with_subset_and_brute_force(left, right):
    with use_caching(False):
        anti = containment_counterexample(left, right, ALPHABET, kernel="antichain")
        sub = containment_counterexample(left, right, ALPHABET, kernel="subset")
    brute = _brute_force_counterexample(left, right)
    assert (anti is None) == (sub is None)
    if anti is not None:
        assert len(anti) == len(sub)
        assert left.accepts(anti) and not right.accepts(anti)
        # Shortest-witness preservation: the antichain witness is as
        # short as exhaustive enumeration's, whenever that one exists
        # inside the enumeration horizon.
        if brute is not None and len(brute) <= 6:
            assert len(anti) == len(brute)
    elif brute is not None:
        raise AssertionError(
            f"antichain claims containment but {brute!r} separates the languages"
        )


@settings(max_examples=60, deadline=None)
@given(edge_list_nfas())
def test_simulation_quotient_preserves_language(nfa):
    compiled = IndexedNFA.from_nfa(nfa, ALPHABET)
    quotient = simulation_quotient(compiled)
    assert quotient.num_states <= compiled.num_states
    for length in range(5):
        for word in itertools.product(ALPHABET, repeat=length):
            assert compiled.accepts(word) == quotient.accepts(word), (
                f"quotient changed membership of {word!r}"
            )


@settings(max_examples=60, deadline=None)
@given(edge_list_nfas())
def test_simulation_preorder_implies_word_containment(nfa):
    """If q' simulates q then every word accepted from q is accepted
    from q' — checked by brute-force enumeration from each state."""
    compiled = IndexedNFA.from_nfa(nfa, ALPHABET)
    info = simulation_preorder(compiled)

    def accepts_from(state: int, word) -> bool:
        mask = 1 << state
        for symbol in word:
            row = compiled.symbol_index[symbol]
            image = 0
            for src in bits(mask):
                image |= compiled.delta[row][src]
            mask = image
            if not mask:
                return False
        return bool(mask & compiled.final)

    all_words = [
        word
        for length in range(4)
        for word in itertools.product(ALPHABET, repeat=length)
    ]
    for q in range(compiled.num_states):
        for q_prime in bits(info.sim_by[q]):
            if q_prime == q:
                continue
            for word in all_words:
                if accepts_from(q, word):
                    assert accepts_from(q_prime, word), (
                        f"state {q_prime} claims to simulate {q} but "
                        f"rejects {word!r}"
                    )
                    break  # one witness per word-length sweep is plenty


@settings(max_examples=40, deadline=None)
@given(edge_list_nfas(), edge_list_nfas())
def test_antichain_direct_entry_point_agrees(left, right):
    """The module-level search agrees with the dispatching front door."""
    stats: dict = {}
    anti = antichain_containment_search(left, right, ALPHABET, stats=stats)
    with use_caching(False):
        sub = containment_counterexample(left, right, ALPHABET, kernel="subset")
    assert (anti is None) == (sub is None)
    assert stats["selected"] == "antichain"
    assert stats["configs"] >= 0


@settings(max_examples=25, deadline=None)
@given(edge_list_nfas(), edge_list_nfas())
def test_antichain_budget_exhaustion_matches_subset_contract(left, right):
    """A one-config budget exhausts identically on both kernels (or both
    finish): degradation parity is what keeps engine caching two-key
    correct."""
    outcomes = {}
    for kernel in ("subset", "antichain"):
        meter = Budget(max_configs=1).start()
        try:
            with use_caching(False):
                containment_counterexample(
                    left, right, ALPHABET, meter=meter, kernel=kernel
                )
            outcomes[kernel] = "completed"
        except BudgetExhausted as exc:
            assert exc.resource == "configs"
            outcomes[kernel] = "exhausted"
    # The kernels may legitimately keep different config counts (that is
    # the point of subsumption), but a search that finishes within one
    # kept configuration on one kernel finishes on the other too for
    # the degenerate empty-frontier cases.
    if outcomes["subset"] == "completed":
        assert outcomes["antichain"] == "completed"


def test_resolve_kernel_rejects_unknown_values():
    for value in ("bogus", "", "SUBSET", None, 3):
        try:
            resolve_kernel(value)
        except (ValueError, TypeError):
            continue
        raise AssertionError(f"resolve_kernel accepted {value!r}")
    assert resolve_kernel("auto") == "antichain"
    assert resolve_kernel("subset") == "subset"
    assert resolve_kernel("antichain") == "antichain"
