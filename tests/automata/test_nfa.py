"""Unit tests for the NFA operations used by the containment pipelines."""

import pytest

from repro.automata.nfa import NFA, from_epsilon_nfa
from repro.automata.regex import parse_regex


def nfa_of(text: str) -> NFA:
    return parse_regex(text).to_nfa()


class TestBuild:
    def test_rejects_unknown_states(self):
        with pytest.raises(ValueError):
            NFA.build(("a",), [0], [0], [0], [(0, "a", 1)])

    def test_successors_default_empty(self):
        nfa = NFA.build(("a",), [0, 1], [0], [1], [(0, "a", 1)])
        assert nfa.successors(1, "a") == frozenset()

    def test_edges_roundtrip(self):
        edges = {(0, "a", 1), (0, "b", 0), (1, "a", 1)}
        nfa = NFA.build(("a", "b"), [0, 1], [0], [1], edges)
        assert set(nfa.edges()) == edges


class TestAccepts:
    def test_empty_word_needs_initial_final_overlap(self):
        accepting = NFA.build(("a",), [0], [0], [0], [])
        rejecting = NFA.build(("a",), [0, 1], [0], [1], [(0, "a", 1)])
        assert accepting.accepts(())
        assert not rejecting.accepts(())

    def test_nondeterministic_branching(self):
        # Two a-successors; only one leads to acceptance.
        nfa = NFA.build(
            ("a", "b"), [0, 1, 2, 3], [0], [3],
            [(0, "a", 1), (0, "a", 2), (1, "b", 3)],
        )
        assert nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a", "a"))


class TestProduct:
    def test_product_is_intersection(self):
        left = nfa_of("(a|b)* a")      # ends with a
        right = nfa_of("a (a|b)*")     # starts with a
        product = left.product(right)
        for word in [("a",), ("a", "b", "a"), ("a", "a")]:
            assert product.accepts(word)
        for word in [(), ("b", "a"), ("a", "b")]:
            assert not product.accepts(word)

    def test_product_with_disjoint_languages_is_empty(self):
        assert nfa_of("a a").product(nfa_of("b")).is_empty()


class TestUnionReverseTrim:
    def test_union(self):
        union = nfa_of("a a").union(nfa_of("b"))
        assert union.accepts(("a", "a")) and union.accepts(("b",))
        assert not union.accepts(("a",))

    def test_reverse(self):
        reverse = nfa_of("a b").reverse()
        assert reverse.accepts(("b", "a"))
        assert not reverse.accepts(("a", "b"))

    def test_trim_removes_dead_states(self):
        nfa = NFA.build(
            ("a",), [0, 1, 2], [0], [1], [(0, "a", 1), (0, "a", 2)]
        )
        trimmed = nfa.trim()
        assert 2 not in trimmed.states
        assert trimmed.accepts(("a",))


class TestEmptinessAndWitnesses:
    def test_shortest_word_is_shortest(self):
        nfa = nfa_of("a a a|b")
        assert nfa.shortest_word() == ("b",)

    def test_shortest_word_empty_language(self):
        assert nfa_of("a").product(nfa_of("b")).shortest_word() is None

    def test_shortest_word_epsilon(self):
        assert nfa_of("a*").shortest_word() == ()

    def test_is_empty(self):
        assert not nfa_of("a").is_empty()


class TestWordEnumeration:
    def test_enumerate_words(self):
        words = set(nfa_of("a b*").enumerate_words(3))
        assert words == {("a",), ("a", "b"), ("a", "b", "b")}

    def test_words_of_length_matches_brute_force(self):
        nfa = nfa_of("(a|b) a* b?")
        for length in range(5):
            fast = set(nfa.words_of_length(length))
            slow = {w for w in nfa.enumerate_words(length) if len(w) == length}
            assert fast == slow, length

    def test_words_of_length_prunes_dead_prefixes(self):
        # Language = {ab}; length-2 enumeration must not yield b-prefixed words.
        assert set(nfa_of("a b").words_of_length(2)) == {("a", "b")}


class TestFiniteness:
    @pytest.mark.parametrize(
        "text,finite,longest",
        [
            ("a b|c", True, 2),
            ("a* b", False, None),
            ("(a|b)(a|b)(a|b)", True, 3),
            ("a+", False, None),
            ("a?", True, 1),
            ("()", True, 0),
        ],
    )
    def test_language_is_finite_and_longest(self, text, finite, longest):
        nfa = nfa_of(text)
        assert nfa.language_is_finite() == finite
        assert nfa.longest_word_length() == longest

    def test_unreachable_cycle_does_not_matter(self):
        nfa = NFA.build(
            ("a",), [0, 1, 2], [0], [1],
            [(0, "a", 1), (2, "a", 2)],  # the 2-cycle is dead
        )
        assert nfa.language_is_finite()


class TestRenumberAndMap:
    def test_renumber_preserves_language(self):
        nfa = nfa_of("(a|b)* a")
        renumbered = nfa.renumber()
        assert renumbered.states == frozenset(range(nfa.num_states))
        for word in [("a",), ("b", "a"), ("b",), ()]:
            assert nfa.accepts(word) == renumbered.accepts(word)

    def test_map_symbols(self):
        mapped = nfa_of("a b").map_symbols(lambda s: s.upper())
        assert mapped.accepts(("A", "B"))


class TestEpsilonElimination:
    def test_chain_of_epsilons(self):
        nfa = from_epsilon_nfa(
            ("a",), [0, 1, 2, 3], [0], [3],
            [(0, None, 1), (1, "a", 2), (2, None, 3)],
        )
        assert nfa.accepts(("a",))
        assert not nfa.accepts(())

    def test_epsilon_to_final_makes_empty_word_accepted(self):
        nfa = from_epsilon_nfa(("a",), [0, 1], [0], [1], [(0, None, 1)])
        assert nfa.accepts(())

    def test_epsilon_cycle_terminates(self):
        nfa = from_epsilon_nfa(
            ("a",), [0, 1], [0], [1],
            [(0, None, 1), (1, None, 0), (0, "a", 1)],
        )
        assert nfa.accepts(()) and nfa.accepts(("a",))
