"""Tests for compiled graph snapshots (ISSUE 7 tentpole).

Covers the snapshot lifecycle (stable insertion-order ids, fingerprint
stability, invalidation on mutation), the adjacency/relation compilers,
and the contract that evaluation caches keyed on a fingerprint can never
serve answers for a database that has since changed (the mutation test
of the acceptance criteria).
"""

import pytest

from repro.automata.indexed import use_indexed_kernels
from repro.cache import clear_caches, use_caching
from repro.graphdb import GraphSnapshot
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import path_graph, random_graph
from repro.rpq.rpq import RPQ, TwoRPQ


class _Opaque:
    """A node with default object.__repr__ (memory-address repr)."""

    def __str__(self):  # pragma: no cover - never serialized here
        return "opaque"


class TestNodeIds:
    def test_insertion_order_ids(self):
        db = GraphDatabase()
        db.add_edge("z", "r", "a")
        db.add_node("m")
        snap = db.snapshot()
        assert snap.nodes == ("z", "a", "m")
        assert snap.node_index == {"z": 0, "a": 1, "m": 2}

    def test_repr_unstable_nodes_get_stable_ids(self):
        """Ids depend on insertion order, never on memory addresses."""
        first, second = _Opaque(), _Opaque()
        db = GraphDatabase()
        db.add_edge(first, "r", second)
        snap = db.snapshot()
        assert snap.node_index[first] == 0
        assert snap.node_index[second] == 1

    def test_nodes_in_order_matches_snapshot(self):
        db = random_graph(12, 30, ("a", "b"), seed=3)
        assert db.snapshot().nodes == db.nodes_in_order()


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        """The same construction sequence yields the same fingerprint."""
        make = lambda: GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "s", "c")], nodes=["d"]
        )
        assert make().snapshot().fingerprint == make().snapshot().fingerprint

    def test_changes_on_new_edge(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        before = db.snapshot().fingerprint
        db.add_edge("b", "r", "a")
        assert db.snapshot().fingerprint != before

    def test_changes_on_new_node(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        before = db.snapshot().fingerprint
        db.add_node("c")
        assert db.snapshot().fingerprint != before

    def test_duplicate_edge_keeps_revision_and_snapshot(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        snap = db.snapshot()
        revision = db.revision
        db.add_edge("a", "r", "b")  # already present: not a mutation
        assert db.revision == revision
        assert db.snapshot() is snap

    def test_mutation_rebuilds_snapshot(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        snap = db.snapshot()
        db.add_edge("a", "r", "c")
        assert db.snapshot() is not snap
        assert db.revision > 0


class TestAdjacency:
    def test_forward_and_backward_rows(self):
        db = GraphDatabase.from_edges([("a", "r", "b"), ("c", "r", "b")])
        snap = db.snapshot()
        a, b, c = (snap.node_index[n] for n in "abc")
        forward = snap.rows_for("r")
        backward = snap.rows_for("r-")
        assert forward[a] == 1 << b
        assert backward[b] == (1 << a) | (1 << c)

    def test_unknown_label_is_empty(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        snap = db.snapshot()
        assert all(row == 0 for row in snap.rows_for("ghost"))
        assert all(row == 0 for row in snap.rows_for("ghost-"))

    def test_relation_matches_database(self):
        db = random_graph(10, 25, ("a", "b"), seed=7)
        snap = db.snapshot()
        for label in ("a", "b", "a-", "b-"):
            assert snap.relation(label) == db.relation(label)


class TestEvaluationAgainstBaseline:
    @pytest.mark.parametrize("regex", ["a+", "a b", "(a|b)* a", "a- b", "(a b-)+"])
    def test_kernels_agree_with_object_state(self, regex):
        db = random_graph(9, 22, ("a", "b"), seed=11)
        query = TwoRPQ.parse(regex)
        clear_caches()
        with use_indexed_kernels(True):
            fast = query.evaluate(db)
        with use_indexed_kernels(False):
            slow = query.evaluate(db)
        assert fast == slow

    def test_targets_and_matches_agree(self):
        db = random_graph(8, 20, ("a", "b"), seed=5)
        query = TwoRPQ.parse("a (b|a-)*")
        clear_caches()
        for source in db.nodes_in_order():
            with use_indexed_kernels(True):
                fast = query.targets(db, source)
            with use_indexed_kernels(False):
                slow = query.targets(db, source)
            assert fast == slow


class TestStaleCacheNeverServed:
    """The acceptance-criteria mutation test: a cached evaluation result
    must become unreachable the moment the database changes."""

    def test_mutation_invalidates_evaluation(self):
        query = RPQ.parse("r+")
        db = path_graph(3, "r")
        clear_caches()
        with use_caching(True), use_indexed_kernels(True):
            before = query.evaluate(db)
            assert (0, 3) in before and (3, 0) not in before
            db.add_edge(3, "r", 0)  # close the cycle
            after = query.evaluate(db)
            assert (3, 0) in after

    def test_mutation_invalidates_targets_and_witness(self):
        query = TwoRPQ.parse("r r")
        db = path_graph(2, "r")
        clear_caches()
        with use_caching(True), use_indexed_kernels(True):
            assert query.targets(db, 0) == {2}
            assert query.witness_semipath(db, 1, 3) is None
            db.add_edge(2, "r", 3)
            assert query.targets(db, 1) == {3}
            assert query.witness_semipath(db, 1, 3) == (1, "r", 2, "r", 3)

    def test_two_databases_do_not_cross_contaminate(self):
        query = RPQ.parse("r")
        one = GraphDatabase.from_edges([("a", "r", "b")])
        two = GraphDatabase.from_edges([("x", "r", "y")])
        clear_caches()
        with use_caching(True), use_indexed_kernels(True):
            assert query.evaluate(one) == {("a", "b")}
            assert query.evaluate(two) == {("x", "y")}


class TestSnapshotExport:
    def test_reexported_from_package(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        assert isinstance(db.snapshot(), GraphSnapshot)

    def test_repr_mentions_sizes(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        assert "nodes=2" in repr(db.snapshot())
