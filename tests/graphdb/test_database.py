"""Unit tests for the graph-database substrate."""

import pytest

from repro.graphdb.database import GraphDatabase, canonical_database_of_word


class TestConstruction:
    def test_from_edges(self):
        db = GraphDatabase.from_edges([("a", "r", "b")], nodes=["z"])
        assert db.nodes == {"a", "b", "z"}
        assert db.num_edges == 1
        assert db.labels == {"r"}

    def test_rejects_inverse_labels(self):
        with pytest.raises(ValueError):
            GraphDatabase().add_edge("a", "r-", "b")

    def test_duplicate_edges_counted_once(self):
        db = GraphDatabase.from_edges([("a", "r", "b"), ("a", "r", "b")])
        assert db.num_edges == 1

    def test_alphabet_is_sorted(self):
        db = GraphDatabase.from_edges([("a", "z", "b"), ("a", "k", "b")])
        assert db.alphabet.symbols == ("k", "z")


class TestNavigation:
    @pytest.fixture
    def db(self) -> GraphDatabase:
        return GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "r", "c"), ("c", "s", "a")]
        )

    def test_forward(self, db):
        assert db.successors("a", "r") == {"b"}

    def test_backward_via_inverse_label(self, db):
        assert db.successors("b", "r-") == {"a"}

    def test_unknown_node(self, db):
        assert db.successors("nope", "r") == frozenset()

    def test_relation(self, db):
        assert db.relation("r") == {("a", "b"), ("b", "c")}
        assert db.relation("r-") == {("b", "a"), ("c", "b")}

    def test_semipath_targets_forward(self, db):
        assert db.semipath_targets("a", ("r", "r")) == {"c"}

    def test_semipath_targets_mixed(self, db):
        # a -r-> b -r-> c, then backwards over s-: c <-s- ... s(c,a): c -s-> a
        assert db.semipath_targets("a", ("r", "r", "s")) == {"a"}
        assert db.semipath_targets("b", ("r", "r-")) == {"b"}

    def test_empty_word_semipath(self, db):
        assert db.semipath_targets("a", ()) == {"a"}

    def test_has_semipath(self, db):
        assert db.has_semipath("a", "c", ("r", "r"))
        assert not db.has_semipath("a", "c", ("r",))

    def test_find_semipath_reconstructs(self, db):
        path = db.find_semipath("a", "c", ("r", "r"))
        assert path == ("a", "r", "b", "r", "c")

    def test_find_semipath_with_inverse(self, db):
        path = db.find_semipath("b", "b", ("r", "r-"))
        assert path == ("b", "r", "c", "r-", "b")

    def test_find_semipath_missing(self, db):
        assert db.find_semipath("a", "b", ("s",)) is None


class TestTransforms:
    def test_restrict(self):
        db = GraphDatabase.from_edges([("a", "r", "b"), ("b", "r", "c")])
        sub = db.restrict(["a", "b"])
        assert sub.nodes == {"a", "b"}
        assert sub.relation("r") == {("a", "b")}

    def test_renamed(self):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        renamed = db.renamed({"a": "x"})
        assert renamed.relation("r") == {("x", "b")}

    def test_disjoint_union(self):
        left = GraphDatabase.from_edges([("a", "r", "b")])
        right = GraphDatabase.from_edges([("a", "s", "b")])
        union = left.disjoint_union(right)
        assert union.num_edges == 2
        assert union.relation("r") == {((0, "a"), (0, "b"))}

    def test_equality(self):
        a = GraphDatabase.from_edges([("a", "r", "b")])
        b = GraphDatabase.from_edges([("a", "r", "b")])
        c = GraphDatabase.from_edges([("a", "r", "c")])
        assert a == b and a != c


class TestCanonicalWordDatabase:
    def test_forward_word(self):
        db, source, target = canonical_database_of_word(("a", "b"))
        assert (source, target) == (0, 2)
        assert db.relation("a") == {(0, 1)} and db.relation("b") == {(1, 2)}

    def test_inverse_letters_make_backward_edges(self):
        db, source, target = canonical_database_of_word(("a", "b-"))
        assert db.relation("a") == {(0, 1)}
        assert db.relation("b") == {(2, 1)}  # backward edge for b-

    def test_empty_word(self):
        db, source, target = canonical_database_of_word(())
        assert source == target == 0
        assert db.num_nodes == 1 and db.num_edges == 0

    def test_semipath_spells_the_word(self):
        word = ("a", "b-", "a", "a-")
        db, source, target = canonical_database_of_word(word)
        assert db.has_semipath(source, target, word)
