"""Unit tests for the synthetic graph generators."""

import random

import pytest

from repro.graphdb.generators import (
    cycle_graph,
    grid_graph,
    labeled_word_path,
    layered_dag,
    path_graph,
    random_graph,
    skewed_random_graph,
    social_network,
)


class TestShapes:
    def test_path_graph(self):
        db = path_graph(3)
        assert db.num_nodes == 4 and db.num_edges == 3
        assert db.has_semipath(0, 3, ("e", "e", "e"))

    def test_path_graph_zero_length(self):
        db = path_graph(0)
        assert db.num_nodes == 1 and db.num_edges == 0

    def test_cycle_graph(self):
        db = cycle_graph(4)
        assert db.num_edges == 4
        assert db.has_semipath(0, 0, ("e",) * 4)

    def test_cycle_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cycle_graph(0)

    def test_grid_graph(self):
        db = grid_graph(2, 3)
        assert db.num_nodes == 6
        assert db.has_semipath((0, 0), (1, 2), ("r", "r", "d"))

    def test_labeled_word_path(self):
        db = labeled_word_path(("a", "b"))
        assert db.has_semipath(0, 2, ("a", "b"))
        assert not db.has_semipath(0, 2, ("b", "a"))

    def test_layered_dag_edges_cross_layers_only(self):
        db = layered_dag(3, 2, density=1.0)
        for source, _label, target in db.edges():
            assert target[0] == source[0] + 1


class TestRandomGraphs:
    def test_deterministic_given_seed(self):
        a = random_graph(10, 20, ("r", "s"), seed=7)
        b = random_graph(10, 20, ("r", "s"), seed=7)
        assert a == b

    def test_accepts_rng_instance(self):
        rng = random.Random(3)
        db = random_graph(5, 5, ("r",), seed=rng)
        assert db.num_nodes == 5

    def test_skew_prefers_first_label(self):
        db = skewed_random_graph(30, 400, ("hot", "cold"), skew=3.0, seed=1)
        hot = len(db.relation("hot"))
        cold = len(db.relation("cold"))
        assert hot > 3 * max(cold, 1)


class TestSocialNetwork:
    def test_schema(self):
        db = social_network(30, seed=5)
        assert {"knows", "worksAt", "livesIn", "partOf"} <= set(db.labels)

    def test_every_person_works_and_lives(self):
        db = social_network(20, seed=5)
        for i in range(20):
            assert db.successors(f"p{i}", "worksAt")
            assert db.successors(f"p{i}", "livesIn")

    def test_deterministic(self):
        assert social_network(15, seed=2) == social_network(15, seed=2)
