"""Tests for graph-database serialization."""

import pytest

from repro.graphdb import io
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import social_network


class TestEdgeList:
    def test_roundtrip(self):
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "s", "c")], nodes=["lonely"]
        )
        assert io.from_edge_list(io.to_edge_list(db)) == db

    def test_comments_and_blanks(self):
        text = "# header\n\na r b  # trailing\nlonely\n"
        db = io.from_edge_list(text)
        assert db.relation("r") == {("a", "b")}
        assert "lonely" in db.nodes

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            io.from_edge_list("a b\n")

    def test_deterministic_output(self):
        db = social_network(20, seed=1)
        assert io.to_edge_list(db) == io.to_edge_list(db)

    def test_empty(self):
        assert io.to_edge_list(GraphDatabase()) == ""
        assert io.from_edge_list("") == GraphDatabase()


class TestJSON:
    def test_roundtrip_string_nodes(self):
        db = GraphDatabase.from_edges([("a", "r", "b")], nodes=["x"])
        assert io.from_json(io.to_json(db)) == db

    def test_roundtrip_tuple_nodes(self):
        """Canonical databases use tuple nodes; JSON must round-trip them."""
        db = GraphDatabase.from_edges([((0, "a"), "r", (1, "b"))])
        assert io.from_json(io.to_json(db)) == db

    def test_roundtrip_int_nodes(self):
        db = GraphDatabase.from_edges([(0, "e", 1), (1, "e", 2)])
        assert io.from_json(io.to_json(db)) == db


class TestFiles:
    def test_save_load_by_extension(self, tmp_path):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        for name in ("g.edges", "g.json"):
            path = tmp_path / name
            io.save(db, path)
            loaded = io.load(path)
            assert loaded.relation("r") == {("a", "b")}
