"""Tests for graph-database serialization."""

import pytest

from repro.graphdb import io
from repro.graphdb.database import GraphDatabase
from repro.graphdb.generators import social_network


class TestEdgeList:
    def test_roundtrip(self):
        db = GraphDatabase.from_edges(
            [("a", "r", "b"), ("b", "s", "c")], nodes=["lonely"]
        )
        assert io.from_edge_list(io.to_edge_list(db)) == db

    def test_comments_and_blanks(self):
        text = "# header\n\na r b  # trailing\nlonely\n"
        db = io.from_edge_list(text)
        assert db.relation("r") == {("a", "b")}
        assert "lonely" in db.nodes

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            io.from_edge_list("a b\n")

    def test_deterministic_output(self):
        db = social_network(20, seed=1)
        assert io.to_edge_list(db) == io.to_edge_list(db)

    def test_empty(self):
        assert io.to_edge_list(GraphDatabase()) == ""
        assert io.from_edge_list("") == GraphDatabase()


class _NamedNode:
    """Default object.__repr__ (address-based) but a stable str() form."""

    def __init__(self, name):
        self.name = name

    def __str__(self):
        return self.name


class TestEdgeListUnserializableNames:
    """Regression: names the format cannot carry must be rejected loudly,
    never silently written and re-parsed as garbage (ISSUE 7 satellite)."""

    @pytest.mark.parametrize("bad", ["a b", "a\tb", "has#hash", "", " "])
    def test_rejects_bad_node_names(self, bad):
        db = GraphDatabase.from_edges([(bad, "r", "c")])
        with pytest.raises(ValueError, match="JSON"):
            io.to_edge_list(db)

    @pytest.mark.parametrize("bad", ["two words", "la#bel"])
    def test_rejects_bad_labels(self, bad):
        db = GraphDatabase.from_edges([("a", bad, "c")])
        with pytest.raises(ValueError, match="JSON"):
            io.to_edge_list(db)

    def test_rejects_bad_isolated_node(self):
        db = GraphDatabase.from_edges([], nodes=["lone ly"])
        with pytest.raises(ValueError, match="JSON"):
            io.to_edge_list(db)

    def test_json_carries_what_edge_list_cannot(self):
        db = GraphDatabase.from_edges([("a b", "r", "c#d")], nodes=["  "])
        assert io.from_json(io.to_json(db)) == db

    def test_good_names_roundtrip_unchanged(self):
        db = GraphDatabase.from_edges([("a", "r", "b")], nodes=["lonely"])
        assert io.from_edge_list(io.to_edge_list(db)) == db


class TestInsertionOrderDeterminism:
    """Regression: serialization order must not depend on repr()/id()."""

    def test_edge_list_order_is_insertion_order(self):
        db = GraphDatabase()
        db.add_edge("z", "r", "y")
        db.add_edge("a", "r", "b")
        db.add_node("m")
        assert io.to_edge_list(db) == "z r y\na r b\nm\n"

    def test_json_order_is_insertion_order(self):
        db = GraphDatabase()
        db.add_node("z")
        db.add_node("a")
        assert io.to_json(db).index('"z"') < io.to_json(db).index('"a"')

    def test_repr_unstable_nodes_serialize_deterministically(self):
        """Nodes with default __repr__ used to sort by memory address."""

        def build():
            db = GraphDatabase()
            nodes = [_NamedNode(f"n{i}") for i in range(6)]
            for i in range(5):
                db.add_edge(nodes[i], "r", nodes[i + 1])
            return db

        assert io.to_edge_list(build()) == io.to_edge_list(build())
        first = io.to_edge_list(build()).splitlines()
        assert first[0] == "n0 r n1"

    def test_json_repr_unstable_construction_is_deterministic(self):
        def build():
            db = GraphDatabase()
            for i in (3, 1, 2):
                db.add_edge(f"s{i}", "r", f"t{i}")
            return db

        assert io.to_json(build()) == io.to_json(build())


class TestJSON:
    def test_roundtrip_string_nodes(self):
        db = GraphDatabase.from_edges([("a", "r", "b")], nodes=["x"])
        assert io.from_json(io.to_json(db)) == db

    def test_roundtrip_tuple_nodes(self):
        """Canonical databases use tuple nodes; JSON must round-trip them."""
        db = GraphDatabase.from_edges([((0, "a"), "r", (1, "b"))])
        assert io.from_json(io.to_json(db)) == db

    def test_roundtrip_int_nodes(self):
        db = GraphDatabase.from_edges([(0, "e", 1), (1, "e", 2)])
        assert io.from_json(io.to_json(db)) == db


class TestFiles:
    def test_save_load_by_extension(self, tmp_path):
        db = GraphDatabase.from_edges([("a", "r", "b")])
        for name in ("g.edges", "g.json"):
            path = tmp_path / name
            io.save(db, path)
            loaded = io.load(path)
            assert loaded.relation("r") == {("a", "b")}
