"""Tests for the Datalog -> SQL (recursive CTE) translation.

SQLite acts as an independent engine: on every supported program the SQL
answers must equal the semi-naive fixpoint — a third implementation of
the paper's §2.2 semantics cross-checking the other two.
"""

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.datalog.to_sql import (
    SQLTranslationError,
    evaluate_via_sql,
    program_to_sql,
)
from repro.relational.generators import chain_instance, random_instance
from repro.relational.instance import Instance


def assert_sql_matches_fixpoint(program, edb):
    assert evaluate_via_sql(program, edb) == evaluate(program, edb)


class TestAgainstSQLite:
    def test_transitive_closure_on_chain(self):
        assert_sql_matches_fixpoint(transitive_closure_program(), chain_instance(6))

    def test_right_linear_tc(self):
        program = transitive_closure_program(left_linear=False)
        assert_sql_matches_fixpoint(program, chain_instance(5))

    def test_tc_on_cycle(self):
        program = transitive_closure_program()
        edb = Instance.from_facts(
            [("edge", (0, 1)), ("edge", (1, 2)), ("edge", (2, 0))]
        )
        assert_sql_matches_fixpoint(program, edb)

    def test_monadic_reachability(self):
        program = reachability_program("E", "P", "Q")
        edb = Instance.from_facts(
            [("E", (1, 2)), ("E", (2, 3)), ("E", (4, 1)), ("P", (3,))]
        )
        assert_sql_matches_fixpoint(program, edb)

    def test_nonrecursive_joins(self):
        program = parse_program(
            """
            out(x, z) :- mid(x, y), edge(y, z).
            mid(x, y) :- edge(x, y).
            mid(x, y) :- edge(x, w), edge(w, y).
            """,
            goal="out",
        )
        assert_sql_matches_fixpoint(program, chain_instance(5))

    def test_stacked_recursion(self):
        program = parse_program(
            """
            inner(x, y) :- edge(x, y).
            inner(x, z) :- inner(x, y), edge(y, z).
            outer(x, y) :- inner(x, y).
            outer(x, z) :- outer(x, y), inner(y, z).
            """,
            goal="outer",
        )
        assert_sql_matches_fixpoint(program, chain_instance(4))

    def test_constants_and_strings(self):
        program = parse_program(
            "hit(y) :- e('start', y). hit(z) :- hit(y), e(y, z).", goal="hit"
        )
        edb = Instance.from_facts(
            [("e", ("start", "a")), ("e", ("a", "b")), ("e", ("x", "y"))]
        )
        assert_sql_matches_fixpoint(program, edb)

    def test_repeated_variables(self):
        program = parse_program("loops(x) :- e(x, x).", goal="loops")
        edb = Instance.from_facts([("e", (1, 1)), ("e", (1, 2))])
        assert_sql_matches_fixpoint(program, edb)

    def test_boolean_goal(self):
        program = parse_program("hit() :- e(x, y).", goal="hit")
        assert evaluate_via_sql(program, Instance.from_facts([("e", (1, 2))])) == {()}
        assert evaluate_via_sql(program, Instance()) == frozenset()

    def test_ground_facts(self):
        program = parse_program(
            "seed(0, 9). tc(x, y) :- seed(x, y). tc(x, z) :- tc(x, y), edge(y, z).",
            goal="tc",
        )
        edb = Instance.from_facts([("edge", (9, 10))])
        assert_sql_matches_fixpoint(program, edb)

    def test_random_linear_programs(self):
        import random

        from repro.cq.syntax import Atom, Var
        from repro.datalog.syntax import Program, Rule

        x, y, z = Var("x"), Var("y"), Var("z")
        rng = random.Random(7)
        for trial in range(10):
            rules = [Rule(Atom("p", (x, y)), (Atom(rng.choice("ef"), (x, y)),))]
            if rng.random() < 0.5:
                rules.append(
                    Rule(Atom("p", (x, z)), (Atom("p", (x, y)), Atom("e", (y, z))))
                )
            else:
                rules.append(
                    Rule(Atom("p", (x, z)), (Atom("f", (x, y)), Atom("p", (y, z))))
                )
            program = Program(tuple(rules), "p")
            edb = random_instance({"e": 2, "f": 2}, 5, 8, seed=trial)
            assert_sql_matches_fixpoint(program, edb)

    def test_empty_edb(self):
        assert evaluate_via_sql(transitive_closure_program(), Instance()) == frozenset()

    def test_rq_translation_images_roundtrip(self):
        from repro.graphdb.generators import random_graph
        from repro.relational.instance import graph_to_instance
        from repro.rq.syntax import triangle_plus
        from repro.rq.to_datalog import rq_to_datalog

        program = rq_to_datalog(triangle_plus("a"))
        for seed in range(3):
            edb = graph_to_instance(random_graph(5, 11, ("a",), seed=seed))
            assert_sql_matches_fixpoint(program, edb)


class TestRejections:
    def test_mutual_recursion_rejected(self):
        program = parse_program(
            """
            a(x, z) :- b(x, y), e(y, z).
            b(x, z) :- a(x, y), e(y, z).
            a(x, y) :- e(x, y).
            """,
            goal="a",
        )
        with pytest.raises(SQLTranslationError):
            program_to_sql(program)

    def test_nonlinear_recursion_rejected(self):
        program = parse_program(
            "t(x, y) :- e(x, y). t(x, z) :- t(x, y), t(y, z)."
        )
        with pytest.raises(SQLTranslationError):
            program_to_sql(program)


class TestSQLShape:
    def test_recursive_keyword_only_when_needed(self):
        assert program_to_sql(transitive_closure_program()).startswith(
            "WITH RECURSIVE"
        )
        nonrecursive = parse_program("p(x, z) :- e(x, y), e(y, z).")
        assert program_to_sql(nonrecursive).startswith("WITH ")

    def test_base_branch_comes_first(self):
        """SQLite needs the non-recursive UNION branch first."""
        program = parse_program(
            # Recursive rule deliberately listed before the base rule.
            "t(x, z) :- t(x, y), e(y, z). t(x, y) :- e(x, y)."
        )
        sql = program_to_sql(program)
        union_parts = sql.split("UNION")
        assert '"t"' not in union_parts[0].split("AS (")[1]
        # And it actually runs:
        assert evaluate_via_sql(program, chain_instance(3)) == evaluate(
            program, chain_instance(3)
        )
