"""Tests for unfolding and expansion enumeration."""

import itertools

import pytest

from repro.cq.containment import ucq_equivalent
from repro.cq.evaluation import evaluate_ucq
from repro.cq.syntax import Var
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program
from repro.datalog.unfolding import enumerate_expansions, unfold_nonrecursive
from repro.relational.generators import random_instance


class TestUnfoldNonrecursive:
    def test_two_disjuncts(self):
        program = parse_program(
            """
            out(x, z) :- mid(x, y), edge(y, z).
            mid(x, y) :- edge(x, y).
            mid(x, y) :- edge(x, w), edge(w, y).
            """,
            goal="out",
        )
        ucq = unfold_nonrecursive(program)
        assert len(ucq) == 2
        assert {len(cq.body) for cq in ucq} == {2, 3}

    def test_unfolding_is_semantically_equivalent(self):
        """Section 2.2: nonrecursive Datalog ≡ UCQ, checked semantically."""
        program = parse_program(
            """
            out(x) :- a(x, y), mid(y).
            mid(y) :- b(y).
            mid(y) :- c(y, z), b(z).
            """,
            goal="out",
        )
        ucq = unfold_nonrecursive(program)
        for seed in range(4):
            db = random_instance({"a": 2, "b": 1, "c": 2}, 5, 8, seed=seed)
            assert frozenset(evaluate(program, db)) == evaluate_ucq(ucq, db)

    def test_recursive_rejected(self):
        with pytest.raises(ValueError):
            unfold_nonrecursive(transitive_closure_program())

    def test_diamond_dependencies_unfold_all_paths(self):
        program = parse_program(
            """
            top(x) :- left(x).
            top(x) :- right(x).
            left(x) :- base(x, y).
            right(x) :- base(y, x).
            """,
            goal="top",
        )
        assert len(unfold_nonrecursive(program)) == 2


class TestEnumerateExpansions:
    def test_tc_expansions_are_chains(self):
        tc = transitive_closure_program("edge", "tc")
        expansions = list(enumerate_expansions(tc, max_expansions=4))
        assert [len(cq.body) for cq in expansions] == [1, 2, 3, 4]
        for cq in expansions:
            # Each expansion is a simple edge-chain from g0 to g1.
            assert all(atom.predicate == "edge" for atom in cq.body)
            assert cq.head_vars == (Var("g0"), Var("g1"))

    def test_breadth_first_order(self):
        tc = transitive_closure_program("edge", "tc")
        sizes = [len(cq.body) for cq in enumerate_expansions(tc, max_expansions=6)]
        assert sizes == sorted(sizes)

    def test_max_applications_bounds_depth(self):
        tc = transitive_closure_program("edge", "tc")
        expansions = list(enumerate_expansions(tc, max_applications=3))
        assert max(len(cq.body) for cq in expansions) <= 3

    def test_max_atoms_prunes(self):
        tc = transitive_closure_program("edge", "tc")
        expansions = list(enumerate_expansions(tc, max_atoms=2, max_applications=10))
        assert all(len(cq.body) <= 2 for cq in expansions)

    def test_repeated_head_variables_identify_terms(self):
        """Rules with repeated head variables must rewrite the goal tuple."""
        program = parse_program(
            """
            diag(x, x) :- node(x).
            """,
            goal="diag",
        )
        (expansion,) = list(enumerate_expansions(program))
        assert expansion.head_vars[0] == expansion.head_vars[1]

    def test_head_constants_skipped(self):
        program = parse_program(
            """
            weird(1, 2) :- node(x).
            ok(x, y) :- pair(x, y).
            weird(x, y) :- ok(x, y).
            """,
            goal="weird",
        )
        expansions = list(enumerate_expansions(program))
        # Only the variable-headed expansion is a CQ.
        assert len(expansions) == 1
        assert expansions[0].body[0].predicate == "pair"

    def test_each_expansion_contained_in_program(self):
        """Soundness: every expansion's canonical db derives the goal."""
        tc = transitive_closure_program("edge", "tc")
        for cq in enumerate_expansions(tc, max_expansions=5):
            instance, head = cq.canonical_instance()
            assert head in evaluate(tc, instance)
