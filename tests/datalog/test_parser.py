"""Unit tests for the Datalog text parser."""

import pytest

from repro.cq.syntax import Atom, Var
from repro.datalog.parser import DatalogSyntaxError, parse_program, parse_rule


class TestParseRule:
    def test_simple_rule(self):
        rule = parse_rule("tc(x, y) :- edge(x, y)")
        assert rule.head == Atom("tc", (Var("x"), Var("y")))
        assert rule.body == (Atom("edge", (Var("x"), Var("y"))),)

    def test_multiple_body_atoms(self):
        rule = parse_rule("p(x) :- q(x, y), r(y)")
        assert len(rule.body) == 2

    def test_constants(self):
        rule = parse_rule("p(x) :- q(x, 5), r(x, 'alice')")
        assert rule.body[0].args[1] == 5
        assert rule.body[1].args[1] == "alice"

    def test_ground_fact(self):
        rule = parse_rule("p(1, 2)")
        assert rule.body == ()

    def test_zero_arity_atom(self):
        rule = parse_rule("goal() :- p(x)")
        assert rule.head.args == ()

    @pytest.mark.parametrize(
        "bad",
        ["p(x) :- ", "p(x q(y)", "p(x) :- q(y) r(z)", "p(x) :- q(@)"],
    )
    def test_malformed(self, bad):
        with pytest.raises((DatalogSyntaxError, ValueError)):
            parse_rule(bad)


class TestParseProgram:
    def test_transitive_closure(self):
        program = parse_program(
            """
            tc(x, y) :- edge(x, y).
            tc(x, z) :- tc(x, y), edge(y, z).
            """
        )
        assert program.goal == "tc"
        assert len(program.rules) == 2

    def test_comments_stripped(self):
        program = parse_program(
            """
            % leading comment
            p(x) :- q(x).   # trailing comment
            """
        )
        assert len(program.rules) == 1

    def test_explicit_goal(self):
        program = parse_program(
            "aux(x) :- b(x). out(x) :- aux(x).", goal="out"
        )
        assert program.goal == "out"

    def test_empty_program_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_program("   % nothing here")

    def test_predicate_names_with_plus(self):
        program = parse_program(
            """
            E+(x, y) :- E(x, y).
            E+(x, z) :- E+(x, y), E(y, z).
            """
        )
        assert program.goal == "E+"
