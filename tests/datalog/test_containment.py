"""Tests for containment procedures involving Datalog."""

import pytest

from repro.core.report import Verdict
from repro.cq.syntax import UCQ, cq_from_strings
from repro.datalog.containment import (
    cq_in_datalog,
    datalog_equivalent_bounded,
    datalog_in_datalog,
    datalog_in_ucq,
    ucq_in_datalog,
)
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program


@pytest.fixture
def tc():
    return transitive_closure_program("edge", "tc")


class TestUCQInDatalog:
    def test_path_cq_in_tc(self, tc):
        path3 = cq_from_strings("x,w", ["edge(x,y)", "edge(y,z)", "edge(z,w)"])
        assert cq_in_datalog(path3, tc).verdict is Verdict.HOLDS

    def test_reversed_path_not_in_tc(self, tc):
        reverse = cq_from_strings("x,y", ["edge(y,x)"])
        result = cq_in_datalog(reverse, tc)
        assert result.verdict is Verdict.REFUTED
        instance, = (result.counterexample.database,)
        assert result.counterexample.output not in evaluate(tc, instance)

    def test_union_checked_disjunctwise(self, tc):
        good = cq_from_strings("x,y", ["edge(x,y)"])
        bad = cq_from_strings("x,y", ["edge(y,x)"])
        assert ucq_in_datalog(UCQ((good,)), tc).verdict is Verdict.HOLDS
        assert ucq_in_datalog(UCQ((good, bad)), tc).verdict is Verdict.REFUTED

    def test_arity_mismatch(self, tc):
        unary = cq_from_strings("x", ["edge(x,y)"])
        with pytest.raises(ValueError):
            cq_in_datalog(unary, tc)


class TestDatalogInUCQ:
    def test_nonrecursive_is_exact(self):
        program = parse_program(
            """
            out(x, y) :- edge(x, y).
            out(x, z) :- edge(x, y), edge(y, z).
            """,
            goal="out",
        )
        union = UCQ(
            (
                cq_from_strings("x,y", ["edge(x,y)"]),
                cq_from_strings("x,z", ["edge(x,y)", "edge(y,z)"]),
            )
        )
        assert datalog_in_ucq(program, union).verdict is Verdict.HOLDS

    def test_recursive_refutation_is_exact(self, tc):
        single = cq_from_strings("x,y", ["edge(x,y)"])
        result = datalog_in_ucq(tc, UCQ((single,)), max_expansions=20)
        assert result.verdict is Verdict.REFUTED
        # The smallest counterexample: a 2-chain.
        assert result.counterexample.database.num_facts == 2

    def test_recursive_positive_is_bounded(self, tc):
        everything = cq_from_strings("x,y", ["edge(x,u)", "edge(v,y)"])
        # tc(x,y) implies an edge leaves x and an edge enters y.
        result = datalog_in_ucq(tc, UCQ((everything,)), max_expansions=20)
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND
        assert result.bound is not None


class TestDatalogInDatalog:
    def test_left_and_right_linear_tc_agree(self, tc):
        right = transitive_closure_program("edge", "tc", left_linear=False)
        assert datalog_equivalent_bounded(tc, right, max_expansions=25)

    def test_tc_contains_squared_tc(self, tc):
        """tc over edge ⊑ tc over (edge ∪ edge²) — and not conversely."""
        rich = parse_program(
            """
            hop(x, y) :- edge(x, y).
            hop(x, z) :- edge(x, y), edge(y, z).
            tc2(x, y) :- hop(x, y).
            tc2(x, z) :- tc2(x, y), hop(y, z).
            """,
            goal="tc2",
        )
        assert datalog_in_datalog(tc, rich, max_expansions=25).holds
        result = datalog_in_datalog(rich, tc, max_expansions=25)
        assert result.verdict is Verdict.HOLDS_UP_TO_BOUND  # actually equivalent

    def test_goal_arity_mismatch(self, tc):
        unary = parse_program("q(x) :- edge(x, y).")
        with pytest.raises(ValueError):
            datalog_in_datalog(tc, unary)

    def test_nonrecursive_left_gives_exact_holds(self, tc):
        two_hop = parse_program(
            "p(x, z) :- edge(x, y), edge(y, z).", goal="p"
        )
        assert datalog_in_datalog(two_hop, tc).verdict is Verdict.HOLDS

    def test_refutation_counterexample_replays(self, tc):
        two_hop = parse_program("p(x, z) :- edge(x, y), edge(y, z).", goal="p")
        result = datalog_in_datalog(tc, two_hop, max_expansions=10)
        assert result.verdict is Verdict.REFUTED
        instance = result.counterexample.database
        head = result.counterexample.output
        assert head in evaluate(tc, instance)
        assert head not in evaluate(two_hop, instance)
