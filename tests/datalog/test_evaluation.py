"""Tests for naive/semi-naive evaluation and the P^i semantics."""

import pytest

from repro.datalog.evaluation import (
    EvaluationStats,
    _seed_instance,
    bounded_evaluate,
    evaluate,
    naive_evaluate,
    seminaive_evaluate,
)
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.relational.generators import chain_instance, random_instance
from repro.relational.instance import Instance


@pytest.fixture
def tc():
    return transitive_closure_program("edge", "tc")


class TestFixpoint:
    def test_tc_on_chain(self, tc):
        db = chain_instance(4)
        expected = {(i, j) for i in range(5) for j in range(i + 1, 5)}
        assert evaluate(tc, db) == expected

    def test_tc_on_cycle(self, tc):
        db = Instance.from_facts([("edge", (0, 1)), ("edge", (1, 2)), ("edge", (2, 0))])
        assert evaluate(tc, db) == {(i, j) for i in range(3) for j in range(3)}

    def test_empty_edb(self, tc):
        assert evaluate(tc, Instance()) == frozenset()

    def test_reachability_program(self):
        program = reachability_program("E", "P", "Q")
        db = Instance.from_facts(
            [("E", (1, 2)), ("E", (2, 3)), ("E", (4, 1)), ("P", (3,))]
        )
        assert evaluate(program, db) == {(1,), (2,), (4,)}

    def test_naive_and_seminaive_agree(self, tc):
        for seed in range(4):
            db = random_instance({"edge": 2}, 6, 10, seed=seed)
            assert naive_evaluate(tc, db) == seminaive_evaluate(tc, db)

    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(x, y) :- edge(x, y), start(x).
            odd(x, z) :- even(x, y), edge(y, z).
            even(x, z) :- odd(x, y), edge(y, z).
            """,
            goal="even",
        )
        db = chain_instance(5)
        db.add("start", (0,))
        assert evaluate(program, db) == {(0, 1), (0, 3), (0, 5)}

    def test_nonlinear_rules(self):
        doubling = parse_program(
            """
            tc(x, y) :- edge(x, y).
            tc(x, z) :- tc(x, y), tc(y, z).
            """
        )
        db = chain_instance(6)
        expected = {(i, j) for i in range(7) for j in range(i + 1, 7)}
        assert evaluate(doubling, db) == expected

    def test_ground_fact_rules(self):
        program = parse_program(
            """
            seed(0, 1).
            tc(x, y) :- seed(x, y).
            tc(x, z) :- tc(x, y), edge(y, z).
            """,
            goal="tc",
        )
        db = chain_instance(3)
        assert (0, 3) in evaluate(program, db)

    def test_unknown_engine_rejected(self, tc):
        with pytest.raises(ValueError):
            evaluate(tc, Instance(), engine="magic")


class TestStats:
    def test_seminaive_fewer_rule_firings_than_naive(self, tc):
        db = chain_instance(12)
        naive_stats, semi_stats = EvaluationStats(), EvaluationStats()
        naive_evaluate(tc, db, naive_stats)
        seminaive_evaluate(tc, db, semi_stats)
        assert naive_stats.facts_derived == semi_stats.facts_derived
        # The decisive metric: naive re-derives everything each round.
        assert sum(naive_stats.derivations_per_iteration) == sum(
            semi_stats.derivations_per_iteration
        )
        assert naive_stats.iterations >= semi_stats.iterations - 1

    def test_iterations_scale_with_chain_length(self, tc):
        short, long_ = EvaluationStats(), EvaluationStats()
        naive_evaluate(tc, chain_instance(3), short)
        naive_evaluate(tc, chain_instance(9), long_)
        assert long_.iterations > short.iterations


class TestBoundedSemantics:
    def test_p_i_is_monotone_and_converges(self, tc):
        """The paper's P^inf(D) = U_i P^i(D), observably."""
        db = chain_instance(5)
        previous = frozenset()
        for rounds in range(8):
            current = bounded_evaluate(tc, db, rounds)
            assert previous <= current
            previous = current
        assert previous == evaluate(tc, db)

    def test_p_1_is_base_facts(self, tc):
        db = chain_instance(4)
        assert bounded_evaluate(tc, db, 1) == {(i, i + 1) for i in range(4)}

    def test_p_0_is_empty(self, tc):
        assert bounded_evaluate(tc, chain_instance(3), 0) == frozenset()


class TestSeedInstance:
    """Regression tests for _seed_instance declaring the IDB schema.

    An earlier version only copied the EDB, so IDB predicates entered
    the instance lazily on first derivation — and an EDB relation
    clashing with an IDB head's arity went undetected whenever the
    clashing rule happened never to fire.
    """

    def test_idb_predicates_are_declared_with_head_arity(self, tc):
        seeded = _seed_instance(tc, chain_instance(2))
        assert seeded.arity("tc") == 2
        assert seeded.tuples("tc") == frozenset()

    def test_idb_predicate_that_never_fires_stays_empty(self):
        program = parse_program(
            """
            T(x,y) :- E(x,y), Missing(x).
            Goal(x) :- T(x,y).
            """
        )
        edb = Instance.from_facts([("E", ("a", "b"))])
        for engine in ("naive", "seminaive"):
            assert evaluate(program, edb, engine=engine) == frozenset()

    def test_edb_idb_arity_clash_fails_loudly_even_when_rule_never_fires(self):
        program = parse_program(
            """
            P(x,y) :- E(x,y).
            Goal(x) :- P(x,x).
            """
        )
        # E is empty, so the clashing rule derives nothing; the old
        # seeding accepted this ill-formed input silently.
        edb = Instance.from_facts([("P", ("a",))])
        edb.declare("E", 2)
        with pytest.raises(ValueError, match="arity"):
            evaluate(program, edb)
        with pytest.raises(ValueError, match="arity"):
            bounded_evaluate(program, edb, 3)
