"""Tests for Datalog program text serialization."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.syntax import (
    program_to_text,
    reachability_program,
    transitive_closure_program,
)


class TestProgramToText:
    @pytest.mark.parametrize(
        "program",
        [
            transitive_closure_program(),
            transitive_closure_program(left_linear=False),
            reachability_program(),
            parse_program("p(x) :- q(x, 'alice'), r(x, 5)."),
            parse_program("seed(1, 2). goal(x, y) :- seed(x, y).", goal="goal"),
        ],
        ids=["tc-left", "tc-right", "reach", "constants", "facts"],
    )
    def test_roundtrip(self, program):
        text = program_to_text(program)
        assert parse_program(text, goal=program.goal) == program

    def test_goal_recorded_as_comment(self):
        text = program_to_text(transitive_closure_program(goal="closure"))
        assert "% goal: closure" in text

    def test_translated_rq_roundtrips(self):
        from repro.rq.syntax import triangle_plus
        from repro.rq.to_datalog import rq_to_datalog

        program = rq_to_datalog(triangle_plus())
        # Variable names like __tc_q0 survive the parser's lexer.
        assert parse_program(program_to_text(program), goal=program.goal) == program
