"""Property-based tests for the Datalog layer.

Random linear programs and instances drive the central invariants: the
two fixpoint engines agree, bounded evaluation is a monotone ladder to
the fixpoint, and every enumerated expansion is sound (its canonical
database derives the goal).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.cq.syntax import Atom, Var
from repro.datalog.evaluation import (
    bounded_evaluate,
    evaluate,
    naive_evaluate,
    seminaive_evaluate,
)
from repro.datalog.syntax import Program, Rule
from repro.datalog.unfolding import enumerate_expansions
from repro.relational.generators import random_instance


def random_linear_program(rng: random.Random) -> Program:
    """A random binary-IDB program with one base and 1-2 step rules.

    Shapes stay within safe Datalog; steps may be left- or right-linear
    and may draw from two EDB relations.
    """
    x, y, z = Var("x"), Var("y"), Var("z")
    edb = ["e", "f"]
    base_pred = rng.choice(edb)
    rules = [Rule(Atom("p", (x, y)), (Atom(base_pred, (x, y)),))]
    for _ in range(rng.randint(1, 2)):
        step_pred = rng.choice(edb)
        if rng.random() < 0.5:
            rules.append(
                Rule(Atom("p", (x, z)), (Atom("p", (x, y)), Atom(step_pred, (y, z))))
            )
        else:
            rules.append(
                Rule(Atom("p", (x, z)), (Atom(step_pred, (x, y)), Atom("p", (y, z))))
            )
    return Program(tuple(rules), "p")


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_naive_equals_seminaive(seed, db_seed):
    program = random_linear_program(random.Random(seed))
    db = random_instance({"e": 2, "f": 2}, 5, 8, seed=db_seed)
    assert naive_evaluate(program, db) == seminaive_evaluate(program, db)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_bounded_ladder_monotone_to_fixpoint(seed, db_seed):
    program = random_linear_program(random.Random(seed))
    db = random_instance({"e": 2, "f": 2}, 4, 6, seed=db_seed)
    fixpoint = evaluate(program, db)
    previous: frozenset = frozenset()
    for rounds in range(8):
        stage = bounded_evaluate(program, db, rounds)
        assert previous <= stage <= fixpoint
        previous = stage
    assert bounded_evaluate(program, db, 30) == fixpoint


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9))
def test_expansions_are_sound(seed):
    """Every expansion's canonical database must derive the goal head."""
    program = random_linear_program(random.Random(seed))
    for expansion in enumerate_expansions(program, max_expansions=6):
        instance, head = expansion.canonical_instance()
        assert head in evaluate(program, instance)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_evaluation_monotone_in_edb(seed, db_seed):
    program = random_linear_program(random.Random(seed))
    small = random_instance({"e": 2, "f": 2}, 4, 5, seed=db_seed)
    big = small.union(random_instance({"e": 2, "f": 2}, 4, 5, seed=db_seed + 1))
    assert evaluate(program, small) <= evaluate(program, big)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**9))
def test_expansion_answers_are_subsets_of_program_answers(seed):
    """Each expansion, as a CQ, is contained in the program (semantic)."""
    from repro.cq.evaluation import evaluate_cq

    rng = random.Random(seed)
    program = random_linear_program(rng)
    db = random_instance({"e": 2, "f": 2}, 4, 7, seed=seed % 1000)
    answers = evaluate(program, db)
    for expansion in enumerate_expansions(program, max_expansions=4):
        assert evaluate_cq(expansion, db) <= answers
