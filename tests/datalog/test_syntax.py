"""Unit tests for Datalog rule/program structure."""

import pytest

from repro.cq.syntax import Atom, Var
from repro.datalog.syntax import (
    Program,
    Rule,
    reachability_program,
    transitive_closure_program,
)


class TestRule:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            Rule(Atom("p", (Var("x"),)), (Atom("q", (Var("y"),)),))

    def test_nonground_fact_rejected(self):
        with pytest.raises(ValueError):
            Rule(Atom("p", (Var("x"),)), ())

    def test_ground_fact_allowed(self):
        Rule(Atom("p", (1, 2)), ())

    def test_rename_with_suffix(self):
        rule = Rule(Atom("p", (Var("x"),)), (Atom("q", (Var("x"), Var("y"))),))
        renamed = rule.rename_with_suffix("_1")
        assert renamed.head.args == (Var("x_1"),)
        assert renamed.body[0].args == (Var("x_1"), Var("y_1"))


class TestProgram:
    def test_goal_must_be_idb(self):
        rule = Rule(Atom("p", (Var("x"),)), (Atom("q", (Var("x"),)),))
        with pytest.raises(ValueError):
            Program((rule,), "q")

    def test_arity_consistency_enforced(self):
        r1 = Rule(Atom("p", (Var("x"),)), (Atom("q", (Var("x"),)),))
        r2 = Rule(Atom("p", (Var("x"), Var("y"))), (Atom("q2", (Var("x"), Var("y"))),))
        with pytest.raises(ValueError):
            Program((r1, r2), "p")

    def test_idb_edb_partition(self):
        tc = transitive_closure_program("edge", "tc")
        assert tc.idb_predicates == {"tc"}
        assert tc.edb_predicates == {"edge"}

    def test_goal_arity(self):
        assert transitive_closure_program().goal_arity == 2
        assert reachability_program().goal_arity == 1

    def test_rules_for(self):
        tc = transitive_closure_program()
        assert len(tc.rules_for("tc")) == 2
        assert tc.rules_for("missing") == ()

    def test_rename_predicates(self):
        tc = transitive_closure_program("edge", "tc")
        renamed = tc.rename_predicates({"tc": "closure", "edge": "E"})
        assert renamed.goal == "closure"
        assert renamed.edb_predicates == {"E"}


class TestFactories:
    def test_tc_variants_shape(self):
        left = transitive_closure_program(left_linear=True)
        right = transitive_closure_program(left_linear=False)
        # Both have a recursive atom; on different sides.
        left_step = left.rules_for("tc")[1]
        right_step = right.rules_for("tc")[1]
        assert left_step.body[0].predicate == "tc"
        assert right_step.body[1].predicate == "tc"

    def test_reachability_is_paper_program(self):
        prog = reachability_program("E", "P", "Q")
        texts = {repr(rule) for rule in prog.rules}
        assert any("P(" in text for text in texts)
        assert prog.goal == "Q"
