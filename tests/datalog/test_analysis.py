"""Tests for the dependence graph and program classifications."""

import pytest

from repro.datalog.analysis import (
    dependence_graph,
    is_linear,
    is_monadic,
    is_nonrecursive,
    predicate_depth,
    recursive_components,
    recursive_predicates,
)
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program


class TestDependenceGraph:
    def test_edges_point_body_to_head(self):
        tc = transitive_closure_program("edge", "tc")
        graph = dependence_graph(tc)
        assert ("edge", "tc") in graph.edges
        assert ("tc", "tc") in graph.edges

    def test_sccs(self):
        program = parse_program(
            """
            a(x) :- b(x).
            b(x) :- a(x).
            c(x) :- a(x), base(x).
            """,
            goal="c",
        )
        graph = dependence_graph(program)
        components = graph.strongly_connected_components()
        assert frozenset({"a", "b"}) in components


class TestRecursion:
    def test_tc_is_recursive(self):
        assert recursive_predicates(transitive_closure_program()) == {"tc"}

    def test_nonrecursive_program(self):
        program = parse_program(
            """
            out(x, z) :- mid(x, y), edge(y, z).
            mid(x, y) :- edge(x, y).
            """,
            goal="out",
        )
        assert is_nonrecursive(program)
        assert recursive_predicates(program) == frozenset()

    def test_mutual_recursion_detected(self):
        program = parse_program(
            """
            a(x) :- edge(x, y), b(y).
            b(x) :- edge(x, y), a(y).
            """,
            goal="a",
        )
        assert recursive_predicates(program) == {"a", "b"}

    def test_recursive_components_in_order(self):
        program = parse_program(
            """
            inner(x, y) :- edge(x, y).
            inner(x, z) :- inner(x, y), edge(y, z).
            outer(x, y) :- inner(x, y).
            outer(x, z) :- outer(x, y), inner(y, z).
            """,
            goal="outer",
        )
        components = recursive_components(program)
        assert components == [frozenset({"inner"}), frozenset({"outer"})]


class TestMonadic:
    def test_paper_reachability_is_monadic(self):
        assert is_monadic(reachability_program())

    def test_tc_is_not_monadic(self):
        """The paper's point: E+ needs binary recursion (Section 2.3)."""
        assert not is_monadic(transitive_closure_program())

    def test_nonrecursive_is_trivially_monadic(self):
        program = parse_program("out(x, y) :- edge(x, y).")
        assert is_monadic(program)

    def test_monadic_goal_may_be_polyadic(self):
        """Monadic restricts recursive predicates only (per the paper)."""
        program = parse_program(
            """
            reach(x) :- source(x).
            reach(y) :- reach(x), edge(x, y).
            pairs(x, y) :- reach(x), reach(y).
            """,
            goal="pairs",
        )
        assert is_monadic(program)


class TestLinear:
    def test_tc_is_linear(self):
        assert is_linear(transitive_closure_program())

    def test_doubling_rule_is_not_linear(self):
        program = parse_program(
            """
            tc(x, y) :- edge(x, y).
            tc(x, z) :- tc(x, y), tc(y, z).
            """
        )
        assert not is_linear(program)


class TestDepth:
    def test_depth_of_layered_program(self):
        program = parse_program(
            """
            l2(x) :- l1(x).
            l1(x) :- l0(x).
            l0(x) :- base(x).
            """,
            goal="l2",
        )
        depth = predicate_depth(program)
        assert depth["l0"] == 1 and depth["l1"] == 2 and depth["l2"] == 3

    def test_rejects_recursive(self):
        with pytest.raises(ValueError):
            predicate_depth(transitive_closure_program())
