#!/usr/bin/env python
"""End-to-end serving smoke: launch, replay, observe, drain.

The CI serving job runs this against a real ``repro serve`` subprocess
with the full telemetry surface enabled:

1. start the server on a free port with ``--access-log``,
   ``--trace-sample-rate``, ``--flight-dump`` and ``--prom-port 0``,
   and parse both announce lines;
2. replay the checked-in batch workload over TCP and require every
   frame answered in order with no shed responses and a unique
   server-assigned ``request_id`` on each;
3. fetch the ``metrics`` and ``debug`` control verbs and write the
   metrics snapshot to ``serve_metrics.json`` (a CI artifact);
4. scrape the Prometheus endpoint and lint every exposition line;
5. SIGTERM the server and require a clean drain: exit code 0, the
   ``# drained`` summary on stderr, and the flight-recorder dump file;
6. schema-validate every access-log record and require each accepted
   frame to appear exactly once (answered or shed).

Exits non-zero on any violation.  Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--workload PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.obs.telemetry import validate_access_record  # noqa: E402

DEFAULT_WORKLOAD = REPO / "benchmarks" / "workloads" / "batch_smoke.ndjson"

# One Prometheus exposition line: comment, or `name[{le="..."}] value`.
_EXPOSITION_LINE = re.compile(
    r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.e+-]+(inf)?)$"
)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 floor
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def read_announces(stream) -> tuple[int, int]:
    """Return (serve_port, prom_port) from the stderr announce lines."""
    prom_port = None
    for _ in range(10):
        line = stream.readline()
        if line.startswith("# metrics on "):
            prom_port = int(line.split("/metrics")[0].rsplit(":", 1)[1])
        elif line.startswith("# serving on "):
            port = int(line.split()[3].rsplit(":", 1)[1])
            if prom_port is None:
                fail("no prometheus announce line before the serving line")
            return port, prom_port
        else:
            fail(f"unexpected announce line: {line!r}")
    fail("server never announced its ports")


def scrape_prometheus(port: int) -> str:
    with socket.create_connection(("127.0.0.1", port), 10) as sock:
        sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        chunks = []
        while chunk := sock.recv(65536):
            chunks.append(chunk)
    response = b"".join(chunks)
    head, _, body = response.partition(b"\r\n\r\n")
    status = head.decode("ascii", "replace").split("\r\n")[0]
    if "200" not in status:
        fail(f"prometheus scrape returned {status!r}")
    return body.decode("utf-8")


def check_access_log(path: pathlib.Path, request_ids: set[str]) -> None:
    """Every record schema-valid; every accepted frame logged once."""
    records = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    for record in records:
        problems = validate_access_record(record)
        if problems:
            fail(f"invalid access record {record!r}: {problems}")
    logged = [r["request_id"] for r in records]
    if len(logged) != len(set(logged)):
        fail("duplicate request_id in access log")
    missing = request_ids - set(logged)
    if missing:
        fail(f"{len(missing)} responses missing from access log: "
             f"{sorted(missing)[:3]}")
    by_op: dict[str, int] = {}
    for record in records:
        by_op[record["op"]] = by_op.get(record["op"], 0) + 1
    print(f"serve_smoke: {len(records)} access records, ops={by_op}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload", default=str(DEFAULT_WORKLOAD), help="NDJSON workload"
    )
    parser.add_argument(
        "--out", default="serve_metrics.json", help="metrics snapshot path"
    )
    parser.add_argument(
        "--access-log", default="serve_access.ndjson",
        help="access log path (uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--flight-dump", default="serve_flight.json",
        help="flight-recorder dump path (uploaded as a CI artifact)",
    )
    args = parser.parse_args()

    lines = [
        line
        for line in pathlib.Path(args.workload).read_text().splitlines()
        if line.strip()
    ]
    access_log = pathlib.Path(args.access_log)
    flight_dump = pathlib.Path(args.flight_dump)
    for stale in (access_log, flight_dump):
        stale.unlink(missing_ok=True)

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(REPO / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "4", "--queue-limit", "256",
            "--access-log", str(access_log),
            "--trace-sample-rate", "0.25",
            "--slow-ms", "0",
            "--flight-dump", str(flight_dump),
            "--prom-port", "0",
        ],
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    assert process.stderr is not None
    try:
        port, prom_port = read_announces(process.stderr)
        print(f"serve_smoke: server on port {port}, metrics on {prom_port}")

        responses: list[dict] = []
        with socket.create_connection(("127.0.0.1", port), 10) as sock:
            sock.settimeout(120)
            payload = "".join(line + "\n" for line in lines)
            payload += '{"op": "debug", "id": "recorder", "last": 5}\n'
            payload += '{"op": "metrics", "id": "snapshot"}\n'
            sock.sendall(payload.encode())
            sock.shutdown(socket.SHUT_WR)
            with sock.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    responses.append(json.loads(line))

        if len(responses) != len(lines) + 2:
            fail(f"{len(responses)} responses for {len(lines) + 2} frames")
        if [r["index"] for r in responses] != list(range(len(responses))):
            fail("responses out of input order")
        answered = responses[: len(lines)]
        shed = [r for r in answered if r.get("method") == "serve-admission"]
        if shed:
            fail(f"{len(shed)} frames shed on an idle server")
        errored = [r for r in answered if r["verdict"] == "error"]
        if errored:
            fail(f"workload frames errored: {errored[:2]}")
        request_ids = {r.get("request_id") for r in responses}
        if None in request_ids or len(request_ids) != len(responses):
            fail("responses without unique server-assigned request ids")
        print(
            f"serve_smoke: {len(answered)} frames answered in order, "
            f"0 shed, {len(request_ids)} unique request ids"
        )

        flight = responses[len(lines)]
        if flight.get("op") != "debug":
            fail(f"debug verb returned {flight!r}")
        if flight["flight"]["schema"] != "repro-flight/1":
            fail(f"debug flight schema {flight['flight']['schema']!r}")
        if not flight["flight"]["entries"]:
            fail("flight recorder empty with --slow-ms 0")
        print(
            f"serve_smoke: debug verb returned "
            f"{len(flight['flight']['entries'])} flight entries"
        )

        snapshot = responses[-1]
        if snapshot.get("op") != "metrics" or "metrics" not in snapshot:
            fail(f"metrics verb returned {snapshot!r}")
        served = snapshot["metrics"].get("serve.responses", {}).get("value", 0)
        if served < len(lines):
            fail(f"serve.responses={served} < {len(lines)} frames")
        if "telemetry" not in snapshot:
            fail("metrics verb payload has no telemetry stats")
        pathlib.Path(args.out).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        print(f"serve_smoke: metrics snapshot written to {args.out}")

        exposition = scrape_prometheus(prom_port)
        for line in exposition.splitlines():
            if not _EXPOSITION_LINE.match(line):
                fail(f"bad prometheus exposition line: {line!r}")
        if "serve_requests" not in exposition:
            fail("prometheus exposition missing serve_requests")
        print(
            f"serve_smoke: prometheus exposition clean "
            f"({len(exposition.splitlines())} lines)"
        )

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("server did not drain within 30s of SIGTERM")
        stderr_rest = process.stderr.read()
        if code != 0:
            fail(f"drain exit code {code}; stderr: {stderr_rest!r}")
        if "# drained:" not in stderr_rest:
            fail(f"no drain summary on stderr: {stderr_rest!r}")
        print(f"serve_smoke: clean drain ({stderr_rest.strip().splitlines()[-1]})")

        if not flight_dump.exists():
            fail("no flight-recorder dump after SIGTERM drain")
        dump = json.loads(flight_dump.read_text())
        if dump.get("schema") != "repro-flight/1":
            fail(f"flight dump schema {dump.get('schema')!r}")
        print(
            f"serve_smoke: flight dump has {len(dump['entries'])} entries "
            f"({dump['recorded_total']} recorded)"
        )

        if not access_log.exists():
            fail("server wrote no access log")
        check_access_log(access_log, request_ids)
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    sys.exit(main())
