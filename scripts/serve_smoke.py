#!/usr/bin/env python
"""End-to-end serving smoke: launch, replay, snapshot metrics, drain.

The CI serving job runs this against a real ``repro serve`` subprocess:

1. start the server on a free port and parse the announce line;
2. replay the checked-in batch workload over TCP and require every
   frame answered in order with no shed responses;
3. fetch the ``metrics`` control verb and write the snapshot to
   ``serve_metrics.json`` (uploaded as a CI artifact);
4. SIGTERM the server and require a clean drain: exit code 0 and the
   ``# drained`` summary on stderr.

Exits non-zero on any violation.  Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--workload PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_WORKLOAD = REPO / "benchmarks" / "workloads" / "batch_smoke.ndjson"


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 floor
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload", default=str(DEFAULT_WORKLOAD), help="NDJSON workload"
    )
    parser.add_argument(
        "--out", default="serve_metrics.json", help="metrics snapshot path"
    )
    args = parser.parse_args()

    lines = [
        line
        for line in pathlib.Path(args.workload).read_text().splitlines()
        if line.strip()
    ]

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(REPO / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "4", "--queue-limit", "256",
        ],
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    assert process.stderr is not None
    try:
        announce = process.stderr.readline()
        if not announce.startswith("# serving on "):
            fail(f"bad announce line: {announce!r}")
        port = int(announce.split()[3].rsplit(":", 1)[1])
        print(f"serve_smoke: server up on port {port}")

        responses: list[dict] = []
        with socket.create_connection(("127.0.0.1", port), 10) as sock:
            sock.settimeout(120)
            payload = "".join(line + "\n" for line in lines)
            payload += '{"op": "metrics", "id": "snapshot"}\n'
            sock.sendall(payload.encode())
            sock.shutdown(socket.SHUT_WR)
            with sock.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    responses.append(json.loads(line))

        if len(responses) != len(lines) + 1:
            fail(f"{len(responses)} responses for {len(lines) + 1} frames")
        if [r["index"] for r in responses] != list(range(len(responses))):
            fail("responses out of input order")
        answered = responses[:-1]
        shed = [r for r in answered if r.get("method") == "serve-admission"]
        if shed:
            fail(f"{len(shed)} frames shed on an idle server")
        errored = [r for r in answered if r["verdict"] == "error"]
        if errored:
            fail(f"workload frames errored: {errored[:2]}")
        print(
            f"serve_smoke: {len(answered)} frames answered in order, 0 shed"
        )

        snapshot = responses[-1]
        if snapshot.get("op") != "metrics" or "metrics" not in snapshot:
            fail(f"metrics verb returned {snapshot!r}")
        served = snapshot["metrics"].get("serve.responses", {}).get("value", 0)
        if served < len(lines):
            fail(f"serve.responses={served} < {len(lines)} frames")
        pathlib.Path(args.out).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        print(f"serve_smoke: metrics snapshot written to {args.out}")

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("server did not drain within 30s of SIGTERM")
        stderr_rest = process.stderr.read()
        if code != 0:
            fail(f"drain exit code {code}; stderr: {stderr_rest!r}")
        if "# drained:" not in stderr_rest:
            fail(f"no drain summary on stderr: {stderr_rest!r}")
        print(f"serve_smoke: clean drain ({stderr_rest.strip().splitlines()[-1]})")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    sys.exit(main())
