"""Concurrent batch containment: the engine's thread-safe front door.

Containment workloads are embarrassingly parallel across query pairs —
each ``check(Q1, Q2)`` is an independent run of the per-pair automata
products of the Lemma 1 / Theorem 5 pipelines — so the batch layer is a
worker pool in front of :func:`repro.core.engine.check_containment`:

    >>> from repro.core.batch import check_containment_many
    >>> batch = check_containment_many(pairs, workers=4)
    >>> [item.result.verdict.value for item in batch.items]

Semantics (DESIGN.md "Concurrency architecture"):

- **Order.** Results come back in input order regardless of completion
  order; ``batch.items[i]`` always answers ``pairs[i]``.
- **Determinism.** Verdicts are identical to the sequential loop
  ``[check_containment(q1, q2, ...) for q1, q2 in pairs]`` at any
  worker count and on either backend — the engine's procedures are
  deterministic and all shared substrate (caches, metrics) is
  thread-safe with single-flight computation, so concurrency changes
  wall-clock, never answers.
- **Failure isolation.** One item's exception becomes a
  ``Verdict.ERROR`` result for that item, with the exception type,
  message, and traceback in ``details["error"]`` — never a batch
  abort.  Budget exhaustion is *not* an error: it degrades inside the
  engine exactly as in sequential use.
- **Pool deadline.** ``pool_deadline_ms`` bounds the whole batch:
  when it expires, items that have not started are degraded to
  ``Verdict.INCONCLUSIVE`` with ``details["budget"]`` recording the
  pool deadline as the exhausted resource.  Items already running
  finish (their own per-item ``budget`` bounds them cooperatively —
  pass one if individual checks may be long).
- **Tracing.** ``trace=True`` gives every *item* its own
  :class:`repro.obs.trace.Tracer` (tracers are single-check objects by
  contract), so concurrent span trees never interleave; each item's
  tree is in its result's ``details["trace"]``.

Backends:

- ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`.
  Workers share the process-wide caches (a pair computed by one worker
  is a hit for every other) and the metrics registry.  Under a GIL
  build the speedup on pure-Python checks is bounded; it is the right
  backend when checks hit caches, block on I/O, or run on free-threaded
  builds.
- ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`.
  True parallelism on multi-core machines; queries and results cross
  the process boundary by pickling.  The process backend is
  first-class (DESIGN.md "Concurrency architecture"):

  - **Warm start.** Every worker runs a pool initializer that imports
    the tower dispatch path and seeds the regex→NFA / determinize /
    containment caches with tiny checks, so the first real item never
    pays cold-compile latency.
  - **Crash isolation.** A worker that dies mid-item (segfault,
    ``os._exit``) breaks the pool for *every* in-flight future; the
    executor quarantines the casualties — each is retried exactly once,
    serially, against a rebuilt pool, so innocent items recompute and
    only the poison item resolves to an ``ERROR`` verdict with the
    crash under ``details["error"]``.  The pool is rebuilt
    (``batch.pool_rebuilds`` counts it) and subsequent submits
    succeed: a crashing check never aborts a batch or takes down
    ``repro serve``.
  - **Telemetry repatriation.** Each item carries a delta snapshot of
    the worker's metrics registry and cache counters
    (:attr:`BatchItem.telemetry`); the parent merges it exactly once
    at completion, so ``repro top``, the ``metrics`` verb, and
    post-batch snapshots report true figures instead of zeros.
  - **Picklable hooks.** The ``expired_result`` admission hook crosses
    the boundary when it pickles — the serving layer uses a frozen
    dataclass spec (:class:`repro.serve.admission.DeadlineShedSpec`),
    so ``start_deadline`` sheds identically on both backends.  Plain
    callables (closures, lambdas) remain fine on the thread backend.

Batch metrics (parent process): ``batch.items`` (counter),
``batch.wall_ms`` (histogram), ``batch.workers`` and
``batch.worker_utilization`` (gauges; utilization is the mean fraction
of the pool's worker-seconds spent inside checks), and
``batch.pool_rebuilds`` (counter; broken process pools replaced).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import queue as _queue
import threading
import time
import traceback
from typing import Any, Iterable, Iterator, Sequence

from ..automata.antichain import resolve_kernel
from ..budget import Budget
from ..obs.metrics import counter as _metric_counter, gauge as _metric_gauge, \
    histogram as _metric_histogram
from ..obs.telemetry import (
    merge_worker_telemetry,
    worker_telemetry_baseline,
    worker_telemetry_delta,
)
from ..obs.trace import Tracer
from ..report import ContainmentResult, Verdict
from .engine import _OPTION_UNIVERSE, check_containment

__all__ = [
    "BatchItem",
    "BatchResult",
    "ContainmentExecutor",
    "check_containment_many",
    "error_result",
    "DEFAULT_WORKERS",
    "BACKENDS",
]

#: Supported worker-pool backends.
BACKENDS = ("thread", "process")

#: Default pool width: the machine's cores, capped — containment checks
#: are CPU-bound, so oversubscribing past the core count only adds
#: scheduling noise (floor of 1 worker keeps 1-core boxes working).
DEFAULT_WORKERS = max(1, min(8, os.cpu_count() or 1))

_BATCH_ITEMS = _metric_counter("batch.items")
_BATCH_ERRORS = _metric_counter("batch.errors")
_BATCH_DEGRADED = _metric_counter("batch.degraded")
_BATCH_WALL_MS = _metric_histogram("batch.wall_ms")
_BATCH_WORKERS = _metric_gauge("batch.workers")
_BATCH_UTILIZATION = _metric_gauge("batch.worker_utilization")
_BATCH_POOL_REBUILDS = _metric_counter("batch.pool_rebuilds")

#: Attempts per item on the process backend: the original submission
#: plus one quarantined retry after a pool break.  An item that breaks
#: the pool twice is the poison and resolves to ``ERROR``.
_MAX_ATTEMPTS = 2


@dataclasses.dataclass(frozen=True)
class BatchItem:
    """One pair's outcome within a batch.

    Attributes:
        index: position of the pair in the input sequence.
        result: the :class:`ContainmentResult` — from the engine, or a
            synthesized ``ERROR`` / pool-degraded ``INCONCLUSIVE``.
        wall_ms: wall-clock the item spent inside its worker
            (0.0 for items the pool deadline degraded before starting).
        worker: label of the worker that ran the item (thread name or
            ``pid:<n>``), or ``None`` for degraded items.
        request_id: request-scoped telemetry identity (the serving
            layer assigns or propagates one; plain batches leave None).
        telemetry: repatriated worker-side accounting — the delta of
            the worker process's metrics registry and cache counters
            over exactly this item (process backend only; the thread
            backend mutates the parent registry directly and leaves
            None).  The executor merges it into the parent exactly
            once at completion; it stays on the item afterwards for
            inspection but is *not* part of the NDJSON wire payload.
    """

    index: int
    result: ContainmentResult
    wall_ms: float
    worker: str | None
    request_id: str | None = None
    telemetry: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary — the NDJSON result-line payload."""
        out: dict[str, Any] = {
            "index": self.index,
            "verdict": self.result.verdict.value,
            "method": self.result.method,
            "holds": self.result.holds,
            "bound": self.result.bound,
            "wall_ms": round(self.wall_ms, 3),
            "worker": self.worker,
        }
        if self.request_id is not None:
            out["request_id"] = self.request_id
        details = dict(self.result.details)
        if "error" in details:
            out["error"] = details["error"]
        if "budget" in details:
            out["budget"] = details["budget"]
        if "kernel" in details:
            out["kernel"] = details["kernel"]
        if "admission" in details:
            out["admission"] = details["admission"]
        return out


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """The whole batch: per-item outcomes (input order) plus pool facts."""

    items: tuple[BatchItem, ...]
    wall_ms: float
    workers: int
    backend: str

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[BatchItem]:
        return iter(self.items)

    @property
    def results(self) -> tuple[ContainmentResult, ...]:
        """Just the :class:`ContainmentResult` objects, input order."""
        return tuple(item.result for item in self.items)

    @property
    def errors(self) -> tuple[BatchItem, ...]:
        """Items whose check raised (isolated as ``ERROR`` verdicts)."""
        return tuple(
            item for item in self.items if item.result.verdict is Verdict.ERROR
        )

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's worker-time spent inside checks.

        Always a finite value in ``[0, 1]``: zero-item and instant
        batches (``wall_ms`` can be 0.0 on coarse clocks even when work
        ran) report 0.0 rather than dividing by zero, and measurement
        jitter that puts the summed per-item time above the pool's
        worker-seconds is clamped to 1.0.
        """
        if not self.items or self.wall_ms <= 0 or self.workers <= 0:
            return 0.0
        busy = sum(max(0.0, item.wall_ms) for item in self.items)
        return min(1.0, max(0.0, busy / (self.workers * self.wall_ms)))

    @property
    def utilization(self) -> float:
        """Alias for :attr:`worker_utilization` (historical name)."""
        return self.worker_utilization

    def counts(self) -> dict[str, int]:
        """Verdict histogram, e.g. ``{"holds": 12, "refuted": 8}``."""
        out: dict[str, int] = {}
        for item in self.items:
            name = item.result.verdict.value
            out[name] = out.get(name, 0) + 1
        return out

    def describe(self) -> str:
        """One-line human summary (the CLI's stderr report)."""
        counts = ", ".join(
            f"{name}={count}" for name, count in sorted(self.counts().items())
        )
        return (
            f"{len(self.items)} items in {self.wall_ms:.1f} ms "
            f"({self.backend} x{self.workers}, "
            f"utilization {self.worker_utilization:.0%}): {counts}"
        )


def error_result(
    index: int, exc: BaseException, kernel: str = "auto"
) -> ContainmentResult:
    """Failure isolation: the structured ERROR verdict for one item."""
    return ContainmentResult(
        Verdict.ERROR,
        "batch-isolated",
        details={
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
                "index": index,
            },
            "budget": {"spend": {}},
            "cache": "bypass",
            "kernel": {"requested": kernel, "selected": None},
        },
    )


def _degraded_result(
    pool_deadline_ms: float, elapsed_ms: float, kernel: str = "auto"
) -> ContainmentResult:
    """The INCONCLUSIVE verdict for an item the pool deadline starved."""
    return ContainmentResult(
        Verdict.INCONCLUSIVE,
        "batch-pool-deadline",
        details={
            "budget": {
                "exhausted": "pool_deadline",
                "spent": round(elapsed_ms, 3),
                "limit": pool_deadline_ms,
                "spend": {},
            },
            "cache": "bypass",
            "kernel": {"requested": kernel, "selected": None},
        },
    )


def _expired_start_result(
    late_ms: float, start_deadline_ms: float, kernel: str = "auto"
) -> ContainmentResult:
    """Default degraded verdict for an item whose start deadline passed.

    Same honest-accounting shape as the pool-deadline degradation; the
    serving layer substitutes its own factory to add admission details.
    """
    return ContainmentResult(
        Verdict.INCONCLUSIVE,
        "start-deadline",
        details={
            "budget": {
                "exhausted": "start_deadline",
                "spent": round(late_ms, 3),
                "limit": round(start_deadline_ms, 3),
                "spend": {},
            },
            "cache": "bypass",
            "kernel": {"requested": kernel, "selected": None},
        },
    )


def _warm_start(options: dict[str, Any]) -> None:
    """Process-pool initializer: pay the cold-start cost at spin-up.

    Runs once in every worker process before it accepts items.  Two
    jobs, both best-effort: importing :func:`check_containment`'s
    dispatch path pulls every tower module into the worker (the
    fork-server preloads this module, so under ``forkserver`` the
    import is inherited and under ``spawn`` front-loaded here), and a
    pair of tiny checks seeds the regex→NFA,
    determinize, and containment caches so the first real item starts
    against warm compilation machinery.  The warm pair is deliberately
    obscure (``a b a b`` vs ``(a b)*``) so it cannot collide with a
    real workload's cache keys and skew repatriated stats.  Failures
    are swallowed: warm start is an optimization, and a worker that
    cannot warm still isolates real item failures normally.
    """
    from ..automata.regex import parse_regex
    from ..rpq.rpq import RPQ

    try:
        q1 = RPQ(parse_regex("a b a b"))
        q2 = RPQ(parse_regex("(a b)*"))
        check_containment(q1, q2, **options)
        check_containment(q2, q1, **options)
    except Exception:
        pass


def _run_one_item(
    index: int,
    q1: Any,
    q2: Any,
    budget: Budget | str | None,
    trace: bool,
    options: dict[str, Any],
    start_deadline: float | None = None,
    expired_result: Any = None,
    request_id: str | None = None,
    collect_telemetry: bool = False,
) -> BatchItem:
    """One worker-side check: isolate failures, label the worker.

    Module-level (not a closure) so the process backend can pickle it.
    Each traced item gets its *own* Tracer — the tracer contract is one
    tracer per check, which is what keeps concurrent span trees from
    interleaving.

    ``start_deadline`` is an absolute ``time.monotonic`` instant: if the
    pool dequeues the item after it, the check never starts and the item
    degrades via ``expired_result(late_ms)`` (default: an
    ``INCONCLUSIVE`` with method ``"start-deadline"``).  This is the
    admission-control hook of the serving layer — queue wait counts
    against a request's deadline even though the engine's own
    ``BudgetMeter`` clock only starts when the check does.

    ``expired_result`` may be any ``(late_ms) -> ContainmentResult``
    callable on the thread backend; on the process backend it must
    pickle (the serving layer's spec is a frozen dataclass —
    :class:`repro.serve.admission.DeadlineShedSpec`).

    ``collect_telemetry`` (process backend) brackets the check with a
    metrics/cache baseline-and-delta pair so the parent can repatriate
    this worker's accounting; the thread backend shares the parent
    registry and skips it.
    """
    start = time.monotonic()
    if start_deadline is not None and start > start_deadline:
        late_ms = (start - start_deadline) * 1000.0
        if expired_result is not None:
            result = expired_result(late_ms)
        else:
            result = _expired_start_result(
                late_ms, start_deadline, kernel=options.get("kernel", "auto")
            )
        return BatchItem(index, result, 0.0, None, request_id)
    worker = f"pid:{os.getpid()}/{threading.current_thread().name}"
    baseline = worker_telemetry_baseline() if collect_telemetry else None
    try:
        if trace:
            result = check_containment(
                q1, q2, budget=budget, trace=Tracer(), **options
            )
        else:
            result = check_containment(q1, q2, budget=budget, **options)
    except Exception as exc:
        result = error_result(index, exc, kernel=options.get("kernel", "auto"))
    wall_ms = (time.monotonic() - start) * 1000.0
    telemetry = (
        worker_telemetry_delta(baseline) if baseline is not None else None
    )
    return BatchItem(index, result, wall_ms, worker, request_id, telemetry)


def _validate_pool_args(
    workers: int, backend: str, options: dict[str, Any]
) -> None:
    """Eager caller-error checks shared by the executor and the batch."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; use one of {BACKENDS}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, not {workers}")
    unknown = sorted(set(options) - _OPTION_UNIVERSE)
    if unknown:
        # Fail fast in the caller's frame, exactly as the sequential
        # loop would on its first item — a typo is not an item failure.
        raise TypeError(
            f"unknown option(s) {', '.join(map(repr, unknown))}; "
            f"valid options are {', '.join(sorted(_OPTION_UNIVERSE))}"
        )
    if "kernel" in options:
        # Same fail-fast contract: a bad kernel value is a caller typo,
        # not a per-item failure to isolate as an ERROR verdict.
        resolve_kernel(options["kernel"])


class _ItemFuture(concurrent.futures.Future):
    """The future :meth:`ContainmentExecutor.submit` hands back.

    A thin outer future decoupled from any one pool future, so the
    executor can replace the pool (crash recovery) without invalidating
    what callers hold.  ``cancel()`` delegates to the live inner
    future: it succeeds only when the underlying item never started,
    preserving the pool-deadline contract ("only unstarted items
    degrade") across rebuilds.  An item queued for a quarantined retry
    counts as started (its original pool future is already done), so it
    is not cancellable.
    """

    def __init__(self) -> None:
        super().__init__()
        self.inner: concurrent.futures.Future | None = None

    def cancel(self) -> bool:  # noqa: D102 — contract in class docstring
        inner = self.inner
        if inner is not None and not inner.cancel():
            return False
        return super().cancel()


class ContainmentExecutor:
    """A persistent worker pool with the batch layer's per-item semantics.

    The reusable single-pair submission path: where
    :func:`check_containment_many` spins a pool up and down around one
    batch, a ``ContainmentExecutor`` stays alive across many
    independent submissions — the serving layer (:mod:`repro.serve`)
    keeps one for the whole process and feeds it one wire request at a
    time.  Every :meth:`submit` returns a
    :class:`concurrent.futures.Future` resolving to a
    :class:`BatchItem` with exactly the batch contract: failures are
    isolated as ``ERROR`` verdicts (including submit-time failures,
    e.g. an unpicklable query on the process backend), each traced item
    owns its tracer, and budgets bound items cooperatively.

    On the process backend the executor is additionally the
    crash-isolation and telemetry boundary (module docstring): worker
    processes warm-start via a pool initializer, a broken pool is
    rebuilt and its casualties retried in quarantine (serially, one at
    a time, so a repeat offender is unambiguously the poison and only
    *it* resolves to ``ERROR``), and each completed item's repatriated
    worker telemetry is merged into the parent registry exactly once,
    here.

    Caller errors (bad backend/workers, unknown options, bad kernel)
    still raise eagerly from the constructor, never per item.
    """

    def __init__(
        self,
        *,
        workers: int = DEFAULT_WORKERS,
        backend: str = "thread",
        **options: Any,
    ) -> None:
        _validate_pool_args(workers, backend, options)
        self.workers = workers
        self.backend = backend
        self._options = dict(options)
        self._lock = threading.Lock()
        self._generation = 0
        self._closed = False
        self._retry_queue: _queue.SimpleQueue | None = None
        self._retry_thread: threading.Thread | None = None
        self._pool = self._make_pool()

    @staticmethod
    def _process_context() -> Any:
        """The multiprocessing context for worker pools: never ``fork``.

        A forked worker inherits every open file descriptor — including
        a live server's accepted connection sockets, so the peer never
        sees EOF while a worker holds the duplicate — and forking a
        multi-threaded parent (the asyncio server, the retry thread) can
        deadlock the child.  ``forkserver`` forks from a clean helper
        process instead (preloaded with this module so worker start-up
        does not pay the full import), falling back to ``spawn`` where
        the fork server is unavailable.
        """
        if "forkserver" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("forkserver")
            try:
                context.set_forkserver_preload(["repro.core.batch"])
            except Exception:  # pragma: no cover - preload is best-effort
                pass
            return context
        return multiprocessing.get_context("spawn")

    def _make_pool(self) -> concurrent.futures.Executor:
        if self.backend == "process":
            # Mutable instrumentation objects (``stats=``) bypass the
            # caches anyway and may not pickle; keep them out of the
            # initializer arguments.
            warm_options = {
                k: v for k, v in self._options.items() if k != "stats"
            }
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._process_context(),
                initializer=_warm_start,
                initargs=(warm_options,),
            )
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="batch-worker"
        )

    def submit(
        self,
        q1: Any,
        q2: Any,
        *,
        index: int = 0,
        budget: Budget | str | None = None,
        trace: bool = False,
        start_deadline: float | None = None,
        expired_result: Any = None,
        request_id: str | None = None,
        options: dict[str, Any] | None = None,
    ) -> "concurrent.futures.Future[BatchItem]":
        """Submit one pair; the future resolves to its :class:`BatchItem`.

        ``start_deadline`` / ``expired_result`` are the admission hook
        of :func:`_run_one_item`; on the process backend
        ``expired_result`` must pickle (a frozen-dataclass spec like
        :class:`repro.serve.admission.DeadlineShedSpec` — plain
        callables remain fine on the thread backend).  ``request_id``
        is carried through verbatim onto the resulting
        :class:`BatchItem` (including submit-time error items) so the
        serving layer's telemetry can correlate it.  ``options``
        overrides the executor's defaults for this submission only
        (same option universe, validated eagerly — wire-level
        validation is the caller's job, so a raise here is a caller
        bug, not an item failure).  A submit-time exception comes back
        as an already-resolved future holding the item's ``ERROR``
        verdict, so callers never need a second error path; a worker
        crash mid-item likewise resolves (after one quarantined retry)
        instead of raising.
        """
        merged = dict(self._options)
        if options:
            _validate_pool_args(self.workers, self.backend, dict(options))
            merged.update(options)
        args = (
            index,
            q1,
            q2,
            budget,
            trace,
            merged,
            start_deadline,
            expired_result,
            request_id,
            self.backend == "process",
        )
        outer = _ItemFuture()
        self._dispatch(args, outer, attempt=1)
        return outer

    # --- dispatch / recovery internals -----------------------------------

    def _dispatch(self, args: tuple, outer: _ItemFuture, attempt: int) -> None:
        """Submit *args* to the current pool, wiring completion to *outer*."""
        with self._lock:
            pool = self._pool
            generation = self._generation
        try:
            inner = pool.submit(_run_one_item, *args)
        except concurrent.futures.BrokenExecutor as exc:
            # The pool broke between submissions (a previous item's
            # worker died).  Rebuild once and resubmit; a second break
            # resolves to an isolated ERROR rather than looping.
            if attempt >= _MAX_ATTEMPTS or self._closed:
                self._resolve_error(outer, args, exc)
                return
            self._rebuild(generation)
            self._dispatch(args, outer, attempt + 1)
            return
        except Exception as exc:  # e.g. pool shut down
            self._resolve_error(outer, args, exc)
            return
        outer.inner = inner
        inner.add_done_callback(
            lambda f: self._on_done(f, args, outer, attempt, generation)
        )

    def _on_done(
        self,
        inner: concurrent.futures.Future,
        args: tuple,
        outer: _ItemFuture,
        attempt: int,
        generation: int,
    ) -> None:
        """Completion fan-in (runs on the pool's management/worker thread).

        Must never block: a broken-pool casualty is handed to the retry
        thread instead of being retried here.
        """
        if inner.cancelled():
            if not outer.cancelled():
                outer.cancel()
            return
        exc = inner.exception()
        if exc is None:
            self._resolve_item(outer, inner.result())
            return
        if (
            isinstance(exc, concurrent.futures.BrokenExecutor)
            and attempt < _MAX_ATTEMPTS
            and not self._closed
        ):
            # This future is a casualty of *some* worker crash — maybe
            # its own item, maybe an innocent bystander's.  Rebuild the
            # pool and quarantine-retry to find out.
            self._rebuild(generation)
            self._enqueue_retry(args, outer, attempt + 1)
            return
        self._resolve_error(outer, args, exc)

    def _rebuild(self, broken_generation: int) -> None:
        """Replace the broken pool (once per break, however many see it)."""
        with self._lock:
            if self._closed or self._generation != broken_generation:
                return
            broken = self._pool
            self._generation += 1
            self._pool = self._make_pool()
        _BATCH_POOL_REBUILDS.inc()
        broken.shutdown(wait=False)

    def _enqueue_retry(self, args: tuple, outer: _ItemFuture, attempt: int) -> None:
        with self._lock:
            if self._retry_thread is None:
                self._retry_queue = _queue.SimpleQueue()
                self._retry_thread = threading.Thread(
                    target=self._retry_loop,
                    name="batch-quarantine-retry",
                    daemon=True,
                )
                self._retry_thread.start()
            retry_queue = self._retry_queue
        assert retry_queue is not None
        retry_queue.put((args, outer, attempt))

    def _retry_loop(self) -> None:
        assert self._retry_queue is not None
        while True:
            entry = self._retry_queue.get()
            if entry is None:
                return
            self._retry_one(*entry)

    def _retry_one(self, args: tuple, outer: _ItemFuture, attempt: int) -> None:
        """Quarantined re-run: one retry in flight at a time.

        Serialization is the blame mechanism — if the pool breaks again
        while a quarantined item runs alone, that item *is* the poison
        and resolves to ``ERROR``; innocent casualties of someone
        else's crash recompute successfully.
        """
        with self._lock:
            pool = self._pool
            generation = self._generation
        try:
            inner = pool.submit(_run_one_item, *args)
        except Exception as exc:
            self._resolve_error(outer, args, exc)
            return
        outer.inner = inner
        try:
            item = inner.result()
        except concurrent.futures.BrokenExecutor as exc:
            # Crashed again, alone in the pool: this item is the poison.
            self._rebuild(generation)
            self._resolve_error(outer, args, exc)
        except concurrent.futures.CancelledError as exc:
            # Shutdown cancelled the retry under us; still answer.
            self._resolve_error(outer, args, exc)
        except Exception as exc:
            self._resolve_error(outer, args, exc)
        else:
            self._resolve_item(outer, item)

    def _resolve_item(self, outer: _ItemFuture, item: BatchItem) -> None:
        if item.telemetry is not None:
            # The single merge point for repatriated worker telemetry:
            # every completion path funnels through here exactly once.
            merge_worker_telemetry(item.telemetry)
        if not outer.cancelled():
            try:
                outer.set_result(item)
            except concurrent.futures.InvalidStateError:
                pass

    def _resolve_error(
        self, outer: _ItemFuture, args: tuple, exc: BaseException
    ) -> None:
        index, request_id = args[0], args[8]
        kernel = args[5].get("kernel", "auto")
        item = BatchItem(
            index, error_result(index, exc, kernel=kernel), 0.0, None, request_id
        )
        if not outer.cancelled():
            try:
                outer.set_result(item)
            except concurrent.futures.InvalidStateError:
                pass

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        with self._lock:
            self._closed = True
            retry_queue = self._retry_queue
            retry_thread = self._retry_thread
            pool = self._pool
        if retry_queue is not None:
            retry_queue.put(None)
        pool.shutdown(wait=wait, cancel_futures=cancel_futures)
        if retry_thread is not None and wait:
            # Bounded: by now the pool has drained, so any in-flight
            # quarantined retry has already resolved its item.
            retry_thread.join(timeout=10.0)

    def __enter__(self) -> "ContainmentExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=True, cancel_futures=True)


def check_containment_many(
    pairs: Iterable[tuple[Any, Any]],
    *,
    workers: int = DEFAULT_WORKERS,
    backend: str = "thread",
    budget: Budget | str | None = None,
    trace: bool = False,
    pool_deadline_ms: float | None = None,
    **options: Any,
) -> BatchResult:
    """Check ``Q1 ⊆ Q2`` for every pair concurrently; see module docstring.

    Args:
        pairs: an iterable of ``(q1, q2)`` query pairs (materialized up
            front; results preserve this order).
        workers: pool width (default: core count, capped at 8).
        backend: ``"thread"`` or ``"process"`` (see module docstring
            for the sharing/parallelism trade-off).
        budget: per-item :class:`Budget` (or ``"auto"``), forwarded to
            every check — the cooperative bound on *individual* items.
        trace: record a span tree per item into its
            ``details["trace"]`` (one tracer per item, never shared).
        pool_deadline_ms: wall-clock bound on the whole batch; items
            not started when it expires come back ``INCONCLUSIVE``
            (method ``"batch-pool-deadline"``).
        **options: forwarded to every check (same surface as
            :func:`~repro.core.engine.check_containment`; unknown names
            raise TypeError from the first item that runs).

    Returns:
        A :class:`BatchResult` with one :class:`BatchItem` per input
        pair, in input order.
    """
    _validate_pool_args(workers, backend, options)
    if pool_deadline_ms is not None and pool_deadline_ms < 0:
        raise ValueError("pool_deadline_ms must be >= 0")
    items = list(pairs)
    start = time.monotonic()
    slots: list[BatchItem | None] = [None] * len(items)
    if items:
        with ContainmentExecutor(
            workers=workers, backend=backend, **options
        ) as executor:
            futures: dict["concurrent.futures.Future[BatchItem]", int] = {
                executor.submit(
                    q1, q2, index=index, budget=budget, trace=trace
                ): index
                for index, (q1, q2) in enumerate(items)
            }
            if pool_deadline_ms is not None:
                remaining = pool_deadline_ms / 1000.0 - (time.monotonic() - start)
                concurrent.futures.wait(futures, timeout=max(0.0, remaining))
                for future, index in futures.items():
                    if future.cancel():
                        # Never started: degrade, with honest accounting.
                        elapsed_ms = (time.monotonic() - start) * 1000.0
                        slots[index] = BatchItem(
                            index,
                            _degraded_result(
                                pool_deadline_ms,
                                elapsed_ms,
                                kernel=options.get("kernel", "auto"),
                            ),
                            0.0,
                            None,
                        )
            for future, index in futures.items():
                if slots[index] is not None:
                    continue  # degraded above
                try:
                    slots[index] = future.result()
                except Exception as exc:
                    # Worker-side infrastructure failure the in-worker
                    # isolation could not catch (e.g. a result that fails
                    # to pickle back, or a crashed worker process).
                    slots[index] = BatchItem(
                        index,
                        error_result(
                            index, exc, kernel=options.get("kernel", "auto")
                        ),
                        0.0,
                        None,
                    )

    # One exit path for loaded, degraded, and zero-item batches alike:
    # wall_ms is always the measured elapsed time (a zero-item batch is
    # an *instant* batch, not an unmeasured one) and the batch metrics
    # are recorded uniformly, so utilization gauges never go stale.
    wall_ms = (time.monotonic() - start) * 1000.0
    batch = BatchResult(
        items=tuple(slot for slot in slots if slot is not None),
        wall_ms=wall_ms,
        workers=workers,
        backend=backend,
    )
    _BATCH_ITEMS.inc(len(batch.items))
    _BATCH_ERRORS.inc(len(batch.errors))
    _BATCH_DEGRADED.inc(
        sum(1 for item in batch.items if item.result.method == "batch-pool-deadline")
    )
    _BATCH_WALL_MS.observe(wall_ms)
    _BATCH_WORKERS.set(workers)
    _BATCH_UTILIZATION.set(round(batch.worker_utilization, 4))
    return batch


def sequential_baseline(
    pairs: Sequence[tuple[Any, Any]],
    budget: Budget | str | None = None,
    **options: Any,
) -> list[ContainmentResult]:
    """The plain sequential loop the batch must agree with, verbatim.

    Exists so differential tests and the scaling benchmark compare
    against one canonical implementation instead of re-spelling it.
    """
    return [
        check_containment(q1, q2, budget=budget, **options) for q1, q2 in pairs
    ]
