"""Concurrent batch containment: the engine's thread-safe front door.

Containment workloads are embarrassingly parallel across query pairs —
each ``check(Q1, Q2)`` is an independent run of the per-pair automata
products of the Lemma 1 / Theorem 5 pipelines — so the batch layer is a
worker pool in front of :func:`repro.core.engine.check_containment`:

    >>> from repro.core.batch import check_containment_many
    >>> batch = check_containment_many(pairs, workers=4)
    >>> [item.result.verdict.value for item in batch.items]

Semantics (DESIGN.md "Concurrency architecture"):

- **Order.** Results come back in input order regardless of completion
  order; ``batch.items[i]`` always answers ``pairs[i]``.
- **Determinism.** Verdicts are identical to the sequential loop
  ``[check_containment(q1, q2, ...) for q1, q2 in pairs]`` at any
  worker count and on either backend — the engine's procedures are
  deterministic and all shared substrate (caches, metrics) is
  thread-safe with single-flight computation, so concurrency changes
  wall-clock, never answers.
- **Failure isolation.** One item's exception becomes a
  ``Verdict.ERROR`` result for that item, with the exception type,
  message, and traceback in ``details["error"]`` — never a batch
  abort.  Budget exhaustion is *not* an error: it degrades inside the
  engine exactly as in sequential use.
- **Pool deadline.** ``pool_deadline_ms`` bounds the whole batch:
  when it expires, items that have not started are degraded to
  ``Verdict.INCONCLUSIVE`` with ``details["budget"]`` recording the
  pool deadline as the exhausted resource.  Items already running
  finish (their own per-item ``budget`` bounds them cooperatively —
  pass one if individual checks may be long).
- **Tracing.** ``trace=True`` gives every *item* its own
  :class:`repro.obs.trace.Tracer` (tracers are single-check objects by
  contract), so concurrent span trees never interleave; each item's
  tree is in its result's ``details["trace"]``.

Backends:

- ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`.
  Workers share the process-wide caches (a pair computed by one worker
  is a hit for every other) and the metrics registry.  Under a GIL
  build the speedup on pure-Python checks is bounded; it is the right
  backend when checks hit caches, block on I/O, or run on free-threaded
  builds.
- ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`.
  True parallelism on multi-core machines; queries and results cross
  the process boundary by pickling, and each worker process has its
  *own* caches and metrics (child-side counters are not merged back —
  the parent still records the batch-level metrics below).

Batch metrics (parent process): ``batch.items`` (counter),
``batch.wall_ms`` (histogram), ``batch.workers`` and
``batch.worker_utilization`` (gauges; utilization is the mean fraction
of the pool's worker-seconds spent inside checks).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import threading
import time
import traceback
from typing import Any, Iterable, Iterator, Sequence

from ..automata.antichain import resolve_kernel
from ..budget import Budget
from ..obs.metrics import counter as _metric_counter, gauge as _metric_gauge, \
    histogram as _metric_histogram
from ..obs.trace import Tracer
from ..report import ContainmentResult, Verdict
from .engine import _OPTION_UNIVERSE, check_containment

__all__ = [
    "BatchItem",
    "BatchResult",
    "check_containment_many",
    "DEFAULT_WORKERS",
    "BACKENDS",
]

#: Supported worker-pool backends.
BACKENDS = ("thread", "process")

#: Default pool width: the machine's cores, capped — containment checks
#: are CPU-bound, so oversubscribing past the core count only adds
#: scheduling noise (floor of 1 worker keeps 1-core boxes working).
DEFAULT_WORKERS = max(1, min(8, os.cpu_count() or 1))

_BATCH_ITEMS = _metric_counter("batch.items")
_BATCH_ERRORS = _metric_counter("batch.errors")
_BATCH_DEGRADED = _metric_counter("batch.degraded")
_BATCH_WALL_MS = _metric_histogram("batch.wall_ms")
_BATCH_WORKERS = _metric_gauge("batch.workers")
_BATCH_UTILIZATION = _metric_gauge("batch.worker_utilization")


@dataclasses.dataclass(frozen=True)
class BatchItem:
    """One pair's outcome within a batch.

    Attributes:
        index: position of the pair in the input sequence.
        result: the :class:`ContainmentResult` — from the engine, or a
            synthesized ``ERROR`` / pool-degraded ``INCONCLUSIVE``.
        wall_ms: wall-clock the item spent inside its worker
            (0.0 for items the pool deadline degraded before starting).
        worker: label of the worker that ran the item (thread name or
            ``pid:<n>``), or ``None`` for degraded items.
    """

    index: int
    result: ContainmentResult
    wall_ms: float
    worker: str | None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary — the NDJSON result-line payload."""
        out: dict[str, Any] = {
            "index": self.index,
            "verdict": self.result.verdict.value,
            "method": self.result.method,
            "holds": self.result.holds,
            "bound": self.result.bound,
            "wall_ms": round(self.wall_ms, 3),
            "worker": self.worker,
        }
        details = dict(self.result.details)
        if "error" in details:
            out["error"] = details["error"]
        if "budget" in details:
            out["budget"] = details["budget"]
        if "kernel" in details:
            out["kernel"] = details["kernel"]
        return out


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """The whole batch: per-item outcomes (input order) plus pool facts."""

    items: tuple[BatchItem, ...]
    wall_ms: float
    workers: int
    backend: str

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[BatchItem]:
        return iter(self.items)

    @property
    def results(self) -> tuple[ContainmentResult, ...]:
        """Just the :class:`ContainmentResult` objects, input order."""
        return tuple(item.result for item in self.items)

    @property
    def errors(self) -> tuple[BatchItem, ...]:
        """Items whose check raised (isolated as ``ERROR`` verdicts)."""
        return tuple(
            item for item in self.items if item.result.verdict is Verdict.ERROR
        )

    @property
    def utilization(self) -> float:
        """Fraction of the pool's worker-time spent inside checks."""
        if not self.items or self.wall_ms <= 0 or self.workers <= 0:
            return 0.0
        busy = sum(item.wall_ms for item in self.items)
        return min(1.0, busy / (self.workers * self.wall_ms))

    def counts(self) -> dict[str, int]:
        """Verdict histogram, e.g. ``{"holds": 12, "refuted": 8}``."""
        out: dict[str, int] = {}
        for item in self.items:
            name = item.result.verdict.value
            out[name] = out.get(name, 0) + 1
        return out

    def describe(self) -> str:
        """One-line human summary (the CLI's stderr report)."""
        counts = ", ".join(
            f"{name}={count}" for name, count in sorted(self.counts().items())
        )
        return (
            f"{len(self.items)} items in {self.wall_ms:.1f} ms "
            f"({self.backend} x{self.workers}, "
            f"utilization {self.utilization:.0%}): {counts}"
        )


def _error_result(
    index: int, exc: BaseException, kernel: str = "auto"
) -> ContainmentResult:
    """Failure isolation: the structured ERROR verdict for one item."""
    return ContainmentResult(
        Verdict.ERROR,
        "batch-isolated",
        details={
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
                "index": index,
            },
            "budget": {"spend": {}},
            "cache": "bypass",
            "kernel": {"requested": kernel, "selected": None},
        },
    )


def _degraded_result(
    pool_deadline_ms: float, elapsed_ms: float, kernel: str = "auto"
) -> ContainmentResult:
    """The INCONCLUSIVE verdict for an item the pool deadline starved."""
    return ContainmentResult(
        Verdict.INCONCLUSIVE,
        "batch-pool-deadline",
        details={
            "budget": {
                "exhausted": "pool_deadline",
                "spent": round(elapsed_ms, 3),
                "limit": pool_deadline_ms,
                "spend": {},
            },
            "cache": "bypass",
            "kernel": {"requested": kernel, "selected": None},
        },
    )


def _run_one(
    index: int,
    q1: Any,
    q2: Any,
    budget: Budget | None,
    trace: bool,
    options: dict[str, Any],
) -> tuple[int, ContainmentResult, float, str]:
    """One worker-side check: isolate failures, label the worker.

    Module-level (not a closure) so the process backend can pickle it.
    Each traced item gets its *own* Tracer — the tracer contract is one
    tracer per check, which is what keeps concurrent span trees from
    interleaving.
    """
    worker = f"pid:{os.getpid()}/{threading.current_thread().name}"
    start = time.monotonic()
    try:
        if trace:
            result = check_containment(
                q1, q2, budget=budget, trace=Tracer(), **options
            )
        else:
            result = check_containment(q1, q2, budget=budget, **options)
    except Exception as exc:
        result = _error_result(index, exc, kernel=options.get("kernel", "auto"))
    wall_ms = (time.monotonic() - start) * 1000.0
    return index, result, wall_ms, worker


def check_containment_many(
    pairs: Iterable[tuple[Any, Any]],
    *,
    workers: int = DEFAULT_WORKERS,
    backend: str = "thread",
    budget: Budget | str | None = None,
    trace: bool = False,
    pool_deadline_ms: float | None = None,
    **options: Any,
) -> BatchResult:
    """Check ``Q1 ⊆ Q2`` for every pair concurrently; see module docstring.

    Args:
        pairs: an iterable of ``(q1, q2)`` query pairs (materialized up
            front; results preserve this order).
        workers: pool width (default: core count, capped at 8).
        backend: ``"thread"`` or ``"process"`` (see module docstring
            for the sharing/parallelism trade-off).
        budget: per-item :class:`Budget` (or ``"auto"``), forwarded to
            every check — the cooperative bound on *individual* items.
        trace: record a span tree per item into its
            ``details["trace"]`` (one tracer per item, never shared).
        pool_deadline_ms: wall-clock bound on the whole batch; items
            not started when it expires come back ``INCONCLUSIVE``
            (method ``"batch-pool-deadline"``).
        **options: forwarded to every check (same surface as
            :func:`~repro.core.engine.check_containment`; unknown names
            raise TypeError from the first item that runs).

    Returns:
        A :class:`BatchResult` with one :class:`BatchItem` per input
        pair, in input order.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; use one of {BACKENDS}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, not {workers}")
    if pool_deadline_ms is not None and pool_deadline_ms < 0:
        raise ValueError("pool_deadline_ms must be >= 0")
    unknown = sorted(set(options) - _OPTION_UNIVERSE)
    if unknown:
        # Fail fast in the caller's frame, exactly as the sequential
        # loop would on its first item — a typo is not an item failure.
        raise TypeError(
            f"unknown option(s) {', '.join(map(repr, unknown))}; "
            f"valid options are {', '.join(sorted(_OPTION_UNIVERSE))}"
        )
    if "kernel" in options:
        # Same fail-fast contract: a bad kernel value is a caller typo,
        # not a per-item failure to isolate as an ERROR verdict.
        resolve_kernel(options["kernel"])
    items = list(pairs)
    start = time.monotonic()
    if not items:
        return BatchResult(items=(), wall_ms=0.0, workers=workers, backend=backend)

    if backend == "process":
        executor: concurrent.futures.Executor = (
            concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        )
    else:
        executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="batch-worker"
        )

    slots: list[BatchItem | None] = [None] * len(items)
    try:
        futures: dict[concurrent.futures.Future, int] = {}
        for index, (q1, q2) in enumerate(items):
            try:
                future = executor.submit(
                    _run_one, index, q1, q2, budget, trace, dict(options)
                )
            except Exception as exc:  # e.g. unpicklable query at submit
                slots[index] = BatchItem(
                    index,
                    _error_result(index, exc, kernel=options.get("kernel", "auto")),
                    0.0,
                    None,
                )
                continue
            futures[future] = index
        if pool_deadline_ms is not None:
            remaining = pool_deadline_ms / 1000.0 - (time.monotonic() - start)
            concurrent.futures.wait(futures, timeout=max(0.0, remaining))
            for future, index in futures.items():
                if future.cancel():
                    # Never started: degrade, with honest accounting.
                    elapsed_ms = (time.monotonic() - start) * 1000.0
                    slots[index] = BatchItem(
                        index,
                        _degraded_result(
                            pool_deadline_ms,
                            elapsed_ms,
                            kernel=options.get("kernel", "auto"),
                        ),
                        0.0,
                        None,
                    )
        for future, index in futures.items():
            if slots[index] is not None:
                continue  # degraded above
            try:
                item_index, result, wall_ms, worker = future.result()
            except Exception as exc:
                # Worker-side infrastructure failure the in-worker
                # isolation could not catch (e.g. a result that fails
                # to pickle back, or a crashed worker process).
                slots[index] = BatchItem(
                    index,
                    _error_result(index, exc, kernel=options.get("kernel", "auto")),
                    0.0,
                    None,
                )
                continue
            slots[index] = BatchItem(item_index, result, wall_ms, worker)
    finally:
        executor.shutdown(wait=True, cancel_futures=True)

    wall_ms = (time.monotonic() - start) * 1000.0
    batch = BatchResult(
        items=tuple(slot for slot in slots if slot is not None),
        wall_ms=wall_ms,
        workers=workers,
        backend=backend,
    )
    _BATCH_ITEMS.inc(len(batch.items))
    _BATCH_ERRORS.inc(len(batch.errors))
    _BATCH_DEGRADED.inc(
        sum(1 for item in batch.items if item.result.method == "batch-pool-deadline")
    )
    _BATCH_WALL_MS.observe(wall_ms)
    _BATCH_WORKERS.set(workers)
    _BATCH_UTILIZATION.set(round(batch.utilization, 4))
    return batch


def sequential_baseline(
    pairs: Sequence[tuple[Any, Any]],
    budget: Budget | str | None = None,
    **options: Any,
) -> list[ContainmentResult]:
    """The plain sequential loop the batch must agree with, verbatim.

    Exists so differential tests and the scaling benchmark compare
    against one canonical implementation instead of re-spelling it.
    """
    return [
        check_containment(q1, q2, budget=budget, **options) for q1, q2 in pairs
    ]
