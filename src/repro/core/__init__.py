"""The paper's contribution, unified: classification of queries into the
RPQ ⊂ 2RPQ ⊂ UC2RPQ ⊂ RQ and CQ ⊂ UCQ ⊂ GRQ ⊂ Datalog towers, a single
containment entry point dispatching to the strongest procedure, and
counterexample replay."""

from .classify import (
    GRAPH_TOWER,
    QueryClass,
    RELATIONAL_TOWER,
    classify,
    describe_tower,
    least_common_class,
    promote,
)
from .engine import check_containment, check_equivalence
from .batch import BatchItem, BatchResult, check_containment_many
from ..budget import Budget, BudgetExhausted, BudgetMeter
from ..report import ContainmentResult, Counterexample, EquivalenceResult, Verdict
from .shrink import shrink_counterexample
from .witness import as_graph, as_instance, holds_on, verify_counterexample

__all__ = [
    "shrink_counterexample",
    "GRAPH_TOWER",
    "QueryClass",
    "RELATIONAL_TOWER",
    "classify",
    "describe_tower",
    "least_common_class",
    "promote",
    "check_containment",
    "check_containment_many",
    "check_equivalence",
    "BatchItem",
    "BatchResult",
    "Budget",
    "BudgetExhausted",
    "BudgetMeter",
    "ContainmentResult",
    "Counterexample",
    "EquivalenceResult",
    "Verdict",
    "as_graph",
    "as_instance",
    "holds_on",
    "verify_counterexample",
]
