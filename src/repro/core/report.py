"""Compatibility shim: the result types live in :mod:`repro.report`.

(They sit above the per-class containment modules in the import graph,
so keeping them inside ``repro.core`` — whose ``__init__`` pulls in the
engine and thus every query class — would create an import cycle.)
"""

from ..report import ContainmentResult, Counterexample, EquivalenceResult, Verdict

__all__ = ["ContainmentResult", "Counterexample", "EquivalenceResult", "Verdict"]
