"""Classification of queries into the paper's two towers.

Graph tower:      RPQ ⊂ 2RPQ ⊂ UC2RPQ ⊂ RQ
Relational tower: CQ ⊂ UCQ ⊂ (GRQ ⊂ Datalog)

:func:`classify` names the smallest class a query object belongs to;
:func:`promote` lifts a query to a target class (when an embedding
exists), which the engine uses to find the least common class of a
containment pair.
"""

from __future__ import annotations

import enum
from typing import Any

from ..cq.syntax import CQ, UCQ
from ..crpq.syntax import C2RPQ, UC2RPQ, two_rpq_as_uc2rpq
from ..datalog.analysis import is_nonrecursive
from ..datalog.syntax import Program
from ..grq.membership import is_grq
from ..rpq.rpq import RPQ, TwoRPQ
from ..rq.embeddings import two_rpq_to_rq, uc2rpq_to_rq
from ..rq.syntax import RQ
from ..rq.to_datalog import rq_to_datalog


class QueryClass(enum.Enum):
    """The query classes the paper discusses, ordered within each tower."""

    RPQ = "RPQ"
    TWO_RPQ = "2RPQ"
    UC2RPQ = "UC2RPQ"
    RQ = "RQ"
    CQ = "CQ"
    UCQ = "UCQ"
    GRQ = "GRQ"
    DATALOG = "Datalog"


GRAPH_TOWER = (QueryClass.RPQ, QueryClass.TWO_RPQ, QueryClass.UC2RPQ, QueryClass.RQ)
RELATIONAL_TOWER = (QueryClass.CQ, QueryClass.UCQ, QueryClass.GRQ, QueryClass.DATALOG)


def classify(query: Any) -> QueryClass:
    """The smallest class of *query* (by type, refined by inspection)."""
    if isinstance(query, RPQ):
        return QueryClass.RPQ
    if isinstance(query, TwoRPQ):
        return QueryClass.RPQ if query.is_one_way() else QueryClass.TWO_RPQ
    if isinstance(query, (C2RPQ, UC2RPQ)):
        return QueryClass.UC2RPQ
    if isinstance(query, RQ):
        return QueryClass.RQ
    if isinstance(query, CQ):
        return QueryClass.CQ
    if isinstance(query, UCQ):
        return QueryClass.UCQ
    if isinstance(query, Program):
        if is_nonrecursive(query):
            return QueryClass.UCQ  # nonrecursive Datalog ≡ UCQ (Section 2.2)
        if is_grq(query):
            return QueryClass.GRQ
        return QueryClass.DATALOG
    raise TypeError(f"not a query object: {query!r}")


def tower_of(cls: QueryClass) -> tuple[QueryClass, ...]:
    return GRAPH_TOWER if cls in GRAPH_TOWER else RELATIONAL_TOWER


def least_common_class(a: QueryClass, b: QueryClass) -> QueryClass | None:
    """The smaller class containing both, or None across towers."""
    tower = tower_of(a)
    if b not in tower:
        return None
    return tower[max(tower.index(a), tower.index(b))]


def promote(query: Any, target: QueryClass) -> Any:
    """Lift *query* to an equivalent object of class *target*.

    Supported embeddings are the tower inclusions: RPQ/2RPQ -> UC2RPQ
    -> RQ on the graph side; CQ -> UCQ on the relational side; RQ -> GRQ
    (the Section 4.1 translation) crossing from the graph tower into
    Datalog.  Raises on unsupported lifts.
    """
    current = classify(query)
    if current == target:
        return query
    if target is QueryClass.TWO_RPQ and isinstance(query, TwoRPQ):
        return TwoRPQ(query.regex)
    if target is QueryClass.UC2RPQ:
        if isinstance(query, TwoRPQ):
            return two_rpq_as_uc2rpq(query)
        if isinstance(query, C2RPQ):
            return UC2RPQ((query,))
    if target is QueryClass.RQ:
        if isinstance(query, TwoRPQ):
            return two_rpq_to_rq(query)
        if isinstance(query, (C2RPQ, UC2RPQ)):
            return uc2rpq_to_rq(query)
    if target is QueryClass.UCQ and isinstance(query, CQ):
        return UCQ((query,))
    if target in (QueryClass.GRQ, QueryClass.DATALOG):
        if isinstance(query, RQ):
            return rq_to_datalog(query)
        if isinstance(query, Program):
            return query
    raise TypeError(f"cannot promote {current.value} to {target.value}")


def describe_tower(query: Any) -> str:
    """Human-readable placement, e.g. ``"2RPQ (⊂ UC2RPQ ⊂ RQ)"``."""
    cls = classify(query)
    tower = tower_of(cls)
    above = tower[tower.index(cls) + 1 :]
    if not above:
        return cls.value
    return f"{cls.value} (⊂ " + " ⊂ ".join(c.value for c in above) + ")"
