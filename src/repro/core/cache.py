"""Compatibility shim: the cache layer lives in :mod:`repro.cache`.

(Like :mod:`repro.core.report`, the implementation sits above the
per-class containment modules in the import graph — the automata layer
memoizes through it — so keeping it inside ``repro.core``, whose
``__init__`` pulls in the engine and thus every query class, would
create an import cycle.)
"""

from ..cache import (
    CacheStats,
    LRUCache,
    cache_stats,
    caching_enabled,
    clear_caches,
    containment_cache,
    determinize_cache,
    nfa_cache_key,
    query_cache_key,
    regex_nfa_cache,
    set_caching,
    use_caching,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "cache_stats",
    "caching_enabled",
    "clear_caches",
    "containment_cache",
    "determinize_cache",
    "nfa_cache_key",
    "query_cache_key",
    "regex_nfa_cache",
    "set_caching",
    "use_caching",
]
