"""Counterexample shrinking: smaller witnesses, better explanations.

Expansion-based refutations return canonical databases that may carry
more structure than the disagreement needs.  :func:`shrink_counterexample`
greedily deletes facts/edges while the database still separates the
queries (re-checked semantically each step via
:mod:`repro.core.witness`), yielding a locally minimal witness: removing
any single remaining fact would destroy the refutation.
"""

from __future__ import annotations

from typing import Any

from ..graphdb.database import GraphDatabase
from ..relational.instance import Instance
from .report import ContainmentResult, Counterexample, Verdict
from .witness import holds_on


def _separates(q1: Any, q2: Any, database: Any, output: tuple) -> bool:
    return holds_on(q1, database, output) and not holds_on(q2, database, output)


def _without_edge(db: GraphDatabase, edge: tuple) -> GraphDatabase:
    out = GraphDatabase()
    for node in db.nodes:
        out.add_node(node)
    for candidate in db.edges():
        if candidate != edge:
            out.add_edge(*candidate)
    return out


def _without_fact(instance: Instance, fact: tuple) -> Instance:
    out = Instance()
    for candidate in instance.facts():
        if candidate != fact:
            out.add(candidate[0], candidate[1])
    return out


def shrink_counterexample(q1: Any, q2: Any, result: ContainmentResult) -> Counterexample:
    """A locally minimal counterexample for a REFUTED *result*.

    Greedy single-fact deletion to a fixpoint; the returned witness
    still satisfies ``output in Q1(D) - Q2(D)`` (asserted on entry and
    preserved by construction).  Isolated nodes left behind by edge
    deletions are dropped when the separation survives without them.
    """
    if result.verdict is not Verdict.REFUTED:
        raise ValueError("only REFUTED results carry counterexamples")
    assert result.counterexample is not None
    database = result.counterexample.database
    output = tuple(result.counterexample.output)
    if not _separates(q1, q2, database, output):
        raise ValueError("counterexample does not replay; refusing to shrink")

    changed = True
    while changed:
        changed = False
        if isinstance(database, GraphDatabase):
            for edge in sorted(database.edges(), key=repr):
                candidate = _without_edge(database, edge)
                if _separates(q1, q2, candidate, output):
                    database = candidate
                    changed = True
                    break
        else:
            for fact in sorted(database.facts(), key=repr):
                candidate = _without_fact(database, fact)
                if _separates(q1, q2, candidate, output):
                    database = candidate
                    changed = True
                    break
    if isinstance(database, GraphDatabase):
        touched = {n for e in database.edges() for n in (e[0], e[2])}
        touched |= set(output)
        trimmed = database.restrict(touched)
        if _separates(q1, q2, trimmed, output):
            database = trimmed
    return Counterexample(database, output)
