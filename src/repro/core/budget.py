"""Compatibility shim: the resource governor lives in :mod:`repro.budget`.

(Like :mod:`repro.core.report`, the real module sits above the automata
kernels in the import graph — keeping it inside ``repro.core``, whose
``__init__`` pulls in the engine and thus every query class, would
create an import cycle when kernels charge their meters.)
"""

from ..budget import (
    DEFAULT_AUTO_DEADLINE_MS,
    RESOURCES,
    UNLIMITED,
    Budget,
    BudgetExhausted,
    BudgetMeter,
    as_budget,
    bounded_result,
)

__all__ = [
    "DEFAULT_AUTO_DEADLINE_MS",
    "RESOURCES",
    "UNLIMITED",
    "Budget",
    "BudgetExhausted",
    "BudgetMeter",
    "as_budget",
    "bounded_result",
]
