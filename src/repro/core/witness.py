"""Counterexample replay: independently verifying REFUTED verdicts.

Every refutation in this package carries a concrete database and output
tuple.  :func:`verify_counterexample` replays it: evaluate both queries
on the database and confirm the tuple separates them.  The test suite
runs this on every refutation any procedure emits, which is the
strongest correctness guarantee short of verifying the positive
verdicts (those are cross-checked against brute force in the tests).
"""

from __future__ import annotations

from typing import Any

from ..cq.evaluation import satisfies as cq_satisfies, satisfies_ucq
from ..cq.syntax import CQ, UCQ
from ..crpq.evaluation import satisfies_uc2rpq
from ..crpq.syntax import C2RPQ, UC2RPQ
from ..datalog.evaluation import evaluate as datalog_evaluate
from ..datalog.syntax import Program
from ..graphdb.database import GraphDatabase
from ..relational.instance import Instance, graph_to_instance, instance_to_graph
from ..rpq.rpq import TwoRPQ
from ..rq.evaluation import satisfies_rq
from ..rq.syntax import RQ
from .report import ContainmentResult, Verdict


def holds_on(query: Any, database: Any, output: tuple) -> bool:
    """Does ``output in query(database)``, for any query/database kind?

    Databases convert both ways: a graph query receives a
    :class:`GraphDatabase` (converting a binary-relations instance when
    needed) and a relational query receives an :class:`Instance`.
    """
    if isinstance(query, TwoRPQ):
        return query.matches(as_graph(database), output[0], output[1])
    if isinstance(query, (C2RPQ, UC2RPQ)):
        return satisfies_uc2rpq(query, as_graph(database), tuple(output))
    if isinstance(query, RQ):
        return satisfies_rq(query, as_graph(database), tuple(output))
    if isinstance(query, CQ):
        return cq_satisfies(query, as_instance(database), tuple(output))
    if isinstance(query, UCQ):
        return satisfies_ucq(query, as_instance(database), tuple(output))
    if isinstance(query, Program):
        return tuple(output) in datalog_evaluate(query, as_instance(database))
    raise TypeError(f"not a query object: {query!r}")


def as_graph(database: Any) -> GraphDatabase:
    if isinstance(database, GraphDatabase):
        return database
    if isinstance(database, Instance):
        return instance_to_graph(database)
    raise TypeError(f"not a database: {database!r}")


def as_instance(database: Any) -> Instance:
    if isinstance(database, Instance):
        return database
    if isinstance(database, GraphDatabase):
        return graph_to_instance(database)
    raise TypeError(f"not a database: {database!r}")


def verify_counterexample(q1: Any, q2: Any, result: ContainmentResult) -> bool:
    """Replay a REFUTED result: the tuple must be in Q1(D) but not Q2(D)."""
    if result.verdict is not Verdict.REFUTED:
        raise ValueError("only REFUTED results carry counterexamples")
    assert result.counterexample is not None
    database = result.counterexample.database
    output = result.counterexample.output
    return holds_on(q1, database, output) and not holds_on(q2, database, output)
