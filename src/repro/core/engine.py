"""The unified containment engine — the package's front door.

:func:`check_containment` accepts any two query objects from the paper's
towers, promotes them to their least common class, and dispatches to the
strongest decision procedure available for that class:

====================  =========================================  ========
common class          procedure                                  verdicts
====================  =========================================  ========
RPQ                   Lemma 1 language containment               exact
2RPQ                  Theorem 5 fold pipeline                    exact
UC2RPQ                Theorem 6 expansion check                  exact when atom languages are finite, else bounded
RQ                    Theorem 7 expansion check                  exact when the left side is TC-free, else bounded
CQ / UCQ              Chandra-Merlin / Sagiv-Yannakakis          exact
UCQ vs Datalog        canonical-database evaluation              exact
GRQ                   Theorem 8 expansion check                  exact for nonrecursive left, else bounded
Datalog               expansion semi-decision                    refutation-sound (containment undecidable [52])
====================  =========================================  ========

Graph queries may also be checked against Datalog programs whose EDB is
binary: the graph query is translated through the Section 4.1 embedding.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..cache import caching_enabled, containment_cache, query_cache_key
from ..cq.containment import ucq_contained
from ..cq.syntax import CQ, UCQ
from ..crpq.containment import uc2rpq_contained
from ..datalog.containment import datalog_in_datalog, datalog_in_ucq, ucq_in_datalog
from ..datalog.syntax import Program
from ..grq.containment import grq_contained
from ..grq.membership import is_grq
from ..rpq.rpq import RPQ, TwoRPQ
from ..rpq.containment import rpq_contained, two_rpq_contained
from ..rq.containment import rq_contained
from ..rq.syntax import RQ
from .classify import QueryClass, classify, least_common_class, promote
from .report import ContainmentResult, Counterexample, Verdict


def check_containment(q1: Any, q2: Any, **options: Any) -> ContainmentResult:
    """Decide ``Q1 ⊆ Q2`` with the strongest applicable procedure.

    Args:
        q1, q2: query objects (TwoRPQ/RPQ, C2RPQ/UC2RPQ, RQ, CQ, UCQ, or
            Datalog ``Program``).  Cross-tower pairs are supported when
            an embedding exists (graph queries vs binary-EDB Datalog).
        **options: forwarded to the underlying procedure (e.g.
            ``method=`` for 2RPQs, ``max_expansions=`` for the
            expansion-based checks).

    Returns:
        A :class:`repro.core.report.ContainmentResult`; see its module
        for the exactness contract.

    Repeated calls with the same queries and options are served from
    the containment cache in :mod:`repro.cache`; the returned result's
    ``details["cache"]`` records ``"hit"``, ``"miss"``, or ``"bypass"``
    (unhashable queries or options — e.g. a mutable ``stats=`` object —
    opt out of caching rather than risking a stale or shared value).
    """
    key = _cache_key(q1, q2, options)
    if key is None:
        result = _check_containment_uncached(q1, q2, **options)
        return _annotate(result, "bypass")
    cached = containment_cache.get(key)
    if cached is not None:
        return _annotate(cached, "hit")
    result = _check_containment_uncached(q1, q2, **options)
    containment_cache.put(key, result)
    return _annotate(result, "miss")


def _cache_key(q1: Any, q2: Any, options: dict) -> Any | None:
    """The containment-cache key, or None when the call must not cache."""
    if not caching_enabled():
        return None
    left, right = query_cache_key(q1), query_cache_key(q2)
    if left is None or right is None:
        return None
    try:
        picked = tuple(sorted(options.items()))
        hash(picked)
    except TypeError:
        return None
    return (left, right, picked)


def _annotate(result: ContainmentResult, outcome: str) -> ContainmentResult:
    """A copy of *result* whose details record the cache outcome."""
    return dataclasses.replace(
        result, details={**dict(result.details), "cache": outcome}
    )


def _check_containment_uncached(q1: Any, q2: Any, **options: Any) -> ContainmentResult:
    class1, class2 = classify(q1), classify(q2)
    common = least_common_class(class1, class2)
    if common is None:
        # Cross-tower: route graph queries through the Datalog embedding.
        graph_side = class1 in (QueryClass.RPQ, QueryClass.TWO_RPQ, QueryClass.UC2RPQ, QueryClass.RQ)
        q1 = promote(promote(q1, QueryClass.RQ), QueryClass.DATALOG) if graph_side else q1
        q2 = q2 if graph_side else q2
        if not graph_side:
            q2 = promote(promote(q2, QueryClass.RQ), QueryClass.DATALOG)
        return check_containment(q1, q2, **options)

    if common is QueryClass.RPQ:
        return rpq_contained(RPQ(q1.regex), RPQ(q2.regex))
    if common is QueryClass.TWO_RPQ:
        picked = _pick(options, "method", "max_configs", "stats")
        return two_rpq_contained(promote(q1, common), promote(q2, common), **picked)
    if common is QueryClass.UC2RPQ:
        picked = _pick(options, "max_total_length", "max_expansions")
        return uc2rpq_contained(promote(q1, common), promote(q2, common), **picked)
    if common is QueryClass.RQ:
        picked = _pick(options, "max_applications", "max_expansions")
        return rq_contained(promote(q1, common), promote(q2, common), **picked)
    if common is QueryClass.CQ or common is QueryClass.UCQ:
        if isinstance(q1, Program) or isinstance(q2, Program):
            return _nonrecursive_datalog_case(q1, q2, **options)
        result = ucq_contained(q1, q2)
        if result.holds:
            return ContainmentResult(Verdict.HOLDS, "ucq-homomorphism")
        instance, head = result.counterexample  # type: ignore[misc]
        return ContainmentResult(
            Verdict.REFUTED, "ucq-homomorphism", Counterexample(instance, head)
        )
    if common in (QueryClass.GRQ, QueryClass.DATALOG):
        # A (U)CQ against a recursive program: the canonical-database /
        # expansion procedures are stronger than promoting the (U)CQ to
        # a one-rule-per-disjunct program (ucq_in_datalog is exact).
        if isinstance(q1, (CQ, UCQ)):
            return ucq_in_datalog(q1, promote(q2, QueryClass.DATALOG))
        if isinstance(q2, (CQ, UCQ)):
            picked = _pick(options, "max_applications", "max_expansions")
            return datalog_in_ucq(promote(q1, QueryClass.DATALOG), q2, **picked)
        left = promote(q1, QueryClass.DATALOG)
        right = promote(q2, QueryClass.DATALOG)
        picked = _pick(options, "max_applications", "max_expansions")
        if common is QueryClass.GRQ or (is_grq(left) and is_grq(right)):
            return grq_contained(left, right, **picked)
        return datalog_in_datalog(left, right, **picked)
    raise AssertionError(f"unhandled class {common}")  # pragma: no cover


def _pick(options: dict, *allowed: str) -> dict:
    """Keep only the options the chosen procedure understands.

    The engine's **options surface is a union across procedures; a
    bound meant for an expansion check must not crash the automata path
    it did not end up taking.
    """
    return {key: options[key] for key in allowed if key in options}


def _nonrecursive_datalog_case(q1: Any, q2: Any, **options: Any) -> ContainmentResult:
    """UCQ-level checks where one side is a (nonrecursive) program."""
    picked = _pick(options, "max_applications", "max_expansions")
    if isinstance(q1, Program) and isinstance(q2, Program):
        return datalog_in_datalog(q1, q2, **picked)
    if isinstance(q1, Program):
        return datalog_in_ucq(q1, q2, **picked)
    return ucq_in_datalog(q1, q2)


def check_equivalence(q1: Any, q2: Any, **options: Any) -> bool:
    """Truthy equivalence: both directions non-refuted (see Verdict)."""
    return (
        check_containment(q1, q2, **options).holds
        and check_containment(q2, q1, **options).holds
    )
