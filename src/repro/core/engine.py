"""The unified containment engine — the package's front door.

:func:`check_containment` accepts any two query objects from the paper's
towers, promotes them to their least common class, and dispatches to the
strongest decision procedure available for that class:

====================  =========================================  ========
common class          procedure                                  verdicts
====================  =========================================  ========
RPQ                   Lemma 1 language containment               exact
2RPQ                  Theorem 5 fold pipeline                    exact
UC2RPQ                Theorem 6 expansion check                  exact when atom languages are finite, else bounded
RQ                    Theorem 7 expansion check                  exact when the left side is TC-free, else bounded
CQ / UCQ              Chandra-Merlin / Sagiv-Yannakakis          exact
UCQ vs Datalog        canonical-database evaluation              exact
GRQ                   Theorem 8 expansion check                  exact for nonrecursive left, else bounded
Datalog               expansion semi-decision                    refutation-sound (containment undecidable [52])
====================  =========================================  ========

Graph queries may also be checked against Datalog programs whose EDB is
binary: the graph query is translated through the Section 4.1 embedding.

Resource governance (DESIGN.md "Resource governance"): every dispatch
accepts an optional ``budget`` — a :class:`repro.budget.Budget` or the
string ``"auto"`` — threaded down to the kernels.  Exhaustion never
raises out of the engine: counter exhaustion degrades to
``HOLDS_UP_TO_BOUND``, deadline exhaustion to ``INCONCLUSIVE``, both
with spend accounting in ``details["budget"]``.  ``budget="auto"`` (or
any Budget with ``escalate=True``) runs staged escalation: geometrically
larger bounds until the verdict is exact or the deadline is spent.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any

from ..automata.antichain import resolve_kernel
from ..budget import Budget, deadline_scope
from ..cache import caching_enabled, containment_cache, query_cache_key
from ..obs.metrics import counter as _metric_counter, histogram as _metric_histogram
from ..obs.trace import Tracer, maybe_span
from ..cq.containment import ucq_contained
from ..cq.syntax import CQ, UCQ
from ..crpq.containment import uc2rpq_contained
from ..datalog.containment import datalog_in_datalog, datalog_in_ucq, ucq_in_datalog
from ..datalog.syntax import Program
from ..grq.containment import grq_contained
from ..grq.membership import is_grq
from ..rpq.rpq import RPQ, TwoRPQ
from ..rpq.containment import rpq_contained, two_rpq_contained
from ..rq.containment import rq_contained
from ..rq.syntax import RQ
from .classify import QueryClass, classify, least_common_class, promote
from .report import ContainmentResult, Counterexample, EquivalenceResult, Verdict

#: Every option name any dispatch target understands.  Anything else is
#: a typo and raises TypeError at the engine boundary instead of being
#: silently discarded.
_OPTION_UNIVERSE = frozenset(
    {
        "method",
        "stats",
        "kernel",
        "max_configs",
        "max_expansions",
        "max_total_length",
        "max_applications",
    }
)

#: Options that bound resources rather than select an algorithm.  They
#: are excluded from the *exact* cache key: an exact verdict does not
#: depend on how generous the bounds were.
_BUDGET_OPTIONS = frozenset(
    {"max_configs", "max_expansions", "max_total_length", "max_applications"}
)

#: Staged-escalation schedule: round k gets geometrically larger limits.
_ESCALATION_CONFIG_BASE = 4096
_ESCALATION_EXPANSION_BASE = 512
_ESCALATION_LENGTH_BASE = 4
_ESCALATION_APPLICATION_BASE = 8
_MAX_ESCALATION_ROUNDS = 32

#: Module-level metric handles (hoisted so the hot path pays one method
#: call per event, never a registry lookup).
_CHECKS = _metric_counter("engine.checks")
_CACHE_HITS = _metric_counter("engine.cache_hits")
_CHECK_MS = _metric_histogram("engine.check_ms")
_VERDICT_COUNTERS = {
    verdict: _metric_counter(f"engine.verdict.{verdict.value}") for verdict in Verdict
}


def check_containment(
    q1: Any,
    q2: Any,
    budget: Budget | str | None = None,
    trace: "bool | Tracer" = False,
    **options: Any,
) -> ContainmentResult:
    """Decide ``Q1 ⊆ Q2`` with the strongest applicable procedure.

    Args:
        q1, q2: query objects (TwoRPQ/RPQ, C2RPQ/UC2RPQ, RQ, CQ, UCQ, or
            Datalog ``Program``).  Cross-tower pairs are supported when
            an embedding exists (graph queries vs binary-EDB Datalog).
        budget: optional :class:`repro.budget.Budget` (or ``"auto"`` for
            :meth:`Budget.auto`), threaded through the dispatched
            procedure down to its kernels.  Budget exhaustion never
            raises: counters degrade to ``HOLDS_UP_TO_BOUND``, a spent
            deadline to ``INCONCLUSIVE``, both with spend accounting in
            ``details["budget"]``.  A budget with ``escalate=True`` runs
            staged escalation (see module docstring).
        trace: ``True`` to record a span tree of the pipeline stages the
            check ran, returned as ``details["trace"]`` (a JSON-ready
            dict; see DESIGN.md §8 for the span taxonomy).  An existing
            :class:`repro.obs.trace.Tracer` may be passed instead to
            accumulate several checks into one tree.  The default
            ``False`` costs one pointer test — tracing is strictly
            pay-for-what-you-use.
        **options: forwarded to the underlying procedure (e.g.
            ``method=`` for 2RPQs, ``max_expansions=`` for the
            expansion-based checks).  Unknown names raise TypeError;
            names valid for *some* procedure but not the dispatched one
            are dropped and recorded in ``details["ignored_options"]``.

    Returns:
        A :class:`repro.core.report.ContainmentResult`; see its module
        for the exactness contract.  Its ``details`` always carry a
        ``"cache"`` key (outcome) and a ``"budget"`` key (spend
        accounting; ``{"spend": {}}`` for unmetered runs).

    Repeated calls with the same queries and options are served from
    the containment cache in :mod:`repro.cache`; the returned result's
    ``details["cache"]`` records ``"hit"``, ``"miss"``, or ``"bypass"``
    (unhashable queries or options — e.g. a mutable ``stats=`` object —
    opt out of caching rather than risking a stale or shared value).
    Caching is bound-aware: exact verdicts are stored under a key that
    ignores budgets and serve any later budget, while bounded verdicts
    are keyed by their budget, so a cached small-budget result never
    shadows a larger-budget recomputation.  Traces are never cached:
    ``details["trace"]`` always describes the current call.
    """
    unknown = sorted(set(options) - _OPTION_UNIVERSE)
    if unknown:
        raise TypeError(
            f"unknown option(s) {', '.join(map(repr, unknown))}; "
            f"valid options are {', '.join(sorted(_OPTION_UNIVERSE))}"
        )
    if "kernel" in options:
        # Reject bad kernel values at the boundary, before classification
        # or caching can swallow them (a typo must never silently fall
        # back to the default kernel).
        resolve_kernel(options["kernel"])
    budget = _normalize_budget(budget)
    _CHECKS.inc()  # locked: unsynchronized += loses events under batch workers
    if not trace:
        if budget is not None and budget.escalate:
            return _escalate(q1, q2, budget, options, None)
        return _check_with_cache(q1, q2, budget, options, None)
    tracer = trace if isinstance(trace, Tracer) else Tracer()
    with tracer.span("check-containment"):
        if budget is not None and budget.escalate:
            result = _escalate(q1, q2, budget, options, tracer)
        else:
            result = _check_with_cache(q1, q2, budget, options, tracer)
    return dataclasses.replace(
        result, details={**dict(result.details), "trace": tracer.to_dict()}
    )


def _normalize_budget(budget: Budget | str | None) -> Budget | None:
    if budget is None or isinstance(budget, Budget):
        return budget
    if budget == "auto":
        return Budget.auto()
    raise TypeError(f"budget must be a Budget, 'auto', or None, not {budget!r}")


def _check_with_cache(
    q1: Any, q2: Any, budget: Budget | None, options: dict, tracer
) -> ContainmentResult:
    exact_key, full_key = _cache_keys(q1, q2, budget, options)
    if exact_key is None:
        if tracer is not None:
            tracer.event("cache", outcome="bypass")
        return _annotate(_run_uncached(q1, q2, budget, options, tracer), "bypass")
    # Probe the exact key without counting: the two keys serve one
    # logical request, and only the authoritative lookup below should
    # move the hit/miss counters.
    cached = containment_cache.peek(exact_key)
    if cached is not None and cached.is_exact:
        _CACHE_HITS.inc()
        if tracer is not None:
            tracer.event("cache", outcome="hit")
        return _annotate(containment_cache.get(exact_key), "hit")
    cached = containment_cache.get(full_key)
    if cached is not None:
        _CACHE_HITS.inc()
        if tracer is not None:
            tracer.event("cache", outcome="hit")
        return _annotate(cached, "hit")
    if tracer is not None:
        tracer.event("cache", outcome="miss")
    result = _run_uncached(q1, q2, budget, options, tracer)
    if result.is_exact:
        containment_cache.put(exact_key, result)
    elif budget is None or budget.deadline_ms is None:
        # Deadline-bounded results depend on wall-clock conditions and
        # are not reproducible; bounded results under pure counter
        # budgets are, and are keyed by their budget so a small-budget
        # verdict can never shadow a larger-budget recomputation.
        containment_cache.put(full_key, result)
    return _annotate(result, "miss")


def _run_uncached(
    q1: Any, q2: Any, budget: Budget | None, options: dict, tracer
) -> ContainmentResult:
    """One fresh dispatch, with metrics and the budget-details guarantee.

    Every result leaving here carries ``details["budget"]`` (spend
    accounting, or the empty ``{"spend": {}}`` for unmetered runs) —
    normalized *before* the caller stores it in the cache, so hits
    inherit the key for free.
    """
    # time.monotonic throughout: the same clock BudgetMeter and the
    # escalation loop read, so details["budget"]["elapsed_ms"], the
    # remaining-deadline math, and the check_ms histogram can't drift.
    start = time.monotonic()
    with deadline_scope(budget):
        result = _check_containment_uncached(q1, q2, budget, options, tracer)
    if "budget" not in result.details:
        result = dataclasses.replace(
            result, details={**dict(result.details), "budget": {"spend": {}}}
        )
    if "kernel" not in result.details:
        # Procedures that run no language-inclusion search (expansion
        # towers, homomorphism checks) select no kernel; record that
        # honestly so every engine result carries the key — normalized
        # before caching, so hits inherit it for free.
        result = dataclasses.replace(
            result,
            details={
                **dict(result.details),
                "kernel": {
                    "requested": options.get("kernel", "auto"),
                    "selected": None,
                },
            },
        )
    _CHECK_MS.observe((time.monotonic() - start) * 1000.0)
    _VERDICT_COUNTERS[result.verdict].inc()
    return result


def _cache_keys(
    q1: Any, q2: Any, budget: Budget | None, options: dict
) -> tuple[Any | None, Any | None]:
    """(exact_key, full_key) for the containment cache, or (None, None).

    The exact key drops budget-ish options and the budget itself — an
    exact verdict holds regardless of the bounds in force — and is
    tagged so it can never collide with a full key.
    """
    if not caching_enabled():
        return None, None
    left, right = query_cache_key(q1), query_cache_key(q2)
    if left is None or right is None:
        return None, None
    try:
        all_options = tuple(sorted(options.items()))
        hash(all_options)
    except TypeError:
        return None, None
    exact_options = tuple(
        item for item in all_options if item[0] not in _BUDGET_OPTIONS
    )
    exact_key = (left, right, exact_options, "exact")
    full_key = (left, right, all_options, budget)
    return exact_key, full_key


def _annotate(result: ContainmentResult, outcome: str) -> ContainmentResult:
    """A copy of *result* whose details record the cache outcome."""
    return dataclasses.replace(
        result, details={**dict(result.details), "cache": outcome}
    )


def _escalate(
    q1: Any, q2: Any, budget: Budget, options: dict, tracer
) -> ContainmentResult:
    """Staged escalation: geometrically larger bounds until exact or spent.

    Each round shares the overall wall-clock deadline (rounds get the
    *remaining* time), and user-pinned limits on the escalating budget
    stay fixed while unset ones follow the geometric schedule.
    """
    start = time.monotonic()
    rounds: list[dict] = []
    result: ContainmentResult | None = None
    for k in range(_MAX_ESCALATION_ROUNDS):
        remaining = None
        if budget.deadline_ms is not None:
            remaining = budget.deadline_ms - (time.monotonic() - start) * 1000.0
            if remaining <= 0:
                break
        round_budget = dataclasses.replace(
            budget.merged(
                max_configs=_ESCALATION_CONFIG_BASE * 4**k,
                max_expansions=_ESCALATION_EXPANSION_BASE * 4**k,
                max_total_length=_ESCALATION_LENGTH_BASE + 2 * k,
                max_applications=_ESCALATION_APPLICATION_BASE * 2**k,
            ),
            deadline_ms=remaining,
            escalate=False,
        )
        if tracer is not None:
            tracer.event("escalation-round", round=k)
        result = _check_with_cache(q1, q2, round_budget, options, tracer)
        rounds.append(
            {
                "round": k,
                "verdict": result.verdict.value,
                "limits": {
                    name: round_budget.limit(name)
                    for name in ("configs", "expansions", "total_length", "applications")
                },
            }
        )
        if result.is_exact:
            break
        if result.verdict is Verdict.INCONCLUSIVE:
            break  # deadline spent mid-round; the next round has no time
    if result is None:
        # The deadline was already spent before the first round could run.
        result = ContainmentResult(
            Verdict.INCONCLUSIVE,
            "escalation",
            details={
                "budget": {"exhausted": "deadline", "spend": {}},
                "cache": "bypass",
                "kernel": {
                    "requested": options.get("kernel", "auto"),
                    "selected": None,
                },
            },
        )
    escalation = {
        "rounds": rounds,
        "elapsed_ms": (time.monotonic() - start) * 1000.0,
    }
    return dataclasses.replace(
        result, details={**dict(result.details), "escalation": escalation}
    )


def _check_containment_uncached(
    q1: Any, q2: Any, budget: Budget | None, options: dict, tracer=None
) -> ContainmentResult:
    class1, class2 = classify(q1), classify(q2)
    common = least_common_class(class1, class2)
    if tracer is not None:
        tracer.annotate(
            q1_class=class1.name,
            q2_class=class2.name,
            common_class=common.name if common is not None else "cross-tower",
        )
    if common is None:
        # Cross-tower: route graph queries through the Datalog embedding.
        graph_side = class1 in (QueryClass.RPQ, QueryClass.TWO_RPQ, QueryClass.UC2RPQ, QueryClass.RQ)
        q1 = promote(promote(q1, QueryClass.RQ), QueryClass.DATALOG) if graph_side else q1
        q2 = q2 if graph_side else q2
        if not graph_side:
            q2 = promote(promote(q2, QueryClass.RQ), QueryClass.DATALOG)
        return check_containment(
            q1, q2, budget=budget, trace=tracer if tracer is not None else False,
            **options,
        )

    if common is QueryClass.RPQ:
        picked, ignored = _pick(options, "kernel")
        result = rpq_contained(
            RPQ(q1.regex), RPQ(q2.regex), budget=budget, tracer=tracer, **picked
        )
        return _with_ignored(result, ignored)
    if common is QueryClass.TWO_RPQ:
        picked, ignored = _pick(options, "method", "max_configs", "stats", "kernel")
        result = two_rpq_contained(
            promote(q1, common), promote(q2, common), budget=budget,
            tracer=tracer, **picked,
        )
        return _with_ignored(result, ignored)
    if common is QueryClass.UC2RPQ:
        picked, ignored = _pick(options, "max_total_length", "max_expansions", "kernel")
        result = uc2rpq_contained(
            promote(q1, common), promote(q2, common), budget=budget,
            tracer=tracer, **picked,
        )
        return _with_ignored(result, ignored)
    if common is QueryClass.RQ:
        picked, ignored = _pick(options, "max_applications", "max_expansions", "kernel")
        result = rq_contained(
            promote(q1, common), promote(q2, common), budget=budget,
            tracer=tracer, **picked,
        )
        return _with_ignored(result, ignored)
    if common is QueryClass.CQ or common is QueryClass.UCQ:
        if isinstance(q1, Program) or isinstance(q2, Program):
            return _nonrecursive_datalog_case(q1, q2, budget, options, tracer)
        # Chandra-Merlin is exact and terminating: no budget to thread.
        # "kernel" is picked (and recorded via details["kernel"]
        # normalization) rather than reported as ignored: it is a
        # universal engine option, not a procedure-specific bound.
        picked, ignored = _pick(options, "kernel")
        with maybe_span(tracer, "ucq-homomorphism"):
            result = ucq_contained(q1, q2)
        if result.holds:
            return _with_ignored(
                ContainmentResult(Verdict.HOLDS, "ucq-homomorphism"), ignored
            )
        instance, head = result.counterexample  # type: ignore[misc]
        return _with_ignored(
            ContainmentResult(
                Verdict.REFUTED, "ucq-homomorphism", Counterexample(instance, head)
            ),
            ignored,
        )
    if common in (QueryClass.GRQ, QueryClass.DATALOG):
        # A (U)CQ against a recursive program: the canonical-database /
        # expansion procedures are stronger than promoting the (U)CQ to
        # a one-rule-per-disjunct program (ucq_in_datalog is exact).
        if isinstance(q1, (CQ, UCQ)):
            picked, ignored = _pick(options, "kernel")
            return _with_ignored(
                ucq_in_datalog(
                    q1, promote(q2, QueryClass.DATALOG), tracer=tracer, **picked
                ),
                ignored,
            )
        if isinstance(q2, (CQ, UCQ)):
            picked, ignored = _pick(
                options, "max_applications", "max_expansions", "kernel"
            )
            return _with_ignored(
                datalog_in_ucq(
                    promote(q1, QueryClass.DATALOG), q2, budget=budget,
                    tracer=tracer, **picked,
                ),
                ignored,
            )
        left = promote(q1, QueryClass.DATALOG)
        right = promote(q2, QueryClass.DATALOG)
        picked, ignored = _pick(
            options, "max_applications", "max_expansions", "kernel"
        )
        if common is QueryClass.GRQ or (is_grq(left) and is_grq(right)):
            return _with_ignored(
                grq_contained(left, right, budget=budget, tracer=tracer, **picked),
                ignored,
            )
        return _with_ignored(
            datalog_in_datalog(left, right, budget=budget, tracer=tracer, **picked),
            ignored,
        )
    raise AssertionError(f"unhandled class {common}")  # pragma: no cover


def _pick(options: dict, *allowed: str) -> tuple[dict, tuple[str, ...]]:
    """Split options into those the chosen procedure understands and the rest.

    The engine's **options surface is a union across procedures; a
    bound meant for an expansion check must not crash the automata path
    it did not end up taking — but neither may it vanish silently, so
    the dropped names are returned for ``details["ignored_options"]``.
    """
    picked = {key: options[key] for key in allowed if key in options}
    ignored = tuple(sorted(key for key in options if key not in allowed))
    return picked, ignored


def _with_ignored(
    result: ContainmentResult, ignored: tuple[str, ...]
) -> ContainmentResult:
    if not ignored:
        return result
    return dataclasses.replace(
        result, details={**dict(result.details), "ignored_options": ignored}
    )


def _nonrecursive_datalog_case(
    q1: Any, q2: Any, budget: Budget | None, options: dict, tracer=None
) -> ContainmentResult:
    """UCQ-level checks where one side is a (nonrecursive) program."""
    picked, ignored = _pick(options, "max_applications", "max_expansions", "kernel")
    if isinstance(q1, Program) and isinstance(q2, Program):
        return _with_ignored(
            datalog_in_datalog(q1, q2, budget=budget, tracer=tracer, **picked),
            ignored,
        )
    if isinstance(q1, Program):
        return _with_ignored(
            datalog_in_ucq(q1, q2, budget=budget, tracer=tracer, **picked), ignored
        )
    kernel_only, _ = _pick(picked, "kernel")
    return _with_ignored(ucq_in_datalog(q1, q2, tracer=tracer, **kernel_only), ignored)


def check_equivalence(
    q1: Any,
    q2: Any,
    exact: bool = False,
    budget: Budget | str | None = None,
    **options: Any,
) -> EquivalenceResult:
    """Equivalence via both containment directions.

    Returns an :class:`repro.core.report.EquivalenceResult`, truthy
    exactly when the old bool was (both directions non-refuted) — except
    with ``exact=True``, where a direction established only up to a
    bound does not count as holding; ``bounded_directions`` names any
    such direction either way.
    """
    return EquivalenceResult(
        check_containment(q1, q2, budget=budget, **options),
        check_containment(q2, q1, budget=budget, **options),
        exact=exact,
    )
