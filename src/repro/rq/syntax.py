"""The algebra of Regular Queries (Section 3.4).

RQ is *defined by closure*: atomic queries ``r(x, y)`` closed under
selection, projection, disjunction, conjunction, and — the new
ingredient — transitive closure.  (The first four operations alone
define UCQ; adding TC gives RQ.)  We represent queries as an explicit
algebra AST in which every node knows its tuple of head variables:

- :class:`EdgeAtom` — ``r(x, y)`` (inverse labels allowed; ``r-(x, y)``
  abbreviates ``r(y, x)``, so 2RPQs embed).
- :class:`Select` — ``Q ∧ y = z`` (filter; head unchanged).
- :class:`Project` — ``exists y . Q`` generalized to keeping any
  subsequence/reordering of the head.
- :class:`And` / :class:`Or` — conjunction joins on shared variables;
  disjunction requires identical heads.
- :class:`TransitiveClosure` — ``Q+`` of a binary query.

The paper's "triangle-plus" example — the transitive closure of the
triangle C2RPQ, which no UC2RPQ expresses — is :func:`triangle_plus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..automata.alphabet import base_symbol, is_inverse
from ..cq.syntax import Var


class RQError(ValueError):
    """Raised on ill-formed RQ algebra terms."""


@dataclass(frozen=True)
class RQ:
    """Base class of RQ algebra nodes."""

    @property
    def head_vars(self) -> tuple[Var, ...]:
        raise NotImplementedError

    @property
    def arity(self) -> int:
        return len(self.head_vars)

    def base_symbols(self) -> frozenset[str]:
        raise NotImplementedError

    def children(self) -> tuple["RQ", ...]:
        raise NotImplementedError

    def uses_transitive_closure(self) -> bool:
        return isinstance(self, TransitiveClosure) or any(
            child.uses_transitive_closure() for child in self.children()
        )

    def size(self) -> int:
        """Number of AST nodes (benchmark parameter)."""
        return 1 + sum(child.size() for child in self.children())

    def walk(self) -> Iterator["RQ"]:
        yield self
        for child in self.children():
            yield from child.walk()

    # -- operator sugar ---------------------------------------------------------

    def __and__(self, other: "RQ") -> "RQ":
        return And(self, other)

    def __or__(self, other: "RQ") -> "RQ":
        return Or(self, other)

    def plus(self) -> "RQ":
        return TransitiveClosure(self)

    def project(self, *names: str) -> "RQ":
        return Project(self, tuple(Var(name) for name in names))

    def select_eq(self, a: str, b: str) -> "RQ":
        return Select(self, Var(a), Var(b))


@dataclass(frozen=True)
class EdgeAtom(RQ):
    """``r(x, y)`` — or ``r-(x, y)``, the same as ``r(y, x)``."""

    label: str
    source: Var
    target: Var

    def __post_init__(self) -> None:
        if self.source == self.target:
            # r(x, x) is legal (a self-loop test); nothing to validate.
            pass

    @property
    def head_vars(self) -> tuple[Var, ...]:
        if self.source == self.target:
            return (self.source,)
        return (self.source, self.target)

    def base_symbols(self) -> frozenset[str]:
        return frozenset({base_symbol(self.label)})

    def children(self) -> tuple[RQ, ...]:
        return ()

    def __repr__(self) -> str:
        return f"{self.label}({self.source!r}, {self.target!r})"


@dataclass(frozen=True)
class Select(RQ):
    """``child ∧ left = right``: keep rows where the two columns agree."""

    child: RQ
    left: Var
    right: Var

    def __post_init__(self) -> None:
        head = self.child.head_vars
        for var in (self.left, self.right):
            if var not in head:
                raise RQError(f"selection variable {var!r} not in head {head}")

    @property
    def head_vars(self) -> tuple[Var, ...]:
        return self.child.head_vars

    def base_symbols(self) -> frozenset[str]:
        return self.child.base_symbols()

    def children(self) -> tuple[RQ, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"sigma[{self.left!r}={self.right!r}]({self.child!r})"


@dataclass(frozen=True)
class Project(RQ):
    """Keep a subsequence/reordering of the child's head (exists the rest)."""

    child: RQ
    keep: tuple[Var, ...]

    def __post_init__(self) -> None:
        head = set(self.child.head_vars)
        missing = [var for var in self.keep if var not in head]
        if missing:
            raise RQError(f"projection variables {missing} not in child head")
        if len(set(self.keep)) != len(self.keep):
            raise RQError("projection variables must be distinct")

    @property
    def head_vars(self) -> tuple[Var, ...]:
        return self.keep

    def base_symbols(self) -> frozenset[str]:
        return self.child.base_symbols()

    def children(self) -> tuple[RQ, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.keep)
        return f"pi[{inner}]({self.child!r})"


@dataclass(frozen=True)
class And(RQ):
    """Conjunction: natural join on shared variables; head is the union."""

    left: RQ
    right: RQ

    @property
    def head_vars(self) -> tuple[Var, ...]:
        seen = list(self.left.head_vars)
        for var in self.right.head_vars:
            if var not in seen:
                seen.append(var)
        return tuple(seen)

    def base_symbols(self) -> frozenset[str]:
        return self.left.base_symbols() | self.right.base_symbols()

    def children(self) -> tuple[RQ, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True)
class Or(RQ):
    """Disjunction: the two sides must have identical head tuples."""

    left: RQ
    right: RQ

    def __post_init__(self) -> None:
        if self.left.head_vars != self.right.head_vars:
            raise RQError(
                f"disjunction heads differ: {self.left.head_vars} vs "
                f"{self.right.head_vars} (project/rename first)"
            )

    @property
    def head_vars(self) -> tuple[Var, ...]:
        return self.left.head_vars

    def base_symbols(self) -> frozenset[str]:
        return self.left.base_symbols() | self.right.base_symbols()

    def children(self) -> tuple[RQ, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


@dataclass(frozen=True)
class TransitiveClosure(RQ):
    """``Q+`` — one or more compositions of a binary query."""

    child: RQ

    def __post_init__(self) -> None:
        if self.child.arity != 2:
            raise RQError(
                f"transitive closure needs a binary query, got arity {self.child.arity}"
            )

    @property
    def head_vars(self) -> tuple[Var, ...]:
        return self.child.head_vars

    def base_symbols(self) -> frozenset[str]:
        return self.child.base_symbols()

    def children(self) -> tuple[RQ, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"({self.child!r})+"


def edge(label: str, source: str, target: str) -> EdgeAtom:
    """Convenience constructor: ``edge("knows", "x", "y")``."""
    return EdgeAtom(label, Var(source), Var(target))


def rename(query: RQ, mapping: dict[str, str]) -> RQ:
    """Rename head variables via projection-free rebuilding.

    RQ has no primitive rename; we rebuild the AST substituting
    variables, which is the standard derived operation.
    """
    subst = {Var(old): Var(new) for old, new in mapping.items()}

    def rebuild(node: RQ) -> RQ:
        if isinstance(node, EdgeAtom):
            return EdgeAtom(
                node.label, subst.get(node.source, node.source), subst.get(node.target, node.target)
            )
        if isinstance(node, Select):
            return Select(
                rebuild(node.child), subst.get(node.left, node.left), subst.get(node.right, node.right)
            )
        if isinstance(node, Project):
            return Project(rebuild(node.child), tuple(subst.get(v, v) for v in node.keep))
        if isinstance(node, And):
            return And(rebuild(node.left), rebuild(node.right))
        if isinstance(node, Or):
            return Or(rebuild(node.left), rebuild(node.right))
        if isinstance(node, TransitiveClosure):
            return TransitiveClosure(rebuild(node.child))
        raise RQError(f"unknown node {node!r}")  # pragma: no cover

    return rebuild(query)


def path_query(labels: Sequence[str], source: str = "x", target: str = "y") -> RQ:
    """Composition ``l1 ; l2 ; ... ; lk`` as an RQ (joins + projection)."""
    if not labels:
        raise RQError("path_query needs at least one label")
    hops = []
    names = [source] + [f"__m{i}" for i in range(1, len(labels))] + [target]
    for index, label in enumerate(labels):
        hops.append(edge(label, names[index], names[index + 1]))
    node: RQ = hops[0]
    for hop in hops[1:]:
        node = And(node, hop)
    return Project(node, (Var(source), Var(target)))


def triangle_query(label: str = "r") -> RQ:
    """The paper's triangle query as an RQ: ``Q(x,y) :- r(x,y)&r(y,z)&r(z,x)``."""
    body = And(And(edge(label, "x", "y"), edge(label, "y", "z")), edge(label, "z", "x"))
    return Project(body, (Var("x"), Var("y")))


def triangle_plus(label: str = "r") -> RQ:
    """``Q+`` of the triangle query — in RQ but in no UC2RPQ (Section 3.4)."""
    return TransitiveClosure(triangle_query(label))
