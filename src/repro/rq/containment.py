"""RQ containment (Theorem 7 class) via expansions of the Datalog image.

``Q1 ⊑ Q2`` for regular queries is checked by the same two-ingredient
recipe the paper attributes to [11, 13, 20, 48]: quantify over the
canonical databases of ``Q1`` (here: expansions of its Section 4.1
Datalog translation, which unfold transitive closures into explicit
chains) and decide each instance *exactly* by evaluating ``Q2`` over it.

Contract (DESIGN.md §2): refutations are exact counterexample databases;
positive verdicts are exact (HOLDS) when ``Q1`` uses no transitive
closure — its Datalog image is then nonrecursive, so the expansion space
is finite and exhausted — and HOLDS_UP_TO_BOUND otherwise.  The exact
algorithm is 2EXPSPACE-complete (Theorem 7), which no implementation can
run beyond toy sizes; the bound is the calibrated substitute.
"""

from __future__ import annotations

from ..report import ContainmentResult, Counterexample, Verdict
from ..datalog.analysis import is_nonrecursive
from ..datalog.unfolding import enumerate_expansions
from ..relational.instance import instance_to_graph
from .evaluation import satisfies_rq
from .syntax import RQ
from .to_datalog import rq_to_datalog

DEFAULT_EXPANSION_BUDGET = 3000
DEFAULT_APPLICATION_BOUND = 20


def rq_contained(
    q1: RQ,
    q2: RQ,
    max_applications: int | None = DEFAULT_APPLICATION_BOUND,
    max_expansions: int | None = DEFAULT_EXPANSION_BUDGET,
) -> ContainmentResult:
    """Expansion-based containment check for regular queries.

    Args:
        q1, q2: RQ algebra terms of equal arity.
        max_applications: bound on rule applications per expansion of
            ``q1``'s Datalog image (each transitive-closure unrolling
            step costs one application).  Ignored when ``q1`` is
            TC-free, whose expansion space is finite.
        max_expansions: overall cap on expansions examined.
    """
    if q1.arity != q2.arity:
        raise ValueError(
            f"containment between arities {q1.arity} and {q2.arity} is ill-typed"
        )
    program = rq_to_datalog(q1)
    exhaustive = is_nonrecursive(program)
    iterator = enumerate_expansions(
        program,
        max_applications=None if exhaustive else max_applications,
        max_expansions=None if exhaustive else max_expansions,
    )
    checked = 0
    for expansion in iterator:
        checked += 1
        instance, frozen_head = expansion.canonical_instance()
        graph = instance_to_graph(instance)
        if not satisfies_rq(q2, graph, frozen_head):
            return ContainmentResult(
                Verdict.REFUTED,
                "rq-expansion",
                Counterexample(graph, frozen_head),
                details={"expansions_checked": checked},
            )
    if exhaustive:
        return ContainmentResult(
            Verdict.HOLDS, "rq-expansion", details={"expansions_checked": checked}
        )
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "rq-expansion",
        bound=max_expansions if max_expansions is not None else -1,
        details={
            "expansions_checked": checked,
            "max_applications": max_applications,
        },
    )


def rq_equivalent(q1: RQ, q2: RQ) -> bool:
    """Truthy equivalence (both directions non-refuted)."""
    return rq_contained(q1, q2).holds and rq_contained(q2, q1).holds
