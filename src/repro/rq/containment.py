"""RQ containment (Theorem 7 class) via expansions of the Datalog image.

``Q1 ⊑ Q2`` for regular queries is checked by the same two-ingredient
recipe the paper attributes to [11, 13, 20, 48]: quantify over the
canonical databases of ``Q1`` (here: expansions of its Section 4.1
Datalog translation, which unfold transitive closures into explicit
chains) and decide each instance *exactly* by evaluating ``Q2`` over it.

Contract (DESIGN.md §2): refutations are exact counterexample databases;
positive verdicts are exact (HOLDS) when ``Q1`` uses no transitive
closure — its Datalog image is then nonrecursive, so the expansion space
is finite and exhausted — and HOLDS_UP_TO_BOUND otherwise.  The exact
algorithm is 2EXPSPACE-complete (Theorem 7), which no implementation can
run beyond toy sizes; the bound is the calibrated substitute.
"""

from __future__ import annotations

from ..automata.antichain import resolve_kernel
from ..budget import Budget, BudgetExhausted, bounded_result
from ..obs.trace import maybe_span
from ..report import ContainmentResult, Counterexample, EquivalenceResult, Verdict
from ..datalog.analysis import is_nonrecursive
from ..datalog.unfolding import enumerate_expansions
from ..relational.instance import instance_to_graph
from .evaluation import satisfies_rq
from .syntax import RQ
from .to_datalog import rq_to_datalog

DEFAULT_EXPANSION_BUDGET = 3000
DEFAULT_APPLICATION_BOUND = 20


def rq_contained(
    q1: RQ,
    q2: RQ,
    max_applications: int | None = DEFAULT_APPLICATION_BOUND,
    max_expansions: int | None = DEFAULT_EXPANSION_BUDGET,
    budget: Budget | None = None,
    tracer=None,
    kernel: str = "auto",
) -> ContainmentResult:
    """Expansion-based containment check for regular queries.

    Args:
        q1, q2: RQ algebra terms of equal arity.
        max_applications: bound on rule applications per expansion of
            ``q1``'s Datalog image (each transitive-closure unrolling
            step costs one application).  Ignored when ``q1`` is
            TC-free, whose expansion space is finite.
        max_expansions: overall cap on expansions examined.
        budget: optional :class:`repro.budget.Budget`; its
            ``max_applications`` / ``max_expansions`` fields, when set,
            override the legacy kwargs, and its deadline interrupts the
            enumeration cooperatively (structured verdict, no exception).
        tracer: optional :class:`repro.obs.trace.Tracer`; records a
            ``translate-datalog`` span for the Section 4.1 translation
            and an ``expansion-loop`` span counting expansions.
        kernel: accepted for engine-wide option uniformity and
            validated eagerly; the expansion procedure runs no
            language-inclusion search (the engine records
            ``selected: None``).
    """
    resolve_kernel(kernel)
    if q1.arity != q2.arity:
        raise ValueError(
            f"containment between arities {q1.arity} and {q2.arity} is ill-typed"
        )
    app_bound, exp_bound, meter = _effective_bounds(
        budget, max_applications, max_expansions
    )
    with maybe_span(tracer, "translate-datalog") as span:
        program = rq_to_datalog(q1)
        exhaustive = is_nonrecursive(program)
        span.annotate(rules=len(program.rules), nonrecursive=exhaustive)
    iterator = enumerate_expansions(
        program,
        max_applications=None if exhaustive else app_bound,
        max_expansions=None if exhaustive else exp_bound,
        meter=meter,
    )
    checked = 0
    try:
        with maybe_span(tracer, "expansion-loop", exhaustive=exhaustive) as span:
            try:
                for expansion in iterator:
                    checked += 1
                    if meter is not None:
                        meter.note("expansions")
                    instance, frozen_head = expansion.canonical_instance()
                    graph = instance_to_graph(instance)
                    if not satisfies_rq(q2, graph, frozen_head):
                        return ContainmentResult(
                            Verdict.REFUTED,
                            "rq-expansion",
                            Counterexample(graph, frozen_head),
                            details={"expansions_checked": checked},
                        )
            finally:
                span.count("expansions", checked)
    except BudgetExhausted as exc:
        return bounded_result(
            "rq-expansion", exc, meter, details={"expansions_checked": checked}
        )
    if exhaustive:
        return ContainmentResult(
            Verdict.HOLDS, "rq-expansion", details={"expansions_checked": checked}
        )
    details = {"expansions_checked": checked, "max_applications": app_bound}
    if meter is not None:
        details["budget"] = {"spend": meter.spend()}
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "rq-expansion",
        bound=exp_bound if exp_bound is not None else -1,
        details=details,
    )


def _effective_bounds(budget, max_applications, max_expansions):
    """Budget fields override the legacy kwargs; deadline gets a meter."""
    app_bound, exp_bound, meter = max_applications, max_expansions, None
    if budget is not None and not budget.is_null:
        if budget.max_applications is not None:
            app_bound = budget.max_applications
        if budget.max_expansions is not None:
            exp_bound = budget.max_expansions
        meter = Budget(deadline_ms=budget.deadline_ms).start()
    return app_bound, exp_bound, meter


def rq_equivalent(
    q1: RQ, q2: RQ, exact: bool = False, budget: Budget | None = None
) -> EquivalenceResult:
    """Equivalence via both containment directions.

    Returns an :class:`repro.report.EquivalenceResult` (truthy like the
    bool this used to return); with ``exact=True`` bounded directions do
    not count and are surfaced via ``bounded_directions``.
    """
    return EquivalenceResult(
        rq_contained(q1, q2, budget=budget),
        rq_contained(q2, q1, budget=budget),
        exact=exact,
    )
