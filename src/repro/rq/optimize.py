"""Algebraic simplification of RQ terms.

The structural query-optimization the paper's Section 4.2 muses about,
instantiated for the RQ algebra: a terminating bottom-up rewriter whose
rules are all semantics-preserving identities:

- ``pi_B(pi_A(t))      -> pi_B(t)``          (projection fusion)
- ``pi_{head}(t)       -> t``                (identity projection)
- ``sigma[v=v](t)      -> t``                (trivial selection)
- ``(t+)+              -> t+``               (TC idempotence)
- ``t | t              -> t``  and Or-leaf deduplication
- ``t & t              -> t``                (idempotent join, same head)

``simplify`` returns an equivalent term that is never larger; the test
suite fuzzes equivalence over random graphs.
"""

from __future__ import annotations

from .syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    RQ,
    Select,
    TransitiveClosure,
)


def simplify(query: RQ) -> RQ:
    """Apply the identity rewrites bottom-up until a fixpoint."""
    current = query
    while True:
        rewritten = _simplify_once(current)
        if rewritten == current:
            return current
        current = rewritten


def _simplify_once(node: RQ) -> RQ:
    if isinstance(node, EdgeAtom):
        return node
    if isinstance(node, Select):
        child = _simplify_once(node.child)
        if node.left == node.right:
            return child
        return Select(child, node.left, node.right)
    if isinstance(node, Project):
        child = _simplify_once(node.child)
        # Projection fusion: the outer keep-list is all that matters.
        while isinstance(child, Project):
            child = child.child
        if node.keep == child.head_vars:
            return child
        return Project(child, node.keep)
    if isinstance(node, TransitiveClosure):
        child = _simplify_once(node.child)
        if isinstance(child, TransitiveClosure):
            return child
        return TransitiveClosure(child)
    if isinstance(node, And):
        left = _simplify_once(node.left)
        right = _simplify_once(node.right)
        if left == right:
            return left
        return And(left, right)
    if isinstance(node, Or):
        leaves = _or_leaves(node)
        simplified = []
        seen = set()
        for leaf in leaves:
            clean = _simplify_once(leaf)
            if clean not in seen:
                seen.add(clean)
                simplified.append(clean)
        out = simplified[0]
        for leaf in simplified[1:]:
            out = Or(out, leaf)
        return out
    raise TypeError(f"unknown node {node!r}")  # pragma: no cover


def _or_leaves(node: RQ) -> list[RQ]:
    if isinstance(node, Or):
        return _or_leaves(node.left) + _or_leaves(node.right)
    return [node]


def size_reduction(before: RQ, after: RQ) -> float:
    """Fractional node-count reduction (benchmark metric)."""
    return 1.0 - after.size() / before.size()
