"""Regular Queries (Section 3.4): algebra, evaluation, Datalog embedding
(Section 4.1), and containment (Theorem 7 class)."""

from .containment import rq_contained, rq_equivalent
from .parser import RQSyntaxError, parse_rq
from .evaluation import evaluate_rq, satisfies_rq, transitive_closure_pairs
from .syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    RQ,
    RQError,
    Select,
    TransitiveClosure,
    edge,
    path_query,
    rename,
    triangle_plus,
    triangle_query,
)
from .generators import random_rq
from .optimize import simplify, size_reduction
from .to_datalog import rq_to_datalog

__all__ = [
    "RQSyntaxError",
    "parse_rq",
    "rq_contained",
    "rq_equivalent",
    "evaluate_rq",
    "satisfies_rq",
    "transitive_closure_pairs",
    "And",
    "EdgeAtom",
    "Or",
    "Project",
    "RQ",
    "RQError",
    "Select",
    "TransitiveClosure",
    "edge",
    "path_query",
    "rename",
    "triangle_plus",
    "triangle_query",
    "random_rq",
    "simplify",
    "size_reduction",
    "rq_to_datalog",
]
