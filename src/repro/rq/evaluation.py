"""Direct evaluation of RQ algebra terms over graph databases.

Each node evaluates to a set of tuples aligned with its ``head_vars``.
Conjunction is a hash join on the shared variables; transitive closure
is an iterated composition to fixpoint (the paper's ``Q+``).  The
alternative evaluation path — translate to Datalog and run the
semi-naive engine — lives in :mod:`repro.rq.to_datalog`; experiment E8
cross-validates the two.
"""

from __future__ import annotations

from collections import defaultdict

from ..automata.alphabet import base_symbol, is_inverse
from ..automata.indexed import indexed_kernels_enabled
from ..cq.syntax import Var
from ..graphdb.database import GraphDatabase, Node
from .syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    RQ,
    RQError,
    Select,
    TransitiveClosure,
)

Rows = frozenset[tuple]


def evaluate_rq(query: RQ, db: GraphDatabase) -> Rows:
    """The answer relation of *query* over *db* (columns = head_vars)."""
    return _eval(query, db)


def _eval(node: RQ, db: GraphDatabase) -> Rows:
    if isinstance(node, EdgeAtom):
        # With the indexed kernels on, leaf relations come off the
        # compiled snapshot (materialized once per database revision and
        # memoized there) instead of being rebuilt per EdgeAtom visit.
        if indexed_kernels_enabled():
            pairs = db.snapshot().relation(node.label)
        else:
            pairs = db.relation(node.label)
        if node.source == node.target:
            return frozenset((a,) for a, b in pairs if a == b)
        return frozenset(pairs)
    if isinstance(node, Select):
        rows = _eval(node.child, db)
        head = node.child.head_vars
        i, j = head.index(node.left), head.index(node.right)
        return frozenset(row for row in rows if row[i] == row[j])
    if isinstance(node, Project):
        rows = _eval(node.child, db)
        head = node.child.head_vars
        indexes = [head.index(var) for var in node.keep]
        return frozenset(tuple(row[i] for i in indexes) for row in rows)
    if isinstance(node, And):
        return _join(node, db)
    if isinstance(node, Or):
        return _eval(node.left, db) | _eval(node.right, db)
    if isinstance(node, TransitiveClosure):
        return transitive_closure_pairs(_eval(node.child, db))
    raise RQError(f"unknown node {node!r}")  # pragma: no cover


def _join(node: And, db: GraphDatabase) -> Rows:
    left_rows = _eval(node.left, db)
    right_rows = _eval(node.right, db)
    left_head = node.left.head_vars
    right_head = node.right.head_vars
    shared = [var for var in right_head if var in left_head]
    left_key = [left_head.index(var) for var in shared]
    right_key = [right_head.index(var) for var in shared]
    right_extra = [
        index for index, var in enumerate(right_head) if var not in left_head
    ]
    index: dict[tuple, list[tuple]] = defaultdict(list)
    for row in right_rows:
        index[tuple(row[i] for i in right_key)].append(row)
    out: set[tuple] = set()
    for row in left_rows:
        key = tuple(row[i] for i in left_key)
        for match in index.get(key, ()):
            out.add(row + tuple(match[i] for i in right_extra))
    return frozenset(out)


def transitive_closure_pairs(pairs: Rows) -> Rows:
    """``R+``: semi-naive iteration of ``R+ := R+ ∪ (R+ ; R)``."""
    closure: set[tuple] = set(pairs)
    by_source: dict[Node, set[Node]] = defaultdict(set)
    for a, b in pairs:
        by_source[a].add(b)
    delta = set(pairs)
    while delta:
        new: set[tuple] = set()
        for a, b in delta:
            for c in by_source.get(b, ()):
                if (a, c) not in closure:
                    new.add((a, c))
        closure |= new
        delta = new
    return frozenset(closure)


def satisfies_rq(query: RQ, db: GraphDatabase, head: tuple[Node, ...]) -> bool:
    """Membership test ``head in Q(D)``.

    RQ evaluation is bottom-up (transitive closures make classic
    top-down early exit awkward), so this simply evaluates and checks;
    canonical databases in the containment loop are small.
    """
    return tuple(head) in _eval(query, db)
