"""The RQ -> Datalog embedding of Section 4.1, rule for rule.

Every RQ operator maps to nonrecursive Datalog rules except transitive
closure, which maps to the two TC rules — making the image exactly a
GRQ program (recursion used only for transitive closure).  This is the
observation on which the paper's Section 4 rests, and
:func:`repro.grq.membership.is_grq` recognizes precisely the shapes this
translation emits.
"""

from __future__ import annotations

import itertools

from ..cq.syntax import Atom, Var
from ..automata.alphabet import base_symbol, is_inverse
from ..datalog.syntax import Program, Rule
from .syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    RQ,
    RQError,
    Select,
    TransitiveClosure,
)


class _Translator:
    def __init__(self, prefix: str = "q") -> None:
        self.counter = itertools.count()
        self.prefix = prefix
        self.rules: list[Rule] = []

    def fresh(self) -> str:
        return f"{self.prefix}{next(self.counter)}"

    def translate(self, node: RQ) -> str:
        """Emit rules defining *node*; return its IDB predicate name.

        The predicate's argument order is the node's ``head_vars``.
        """
        name = self.fresh()
        head = Atom(name, node.head_vars)
        if isinstance(node, EdgeAtom):
            # Atoms: Q(x, y) :- r(x, y); an inverse label flips the body.
            if is_inverse(node.label):
                body = Atom(base_symbol(node.label), (node.target, node.source))
            else:
                body = Atom(node.label, (node.source, node.target))
            self.rules.append(Rule(head, (body,)))
        elif isinstance(node, Select):
            # Selection: Q'(~x[y/z twice]) :- Q(~x[y/z]).
            child = self.translate(node.child)
            child_head = node.child.head_vars
            substituted = tuple(
                node.left if var == node.right else var for var in child_head
            )
            self.rules.append(
                Rule(Atom(name, substituted), (Atom(child, substituted),))
            )
        elif isinstance(node, Project):
            # Projection: Q'(~x - y) :- Q(~x).
            child = self.translate(node.child)
            self.rules.append(
                Rule(Atom(name, node.keep), (Atom(child, node.child.head_vars),))
            )
        elif isinstance(node, Or):
            # Union: one rule per disjunct.
            left = self.translate(node.left)
            right = self.translate(node.right)
            self.rules.append(Rule(head, (Atom(left, node.left.head_vars),)))
            self.rules.append(Rule(head, (Atom(right, node.right.head_vars),)))
        elif isinstance(node, And):
            # Conjunction: Q(~x ∪ ~y) :- Q1(~x), Q2(~y).
            left = self.translate(node.left)
            right = self.translate(node.right)
            self.rules.append(
                Rule(
                    head,
                    (
                        Atom(left, node.left.head_vars),
                        Atom(right, node.right.head_vars),
                    ),
                )
            )
        elif isinstance(node, TransitiveClosure):
            # Transitive closure: the only recursion the image contains.
            #   Q+(x, y) :- Q(x, y).
            #   Q+(x, z) :- Q+(x, y), Q(y, z).
            child = self.translate(node.child)
            x, y = node.child.head_vars
            z = Var(f"__tc_{name}")
            self.rules.append(Rule(Atom(name, (x, y)), (Atom(child, (x, y)),)))
            self.rules.append(
                Rule(
                    Atom(name, (x, z)),
                    (Atom(name, (x, y)), Atom(child, (y, z))),
                )
            )
        else:  # pragma: no cover - defensive
            raise RQError(f"unknown node {node!r}")
        return name


def rq_to_datalog(query: RQ, prefix: str = "q") -> Program:
    """Translate an RQ term to an equivalent Datalog (in fact GRQ) program.

    The goal predicate's argument order matches ``query.head_vars``.
    """
    translator = _Translator(prefix)
    goal = translator.translate(query)
    return Program(tuple(translator.rules), goal)
