"""Embeddings up the query tower: RPQ ⊂ 2RPQ ⊂ UC2RPQ ⊂ RQ (Section 3.4).

Each lower class translates into the RQ algebra:

- a regex letter is an edge atom (inverse letters flip the atom),
- concatenation is composition (join on a fresh middle variable, then
  projection),
- union is disjunction,
- ``e+`` is transitive closure, and ``e*`` / ``e?`` decompose as
  ``id ∨ e+`` / ``id ∨ e`` where ``id`` is the identity relation on the
  *incident* domain — nodes touching at least one edge.

Caveat, faithfully inherited from the paper's definitions: RQ is the
closure of edge atoms, so it cannot speak about isolated nodes.  A 2RPQ
``a*`` answers ``(n, n)`` for an isolated node ``n`` while its RQ
embedding cannot; the two agree on databases without isolated nodes
(and containment over edge-induced databases is unaffected, since
canonical databases of expansions never contain isolated nodes).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..automata.alphabet import inverse, is_inverse
from ..automata.regex import (
    Concat,
    EmptySet,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    Star,
    Sym,
    Union as RUnion,
)
from ..cq.syntax import Var
from ..crpq.syntax import C2RPQ, UC2RPQ
from ..rpq.rpq import TwoRPQ
from .syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    RQ,
    RQError,
    Select,
    TransitiveClosure,
)


class _Fresh:
    def __init__(self, prefix: str = "__v") -> None:
        self.counter = itertools.count()
        self.prefix = prefix

    def __call__(self) -> Var:
        return Var(f"{self.prefix}{next(self.counter)}")


def identity_query(alphabet: Sequence[str], x: Var, y: Var) -> RQ:
    """``id(x, y)``: pairs ``(a, a)`` with ``a`` incident to some edge.

    Built as ``sigma[x = y](U(x) & U(y))`` where ``U`` collects sources
    and targets of every label — the RQ idiom for the (edge-incident)
    identity relation.
    """
    if not alphabet:
        raise RQError("identity over an empty alphabet is the empty query")

    def incident(var: Var) -> RQ:
        other = Var(f"__id_{var.name}")
        parts: list[RQ] = []
        for label in alphabet:
            parts.append(Project(EdgeAtom(label, var, other), (var,)))
            parts.append(Project(EdgeAtom(label, other, var), (var,)))
        node: RQ = parts[0]
        for part in parts[1:]:
            node = Or(node, part)
        return node

    return Select(And(incident(x), incident(y)), x, y)


def regex_to_rq(
    regex: Regex,
    x: Var,
    y: Var,
    alphabet: Sequence[str],
    fresh: _Fresh | None = None,
) -> RQ:
    """An RQ with head ``(x, y)`` answering exactly the 2RPQ of *regex*.

    *alphabet* (base symbols) is needed for the identity relation that
    ``e*``, ``e?`` and epsilon translate to.
    """
    fresh = fresh or _Fresh()
    if isinstance(regex, EmptySet):
        raise RQError("the empty query has no RQ representation (no atoms)")
    if isinstance(regex, Epsilon):
        return identity_query(alphabet, x, y)
    if isinstance(regex, Sym):
        # EdgeAtom interprets inverse labels itself (r-(x, y) = r(y, x)).
        return _binary_atom(regex.symbol, x, y)
    if isinstance(regex, Concat):
        middle = fresh()
        left = regex_to_rq(regex.left, x, middle, alphabet, fresh)
        right = regex_to_rq(regex.right, middle, y, alphabet, fresh)
        return Project(And(left, right), (x, y))
    if isinstance(regex, RUnion):
        return Or(
            regex_to_rq(regex.left, x, y, alphabet, fresh),
            regex_to_rq(regex.right, x, y, alphabet, fresh),
        )
    if isinstance(regex, Plus):
        return TransitiveClosure(regex_to_rq(regex.body, x, y, alphabet, fresh))
    if isinstance(regex, Star):
        plus = TransitiveClosure(regex_to_rq(regex.body, x, y, alphabet, fresh))
        return Or(identity_query(alphabet, x, y), plus)
    if isinstance(regex, Optional_):
        return Or(
            identity_query(alphabet, x, y),
            regex_to_rq(regex.body, x, y, alphabet, fresh),
        )
    raise RQError(f"unknown regex node {regex!r}")  # pragma: no cover


def _binary_atom(label: str, x: Var, y: Var) -> RQ:
    atom = EdgeAtom(label, x, y)
    if x == y:
        # r(x, x): unary head; widen back to the caller's expectation.
        raise RQError("regex endpoints must be distinct variables")
    return atom


def two_rpq_to_rq(query: TwoRPQ, alphabet: Sequence[str] | None = None) -> RQ:
    """Embed a 2RPQ as an RQ with head ``(x, y)``."""
    alpha = tuple(alphabet) if alphabet is not None else tuple(sorted(query.base_symbols()))
    return regex_to_rq(query.regex, Var("x"), Var("y"), alpha)


def c2rpq_to_rq(query: C2RPQ, alphabet: Sequence[str] | None = None) -> RQ:
    """Embed a C2RPQ: conjoin the atom embeddings, project the head."""
    alpha = tuple(alphabet) if alphabet is not None else tuple(sorted(query.base_symbols()))
    fresh = _Fresh()
    node: RQ | None = None
    for atom in query.atoms:
        piece = regex_to_rq(atom.query.regex, atom.source, atom.target, alpha, fresh)
        node = piece if node is None else And(node, piece)
    assert node is not None  # C2RPQ guarantees at least one atom
    return Project(node, query.head_vars)


def uc2rpq_to_rq(query: UC2RPQ | C2RPQ, alphabet: Sequence[str] | None = None) -> RQ:
    """Embed a UC2RPQ: Or of disjunct embeddings over a canonical head."""
    union = query if isinstance(query, UC2RPQ) else UC2RPQ((query,))
    alpha = tuple(alphabet) if alphabet is not None else tuple(sorted(union.base_symbols()))
    canonical = tuple(Var(f"__h{i}") for i in range(union.arity))
    pieces: list[RQ] = []
    for index, disjunct in enumerate(union):
        from .syntax import rename

        embedded = c2rpq_to_rq(disjunct, alpha)
        # Rename *every* variable into a per-disjunct namespace, mapping
        # head variables to the canonical names, so user-chosen variable
        # names can never collide with the canonical head.
        mapping = {
            old.name: new.name for old, new in zip(embedded.head_vars, canonical)
        }
        for node in embedded.walk():
            if isinstance(node, EdgeAtom):
                for var in (node.source, node.target):
                    mapping.setdefault(var.name, f"__d{index}_{var.name}")
        pieces.append(rename(embedded, mapping))
    node: RQ = pieces[0]
    for piece in pieces[1:]:
        node = Or(node, piece)
    return node
