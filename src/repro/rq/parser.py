"""A textual rule syntax for regular queries.

RQ terms are verbose to build by hand, so this module provides a
rule-based surface syntax in the spirit of the paper's Datalog examples,
with regular expressions as atoms and ``+`` on defined predicates for
transitive closure::

    ans(x, y) :- [knows+](x, y), [worksAt worksAt-](x, y).

    % named definitions, usable in later rules; <name>+ is closure
    tri(x, y)  :- [r](x, y), [r](y, z), [r](z, x).
    ans(x, y)  :- tri+(x, y).

Semantics: each rule body is a conjunction (shared variables join),
body-only variables are projected away, multiple rules for the same
head disjoin, and ``name+`` applies transitive closure to a *binary*
defined query.  The result of :func:`parse_rq` is a plain
:class:`repro.rq.syntax.RQ` term for the requested goal (default: the
head of the last rule), so everything downstream — evaluation,
containment, the Datalog embedding — applies unchanged.
"""

from __future__ import annotations

import re

from ..automata.regex import parse_regex
from ..cq.syntax import Var
from .syntax import (
    And,
    Or,
    Project,
    RQ,
    RQError,
    Select,
    TransitiveClosure,
    rename,
)
from .embeddings import regex_to_rq, _Fresh


class RQSyntaxError(ValueError):
    """Raised when an RQ rule text cannot be parsed."""


_RULE = re.compile(r"^\s*(?P<head>[^:]+?)\s*:-\s*(?P<body>.+?)\s*$", re.S)
_HEAD = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(?P<vars>[^)]*)\)$")
_REGEX_ATOM = re.compile(
    r"^\[(?P<regex>[^\]]+)\]\s*\(\s*(?P<x>[A-Za-z_][A-Za-z0-9_]*)\s*,"
    r"\s*(?P<y>[A-Za-z_][A-Za-z0-9_]*)\s*\)$"
)
_NAMED_ATOM = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)(?P<plus>\+?)\s*\(\s*(?P<vars>[^)]*)\)$"
)


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        index = line.find("%")
        if index >= 0:
            line = line[:index]
        lines.append(line)
    return "\n".join(lines)


def _split_atoms(body: str) -> list[str]:
    """Split a rule body on commas not inside brackets or parens."""
    atoms, depth, current = [], 0, []
    for char in body:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            atoms.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        atoms.append(tail)
    return atoms


class _RQParser:
    def __init__(self, alphabet: tuple[str, ...] | None) -> None:
        self.definitions: dict[str, RQ] = {}
        self.alphabet = alphabet
        self.fresh = _Fresh("__rqp")

    def parse(self, text: str, goal: str | None) -> RQ:
        cleaned = _strip_comments(text)
        chunks = [chunk.strip() for chunk in cleaned.split(".") if chunk.strip()]
        if not chunks:
            raise RQSyntaxError("empty query text")
        if self.alphabet is None:
            self.alphabet = self._infer_alphabet(chunks)
        # Parse rules in order, folding each head's rules into the
        # definitions table as they arrive, so later rules may reference
        # earlier heads (recursion beyond '+' is outside RQ anyway).
        order: list[str] = []
        grouped: dict[str, list[tuple[tuple[Var, ...], RQ]]] = {}
        for chunk in chunks:
            name, head_vars, term = self._parse_rule(chunk)
            grouped.setdefault(name, []).append((head_vars, term))
            if name not in order:
                order.append(name)
            self.definitions[name] = self._fold_variants(name, grouped[name])
        target = goal if goal is not None else order[-1]
        if target not in self.definitions:
            raise RQSyntaxError(f"goal {target!r} is not defined")
        return self.definitions[target]

    def _fold_variants(
        self, name: str, variants: list[tuple[tuple[Var, ...], RQ]]
    ) -> RQ:
        canonical = variants[0][0]
        pieces: list[RQ] = []
        for head_vars, term in variants:
            if len(head_vars) != len(canonical):
                raise RQSyntaxError(f"rules for {name} disagree on arity")
            mapping = {
                old.name: new.name for old, new in zip(head_vars, canonical)
            }
            pieces.append(rename(term, mapping) if mapping else term)
        node = pieces[0]
        for piece in pieces[1:]:
            node = Or(node, piece)
        return node

    def _infer_alphabet(self, chunks: list[str]) -> tuple[str, ...]:
        symbols: set[str] = set()
        for match in re.finditer(r"\[([^\]]+)\]", "\n".join(chunks)):
            regex = parse_regex(match.group(1))
            from ..automata.alphabet import base_symbol

            symbols |= {base_symbol(s) for s in regex.symbols()}
        if not symbols:
            raise RQSyntaxError("no regex atoms to infer the alphabet from")
        return tuple(sorted(symbols))

    def _parse_rule(self, chunk: str) -> tuple[str, tuple[Var, ...], RQ]:
        match = _RULE.match(chunk)
        if match is None:
            raise RQSyntaxError(f"expected 'head(...) :- body' in {chunk!r}")
        head_match = _HEAD.match(match.group("head").strip())
        if head_match is None:
            raise RQSyntaxError(f"malformed head in {chunk!r}")
        head_vars = tuple(
            Var(token.strip())
            for token in head_match.group("vars").split(",")
            if token.strip()
        )
        if not head_vars:
            raise RQSyntaxError("rules need at least one head variable")
        conjuncts = [
            self._parse_atom(text) for text in _split_atoms(match.group("body"))
        ]
        node: RQ = conjuncts[0]
        for conjunct in conjuncts[1:]:
            node = And(node, conjunct)
        missing = [var for var in head_vars if var not in node.head_vars]
        if missing:
            raise RQSyntaxError(
                f"head variables {missing} do not occur in the body of {chunk!r}"
            )
        projected = Project(node, head_vars) if node.head_vars != head_vars else node
        return head_match.group("name"), head_vars, projected

    def _parse_atom(self, text: str) -> RQ:
        regex_match = _REGEX_ATOM.match(text)
        if regex_match is not None:
            assert self.alphabet is not None
            x, y = Var(regex_match.group("x")), Var(regex_match.group("y"))
            if x == y:
                # kappa(x, x): route through a fresh endpoint + selection,
                # then project to the single variable.
                other = self.fresh()
                term = regex_to_rq(
                    parse_regex(regex_match.group("regex")), x, other, self.alphabet, self.fresh
                )
                return Project(Select(term, x, other), (x,))
            return regex_to_rq(
                parse_regex(regex_match.group("regex")), x, y, self.alphabet, self.fresh
            )
        named_match = _NAMED_ATOM.match(text)
        if named_match is not None:
            name = named_match.group("name")
            if name not in self.definitions:
                raise RQSyntaxError(
                    f"atom {text!r} refers to undefined query {name!r} "
                    "(definitions must precede uses; recursion beyond '+' "
                    "is outside RQ)"
                )
            term = self.definitions[name]
            if named_match.group("plus"):
                term = TransitiveClosure(term)
            call_vars = tuple(
                Var(token.strip())
                for token in named_match.group("vars").split(",")
                if token.strip()
            )
            if len(call_vars) != term.arity:
                raise RQSyntaxError(
                    f"{name} has arity {term.arity}, called with {len(call_vars)}"
                )
            namespace = {}
            for node_vars in (term.head_vars,):
                namespace.update(
                    {old.name: new.name for old, new in zip(node_vars, call_vars)}
                )
            # Rename non-head variables apart so call sites never capture.
            from .syntax import EdgeAtom

            for node in term.walk():
                if isinstance(node, EdgeAtom):
                    for var in (node.source, node.target):
                        namespace.setdefault(var.name, f"{var.name}@{next(self._stamp)}")
            return rename(term, namespace)
        raise RQSyntaxError(f"cannot parse atom {text!r}")

    @property
    def _stamp(self):
        if not hasattr(self, "_stamp_counter"):
            import itertools

            self._stamp_counter = itertools.count()
        return self._stamp_counter


def parse_rq(
    text: str,
    goal: str | None = None,
    alphabet: tuple[str, ...] | None = None,
) -> RQ:
    """Parse the RQ rule syntax documented in the module docstring.

    Args:
        text: one or more period-terminated rules.
        goal: which defined query to return (default: the last head).
        alphabet: base symbols for ``*``/``?``/epsilon identity atoms;
            inferred from the regex atoms when omitted.
    """
    return _RQParser(alphabet).parse(text, goal)
