"""Random RQ terms, for fuzz tests and benchmarks.

The generator produces *well-formed* terms by construction (Or branches
share heads, TC children are binary) with a bias toward binary heads so
transitive closure stays applicable at every level.
"""

from __future__ import annotations

import itertools
import random
from typing import Sequence

from ..cq.syntax import Var
from .syntax import And, EdgeAtom, Or, Project, RQ, Select, TransitiveClosure


def random_rq(
    rng: random.Random,
    labels: Sequence[str],
    depth: int,
    variable_pool: int = 4,
) -> RQ:
    """Sample a random RQ term of at most the given AST depth.

    Args:
        rng: the random source (determinism is the caller's business).
        labels: edge labels to draw atoms from.
        depth: maximum operator nesting.
        variable_pool: how many distinct variable names atoms draw from
            (smaller pools join more).
    """
    names = [f"v{i}" for i in range(variable_pool)]

    def atom() -> RQ:
        x, y = rng.sample(names, 2)
        return EdgeAtom(rng.choice(list(labels)), Var(x), Var(y))

    def build(remaining: int) -> RQ:
        if remaining <= 0 or rng.random() < 0.3:
            return atom()
        choice = rng.random()
        if choice < 0.25:
            return And(build(remaining - 1), build(remaining - 1))
        if choice < 0.45:
            left = build(remaining - 1)
            # Align the right branch's head with the left's.
            right = build(remaining - 1)
            right = _align(right, left.head_vars, rng)
            if right is None:
                return left
            return Or(left, right)
        if choice < 0.65:
            child = build(remaining - 1)
            if child.arity == 2:
                return TransitiveClosure(child)
            return child
        if choice < 0.85:
            child = build(remaining - 1)
            if child.arity >= 2:
                keep = tuple(
                    rng.sample(child.head_vars, rng.randint(1, child.arity))
                )
                return Project(child, keep)
            return child
        child = build(remaining - 1)
        if child.arity >= 2:
            left, right = rng.sample(child.head_vars, 2)
            return Select(child, left, right)
        return child

    return build(depth)


def _align(term: RQ, target_head, rng: random.Random) -> RQ | None:
    """Rename/project *term* so its head equals *target_head*, or None."""
    from .syntax import rename

    if term.arity < len(target_head):
        return None
    if term.arity > len(target_head):
        term = Project(term, tuple(term.head_vars[: len(target_head)]))
    mapping = {old.name: new.name for old, new in zip(term.head_vars, target_head)}
    # Avoid accidental identification: if two old heads map to one name,
    # the result would change arity semantics; bail out instead.
    if len(set(mapping.values())) != len(mapping):
        return None
    # Namespace every other variable away from the target names.
    stamp = rng.randrange(10**6)
    for node in term.walk():
        if isinstance(node, EdgeAtom):
            for var in (node.source, node.target):
                mapping.setdefault(var.name, f"{var.name}_{stamp}")
    return rename(term, mapping)
