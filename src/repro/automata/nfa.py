"""Nondeterministic finite-state automata over symbol alphabets.

An :class:`NFA` here is the paper's tuple ``A = (Sigma, S, S0, rho, F)``:
states are arbitrary hashable objects, ``rho`` maps ``(state, symbol)``
to a set of successor states, and words are tuples of symbols.

The module provides the classical constructions the containment
pipelines of Sections 3.2 and 3.4 rely on: product (step 4 of the
paper's algorithm), union, concatenation, Kleene star, reversal,
trimming, emptiness with shortest-witness extraction (step 5), and
bounded word enumeration used by the brute-force oracles in the test
suite and benchmarks.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping

State = Hashable
Word = tuple[str, ...]

EPSILON = None  # transition label for epsilon moves in intermediate automata


@dataclass(frozen=True)
class NFA:
    """A nondeterministic finite automaton without epsilon moves.

    Attributes:
        alphabet: the symbols the automaton may read.
        states: all states (superset of those mentioned in transitions).
        initial: the set S0 of initial states.
        final: the set F of accepting states.
        transitions: mapping ``(state, symbol) -> frozenset of states``.
    """

    alphabet: tuple[str, ...]
    states: frozenset
    initial: frozenset
    final: frozenset
    transitions: Mapping[tuple[State, str], frozenset]

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(
        cls,
        alphabet: Iterable[str],
        states: Iterable[State],
        initial: Iterable[State],
        final: Iterable[State],
        transitions: Iterable[tuple[State, str, State]],
    ) -> "NFA":
        """Build an NFA from an edge list of ``(source, symbol, target)``."""
        table: dict[tuple[State, str], set] = {}
        for source, symbol, target in transitions:
            table.setdefault((source, symbol), set()).add(target)
        frozen = {key: frozenset(value) for key, value in table.items()}
        state_set = frozenset(states)
        init = frozenset(initial)
        fin = frozenset(final)
        alpha = tuple(dict.fromkeys(alphabet))
        missing = (init | fin | {s for s, _ in frozen} | set().union(*frozen.values())
                   if frozen else init | fin) - state_set
        if missing:
            raise ValueError(f"transitions mention unknown states: {missing!r}")
        return cls(alpha, state_set, init, fin, frozen)

    def successors(self, state: State, symbol: str) -> frozenset:
        """rho(state, symbol): the set of possible successor states."""
        return self.transitions.get((state, symbol), frozenset())

    # -- the ImplicitNFA protocol ---------------------------------------------
    # A materialized NFA is trivially an implicit one, so the on-the-fly
    # searches of :mod:`repro.automata.onthefly` consume it directly.

    def initial_states(self) -> frozenset:
        return self.initial

    def successor_states(self, state: State, symbol: str) -> frozenset:
        return self.transitions.get((state, symbol), frozenset())

    def is_final(self, state: State) -> bool:
        return state in self.final

    def edges(self) -> Iterator[tuple[State, str, State]]:
        """Iterate over all transitions as ``(source, symbol, target)``."""
        for (source, symbol), targets in self.transitions.items():
            for target in targets:
                yield source, symbol, target

    @property
    def num_states(self) -> int:
        return len(self.states)

    # -- language operations -------------------------------------------------

    def accepts(self, word: Word) -> bool:
        """Decide whether *word* is in L(A) by forward subset simulation."""
        current = set(self.initial)
        for symbol in word:
            nxt: set = set()
            for state in current:
                nxt |= self.successors(state, symbol)
            current = nxt
            if not current:
                return False
        return bool(current & self.final)

    def product(self, other: "NFA") -> "NFA":
        """Intersection automaton A x B (reachable part only).

        This is step 4 of the paper's containment algorithm; the state
        space is the reachable subset of pairs, so the quadratic blow-up
        is an upper bound, not a certainty.
        """
        from .indexed import indexed_kernels_enabled, product_nfa

        if indexed_kernels_enabled():
            return product_nfa(self, other)
        alphabet = tuple(sym for sym in self.alphabet if sym in set(other.alphabet))
        initial = {
            (p, q) for p in self.initial for q in other.initial
        }
        states: set = set(initial)
        transitions: list[tuple[State, str, State]] = []
        queue = deque(initial)
        while queue:
            p, q = queue.popleft()
            for symbol in alphabet:
                for p2 in self.successors(p, symbol):
                    for q2 in other.successors(q, symbol):
                        pair = (p2, q2)
                        transitions.append(((p, q), symbol, pair))
                        if pair not in states:
                            states.add(pair)
                            queue.append(pair)
        final = {
            (p, q) for (p, q) in states if p in self.final and q in other.final
        }
        return NFA.build(alphabet, states, initial, final, transitions)

    def union(self, other: "NFA") -> "NFA":
        """Disjoint union: L = L(self) | L(other)."""
        alphabet = tuple(dict.fromkeys(self.alphabet + other.alphabet))
        tag = lambda index, state: (index, state)  # noqa: E731 - local tagging
        states = [tag(0, s) for s in self.states] + [tag(1, s) for s in other.states]
        initial = [tag(0, s) for s in self.initial] + [tag(1, s) for s in other.initial]
        final = [tag(0, s) for s in self.final] + [tag(1, s) for s in other.final]
        transitions = [
            (tag(0, a), sym, tag(0, b)) for a, sym, b in self.edges()
        ] + [
            (tag(1, a), sym, tag(1, b)) for a, sym, b in other.edges()
        ]
        return NFA.build(alphabet, states, initial, final, transitions)

    def reverse(self) -> "NFA":
        """Automaton for the reversed language (arrows flipped)."""
        transitions = [(b, sym, a) for a, sym, b in self.edges()]
        return NFA.build(self.alphabet, self.states, self.final, self.initial, transitions)

    def trim(self) -> "NFA":
        """Restrict to states both reachable and co-reachable."""
        from .indexed import IndexedNFA, bits, indexed_kernels_enabled

        if indexed_kernels_enabled():
            compiled = IndexedNFA.from_nfa(self)
            names = compiled.state_names
            live: set = {names[i] for i in bits(compiled.live_mask())}
        else:
            reachable = self._closure(self.initial, forward=True)
            co_reachable = self._closure(self.final, forward=False)
            live = reachable & co_reachable
        transitions = [
            (a, sym, b) for a, sym, b in self.edges() if a in live and b in live
        ]
        return NFA.build(
            self.alphabet,
            live,
            self.initial & live,
            self.final & live,
            transitions,
        )

    def _closure(self, seeds: Iterable[State], forward: bool) -> set:
        successors: dict[State, set] = {}
        for a, _sym, b in self.edges():
            if forward:
                successors.setdefault(a, set()).add(b)
            else:
                successors.setdefault(b, set()).add(a)
        seen = set(seeds)
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for nxt in successors.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def is_empty(self) -> bool:
        """True iff L(A) is empty (no accepting state is reachable)."""
        return self.shortest_word() is None

    def shortest_word(self) -> Word | None:
        """A shortest word in L(A), or None if the language is empty.

        BFS from the initial states; this is step 5 of the paper's
        containment algorithm and doubles as counterexample extraction.
        """
        from .indexed import IndexedNFA, indexed_kernels_enabled

        if indexed_kernels_enabled():
            return IndexedNFA.from_nfa(self).shortest_word()
        parents: dict[State, tuple[State, str] | None] = {
            s: None for s in self.initial
        }
        queue = deque(self.initial)
        hit = next((s for s in self.initial if s in self.final), None)
        while queue and hit is None:
            state = queue.popleft()
            for symbol in self.alphabet:
                for nxt in self.successors(state, symbol):
                    if nxt in parents:
                        continue
                    parents[nxt] = (state, symbol)
                    if nxt in self.final:
                        hit = nxt
                        break
                    queue.append(nxt)
                if hit is not None:
                    break
        if hit is None:
            return None
        word: list[str] = []
        cursor: State = hit
        while parents[cursor] is not None:
            cursor, symbol = parents[cursor]  # type: ignore[misc]
            word.append(symbol)
        return tuple(reversed(word))

    def enumerate_words(self, max_length: int) -> Iterator[Word]:
        """Yield every word of L(A) of length <= max_length, shortest first.

        Used by brute-force oracles; exponential in *max_length*.
        """
        for length in range(max_length + 1):
            for word in itertools.product(self.alphabet, repeat=length):
                if self.accepts(word):
                    yield word

    def words_of_length(self, length: int) -> Iterator[Word]:
        """All words of L(A) of exactly *length*, with dead-branch pruning.

        A DFS over prefixes that tracks the reachable state set and
        abandons a prefix as soon as the set dies; output cost is
        proportional to the number of live prefixes rather than
        ``|alphabet| ** length``.  Expansion-based containment uses this
        to enumerate the words of 2RPQ atoms.
        """
        def recurse(prefix: list[str], states: set) -> Iterator[Word]:
            if len(prefix) == length:
                if states & self.final:
                    yield tuple(prefix)
                return
            for symbol in self.alphabet:
                nxt: set = set()
                for state in states:
                    nxt |= self.successors(state, symbol)
                if nxt:
                    prefix.append(symbol)
                    yield from recurse(prefix, nxt)
                    prefix.pop()

        yield from recurse([], set(self.initial))

    def language_is_finite(self) -> bool:
        """True iff L(A) is finite (no cycle on a live path of the trim)."""
        live = self.trim()
        # DFS cycle detection over live states.
        color: dict[State, int] = {}
        order: dict[State, list[State]] = {}
        for a, _sym, b in live.edges():
            order.setdefault(a, []).append(b)

        def has_cycle(state: State) -> bool:
            color[state] = 1
            for nxt in order.get(state, ()):
                mark = color.get(nxt, 0)
                if mark == 1:
                    return True
                if mark == 0 and has_cycle(nxt):
                    return True
            color[state] = 2
            return False

        return not any(
            has_cycle(state) for state in live.states if color.get(state, 0) == 0
        )

    def longest_word_length(self) -> int | None:
        """Length of the longest word when L(A) is finite, else None."""
        if not self.language_is_finite():
            return None
        live = self.trim()
        if live.is_empty():
            return 0
        # Longest path in a DAG of live states, from initial to final.
        depth: dict[State, int] = {}

        def longest(state: State) -> int:
            if state in depth:
                return depth[state]
            best = 0 if state in live.final else -(10**9)
            for symbol in live.alphabet:
                for nxt in live.successors(state, symbol):
                    best = max(best, 1 + longest(nxt))
            depth[state] = best
            return best

        return max(longest(state) for state in live.initial)

    def renumber(self) -> "NFA":
        """Return an isomorphic NFA with states 0..n-1 (stable ordering)."""
        order = {state: index for index, state in enumerate(sorted(self.states, key=repr))}
        transitions = [(order[a], sym, order[b]) for a, sym, b in self.edges()]
        return NFA.build(
            self.alphabet,
            range(len(order)),
            [order[s] for s in self.initial],
            [order[s] for s in self.final],
            transitions,
        )

    def map_symbols(self, mapping: Callable[[str], str]) -> "NFA":
        """Relabel every transition symbol through *mapping*."""
        transitions = [(a, mapping(sym), b) for a, sym, b in self.edges()]
        alphabet = tuple(dict.fromkeys(mapping(sym) for sym in self.alphabet))
        return NFA.build(alphabet, self.states, self.initial, self.final, transitions)


def from_epsilon_nfa(
    alphabet: Iterable[str],
    states: Iterable[State],
    initial: Iterable[State],
    final: Iterable[State],
    transitions: Iterable[tuple[State, str | None, State]],
) -> NFA:
    """Eliminate epsilon transitions (labelled ``None``) and build an NFA.

    Standard epsilon-closure elimination: a state is initial if reachable
    from an initial state by epsilon moves is folded in by closing the
    initial set, and each symbol transition is post-composed with the
    epsilon closure of its target.
    """
    eps: dict[State, set] = {}
    labelled: list[tuple[State, str, State]] = []
    for source, symbol, target in transitions:
        if symbol is EPSILON:
            eps.setdefault(source, set()).add(target)
        else:
            labelled.append((source, symbol, target))

    states = list(states)
    from .indexed import bits, epsilon_closures, indexed_kernels_enabled

    if indexed_kernels_enabled():
        # Bitset closure kernel: intern states, close over epsilon edges.
        index = {state: i for i, state in enumerate(states)}
        masks = epsilon_closures(
            len(states),
            (
                (index[source], index[target])
                for source, targets in eps.items()
                for target in targets
            ),
        )
        closures = {
            state: {states[i] for i in bits(masks[index[state]])}
            for state in states
        }
    else:
        def closure(seed: State) -> set:
            seen = {seed}
            queue = deque([seed])
            while queue:
                state = queue.popleft()
                for nxt in eps.get(state, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
            return seen

        closures = {state: closure(state) for state in states}
    final_set = frozenset(final)
    new_final = {
        state for state, close in closures.items() if close & final_set
    }
    new_initial = set(initial)
    new_transitions = [
        (source, symbol, reachable)
        for source, symbol, target in labelled
        for reachable in closures[target]
    ]
    # Fold epsilon-closure of initial states into the initial set.
    for init in list(new_initial):
        new_initial |= closures[init]
    return NFA.build(alphabet, states, new_initial, new_final, new_transitions).trim()
