"""Graphviz DOT export for automata and graph databases.

Debugging and documentation aid: render NFAs, 2NFAs, and graph databases
with ``dot -Tpng``.  Pure string generation — no Graphviz dependency.
"""

from __future__ import annotations

from .nfa import NFA
from .two_nfa import TwoNFA


def _quote(value: object) -> str:
    text = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def nfa_to_dot(nfa: NFA, name: str = "nfa") -> str:
    """DOT source for an NFA: double circles = final, arrow-in = initial."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for index, state in enumerate(sorted(nfa.initial, key=repr)):
        lines.append(f"  __start{index} [shape=point];")
        lines.append(f"  __start{index} -> {_quote(state)};")
    for state in sorted(nfa.states, key=repr):
        shape = "doublecircle" if state in nfa.final else "circle"
        lines.append(f"  {_quote(state)} [shape={shape}];")
    grouped: dict[tuple, list[str]] = {}
    for source, symbol, target in nfa.edges():
        grouped.setdefault((source, target), []).append(symbol)
    for (source, target), symbols in sorted(grouped.items(), key=repr):
        label = ",".join(sorted(symbols))
        lines.append(f"  {_quote(source)} -> {_quote(target)} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def two_nfa_to_dot(two_nfa: TwoNFA, name: str = "two_nfa") -> str:
    """DOT source for a 2NFA; edge labels carry ``symbol/direction``."""
    arrows = {-1: "←", 0: "·", 1: "→"}
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for index, state in enumerate(sorted(two_nfa.initial, key=repr)):
        lines.append(f"  __start{index} [shape=point];")
        lines.append(f"  __start{index} -> {_quote(state)};")
    for state in sorted(two_nfa.states, key=repr):
        shape = "doublecircle" if state in two_nfa.final else "circle"
        lines.append(f"  {_quote(state)} [shape={shape}];")
    grouped: dict[tuple, list[str]] = {}
    for (state, symbol), moves in two_nfa.transitions.items():
        for successor, direction in moves:
            grouped.setdefault((state, successor), []).append(
                f"{symbol}/{arrows[direction]}"
            )
    for (source, target), labels in sorted(grouped.items(), key=repr):
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} "
            f"[label={_quote(','.join(sorted(labels)))}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def graph_to_dot(db, name: str = "db") -> str:
    """DOT source for a graph database (edge labels shown)."""
    lines = [f"digraph {name} {{"]
    for node in sorted(db.nodes, key=repr):
        lines.append(f"  {_quote(node)};")
    for source, label, target in sorted(db.edges(), key=repr):
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
