"""Alphabets with inverse letters (the paper's Sigma and Sigma±).

A symbol is a plain string such as ``"knows"`` or ``"r"``.  The inverse
of a *base* symbol ``r`` is written ``"r-"`` (the paper's ``r⁻``), and
inversion is an involution: ``inverse("r-") == "r"``.

The special end-marker objects used by two-way automata live here as
well, so every module agrees on their identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

INVERSE_SUFFIX = "-"


def is_inverse(symbol: str) -> bool:
    """Return True if *symbol* is an inverse letter such as ``"r-"``."""
    return symbol.endswith(INVERSE_SUFFIX)


def inverse(symbol: str) -> str:
    """Return the inverse of *symbol* (an involution).

    >>> inverse("r")
    'r-'
    >>> inverse("r-")
    'r'
    """
    if is_inverse(symbol):
        return symbol[: -len(INVERSE_SUFFIX)]
    return symbol + INVERSE_SUFFIX


def base_symbol(symbol: str) -> str:
    """Strip a possible inverse marker: the underlying database relation."""
    return symbol[: -len(INVERSE_SUFFIX)] if is_inverse(symbol) else symbol


def inverse_word(word: tuple[str, ...]) -> tuple[str, ...]:
    """The inverse of a word over Sigma±: reverse it and invert each letter.

    Traversing a semipath labeled ``w`` from x to y is the same as
    traversing ``inverse_word(w)`` from y to x.
    """
    return tuple(inverse(symbol) for symbol in reversed(word))


class _EndMarker:
    """Singleton end-marker for two-way automata tapes (⊢ / ⊣)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        # Preserve singleton-ness under pickling.
        return (_end_marker_by_name, (self._name,))


LEFT_MARKER = _EndMarker("<|")
RIGHT_MARKER = _EndMarker("|>")


def _end_marker_by_name(name: str) -> _EndMarker:
    return LEFT_MARKER if name == "<|" else RIGHT_MARKER


@dataclass(frozen=True)
class Alphabet:
    """A finite edge alphabet Sigma, with access to Sigma± (two-way letters).

    >>> sigma = Alphabet(("a", "b"))
    >>> sigma.two_way
    ('a', 'a-', 'b', 'b-')
    """

    symbols: tuple[str, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for symbol in self.symbols:
            if not symbol or is_inverse(symbol):
                raise ValueError(
                    f"alphabet symbols must be non-empty base symbols, got {symbol!r}"
                )
            if symbol in seen:
                raise ValueError(f"duplicate alphabet symbol {symbol!r}")
            seen.add(symbol)

    @classmethod
    def from_symbols(cls, symbols: Iterable[str]) -> "Alphabet":
        """Build an alphabet from any iterable, base-stripping and sorting."""
        return cls(tuple(sorted({base_symbol(s) for s in symbols})))

    @property
    def two_way(self) -> tuple[str, ...]:
        """Sigma± = Sigma together with the inverse of each symbol."""
        out: list[str] = []
        for symbol in self.symbols:
            out.append(symbol)
            out.append(inverse(symbol))
        return tuple(out)

    def __contains__(self, symbol: str) -> bool:
        return base_symbol(symbol) in self.symbols

    def __iter__(self) -> Iterator[str]:
        return iter(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)
