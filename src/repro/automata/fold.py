"""Lemma 3: a small 2NFA for ``fold(L(A))``.

Folding (Section 3.2 of the paper): a word ``v`` over Sigma± *folds onto*
``u`` (written ``v ; u``) if ``v`` can be read by walking over ``u``
with a cursor ``i`` that starts at 0 and must end at ``|u|``, where each
step either moves right consuming ``u[i+1]`` or moves left consuming the
inverse of ``u[i]``.  ``fold(L) = { u : exists v in L with v ; u }``.

Lemma 2 reduces 2RPQ containment to language containment into a folded
language, and Lemma 3 shows ``fold(L(A))`` is recognized by a 2NFA of
size ``n * (|Sigma±| + 1)`` for an ``n``-state NFA ``A``.  With the
end-marker tape formalization of :mod:`repro.automata.two_nfa` the
construction below needs only ``2n`` states — two modes per state of
``A`` — which is within the paper's bound for every non-empty alphabet.

Construction.  The 2NFA's head position tracks the fold cursor: in mode
``N`` ("synchronized") at tape position ``p`` the cursor is ``i = p-1``.
A forward fold step reads the letter under the head and advances both.
A backward fold step takes two micro-steps: move left ignoring the
letter (entering mode ``B``), then read the letter there and apply the
*inverse* transition of ``A``, staying put and returning to mode ``N``.
Acceptance — final state of ``A`` in mode ``N`` on the right marker —
is exactly "``A`` accepted ``v`` and the cursor ended at ``|u|``".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .alphabet import LEFT_MARKER, RIGHT_MARKER, inverse
from .nfa import NFA, Word
from .two_nfa import LEFT, RIGHT, STAY, TwoNFA

MODE_SYNC = "N"
MODE_BACK = "B"


def fold_two_nfa(nfa: NFA, two_way_alphabet: tuple[str, ...]) -> TwoNFA:
    """The 2NFA of Lemma 3 recognizing ``fold(L(nfa))``.

    Args:
        nfa: an NFA over (a subset of) Sigma±.
        two_way_alphabet: the full Sigma± of the containment problem;
            ``fold(L)`` is a language over this alphabet, so the result
            must be able to read letters that ``nfa`` itself never uses.

    Returns:
        A :class:`TwoNFA` with ``2 * nfa.num_states`` states.
    """
    states = [(state, mode) for state in nfa.states for mode in (MODE_SYNC, MODE_BACK)]
    transitions: list[tuple[object, object, object, int]] = []

    for state in nfa.states:
        # Skip the left marker at the start of the tape (cursor stays 0).
        transitions.append(((state, MODE_SYNC), LEFT_MARKER, (state, MODE_SYNC), RIGHT))
        # Launch a backward fold step from anywhere: move left without
        # consuming.  At tape position 1 this lands on the left marker in
        # mode B, which has no moves - a harmless dead configuration that
        # mirrors the side condition "cursor must stay >= 0".
        for tape_symbol in tuple(two_way_alphabet) + (RIGHT_MARKER,):
            transitions.append(((state, MODE_SYNC), tape_symbol, (state, MODE_BACK), LEFT))

    for (state, symbol), targets in nfa.transitions.items():
        for target in targets:
            # Forward fold step: A reads `symbol`, which must be the
            # letter under the head; cursor and head advance together.
            transitions.append(((state, MODE_SYNC), symbol, (target, MODE_SYNC), RIGHT))
            # Backward fold step, second micro-step: the letter under the
            # head is c and A consumed c^-; equivalently, for A's
            # transition on `symbol` the head letter is inverse(symbol).
            transitions.append(
                ((state, MODE_BACK), inverse(symbol), (target, MODE_SYNC), STAY)
            )

    return TwoNFA.build(
        two_way_alphabet,
        states,
        [(state, MODE_SYNC) for state in nfa.initial],
        [(state, MODE_SYNC) for state in nfa.final],
        transitions,
    )


def lemma3_state_bound(nfa: NFA, two_way_alphabet: tuple[str, ...]) -> int:
    """The paper's Lemma 3 size bound ``n * (|Sigma±| + 1)``."""
    return nfa.num_states * (len(two_way_alphabet) + 1)


# --- reference implementation of folding, used as a test oracle ---------------


def folds_onto(v: Word, u: Word) -> bool:
    """Decide ``v ; u`` directly from the definition (dynamic programming).

    State space: (position j in v, cursor i over u); step forward or
    backward per the definition; accept when j = |v| and i = |u|.
    """
    reachable = {0}
    for letter in v:
        nxt: set[int] = set()
        for i in reachable:
            if i < len(u) and letter == u[i]:
                nxt.add(i + 1)
            if i >= 1 and letter == inverse(u[i - 1]):
                nxt.add(i - 1)
        reachable = nxt
        if not reachable:
            return False
    return len(u) in reachable


@dataclass(frozen=True)
class FoldWitness:
    """A concrete fold of ``v`` onto ``u``: the cursor sequence i_0..i_m."""

    v: Word
    u: Word
    cursors: tuple[int, ...]


def fold_witness(v: Word, u: Word) -> FoldWitness | None:
    """Return a cursor sequence demonstrating ``v ; u``, or None."""
    # BFS over (j, i) recording parents.
    start = (0, 0)
    parents: dict[tuple[int, int], tuple[int, int] | None] = {start: None}
    frontier = [start]
    goal = (len(v), len(u))
    while frontier:
        nxt: list[tuple[int, int]] = []
        for j, i in frontier:
            if (j, i) == goal:
                cursors: list[int] = []
                cursor: tuple[int, int] | None = (j, i)
                while cursor is not None:
                    cursors.append(cursor[1])
                    cursor = parents[cursor]
                return FoldWitness(v, u, tuple(reversed(cursors)))
            if j >= len(v):
                continue
            letter = v[j]
            if i < len(u) and letter == u[i]:
                move = (j + 1, i + 1)
                if move not in parents:
                    parents[move] = (j, i)
                    nxt.append(move)
            if i >= 1 and letter == inverse(u[i - 1]):
                move = (j + 1, i - 1)
                if move not in parents:
                    parents[move] = (j, i)
                    nxt.append(move)
        frontier = nxt
    if goal in parents:  # pragma: no cover - goal found exactly at frontier end
        pass
    return None


def fold_language(nfa: NFA, two_way_alphabet: tuple[str, ...], max_length: int) -> Iterator[Word]:
    """Brute-force enumeration of ``fold(L(nfa))`` up to *max_length*.

    For each candidate u, search for a folding v accepted by `nfa` via a
    product of the NFA with the fold cursor automaton — exact, because
    the product of NFA states and cursor positions is finite.
    """
    import itertools

    for length in range(max_length + 1):
        for u in itertools.product(two_way_alphabet, repeat=length):
            if _exists_fold_onto(nfa, u):
                yield u


def _exists_fold_onto(nfa: NFA, u: Word) -> bool:
    """Is there v in L(nfa) with v ; u?  Product reachability search."""
    from collections import deque

    start = {(state, 0) for state in nfa.initial}
    seen = set(start)
    queue = deque(start)
    while queue:
        state, i = queue.popleft()
        if i == len(u) and state in nfa.final:
            return True
        moves: list[tuple[object, int]] = []
        if i < len(u):
            for target in nfa.successors(state, u[i]):
                moves.append((target, i + 1))
        if i >= 1:
            for target in nfa.successors(state, inverse(u[i - 1])):
                moves.append((target, i - 1))
        for config in moves:
            if config not in seen:
                seen.add(config)
                queue.append(config)
    return False
