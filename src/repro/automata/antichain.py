"""Antichain containment kernel with simulation-quotient preprocessing.

The subset kernel in :mod:`repro.automata.indexed` decides
``L(left) ⊆ L(right)`` by BFS over configurations ``(q, S)`` — a left
state paired with a right macrostate from the incremental subset
construction — and dedupes them with a plain visited set.  On the hard
expression families (long distinguishing suffixes, union towers) the
reachable macrostates blow up exponentially even though most of them
are *subsumed* by smaller ones that refute at least as easily.

This module implements the standard remedy (De Wulf–Doyen–Henzinger–
Raskin antichains, strengthened with simulation subsumption à la
Abdulla et al., "When Simulation Meets Antichains"):

1. :func:`simulation_preorder` — a Henzinger–Henzinger–Kopke-style
   fixpoint over the bitset representation computing, for every state
   ``q``, the bitset of states that simulate ``q``.
2. :func:`simulation_quotient` — merge mutually-simulating states
   (language-preserving) so every downstream construction starts from a
   smaller automaton.
3. :func:`antichain_containment_search` — the subsumption-pruned
   replacement for ``_containment_search``: a new configuration
   ``(q, S)`` is discarded when some kept ``(q, S')`` *dominates* it,
   i.e. every ``s' ∈ S'`` is simulated by some ``s ∈ S`` (plain
   ``S' ⊆ S`` is the reflexive special case and is tested first).

Why discarding dominated configurations preserves counterexamples: if
``(q, S)`` refutes via a word ``w`` (``q`` reaches a final left state
while ``S``'s image avoids right-final states), then for any dominating
``(q, S')`` the image of ``S'`` under ``w`` is element-wise simulated
by the image of ``S`` — and a simulator of a final state is final, so
``S'``'s image avoids final states too and ``(q, S')`` refutes with the
same ``w``.  Because kept dominators are discovered at a BFS depth no
greater than the discarded configuration's (candidates are inserted
smallest-macrostate-first within a layer), the shortest-witness length
is exactly preserved, matching the subset kernel bit for bit.

Budget semantics mirror the subset kernel: one ``"configs"`` charge per
*kept* configuration, deadline polls at loop heads (the simulation
fixpoint polls the deadline but charges no counters, so counter-budget
degradation is identical across kernels and the engine's two-key cache
stays correct).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence

from ..obs.metrics import counter as _metric_counter
from ..obs.trace import maybe_span
from .indexed import IndexedNFA, bits
from .nfa import NFA, Word

__all__ = [
    "KERNELS",
    "SimulationInfo",
    "antichain_containment_search",
    "resolve_kernel",
    "simulation_preorder",
    "simulation_quotient",
]

#: The three-valued kernel option understood across the engine surface.
KERNELS = ("subset", "antichain", "auto")

#: Above this state count the fixpoint is skipped (identity preorder):
#: the cubic refinement would dwarf the search it is meant to speed up,
#: and antichain search degrades gracefully to pure ⊆-subsumption.
_SIM_STATE_LIMIT = 512

#: Module-level metric handles (hoisted; see obs/metrics.py).
_ANTICHAIN_SEARCHES = _metric_counter("kernel.antichain.searches")
_SUBSET_SEARCHES = _metric_counter("kernel.subset.searches")
_SUBSUMPTION_HITS = _metric_counter("kernel.antichain.subsumption_hits")


def resolve_kernel(kernel: str) -> str:
    """Validate a kernel name and resolve ``"auto"`` (to ``"antichain"``).

    Raises ValueError on anything outside :data:`KERNELS` — eagerly, so
    a typo fails before any search work starts.
    """
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(KERNELS)}"
        )
    return "antichain" if kernel == "auto" else kernel


def record_search(selected: str, subsumption_hits: int = 0) -> None:
    """Bump the per-kernel usage metrics (called once per search)."""
    if selected == "antichain":
        _ANTICHAIN_SEARCHES.inc()
        if subsumption_hits:
            _SUBSUMPTION_HITS.inc(subsumption_hits)
    else:
        _SUBSET_SEARCHES.inc()


# --- simulation preorder --------------------------------------------------------


@dataclass
class SimulationInfo:
    """Result of :func:`simulation_preorder`.

    Attributes:
        sim_by: ``sim_by[q]`` is the bitset of states ``p`` with
            ``p ⪰ q`` (``p`` simulates ``q``); always contains ``q``.
        passes: refinement passes until the fixpoint stabilized
            (0 when the computation was skipped for size).
    """

    sim_by: list[int]
    passes: int

    @property
    def pairs(self) -> int:
        """Number of ``p ⪰ q`` pairs, identity included."""
        return sum(mask.bit_count() for mask in self.sim_by)

    @property
    def is_identity(self) -> bool:
        return all(mask == 1 << q for q, mask in enumerate(self.sim_by))


def simulation_preorder(nfa: IndexedNFA, meter=None) -> SimulationInfo:
    """The (forward) simulation preorder of *nfa* as per-state bitsets.

    ``p`` simulates ``q`` iff ``q`` final implies ``p`` final and every
    transition ``q -a-> q'`` is matched by some ``p -a-> p'`` with
    ``p'`` simulating ``q'``.  Computed as a greatest-fixpoint
    refinement over candidate bitsets (HHK-style, specialized to the
    big-int representation): each pass intersects ``sim_by[q]`` with the
    set of states that can match each of ``q``'s transitions, where the
    per-(symbol, target) "matching predecessors" masks are memoized per
    pass.

    An optional :class:`repro.budget.BudgetMeter` is polled at loop
    heads — the fixpoint charges no counters, so counter budgets behave
    identically whether or not this preprocessing runs.
    """
    n = nfa.num_states
    if n == 0:
        return SimulationInfo([], 0)
    if n > _SIM_STATE_LIMIT:
        return SimulationInfo([1 << q for q in range(n)], 0)
    full = (1 << n) - 1
    final = nfa.final
    num_symbols = len(nfa.symbols)
    sim_by = [full if not (final >> q) & 1 else final for q in range(n)]
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        if meter is not None:
            meter.check_deadline()
        # Matching-predecessor masks, memoized for this pass: all p with
        # some a-successor inside the current sim_by[target].
        matchers: dict[tuple[int, int], int] = {}
        for q in range(n):
            mask = sim_by[q]
            if mask == 1 << q:
                continue
            if meter is not None:
                meter.poll()
            for row in range(num_symbols):
                targets = nfa.delta[row][q]
                if not targets:
                    continue
                for target in bits(targets):
                    key = (row, target)
                    allowed = matchers.get(key)
                    if allowed is None:
                        wanted = sim_by[target]
                        allowed = 0
                        for p in range(n):
                            if nfa.delta[row][p] & wanted:
                                allowed |= 1 << p
                        matchers[key] = allowed
                    mask &= allowed
                    if mask == 1 << q:
                        break
                if mask == 1 << q:
                    break
            if mask != sim_by[q]:
                sim_by[q] = mask | (1 << q)
                changed = True
    return SimulationInfo(sim_by, passes)


# --- simulation quotient --------------------------------------------------------


def simulation_quotient(
    nfa: IndexedNFA, info: SimulationInfo | None = None, meter=None
) -> IndexedNFA:
    """Merge mutually-simulating states (a language-preserving shrink).

    States ``p, q`` with ``p ⪰ q`` and ``q ⪰ p`` accept the same
    language and can be collapsed; transitions are unioned over class
    members, a class is initial/final iff some member is (mutual
    simulation makes finality class-uniform).  Returns *nfa* itself when
    no pair is mergeable, so callers can cheaply detect a no-op.
    """
    if info is None:
        info = simulation_preorder(nfa, meter)
    sim_by = info.sim_by
    n = nfa.num_states
    class_of = [-1] * n
    reps: list[int] = []
    for q in range(n):
        if class_of[q] >= 0:
            continue
        index = len(reps)
        reps.append(q)
        for r in bits(sim_by[q]):
            if class_of[r] < 0 and (sim_by[r] >> q) & 1:
                class_of[r] = index
    m = len(reps)
    if m == n:
        return nfa

    def project(mask: int) -> int:
        out = 0
        for q in bits(mask):
            out |= 1 << class_of[q]
        return out

    num_symbols = len(nfa.symbols)
    delta = [[0] * m for _ in range(num_symbols)]
    for row in range(num_symbols):
        source_row = nfa.delta[row]
        target_row = delta[row]
        for q in range(n):
            targets = source_row[q]
            if targets:
                target_row[class_of[q]] |= project(targets)
    names = tuple(nfa.state_names[rep] for rep in reps)
    return IndexedNFA(
        nfa.symbols, m, delta, project(nfa.initial), project(nfa.final), names
    )


# --- the antichain containment search -------------------------------------------


def antichain_containment_search(
    left: NFA,
    right: NFA,
    alphabet: Sequence[str],
    meter=None,
    tracer=None,
    stats: dict[str, Any] | None = None,
) -> Word | None:
    """A shortest word in ``L(left) - L(right)``, or None if contained.

    The antichain replacement for the subset kernel's
    ``_containment_search`` (same contract, same span name, same budget
    semantics; see the module docstring for the subsumption invariant).
    *stats* (if given) is filled in place — including on a
    :class:`repro.budget.BudgetExhausted` unwind — with ``selected``,
    ``configs``, ``subsumption_hits``, ``antichain_peak`` and a
    ``simulation`` preprocessing summary, so bounded verdicts still
    report honest kernel accounting.
    """
    if stats is None:
        stats = {}
    if tracer is None:
        return _antichain_search(left, right, alphabet, meter, None, stats)
    with tracer.span(
        "emptiness-search",
        kernel="antichain",
        left_states=left.num_states,
        right_states=right.num_states,
    ) as span:
        try:
            witness = _antichain_search(left, right, alphabet, meter, tracer, stats)
        finally:
            span.count("configs", stats.get("configs", 0))
            span.count("subsumption_hits", stats.get("subsumption_hits", 0))
            span.annotate(antichain_peak=stats.get("antichain_peak", 0))
        span.annotate(witness_length=None if witness is None else len(witness))
        return witness


def _antichain_search(
    left: NFA,
    right: NFA,
    alphabet: Sequence[str],
    meter,
    tracer,
    stats: dict[str, Any],
) -> Word | None:
    alpha = tuple(dict.fromkeys(alphabet))
    compiled_left = IndexedNFA.from_nfa(left, alpha)
    compiled_right = IndexedNFA.from_nfa(right, alpha)
    stats["selected"] = "antichain"

    with maybe_span(
        tracer, "simulation", side="left", states=compiled_left.num_states
    ) as span:
        left_before = compiled_left.num_states
        left_info = simulation_preorder(compiled_left, meter)
        compiled_left = simulation_quotient(compiled_left, left_info, meter)
        span.annotate(
            quotient_states=compiled_left.num_states, passes=left_info.passes
        )
    with maybe_span(
        tracer, "simulation", side="right", states=compiled_right.num_states
    ) as span:
        right_before = compiled_right.num_states
        right_info = simulation_preorder(compiled_right, meter)
        quotient = simulation_quotient(compiled_right, right_info, meter)
        if quotient.num_states < compiled_right.num_states:
            # Recompute the preorder on the (smaller) quotient: the
            # search subsumes against *its* states, so the relation must
            # be native to the automaton actually being stepped.
            compiled_right = quotient
            right_info = simulation_preorder(compiled_right, meter)
        span.annotate(
            quotient_states=compiled_right.num_states,
            passes=right_info.passes,
            sim_pairs=right_info.pairs,
        )
    stats["simulation"] = {
        "left_states": [left_before, compiled_left.num_states],
        "right_states": [right_before, compiled_right.num_states],
        "right_sim_pairs": right_info.pairs,
    }

    counters = {"configs": 0, "subsumption_hits": 0, "antichain_peak": 0}
    try:
        with maybe_span(tracer, "antichain-search"):
            return _frontier_search(
                compiled_left, compiled_right, right_info.sim_by, alpha, meter,
                counters,
            )
    finally:
        stats.update(counters)
        record_search("antichain", counters["subsumption_hits"])


def _frontier_search(
    left: IndexedNFA,
    right: IndexedNFA,
    sim_by: list[int],
    alpha: tuple[str, ...],
    meter,
    counters: dict[str, int],
) -> Word | None:
    """Layered BFS over ``(q, S)`` with a subsumption-pruned frontier."""
    left_final = left.final
    right_final = right.final
    num_symbols = len(alpha)

    def minimize(mask: int) -> int:
        """Drop macrostate elements simulated by a sibling.

        ``s`` is redundant inside ``S`` when some other ``s'' ∈ S``
        simulates it — ``L(s) ⊆ L(s'')`` keeps both the acceptance test
        and the final-avoidance test unchanged.  Mutually-simulating
        siblings (possible even after quotienting, since merging adds
        transitions) are broken by keeping the smaller index.
        """
        out = mask
        for s in bits(mask):
            if not (out >> s) & 1:
                continue
            for d in bits(out & sim_by[s] & ~(1 << s)):
                if not ((sim_by[d] >> s) & 1) or d < s:
                    out &= ~(1 << s)
                    break
        return out

    def dominates(kept: int, mask: int) -> bool:
        """Does kept ``(q, kept)`` subsume a candidate ``(q, mask)``?

        True when every element of *kept* is simulated by some element
        of *mask* (``kept ⊆ mask`` is the reflexive fast path).
        """
        missing = kept & ~mask
        if not missing:
            return True
        for s in bits(missing):
            if not (mask & sim_by[s]):
                return False
        return True

    parents: dict[tuple[int, int], tuple[tuple[int, int], int] | None] = {}
    antichain: dict[int, list[int]] = {}
    step_memo: dict[tuple[int, int], int] = {}
    hit: tuple[int, int] | None = None

    def insert(state: int, mask: int, parent) -> bool:
        """Keep a candidate unless subsumed; True when it was kept."""
        nonlocal hit
        config = (state, mask)
        if config in parents:
            return False
        kept_masks = antichain.get(state)
        if kept_masks is not None:
            for kept in kept_masks:
                if dominates(kept, mask):
                    counters["subsumption_hits"] += 1
                    return False
            kept_masks.append(mask)
        else:
            kept_masks = antichain[state] = [mask]
        if len(kept_masks) > counters["antichain_peak"]:
            counters["antichain_peak"] = len(kept_masks)
        parents[config] = parent
        counters["configs"] += 1
        if meter is not None:
            meter.charge("configs")
        if ((left_final >> state) & 1) and not (mask & right_final):
            hit = config
        return True

    start_mask = minimize(right.initial)
    layer: list[tuple[int, int]] = []
    for state in bits(left.initial):
        if insert(state, start_mask, None) and hit is None:
            layer.append((state, start_mask))
        if hit is not None:
            break
    while hit is None and layer:
        if meter is not None:
            meter.poll()
        candidates: list[tuple[int, int, tuple[tuple[int, int], int]]] = []
        for config in layer:
            state, mask = config
            if meter is not None:
                meter.poll()
            for row in range(num_symbols):
                left_targets = left.delta[row][state]
                if not left_targets:
                    continue
                key = (mask, row)
                next_mask = step_memo.get(key)
                if next_mask is None:
                    next_mask = minimize(right.successor_mask(mask, row))
                    step_memo[key] = next_mask
                for next_state in bits(left_targets):
                    candidates.append((next_state, next_mask, (config, row)))
        # Insert the smallest macrostates first: within a BFS layer all
        # candidates sit at the same depth, so order cannot perturb the
        # shortest witness, but minimal elements kept early subsume the
        # rest of the layer instead of the other way around.
        candidates.sort(key=lambda item: item[1].bit_count())
        layer = []
        for next_state, next_mask, parent in candidates:
            if insert(next_state, next_mask, parent):
                layer.append((next_state, next_mask))
            if hit is not None:
                break
    if hit is None:
        return None
    word: list[str] = []
    cursor: tuple[int, int] = hit
    while parents[cursor] is not None:
        cursor, row = parents[cursor]  # type: ignore[misc]
        word.append(alpha[row])
    return tuple(reversed(word))
