"""Automata-theoretic substrate for the containment pipelines.

Public surface:

- :mod:`repro.automata.alphabet` — Sigma / Sigma± symbol handling.
- :mod:`repro.automata.regex` — regex AST, parser, Thompson construction.
- :mod:`repro.automata.nfa` / :mod:`repro.automata.dfa` — one-way
  automata, products, subset construction, Hopcroft minimization.
- :mod:`repro.automata.two_nfa` — two-way automata with end-markers.
- :mod:`repro.automata.fold` — Lemma 3 (2NFA for fold(L)).
- :mod:`repro.automata.complement` — Lemma 4 (single-exponential 2NFA
  complementation) plus its lazy, on-the-fly variant.
- :mod:`repro.automata.shepherdson` — the classical conversion baseline.
- :mod:`repro.automata.onthefly` — generic on-the-fly product emptiness.
- :mod:`repro.automata.indexed` — integer-indexed bitset kernels the hot
  paths dispatch to (with :func:`set_indexed_kernels` as the ablation
  switch back to the object-level baselines).
"""

from .alphabet import (
    Alphabet,
    LEFT_MARKER,
    RIGHT_MARKER,
    base_symbol,
    inverse,
    inverse_word,
    is_inverse,
)
from .complement import LazyComplement, StateBudgetExceeded, complement_two_nfa
from .dot import graph_to_dot, nfa_to_dot, two_nfa_to_dot
from .dfa import (
    DFA,
    reduce_nfa,
    complement_nfa,
    containment_counterexample,
    determinize,
    nfa_contains,
    nfa_equivalent,
)
from .fold import fold_two_nfa, folds_onto, fold_witness, lemma3_state_bound
from .indexed import (
    IndexedDFA,
    IndexedNFA,
    indexed_kernels_enabled,
    set_indexed_kernels,
    use_indexed_kernels,
)
from .nfa import NFA, Word, from_epsilon_nfa
from .onthefly import (
    ExplicitNFA,
    SearchBudgetExceeded,
    SearchStats,
    find_accepted_word,
    intersection_is_empty,
)
from .regex import (
    Concat,
    EmptySet,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    RegexSyntaxError,
    Star,
    Sym,
    Union,
    parse_regex,
    random_regex,
    word_regex,
)
from .state_elimination import nfa_to_regex
from .shepherdson import (
    LazyShepherdsonComplement,
    naive_complement_two_nfa,
    two_nfa_to_dfa,
)
from .two_nfa import LEFT, RIGHT, STAY, TwoNFA, one_way_as_two_way

__all__ = [
    "graph_to_dot",
    "nfa_to_dot",
    "two_nfa_to_dot",
    "Alphabet",
    "LEFT_MARKER",
    "RIGHT_MARKER",
    "base_symbol",
    "inverse",
    "inverse_word",
    "is_inverse",
    "LazyComplement",
    "StateBudgetExceeded",
    "complement_two_nfa",
    "DFA",
    "complement_nfa",
    "reduce_nfa",
    "containment_counterexample",
    "determinize",
    "nfa_contains",
    "nfa_equivalent",
    "fold_two_nfa",
    "folds_onto",
    "fold_witness",
    "lemma3_state_bound",
    "IndexedDFA",
    "IndexedNFA",
    "indexed_kernels_enabled",
    "set_indexed_kernels",
    "use_indexed_kernels",
    "NFA",
    "Word",
    "from_epsilon_nfa",
    "ExplicitNFA",
    "SearchBudgetExceeded",
    "SearchStats",
    "find_accepted_word",
    "intersection_is_empty",
    "Concat",
    "EmptySet",
    "Epsilon",
    "Optional_",
    "Plus",
    "Regex",
    "RegexSyntaxError",
    "Star",
    "Sym",
    "Union",
    "parse_regex",
    "random_regex",
    "word_regex",
    "nfa_to_regex",
    "LazyShepherdsonComplement",
    "naive_complement_two_nfa",
    "two_nfa_to_dfa",
    "LEFT",
    "RIGHT",
    "STAY",
    "TwoNFA",
    "one_way_as_two_way",
]
