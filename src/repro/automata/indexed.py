"""Integer-indexed automaton kernels (the bitset hot-path layer).

Every containment pipeline in the package bottoms out in the same few
automaton operations — epsilon closure, subset construction, product
reachability, emptiness with witness extraction — and the object-level
implementations in :mod:`repro.automata.nfa` / :mod:`repro.automata.dfa`
run them over dict-of-frozenset tables keyed by arbitrary hashable
states.  This module provides *compiled* equivalents: states and symbols
are interned to dense integers, transition tables are per-symbol
adjacency arrays, and state *sets* are Python big-int bitsets, so the
inner loops become integer OR/AND/shift operations instead of frozenset
hashing and set unions.

Design contract:

- Every kernel is a drop-in semantic equivalent of the corresponding
  object-level construction; the property tests in
  ``tests/automata/test_indexed_properties.py`` cross-validate them on
  random automata.
- The object-level implementations remain available as ablation
  baselines behind the :func:`set_indexed_kernels` switch (the A1
  pattern in ``benchmarks/bench_a01_ablations.py``); benchmark A5
  measures the gap.
- :class:`IndexedNFA` satisfies the
  :class:`repro.automata.onthefly.ImplicitNFA` protocol directly (its
  states are plain ints), so on-the-fly product searches can consume it
  without an adapter.
"""

from __future__ import annotations

import contextlib
from collections import deque
from typing import Hashable, Iterable, Iterator, Sequence

from .nfa import NFA, Word

# --- kernel switch (ablation baseline support) --------------------------------

_INDEXED_KERNELS_ENABLED = True


def indexed_kernels_enabled() -> bool:
    """Whether the rewired hot paths dispatch to the indexed kernels."""
    return _INDEXED_KERNELS_ENABLED


def set_indexed_kernels(enabled: bool) -> bool:
    """Enable/disable the indexed kernels globally; returns the old value.

    Disabling falls back to the original object-state implementations,
    which stay in place as ablation baselines (benchmarks A1/A5).
    """
    global _INDEXED_KERNELS_ENABLED
    previous = _INDEXED_KERNELS_ENABLED
    _INDEXED_KERNELS_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_indexed_kernels(enabled: bool = True) -> Iterator[None]:
    """Context manager form of :func:`set_indexed_kernels`."""
    previous = set_indexed_kernels(enabled)
    try:
        yield
    finally:
        set_indexed_kernels(previous)


# --- bitset helpers ------------------------------------------------------------


def bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _mask_of(indices: Iterable[int]) -> int:
    out = 0
    for index in indices:
        out |= 1 << index
    return out


def _closure_mask(seeds: int, adjacency: Sequence[int]) -> int:
    """Bitset transitive closure: all indices reachable from *seeds*."""
    reached = seeds
    frontier = seeds
    while frontier:
        step = 0
        for index in bits(frontier):
            step |= adjacency[index]
        frontier = step & ~reached
        reached |= frontier
    return reached


def epsilon_closures(
    num_states: int, eps_edges: Iterable[tuple[int, int]]
) -> list[int]:
    """Per-state epsilon-closure bitsets (state i is always in its own).

    The kernel behind epsilon elimination: ``result[i]`` is the bitset of
    states reachable from ``i`` by epsilon moves (reflexively).
    """
    adjacency = [0] * num_states
    for source, target in eps_edges:
        adjacency[source] |= 1 << target
    return [
        _closure_mask(1 << index, adjacency) for index in range(num_states)
    ]


# --- the compiled automata ------------------------------------------------------


class IndexedNFA:
    """An NFA compiled to dense integer states and bitset transitions.

    Attributes:
        symbols: the interned symbol order (index = symbol id).
        num_states: states are ``0 .. num_states - 1``.
        delta: ``delta[symbol_id][state]`` is the successor bitset.
        initial / final: bitsets of initial / accepting states.
        state_names: original state objects, ``state_names[i]`` for state
            ``i`` (used to map results back to the object layer).
    """

    __slots__ = ("symbols", "symbol_index", "num_states", "delta",
                 "initial", "final", "state_names")

    def __init__(
        self,
        symbols: tuple[str, ...],
        num_states: int,
        delta: list[list[int]],
        initial: int,
        final: int,
        state_names: tuple[Hashable, ...] | None = None,
    ) -> None:
        self.symbols = symbols
        self.symbol_index = {symbol: i for i, symbol in enumerate(symbols)}
        self.num_states = num_states
        self.delta = delta
        self.initial = initial
        self.final = final
        self.state_names = (
            state_names if state_names is not None else tuple(range(num_states))
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_nfa(cls, nfa: NFA, alphabet: Iterable[str] | None = None) -> "IndexedNFA":
        """Intern an object-level :class:`NFA` (stable state ordering).

        Args:
            nfa: the automaton to compile.
            alphabet: symbol order of the result; defaults to the NFA's
                alphabet.  Symbols outside the NFA's alphabet get empty
                transition rows (useful for complementation relative to a
                larger Sigma).
        """
        symbols = (
            tuple(dict.fromkeys(alphabet)) if alphabet is not None else nfa.alphabet
        )
        names = tuple(sorted(nfa.states, key=repr))
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        symbol_index = {symbol: i for i, symbol in enumerate(symbols)}
        delta = [[0] * n for _ in symbols]
        for (source, symbol), targets in nfa.transitions.items():
            row = symbol_index.get(symbol)
            if row is None:
                continue
            delta[row][index[source]] |= _mask_of(index[t] for t in targets)
        initial = _mask_of(index[s] for s in nfa.initial)
        final = _mask_of(index[s] for s in nfa.final)
        return cls(symbols, n, delta, initial, final, names)

    @classmethod
    def build(
        cls,
        symbols: Iterable[str],
        num_states: int,
        edges: Iterable[tuple[int, str, int]],
        initial: Iterable[int],
        final: Iterable[int],
    ) -> "IndexedNFA":
        """Build directly from integer states and an edge list."""
        syms = tuple(dict.fromkeys(symbols))
        symbol_index = {symbol: i for i, symbol in enumerate(syms)}
        delta = [[0] * num_states for _ in syms]
        for source, symbol, target in edges:
            delta[symbol_index[symbol]][source] |= 1 << target
        return cls(syms, num_states, delta, _mask_of(initial), _mask_of(final))

    def to_nfa(self) -> NFA:
        """Decompile to the object layer, restoring original state names."""
        names = self.state_names
        transitions = [
            (names[source], self.symbols[row], names[target])
            for row in range(len(self.symbols))
            for source in range(self.num_states)
            for target in bits(self.delta[row][source])
        ]
        return NFA.build(
            self.symbols,
            names,
            [names[i] for i in bits(self.initial)],
            [names[i] for i in bits(self.final)],
            transitions,
        )

    # -- the ImplicitNFA protocol (states are ints) ----------------------------

    def initial_states(self) -> Iterator[int]:
        return bits(self.initial)

    def successor_states(self, state: int, symbol: str) -> Iterator[int]:
        row = self.symbol_index.get(symbol)
        if row is None:
            return iter(())
        return bits(self.delta[row][state])

    def is_final(self, state: int) -> bool:
        return bool((self.final >> state) & 1)

    # -- kernels ---------------------------------------------------------------

    def successor_mask(self, mask: int, symbol_id: int) -> int:
        """One subset-construction step: rho(mask, symbol) as a bitset."""
        row = self.delta[symbol_id]
        out = 0
        for index in bits(mask):
            out |= row[index]
        return out

    def accepts(self, word: Word) -> bool:
        current = self.initial
        for symbol in word:
            row = self.symbol_index.get(symbol)
            if row is None:
                return False
            current = self.successor_mask(current, row)
            if not current:
                return False
        return bool(current & self.final)

    def reachable_mask(self) -> int:
        """Bitset of states reachable from the initial set."""
        adjacency = [0] * self.num_states
        for row in self.delta:
            for index in range(self.num_states):
                adjacency[index] |= row[index]
        return _closure_mask(self.initial, adjacency)

    def coreachable_mask(self) -> int:
        """Bitset of states from which the final set is reachable."""
        reverse = [0] * self.num_states
        for row in self.delta:
            for source in range(self.num_states):
                targets = row[source]
                for target in bits(targets):
                    reverse[target] |= 1 << source
        return _closure_mask(self.final, reverse)

    def live_mask(self) -> int:
        """States both reachable and co-reachable (the trim kernel)."""
        return self.reachable_mask() & self.coreachable_mask()

    def is_empty(self) -> bool:
        """True iff no accepting state is reachable."""
        return not (self.reachable_mask() & self.final)

    def shortest_word(self) -> Word | None:
        """A shortest accepted word, or None (layered bitset BFS)."""
        if self.initial & self.final:
            return ()
        layers = [self.initial]
        seen = self.initial
        num_symbols = len(self.symbols)
        while True:
            frontier = layers[-1]
            if not frontier:
                return None
            step = 0
            for row in range(num_symbols):
                step |= self.successor_mask(frontier, row)
            new = step & ~seen
            if not new:
                return None
            seen |= new
            layers.append(new)
            if new & self.final:
                break
        # Backtrack a witness through the BFS layers.
        cursor = next(bits(layers[-1] & self.final))
        word: list[str] = []
        for depth in range(len(layers) - 1, 0, -1):
            previous = layers[depth - 1]
            for row in range(num_symbols):
                found = False
                for source in bits(previous):
                    if (self.delta[row][source] >> cursor) & 1:
                        word.append(self.symbols[row])
                        cursor = source
                        found = True
                        break
                if found:
                    break
        return tuple(reversed(word))

    def determinize(self) -> "IndexedDFA":
        """Subset construction; the result is complete over ``symbols``.

        DFA state ``i`` stands for the NFA-state bitset
        ``subset_masks[i]``; the empty subset is the (reachable) sink.
        """
        initial = self.initial
        index_of: dict[int, int] = {initial: 0}
        subset_masks: list[int] = [initial]
        num_symbols = len(self.symbols)
        delta: list[list[int]] = [[] for _ in range(num_symbols)]
        position = 0
        while position < len(subset_masks):
            mask = subset_masks[position]
            for row in range(num_symbols):
                target_mask = self.successor_mask(mask, row)
                target = index_of.get(target_mask)
                if target is None:
                    target = len(subset_masks)
                    index_of[target_mask] = target
                    subset_masks.append(target_mask)
                delta[row].append(target)
            position += 1
        final = _mask_of(
            i for i, mask in enumerate(subset_masks) if mask & self.final
        )
        return IndexedDFA(
            self.symbols, len(subset_masks), delta, 0, final,
            tuple(subset_masks), self.state_names,
        )

    def product(self, other: "IndexedNFA") -> "IndexedNFA":
        """Intersection automaton (reachable pairs only).

        Both operands must share a symbol order (build them with the
        same ``alphabet`` argument); pair states are encoded as
        ``i * other.num_states + j`` during the BFS and named
        ``(self.state_names[i], other.state_names[j])`` in the result.
        """
        if self.symbols != other.symbols:
            raise ValueError("product operands must share a symbol order")
        width = other.num_states
        num_symbols = len(self.symbols)
        code_of: dict[int, int] = {}
        names: list[tuple] = []
        edges: list[tuple[int, int, int]] = []  # (source, symbol_id, target)

        def intern(code: int) -> int:
            dense = code_of.get(code)
            if dense is None:
                dense = len(names)
                code_of[code] = dense
                i, j = divmod(code, width)
                names.append((self.state_names[i], other.state_names[j]))
            return dense

        queue: deque[int] = deque()
        for i in bits(self.initial):
            for j in bits(other.initial):
                code = i * width + j
                if code not in code_of:
                    intern(code)
                    queue.append(code)
        initial_count = len(names)
        while queue:
            code = queue.popleft()
            source = code_of[code]
            i, j = divmod(code, width)
            for row in range(num_symbols):
                left_targets = self.delta[row][i]
                if not left_targets:
                    continue
                right_targets = other.delta[row][j]
                if not right_targets:
                    continue
                for i2 in bits(left_targets):
                    base = i2 * width
                    for j2 in bits(right_targets):
                        next_code = base + j2
                        fresh = next_code not in code_of
                        target = intern(next_code)
                        edges.append((source, row, target))
                        if fresh:
                            queue.append(next_code)
        n = len(names)
        delta = [[0] * n for _ in range(num_symbols)]
        for source, row, target in edges:
            delta[row][source] |= 1 << target
        final = 0
        for code, dense in code_of.items():
            i, j = divmod(code, width)
            if ((self.final >> i) & 1) and ((other.final >> j) & 1):
                final |= 1 << dense
        return IndexedNFA(
            self.symbols, n, delta, _mask_of(range(initial_count)), final,
            tuple(names),
        )


class IndexedDFA:
    """A complete DFA over dense integer states (subset-construction image).

    Attributes:
        delta: ``delta[symbol_id][state]`` is the unique successor state.
        final: bitset of accepting states.
        subset_masks: the NFA-state bitset each DFA state stands for.
        nfa_state_names: the source NFA's state names (for decompiling).
    """

    __slots__ = ("symbols", "symbol_index", "num_states", "delta",
                 "initial", "final", "subset_masks", "nfa_state_names")

    def __init__(
        self,
        symbols: tuple[str, ...],
        num_states: int,
        delta: list[list[int]],
        initial: int,
        final: int,
        subset_masks: tuple[int, ...] | None = None,
        nfa_state_names: tuple[Hashable, ...] | None = None,
    ) -> None:
        self.symbols = symbols
        self.symbol_index = {symbol: i for i, symbol in enumerate(symbols)}
        self.num_states = num_states
        self.delta = delta
        self.initial = initial
        self.final = final
        self.subset_masks = subset_masks
        self.nfa_state_names = nfa_state_names

    def step(self, state: int, symbol_id: int) -> int:
        return self.delta[symbol_id][state]

    def accepts(self, word: Word) -> bool:
        state = self.initial
        for symbol in word:
            state = self.delta[self.symbol_index[symbol]][state]
        return bool((self.final >> state) & 1)

    def complement(self) -> "IndexedDFA":
        """Flip the accepting set (the DFA is complete by construction)."""
        all_states = (1 << self.num_states) - 1
        return IndexedDFA(
            self.symbols, self.num_states, self.delta, self.initial,
            all_states & ~self.final, self.subset_masks, self.nfa_state_names,
        )

    def is_empty(self) -> bool:
        adjacency = [0] * self.num_states
        for row in self.delta:
            for source in range(self.num_states):
                adjacency[source] |= 1 << row[source]
        return not (_closure_mask(1 << self.initial, adjacency) & self.final)

    def to_dfa(self) -> "DFA":
        """Decompile to :class:`repro.automata.dfa.DFA`.

        When this DFA came from :meth:`IndexedNFA.determinize`, states
        are rendered as frozensets of the source NFA's state names —
        exactly what the object-level subset construction produces, so
        the two paths are interchangeable.
        """
        from .dfa import DFA

        if self.subset_masks is not None and self.nfa_state_names is not None:
            names: list[Hashable] = [
                frozenset(self.nfa_state_names[i] for i in bits(mask))
                for mask in self.subset_masks
            ]
        else:
            names = list(range(self.num_states))
        transitions = {
            (names[source], self.symbols[row]): names[self.delta[row][source]]
            for row in range(len(self.symbols))
            for source in range(self.num_states)
        }
        return DFA(
            self.symbols,
            frozenset(names),
            names[self.initial],
            frozenset(names[i] for i in bits(self.final)),
            transitions,
        )


# --- drop-in replacements for the object-level hot paths ------------------------


def product_nfa(left: NFA, right: NFA) -> NFA:
    """Indexed kernel behind :meth:`repro.automata.nfa.NFA.product`."""
    alphabet = tuple(
        symbol for symbol in left.alphabet if symbol in set(right.alphabet)
    )
    compiled = IndexedNFA.from_nfa(left, alphabet).product(
        IndexedNFA.from_nfa(right, alphabet)
    )
    return compiled.to_nfa()


def containment_counterexample_indexed(
    left: NFA,
    right: NFA,
    alphabet: Sequence[str],
    meter=None,
    tracer=None,
    kernel: str = "auto",
    kernel_stats: dict | None = None,
) -> Word | None:
    """A shortest word in ``L(left) - L(right)``, or None if contained.

    The kernel behind the Lemma 1 pipeline: a BFS over configurations
    ``(left state, right subset bitset)`` — i.e. the product of ``left``
    with the complement of ``right``'s subset construction, explored on
    the fly so the exponential determinization is never materialized
    beyond its reachable-under-``left`` part.  Subset steps are memoized
    per (bitset, symbol), which is exactly incremental determinization.

    *kernel* selects the search strategy: ``"antichain"`` (and the
    default ``"auto"``) dispatches to the subsumption-pruned frontier in
    :mod:`repro.automata.antichain`; ``"subset"`` keeps the plain
    visited-set BFS below as the ablation baseline.  Both return
    shortest witnesses, so verdicts *and* witness lengths agree bit for
    bit.  *kernel_stats* (if given) is filled with the selected kernel
    and its frontier statistics.

    An optional :class:`repro.budget.BudgetMeter` is charged one
    ``"configs"`` unit per configuration (cooperative exhaustion).  An
    optional :class:`repro.obs.trace.Tracer` records the search as one
    ``emptiness-search`` span (configs and memoized subset steps are
    counted once at the end — never inside the BFS loop; the antichain
    path nests ``simulation`` and ``antichain-search`` child spans).
    """
    from .antichain import antichain_containment_search, record_search, resolve_kernel

    if resolve_kernel(kernel) == "antichain":
        return antichain_containment_search(
            left, right, alphabet, meter=meter, tracer=tracer, stats=kernel_stats
        )
    if kernel_stats is not None:
        # Set eagerly so a BudgetExhausted unwind still reports the
        # kernel that was actually running.
        kernel_stats["selected"] = "subset"
    if tracer is not None:
        with tracer.span(
            "emptiness-search",
            kernel="incremental-determinization",
            left_states=left.num_states,
            right_states=right.num_states,
        ) as span:
            witness, explored, subset_steps = _containment_search(
                left, right, alphabet, meter
            )
            span.count("configs", explored)
            span.count("subset_steps", subset_steps)
            span.annotate(witness_length=None if witness is None else len(witness))
            record_search("subset")
            if kernel_stats is not None:
                kernel_stats.update(
                    selected="subset", configs=explored, subset_steps=subset_steps
                )
            return witness
    witness, explored, subset_steps = _containment_search(left, right, alphabet, meter)
    record_search("subset")
    if kernel_stats is not None:
        kernel_stats.update(
            selected="subset", configs=explored, subset_steps=subset_steps
        )
    return witness


def _containment_search(
    left: NFA, right: NFA, alphabet: Sequence[str], meter=None
) -> tuple[Word | None, int, int]:
    """(witness, configurations explored, memoized subset steps)."""
    alpha = tuple(dict.fromkeys(alphabet))
    compiled_left = IndexedNFA.from_nfa(left, alpha)
    compiled_right = IndexedNFA.from_nfa(right, alpha)
    right_final = compiled_right.final

    def accepted(state: int, mask: int) -> bool:
        return bool((compiled_left.final >> state) & 1) and not (mask & right_final)

    start_mask = compiled_right.initial
    initial = [(state, start_mask) for state in bits(compiled_left.initial)]
    parents: dict[tuple[int, int], tuple[tuple[int, int], int] | None] = {
        config: None for config in initial
    }
    if meter is not None:
        meter.charge("configs", len(initial))
    hit = next((config for config in initial if accepted(*config)), None)
    queue = deque(initial)
    subset_step: dict[tuple[int, int], int] = {}
    num_symbols = len(alpha)
    while queue and hit is None:
        config = queue.popleft()
        state, mask = config
        if meter is not None:
            meter.poll()
        for row in range(num_symbols):
            left_targets = compiled_left.delta[row][state]
            if not left_targets:
                continue
            key = (mask, row)
            next_mask = subset_step.get(key)
            if next_mask is None:
                next_mask = compiled_right.successor_mask(mask, row)
                subset_step[key] = next_mask
            for next_state in bits(left_targets):
                next_config = (next_state, next_mask)
                if next_config in parents:
                    continue
                parents[next_config] = (config, row)
                if meter is not None:
                    meter.charge("configs")
                if accepted(next_state, next_mask):
                    hit = next_config
                    break
                queue.append(next_config)
            if hit is not None:
                break
    if hit is None:
        return None, len(parents), len(subset_step)
    word: list[str] = []
    cursor: tuple[int, int] = hit
    while parents[cursor] is not None:
        cursor, row = parents[cursor]  # type: ignore[misc]
        word.append(alpha[row])
    return tuple(reversed(word)), len(parents), len(subset_step)


def minimize_dfa(dfa: "DFA") -> "DFA":
    """Indexed Hopcroft refinement behind :meth:`DFA.minimize`.

    Blocks are bitsets over interned DFA states; the result renders each
    block as a frozenset of original states, matching the object-level
    implementation (partition refinement computes the unique coarsest
    partition, so both paths produce the identical automaton).
    """
    names = tuple(sorted(dfa.states, key=repr))
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    symbols = dfa.alphabet
    num_symbols = len(symbols)
    symbol_index = {symbol: i for i, symbol in enumerate(symbols)}
    forward = [[0] * n for _ in range(num_symbols)]  # target index per state
    reverse = [[0] * n for _ in range(num_symbols)]  # predecessor bitsets
    adjacency = [0] * n
    for (source, symbol), target in dfa.transitions.items():
        row = symbol_index[symbol]
        s, t = index[source], index[target]
        forward[row][s] = t
        reverse[row][t] |= 1 << s
        adjacency[s] |= 1 << t
    reachable = _closure_mask(1 << index[dfa.initial], adjacency)
    final = _mask_of(index[s] for s in dfa.final) & reachable
    non_final = reachable & ~final
    partition = [block for block in (final, non_final) if block]
    worklist = deque(partition)
    while worklist:
        splitter = worklist.popleft()
        for row in range(num_symbols):
            predecessors = 0
            for target in bits(splitter):
                predecessors |= reverse[row][target]
            predecessors &= reachable
            if not predecessors:
                continue
            next_partition: list[int] = []
            for block in partition:
                inside = block & predecessors
                outside = block & ~predecessors
                if inside and outside:
                    next_partition.append(inside)
                    next_partition.append(outside)
                    try:
                        position = worklist.index(block)
                    except ValueError:
                        position = -1
                    if position >= 0:
                        del worklist[position]
                        worklist.append(inside)
                        worklist.append(outside)
                    else:
                        smaller = min(
                            (inside, outside), key=lambda m: m.bit_count()
                        )
                        worklist.append(smaller)
                else:
                    next_partition.append(block)
            partition = next_partition
    from .dfa import DFA

    block_names = [
        frozenset(names[i] for i in bits(block)) for block in partition
    ]
    block_of_state: dict[int, int] = {}
    for position, block in enumerate(partition):
        for state in bits(block):
            block_of_state[state] = position
    transitions = {
        (block_names[position], symbols[row]): block_names[
            block_of_state[forward[row][next(bits(block))]]
        ]
        for position, block in enumerate(partition)
        for row in range(num_symbols)
    }
    final_blocks = frozenset(
        block_names[position]
        for position, block in enumerate(partition)
        if block & final
    )
    return DFA(
        symbols,
        frozenset(block_names),
        block_names[block_of_state[index[dfa.initial]]],
        final_blocks,
        transitions,
    )


def graph_product_targets(
    nfa: IndexedNFA,
    adjacency: Sequence[Sequence[Sequence[int]]],
    num_nodes: int,
    source: int,
) -> int:
    """RPQ product-BFS kernel: bitset of nodes reachable from *source*.

    Args:
        nfa: the compiled query automaton.
        adjacency: ``adjacency[symbol_id][node]`` lists successor node
            indices (the caller pre-resolves inverse letters).
        num_nodes: graph size (node indices are ``0 .. num_nodes - 1``).
        source: the start node index.

    Returns:
        A bitset over node indices: nodes ``y`` such that some semipath
        from *source* to ``y`` spells a word of the language.

    Each node carries the bitset of automaton states reachable alongside
    it; the BFS propagates *newly added* state bits only, so each
    (node, state) configuration is expanded at most once.
    """
    node_masks = [0] * num_nodes
    node_masks[source] = nfa.initial
    queue: deque[tuple[int, int]] = deque()
    if nfa.initial:
        queue.append((source, nfa.initial))
    num_symbols = len(nfa.symbols)
    while queue:
        node, added = queue.popleft()
        for row in range(num_symbols):
            next_states = nfa.successor_mask(added, row)
            if not next_states:
                continue
            for neighbor in adjacency[row][node]:
                fresh = next_states & ~node_masks[neighbor]
                if fresh:
                    node_masks[neighbor] |= fresh
                    queue.append((neighbor, fresh))
    final = nfa.final
    found = 0
    for node in range(num_nodes):
        if node_masks[node] & final:
            found |= 1 << node
    return found
