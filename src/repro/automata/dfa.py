"""Deterministic finite automata: determinization, complement, minimization.

Step 2 of the paper's RPQ-containment algorithm complements an NFA via
the subset construction (the "exponential blow-up" the paper mentions);
this module implements that step plus Hopcroft minimization, which the
benchmarks use to report canonical sizes, and language-level decision
procedures (`contains`, `equivalent`) that serve as ground-truth oracles
for the on-the-fly pipeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from .nfa import NFA, Word

State = Hashable


@dataclass(frozen=True)
class DFA:
    """A complete deterministic automaton.

    Every state has exactly one successor per alphabet symbol (a sink
    state is added during construction when needed), which makes
    complementation a matter of flipping the accepting set.
    """

    alphabet: tuple[str, ...]
    states: frozenset
    initial: State
    final: frozenset
    transitions: Mapping[tuple[State, str], State]

    def step(self, state: State, symbol: str) -> State:
        return self.transitions[(state, symbol)]

    def accepts(self, word: Word) -> bool:
        state = self.initial
        for symbol in word:
            state = self.step(state, symbol)
        return state in self.final

    @property
    def num_states(self) -> int:
        return len(self.states)

    def complement(self) -> "DFA":
        """The DFA for the complement language (flip accepting states)."""
        return DFA(
            self.alphabet,
            self.states,
            self.initial,
            frozenset(self.states - self.final),
            self.transitions,
        )

    def to_nfa(self) -> NFA:
        transitions = [
            (source, symbol, target)
            for (source, symbol), target in self.transitions.items()
        ]
        return NFA.build(self.alphabet, self.states, [self.initial], self.final, transitions)

    def is_empty(self) -> bool:
        return self.to_nfa().is_empty()

    def minimize(self) -> "DFA":
        """Hopcroft partition refinement; returns the canonical minimal DFA.

        States of the result are frozensets (the equivalence blocks).
        Dispatches to the bitset kernel of :mod:`repro.automata.indexed`
        unless the indexed kernels are disabled (ablation baseline).
        """
        from .indexed import indexed_kernels_enabled, minimize_dfa

        if indexed_kernels_enabled():
            return minimize_dfa(self)
        reachable = self._reachable()
        final = frozenset(s for s in reachable if s in self.final)
        non_final = frozenset(reachable - final)
        partition: set[frozenset] = {block for block in (final, non_final) if block}
        worklist: deque[frozenset] = deque(partition)
        # Precompute reverse transitions per symbol for splitting.
        reverse: dict[str, dict[State, set]] = {symbol: {} for symbol in self.alphabet}
        for (source, symbol), target in self.transitions.items():
            if source in reachable:
                reverse[symbol].setdefault(target, set()).add(source)
        while worklist:
            splitter = worklist.popleft()
            for symbol in self.alphabet:
                predecessors: set = set()
                for state in splitter:
                    predecessors |= reverse[symbol].get(state, set())
                if not predecessors:
                    continue
                new_partition: set[frozenset] = set()
                for block in partition:
                    inside = block & predecessors
                    outside = block - predecessors
                    if inside and outside:
                        new_partition.add(frozenset(inside))
                        new_partition.add(frozenset(outside))
                        if block in worklist:
                            worklist.remove(block)
                            worklist.append(frozenset(inside))
                            worklist.append(frozenset(outside))
                        else:
                            smaller = min((inside, outside), key=len)
                            worklist.append(frozenset(smaller))
                    else:
                        new_partition.add(block)
                partition = new_partition
        block_of = {
            state: block for block in partition for state in block
        }
        transitions = {
            (block, symbol): block_of[self.step(next(iter(block)), symbol)]
            for block in partition
            for symbol in self.alphabet
        }
        final_blocks = frozenset(block for block in partition if block & self.final)
        return DFA(
            self.alphabet,
            frozenset(partition),
            block_of[self.initial],
            final_blocks,
            transitions,
        )

    def _reachable(self) -> set:
        seen = {self.initial}
        queue = deque([self.initial])
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                nxt = self.step(state, symbol)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen


_SINK = ("__sink__",)


def determinize(
    nfa: NFA, alphabet: Iterable[str] | None = None, tracer=None
) -> DFA:
    """Subset construction (the paper's step 2); result is complete.

    Args:
        nfa: the automaton to determinize.
        alphabet: symbols of the result; defaults to the NFA's alphabet.
            Supplying a larger alphabet matters for complementation,
            where "complement" must be taken relative to the full
            Sigma* (or Sigma±*) of the containment problem.
        tracer: optional :class:`repro.obs.trace.Tracer`; records a
            ``determinize`` span with input/output state counts and the
            cache outcome.

    Repeated determinizations of the same automaton are served from the
    canonical-form-keyed cache in :mod:`repro.cache`; the subset
    construction itself runs on the bitset kernel unless the indexed
    kernels are disabled (ablation baseline).
    """
    from ..cache import determinize_cache, nfa_cache_key

    if tracer is None:
        alpha = tuple(dict.fromkeys(alphabet)) if alphabet is not None else nfa.alphabet
        key = nfa_cache_key(nfa, alpha)
        cached = determinize_cache.get(key)
        if cached is not None:
            return cached
        result = _determinize_uncached(nfa, alpha)
        determinize_cache.put(key, result)
        return result
    with tracer.span("determinize", nfa_states=nfa.num_states) as span:
        alpha = tuple(dict.fromkeys(alphabet)) if alphabet is not None else nfa.alphabet
        key = nfa_cache_key(nfa, alpha)
        cached = determinize_cache.get(key)
        if cached is not None:
            span.event("cache", outcome="hit")
            span.annotate(dfa_states=cached.num_states)
            return cached
        span.event("cache", outcome="miss")
        result = _determinize_uncached(nfa, alpha)
        span.annotate(dfa_states=result.num_states)
        determinize_cache.put(key, result)
        return result


def _determinize_uncached(nfa: NFA, alpha: tuple[str, ...]) -> DFA:
    from .indexed import IndexedNFA, indexed_kernels_enabled

    if indexed_kernels_enabled():
        return IndexedNFA.from_nfa(nfa, alpha).determinize().to_dfa()
    initial = frozenset(nfa.initial)
    states: set[frozenset] = {initial}
    transitions: dict[tuple[frozenset, str], frozenset] = {}
    queue = deque([initial])
    while queue:
        subset = queue.popleft()
        for symbol in alpha:
            nxt: set = set()
            for state in subset:
                nxt |= nfa.successors(state, symbol)
            target = frozenset(nxt)
            transitions[(subset, symbol)] = target
            if target not in states:
                states.add(target)
                queue.append(target)
    final = frozenset(subset for subset in states if subset & nfa.final)
    return DFA(alpha, frozenset(states), initial, final, transitions)


def complement_nfa(
    nfa: NFA, alphabet: Iterable[str] | None = None, tracer=None
) -> NFA:
    """NFA for the complement of L(nfa) relative to *alphabet*.

    Determinize, complete, flip finals, and return as an NFA.  This is
    the classical exponential complementation the paper contrasts with
    Lemma 4's two-way construction.
    """
    return determinize(nfa, alphabet, tracer=tracer).complement().to_nfa()


def reduce_nfa(nfa: NFA, alphabet: Iterable[str] | None = None) -> NFA:
    """A smaller NFA for the same language, when one is cheaply available.

    Trims dead states, then tries determinize + Hopcroft-minimize (over
    the NFA's own alphabet) and keeps whichever result has fewer states.
    Thompson-constructed automata typically shrink by 2-4x, which matters
    a lot downstream: the fold and complementation constructions are
    (singly and exponentially) sensitive to input state counts.
    """
    trimmed = nfa.trim()
    if trimmed.num_states == 0:
        return trimmed
    try:
        minimized = determinize(trimmed, alphabet).minimize().to_nfa().trim()
    except MemoryError:  # pragma: no cover - pathological inputs only
        return trimmed
    chosen = minimized if minimized.num_states < trimmed.num_states else trimmed
    return chosen.renumber()


def nfa_contains(left: NFA, right: NFA, alphabet: Iterable[str] | None = None) -> bool:
    """Decide L(left) ⊆ L(right) by intersecting with the complement."""
    if alphabet is None:
        alphabet = tuple(dict.fromkeys(left.alphabet + right.alphabet))
    witness = containment_counterexample(left, right, alphabet)
    return witness is None


def containment_counterexample(
    left: NFA,
    right: NFA,
    alphabet: Iterable[str] | None = None,
    meter=None,
    tracer=None,
    kernel: str = "auto",
    kernel_stats: dict | None = None,
) -> Word | None:
    """A shortest word in L(left) - L(right), or None if contained.

    With the indexed kernels enabled this never materializes the
    complement automaton: the search runs over ``(left state, right
    subset bitset)`` configurations, determinizing the right side
    incrementally (see
    :func:`repro.automata.indexed.containment_counterexample_indexed`).
    *kernel* (``"subset" | "antichain" | "auto"``) selects between the
    plain visited-set search and the simulation-subsumption antichain
    search; the materializing pipeline below stays as the ablation
    baseline when the indexed kernels are switched off (and then runs
    regardless of *kernel*, recorded honestly in *kernel_stats*).

    An optional :class:`repro.budget.BudgetMeter` bounds the search
    (configs budget + deadline on the indexed path; coarse deadline
    checks between pipeline stages on the baseline path).  An optional
    :class:`repro.obs.trace.Tracer` records one span per pipeline stage
    (complement, product, emptiness search).
    """
    from .antichain import resolve_kernel
    from .indexed import containment_counterexample_indexed, indexed_kernels_enabled

    resolve_kernel(kernel)  # reject typos before any work
    if alphabet is None:
        alphabet = tuple(dict.fromkeys(left.alphabet + right.alphabet))
    alpha = tuple(alphabet)
    if indexed_kernels_enabled():
        return containment_counterexample_indexed(
            left, right, alpha, meter=meter, tracer=tracer,
            kernel=kernel, kernel_stats=kernel_stats,
        )
    if kernel_stats is not None:
        kernel_stats.update(selected="subset", pipeline="materialized")
    if meter is not None:
        meter.check_deadline()
    if tracer is None:
        complement = complement_nfa(right, alpha)
        if meter is not None:
            meter.check_deadline()
        product = left.product(complement)
        if meter is not None:
            meter.charge("configs", product.num_states)
        return product.shortest_word()
    with tracer.span("complement", nfa_states=right.num_states):
        complement = complement_nfa(right, alpha, tracer=tracer)
    if meter is not None:
        meter.check_deadline()
    with tracer.span("product") as span:
        product = left.product(complement)
        span.count("configs", product.num_states)
    if meter is not None:
        meter.charge("configs", product.num_states)
    with tracer.span("emptiness-search"):
        return product.shortest_word()


def nfa_equivalent(left: NFA, right: NFA, alphabet: Iterable[str] | None = None) -> bool:
    """Decide L(left) = L(right)."""
    if alphabet is None:
        alphabet = tuple(dict.fromkeys(left.alphabet + right.alphabet))
    return nfa_contains(left, right, alphabet) and nfa_contains(right, left, alphabet)
