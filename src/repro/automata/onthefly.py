"""On-the-fly product emptiness (steps 4-5 of the paper's algorithm).

The paper's PSPACE upper bounds hinge on never materializing the
exponential complement automaton: "we construct A on the fly,
constructing states only as we search for a path from a start state to a
final state".  This module implements that search generically over
*implicit automata* — objects exposing initial states, successor states,
and a final-state test — so the same code runs the RPQ pipeline
(NFA x complement-DFA) and the 2RPQ pipeline (NFA x Lemma-4 complement).

The search is a breadth-first exploration of the product configuration
space, which returns a *shortest* accepted word; containment refutations
therefore come with minimal counterexample words.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, Sequence

from .nfa import NFA, Word


class ImplicitNFA(Protocol):
    """The protocol on-the-fly searches consume."""

    def initial_states(self) -> Iterable: ...

    def successor_states(self, state, symbol: str) -> Iterable: ...

    def is_final(self, state) -> bool: ...


@dataclass
class ExplicitNFA:
    """Adapter exposing a materialized :class:`NFA` as an implicit one."""

    nfa: NFA

    def initial_states(self) -> Iterable:
        return self.nfa.initial

    def successor_states(self, state, symbol: str) -> Iterable:
        return self.nfa.successors(state, symbol)

    def is_final(self, state) -> bool:
        return state in self.nfa.final


class SearchBudgetExceeded(RuntimeError):
    """Raised when the product search exceeds its configuration budget."""


@dataclass
class SearchStats:
    """Instrumentation for the benchmarks (explored state counts)."""

    explored: int = 0
    frontier_peak: int = 0


def find_accepted_word(
    machines: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None = None,
    stats: SearchStats | None = None,
) -> Word | None:
    """Shortest word accepted by *every* machine, or None if none exists.

    Args:
        machines: implicit automata to intersect.
        alphabet: symbols to search over.
        max_configs: optional exploration budget (product configurations);
            :class:`SearchBudgetExceeded` is raised when exceeded.
            Because every implicit machine here has a finite state space,
            the search always terminates without a budget as well.
        stats: optional :class:`SearchStats` to fill in.

    Returns:
        The shortest word in the intersection, or None.
    """
    initial: list[tuple] = []
    seeds = [list(machine.initial_states()) for machine in machines]
    if any(not seed for seed in seeds):
        return None
    initial = list(_cartesian(seeds))

    parents: dict[tuple, tuple[tuple, str] | None] = {tup: None for tup in initial}
    queue: deque[tuple] = deque(initial)

    def accepted(tup: tuple) -> bool:
        return all(machine.is_final(state) for machine, state in zip(machines, tup))

    hit = next((tup for tup in initial if accepted(tup)), None)
    while queue and hit is None:
        tup = queue.popleft()
        if stats is not None:
            stats.explored += 1
            stats.frontier_peak = max(stats.frontier_peak, len(queue))
        for symbol in alphabet:
            successor_sets = [
                list(machine.successor_states(state, symbol))
                for machine, state in zip(machines, tup)
            ]
            if any(not successors for successors in successor_sets):
                continue
            for nxt in _cartesian(successor_sets):
                if nxt in parents:
                    continue
                parents[nxt] = (tup, symbol)
                if max_configs is not None and len(parents) > max_configs:
                    raise SearchBudgetExceeded(
                        f"product search exceeded {max_configs} configurations"
                    )
                if accepted(nxt):
                    hit = nxt
                    break
                queue.append(nxt)
            if hit is not None:
                break
    if hit is None:
        return None
    word: list[str] = []
    cursor = hit
    while parents[cursor] is not None:
        cursor, symbol = parents[cursor]  # type: ignore[misc]
        word.append(symbol)
    return tuple(reversed(word))


def _cartesian(pools: Sequence[Sequence]) -> Iterator[tuple]:
    """itertools.product over possibly lazy pools (already materialized)."""
    import itertools

    return itertools.product(*pools)


def intersection_is_empty(
    machines: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None = None,
) -> bool:
    """True iff the machines' languages have empty intersection."""
    return find_accepted_word(machines, alphabet, max_configs) is None
