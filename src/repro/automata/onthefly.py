"""On-the-fly product emptiness (steps 4-5 of the paper's algorithm).

The paper's PSPACE upper bounds hinge on never materializing the
exponential complement automaton: "we construct A on the fly,
constructing states only as we search for a path from a start state to a
final state".  This module implements that search generically over
*implicit automata* — objects exposing initial states, successor states,
and a final-state test — so the same code runs the RPQ pipeline
(NFA x complement-DFA) and the 2RPQ pipeline (NFA x Lemma-4 complement).

The search is a breadth-first exploration of the product configuration
space, which returns a *shortest* accepted word; containment refutations
therefore come with minimal counterexample words.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, Sequence

from ..budget import BudgetExhausted, BudgetMeter
from .nfa import NFA, Word


class ImplicitNFA(Protocol):
    """The protocol on-the-fly searches consume.

    :class:`repro.automata.nfa.NFA` and
    :class:`repro.automata.indexed.IndexedNFA` implement it directly
    (the latter with plain-int states), as do the lazy complement
    constructions in :mod:`repro.automata.complement` and
    :mod:`repro.automata.shepherdson`.
    """

    def initial_states(self) -> Iterable: ...

    def successor_states(self, state, symbol: str) -> Iterable: ...

    def is_final(self, state) -> bool: ...


def ExplicitNFA(nfa: NFA) -> NFA:  # noqa: N802 - kept for API compatibility
    """Deprecated identity adapter: NFA implements :class:`ImplicitNFA` itself.

    Earlier versions wrapped a materialized :class:`NFA` to expose the
    implicit-automaton protocol; the protocol methods now live on
    :class:`NFA` directly, so callers should pass the automaton as-is.
    """
    return nfa


class SearchBudgetExceeded(BudgetExhausted):
    """Raised when the product search exceeds its configuration budget.

    A :class:`repro.budget.BudgetExhausted` subclass: the containment
    procedures catch the whole family and convert it into a structured
    bounded verdict, while direct kernel callers keep this type.
    """


@dataclass
class SearchStats:
    """Instrumentation for the benchmarks (explored state counts)."""

    explored: int = 0
    frontier_peak: int = 0


def find_accepted_word(
    machines: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None = None,
    stats: SearchStats | None = None,
    meter: BudgetMeter | None = None,
    tracer=None,
    kernel: str = "auto",
    kernel_stats: dict | None = None,
) -> Word | None:
    """Shortest word accepted by *every* machine, or None if none exists.

    Args:
        machines: implicit automata to intersect.
        alphabet: symbols to search over.
        max_configs: optional exploration budget (product configurations);
            :class:`SearchBudgetExceeded` is raised when exceeded.
            Because every implicit machine here has a finite state space,
            the search always terminates without a budget as well.
        stats: optional :class:`SearchStats` to fill in.
        meter: optional :class:`repro.budget.BudgetMeter`; the search
            charges one ``"configs"`` unit per product configuration and
            polls the wall-clock deadline, raising
            :class:`repro.budget.BudgetExhausted` cooperatively.
        tracer: optional :class:`repro.obs.trace.Tracer`; records the
            search as one ``product-search`` span (kernel choice and
            witness length as tags, configurations as a counter — set
            once on exit, never inside the BFS loop).
        kernel: ``"subset" | "antichain" | "auto"``.  On the bitset
            path, ``"antichain"`` (and the default ``"auto"``) quotients
            the first machine by simulation equivalence and prunes
            freshly discovered first-machine states that are simulated
            by an already-seen sibling at the same rest-configuration —
            a simulator accepts every suffix the pruned state would, so
            verdicts and shortest-witness lengths are unchanged.  The
            generic fallback ignores the option (recorded honestly in
            *kernel_stats*).
        kernel_stats: optional dict filled with the selected kernel and
            its pruning statistics.

    Returns:
        The shortest word in the intersection, or None.

    When the first machine is a materialized :class:`NFA` and no stats
    object is attached, the search dispatches to a bitset kernel that
    tracks that machine's states as a big-int set per configuration of
    the remaining machines — successor computations of the (expensive,
    lazily complemented) other machines then run once per configuration
    and symbol instead of once per product state.  The generic search
    in :func:`_generic_find_accepted_word` remains the ablation
    baseline.
    """
    from .antichain import resolve_kernel
    from .indexed import indexed_kernels_enabled

    resolved = resolve_kernel(kernel)
    use_bitset = (
        stats is None
        and bool(machines)
        and isinstance(machines[0], NFA)
        and indexed_kernels_enabled()
    )
    if not use_bitset:
        # The generic object-tuple search has no macrostate to subsume
        # against; record the honest fallback.
        resolved = "subset"
        if kernel_stats is not None:
            kernel_stats.update(selected="subset", search="generic")
    elif kernel_stats is not None:
        kernel_stats["selected"] = resolved
    if tracer is None:
        if use_bitset:
            return _bitset_find_accepted_word(
                machines[0], list(machines[1:]), alphabet, max_configs, meter,
                kernel=resolved, kernel_stats=kernel_stats,
            )
        return _generic_find_accepted_word(
            machines, alphabet, max_configs, stats, meter
        )
    with tracer.span(
        "product-search",
        machines=len(machines),
        kernel=f"bitset-{resolved}" if use_bitset else "generic",
    ) as span:
        if use_bitset:
            word = _bitset_find_accepted_word(
                machines[0], list(machines[1:]), alphabet, max_configs, meter,
                span=span, tracer=tracer, kernel=resolved,
                kernel_stats=kernel_stats,
            )
        else:
            word = _generic_find_accepted_word(
                machines, alphabet, max_configs, stats, meter, span=span
            )
        span.annotate(witness_length=None if word is None else len(word))
        return word


def _generic_find_accepted_word(
    machines: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None = None,
    stats: SearchStats | None = None,
    meter: BudgetMeter | None = None,
    span=None,
) -> Word | None:
    """The object-tuple BFS behind :func:`find_accepted_word`."""
    parents: dict[tuple, tuple[tuple, str] | None] = {}
    try:
        return _generic_search(machines, alphabet, max_configs, stats, meter, parents)
    finally:
        if span is not None:
            span.count("configs", len(parents))


def _generic_search(
    machines: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None,
    stats: SearchStats | None,
    meter: BudgetMeter | None,
    parents: dict,
) -> Word | None:
    initial: list[tuple] = []
    seeds = [_polled(machine.initial_states(), meter) for machine in machines]
    if any(not seed for seed in seeds):
        return None
    initial = list(_cartesian(seeds))

    parents.update({tup: None for tup in initial})
    queue: deque[tuple] = deque(initial)

    def accepted(tup: tuple) -> bool:
        return all(machine.is_final(state) for machine, state in zip(machines, tup))

    if meter is not None:
        meter.charge("configs", len(initial))
    hit = next((tup for tup in initial if accepted(tup)), None)
    while queue and hit is None:
        tup = queue.popleft()
        if stats is not None:
            stats.explored += 1
            stats.frontier_peak = max(stats.frontier_peak, len(queue))
        if meter is not None:
            meter.poll()
        for symbol in alphabet:
            successor_sets = [
                _polled(machine.successor_states(state, symbol), meter)
                for machine, state in zip(machines, tup)
            ]
            if any(not successors for successors in successor_sets):
                continue
            for nxt in _cartesian(successor_sets):
                if meter is not None:
                    meter.poll()
                if nxt in parents:
                    continue
                parents[nxt] = (tup, symbol)
                if meter is not None:
                    meter.charge("configs")
                if max_configs is not None and len(parents) > max_configs:
                    raise SearchBudgetExceeded(
                        f"product search exceeded {max_configs} configurations",
                        resource="configs",
                        spent=len(parents),
                        limit=max_configs,
                    )
                if accepted(nxt):
                    hit = nxt
                    break
                queue.append(nxt)
            if hit is not None:
                break
    if hit is None:
        return None
    word: list[str] = []
    cursor = hit
    while parents[cursor] is not None:
        cursor, symbol = parents[cursor]  # type: ignore[misc]
        word.append(symbol)
    return tuple(reversed(word))


def _cartesian(pools: Sequence[Sequence]) -> Iterator[tuple]:
    """itertools.product over possibly lazy pools (already materialized)."""
    import itertools

    return itertools.product(*pools)


def _polled(iterable: Iterable, meter: BudgetMeter | None) -> list:
    """Materialize *iterable*, polling the deadline per element.

    Lazy complement constructions can yield exponentially many successor
    candidates for a single (state, symbol) pair; polling inside the
    materialization keeps the wall-clock deadline cooperative even when
    no new configuration is being discovered.
    """
    if meter is None:
        return list(iterable)
    out = []
    for item in iterable:
        meter.poll()
        out.append(item)
    return out


def _bitset_find_accepted_word(
    first: NFA,
    rest: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None,
    meter: BudgetMeter | None = None,
    span=None,
    tracer=None,
    kernel: str = "antichain",
    kernel_stats: dict | None = None,
) -> Word | None:
    """Bitset kernel behind :func:`find_accepted_word` (same contract).

    A layered BFS over configurations of the *rest* machines, each
    carrying the bitset of *first*-machine states reachable alongside
    it; a product state ``(l, rest-tuple)`` is explored at most once
    (bit ``l`` enters the tuple's mask once), so the budget and the
    shortest-word guarantee match the generic search exactly.
    """
    from .antichain import record_search

    counted = [0, 0]  # configs, subsumption hits
    try:
        return _bitset_search(
            first, rest, alphabet, max_configs, meter, counted, tracer, kernel
        )
    finally:
        record_search(kernel, counted[1])
        if kernel_stats is not None:
            kernel_stats["configs"] = counted[0]
            if kernel == "antichain":
                kernel_stats["subsumption_hits"] = counted[1]
        if span is not None:
            span.count("configs", counted[0])
            if kernel == "antichain":
                span.count("subsumption_hits", counted[1])


def _bitset_search(
    first: NFA,
    rest: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None,
    meter: BudgetMeter | None,
    counted: list,
    tracer=None,
    kernel: str = "antichain",
) -> Word | None:
    from .indexed import IndexedNFA, bits

    alpha = tuple(dict.fromkeys(alphabet))
    left = IndexedNFA.from_nfa(first, alpha)
    simulated_by: list[int] | None = None
    if kernel == "antichain":
        from .antichain import simulation_preorder, simulation_quotient
        from ..obs.trace import maybe_span

        with maybe_span(tracer, "simulation", side="left", states=left.num_states) as sp:
            info = simulation_preorder(left, meter)
            quotient = simulation_quotient(left, info, meter)
            if quotient.num_states < left.num_states:
                left = quotient
                info = simulation_preorder(left, meter)
            if not info.is_identity:
                simulated_by = info.sim_by
            sp.annotate(quotient_states=left.num_states, passes=info.passes)
    if not left.initial:
        return None
    seeds = [_polled(machine.initial_states(), meter) for machine in rest]
    if any(not seed for seed in seeds):
        return None
    layer0: dict[tuple, int] = {
        others: left.initial for others in _cartesian(seeds)
    }
    seen: dict[tuple, int] = dict(layer0)
    final_mask = left.final

    def accepting_bit(others: tuple, mask: int) -> int | None:
        hit = mask & final_mask
        if hit and all(m.is_final(s) for m, s in zip(rest, others)):
            return next(bits(hit))
        return None

    for others, mask in layer0.items():
        if accepting_bit(others, mask) is not None:
            return ()

    total = counted[0] = sum(mask.bit_count() for mask in layer0.values())
    if meter is not None:
        meter.charge("configs", total)
    layers = [layer0]
    hit: tuple[tuple, int] | None = None
    while hit is None:
        frontier = layers[-1]
        if not frontier:
            return None
        next_layer: dict[tuple, int] = {}
        for others, mask in frontier.items():
            if meter is not None:
                meter.poll()
            for row, symbol in enumerate(left.symbols):
                image = left.successor_mask(mask, row)
                if not image:
                    continue
                successor_sets = [
                    _polled(machine.successor_states(state, symbol), meter)
                    for machine, state in zip(rest, others)
                ]
                if any(not successors for successors in successor_sets):
                    continue
                for next_others in _cartesian(successor_sets):
                    base = seen.get(next_others, 0)
                    fresh = image & ~base
                    if not fresh:
                        continue
                    if simulated_by is not None:
                        # Drop a fresh first-machine state when a sibling
                        # (seen earlier, or kept in this very step) at the
                        # same rest-configuration simulates it: the
                        # simulator accepts every suffix it would, at a
                        # depth no greater, so verdict and shortest-witness
                        # length are unchanged.  Mutually-simulating pairs
                        # keep the smaller index.
                        for state in bits(fresh):
                            dominators = (
                                (base | fresh) & simulated_by[state] & ~(1 << state)
                            )
                            for dom in bits(dominators):
                                if not ((simulated_by[dom] >> state) & 1) or dom < state:
                                    fresh &= ~(1 << state)
                                    counted[1] += 1
                                    break
                        if not fresh:
                            continue
                    seen[next_others] = base | fresh
                    next_layer[next_others] = next_layer.get(next_others, 0) | fresh
                    total = counted[0] = total + fresh.bit_count()
                    if meter is not None:
                        meter.charge("configs", fresh.bit_count())
                    if max_configs is not None and total > max_configs:
                        raise SearchBudgetExceeded(
                            f"product search exceeded {max_configs} configurations",
                            resource="configs",
                            spent=total,
                            limit=max_configs,
                        )
                    bit = accepting_bit(next_others, fresh)
                    if bit is not None:
                        hit = (next_others, bit)
                        break
                if hit is not None:
                    break
            if hit is not None:
                break
        layers.append(next_layer)
    # Backtrack a witness through the BFS layers.
    others, cursor = hit
    word: list[str] = []
    for depth in range(len(layers) - 1, 0, -1):
        found = False
        for prev_others, prev_mask in layers[depth - 1].items():
            for row, symbol in enumerate(left.symbols):
                if not ((left.successor_mask(prev_mask, row) >> cursor) & 1):
                    continue
                if any(
                    state not in machine.successor_states(prev_state, symbol)
                    for machine, prev_state, state in zip(rest, prev_others, others)
                ):
                    continue
                cursor = next(
                    index
                    for index in bits(prev_mask)
                    if (left.delta[row][index] >> cursor) & 1
                )
                word.append(symbol)
                others = prev_others
                found = True
                break
            if found:
                break
        assert found, "BFS layer invariant: every state has a predecessor"
    return tuple(reversed(word))


def intersection_is_empty(
    machines: Sequence[ImplicitNFA],
    alphabet: Sequence[str],
    max_configs: int | None = None,
    meter: BudgetMeter | None = None,
) -> bool:
    """True iff the machines' languages have empty intersection."""
    return find_accepted_word(machines, alphabet, max_configs, meter=meter) is None
