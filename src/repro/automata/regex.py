"""Regular expressions over edge alphabets, with inverse letters.

This module supplies the surface syntax for RPQs and 2RPQs (Section 3.1
of the paper): a regular expression over Sigma (or Sigma±, when inverse
letters such as ``r-`` appear) together with a Thompson construction to
:class:`repro.automata.nfa.NFA`.

Grammar (whitespace is insignificant; ``.`` is an optional explicit
concatenation operator)::

    expr    := term ("|" term)*
    term    := factor+                      # concatenation
    factor  := atom ("*" | "+" | "?")*
    atom    := SYMBOL | "(" expr ")" | "()"  # "()" denotes epsilon

    SYMBOL  := [A-Za-z_][A-Za-z0-9_]* "-"?   # trailing "-" = inverse letter

Examples: ``"p p- p"`` (the paper's Q2 = p·p⁻·p), ``"(a|b)* c"``,
``"knows+ worksAt"``.
"""

from __future__ import annotations

import itertools
import re as _re
from dataclasses import dataclass
from typing import Iterator

from .alphabet import inverse, is_inverse
from .nfa import EPSILON, NFA, Word, from_epsilon_nfa


class RegexSyntaxError(ValueError):
    """Raised when a regular-expression string cannot be parsed."""


# --- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Regex:
    """Base class for regular-expression AST nodes."""

    def symbols(self) -> frozenset[str]:
        """All letters (from Sigma±) occurring in the expression."""
        raise NotImplementedError

    def to_nfa(self) -> NFA:
        """Compile to an epsilon-free NFA via the Thompson construction."""
        builder = _ThompsonBuilder()
        start, end = builder.compile(self)
        alphabet = tuple(sorted(self.symbols()))
        return from_epsilon_nfa(
            alphabet, range(builder.counter), [start], [end], builder.transitions
        )

    def uses_inverse(self) -> bool:
        """True iff some inverse letter occurs (i.e. this is 2-way syntax)."""
        return any(is_inverse(symbol) for symbol in self.symbols())

    def inverse(self) -> "Regex":
        """The expression for the inverse language: reverse + invert letters."""
        raise NotImplementedError

    # Operator sugar so expressions compose naturally in user code.
    def __or__(self, other: "Regex") -> "Regex":
        return Union(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return Concat(self, other)

    def star(self) -> "Regex":
        return Star(self)

    def plus(self) -> "Regex":
        return Plus(self)

    def optional(self) -> "Regex":
        return Optional_(self)


@dataclass(frozen=True)
class EmptySet(Regex):
    """The empty language."""

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def inverse(self) -> Regex:
        return self

    def __str__(self) -> str:
        return "{}"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty word."""

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def inverse(self) -> Regex:
        return self

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Sym(Regex):
    """A single letter of Sigma±."""

    symbol: str

    def symbols(self) -> frozenset[str]:
        return frozenset({self.symbol})

    def inverse(self) -> Regex:
        return Sym(inverse(self.symbol))

    def __str__(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class Concat(Regex):
    left: Regex
    right: Regex

    def symbols(self) -> frozenset[str]:
        return self.left.symbols() | self.right.symbols()

    def inverse(self) -> Regex:
        return Concat(self.right.inverse(), self.left.inverse())

    def __str__(self) -> str:
        return f"{_wrap(self.left)} {_wrap(self.right)}"


@dataclass(frozen=True)
class Union(Regex):
    left: Regex
    right: Regex

    def symbols(self) -> frozenset[str]:
        return self.left.symbols() | self.right.symbols()

    def inverse(self) -> Regex:
        return Union(self.left.inverse(), self.right.inverse())

    def __str__(self) -> str:
        return f"{self.left}|{self.right}"


@dataclass(frozen=True)
class Star(Regex):
    body: Regex

    def symbols(self) -> frozenset[str]:
        return self.body.symbols()

    def inverse(self) -> Regex:
        return Star(self.body.inverse())

    def __str__(self) -> str:
        return f"{_wrap(self.body)}*"


@dataclass(frozen=True)
class Plus(Regex):
    body: Regex

    def symbols(self) -> frozenset[str]:
        return self.body.symbols()

    def inverse(self) -> Regex:
        return Plus(self.body.inverse())

    def __str__(self) -> str:
        return f"{_wrap(self.body)}+"


@dataclass(frozen=True)
class Optional_(Regex):
    body: Regex

    def symbols(self) -> frozenset[str]:
        return self.body.symbols()

    def inverse(self) -> Regex:
        return Optional_(self.body.inverse())

    def __str__(self) -> str:
        return f"{_wrap(self.body)}?"


def _wrap(node: Regex) -> str:
    if isinstance(node, (Union, Concat)):
        return f"({node})"
    return str(node)


def word_regex(word: Word) -> Regex:
    """The regex denoting exactly one word (epsilon for the empty word)."""
    node: Regex = Epsilon()
    for index, symbol in enumerate(word):
        node = Sym(symbol) if index == 0 else Concat(node, Sym(symbol))
    return node


# --- Thompson construction ----------------------------------------------------


class _ThompsonBuilder:
    """Accumulates epsilon-NFA fragments for a regex AST."""

    def __init__(self) -> None:
        self.counter = 0
        self.transitions: list[tuple[int, str | None, int]] = []

    def _fresh(self) -> int:
        self.counter += 1
        return self.counter - 1

    def compile(self, node: Regex) -> tuple[int, int]:
        start, end = self._fresh(), self._fresh()
        if isinstance(node, EmptySet):
            pass  # no path from start to end
        elif isinstance(node, Epsilon):
            self.transitions.append((start, EPSILON, end))
        elif isinstance(node, Sym):
            self.transitions.append((start, node.symbol, end))
        elif isinstance(node, Concat):
            s1, e1 = self.compile(node.left)
            s2, e2 = self.compile(node.right)
            self.transitions += [(start, EPSILON, s1), (e1, EPSILON, s2), (e2, EPSILON, end)]
        elif isinstance(node, Union):
            s1, e1 = self.compile(node.left)
            s2, e2 = self.compile(node.right)
            self.transitions += [
                (start, EPSILON, s1),
                (start, EPSILON, s2),
                (e1, EPSILON, end),
                (e2, EPSILON, end),
            ]
        elif isinstance(node, Star):
            s1, e1 = self.compile(node.body)
            self.transitions += [
                (start, EPSILON, s1),
                (e1, EPSILON, s1),
                (e1, EPSILON, end),
                (start, EPSILON, end),
            ]
        elif isinstance(node, Plus):
            s1, e1 = self.compile(node.body)
            self.transitions += [
                (start, EPSILON, s1),
                (e1, EPSILON, s1),
                (e1, EPSILON, end),
            ]
        elif isinstance(node, Optional_):
            s1, e1 = self.compile(node.body)
            self.transitions += [
                (start, EPSILON, s1),
                (e1, EPSILON, end),
                (start, EPSILON, end),
            ]
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown regex node {node!r}")
        return start, end


# --- parser -------------------------------------------------------------------

_TOKEN = _re.compile(
    r"\s*(?:(?P<symbol>[A-Za-z_][A-Za-z0-9_]*-?)"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<bar>\|)"
    r"|(?P<star>\*)"
    r"|(?P<plus>\+)"
    r"|(?P<opt>\?)"
    r"|(?P<dot>\.))"
)


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise RegexSyntaxError(f"cannot tokenize {remainder!r} in {text!r}")
        position = match.end()
        kind = match.lastgroup
        assert kind is not None
        yield kind, match.group(kind)
    yield "end", ""


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.text = text

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def parse(self) -> Regex:
        node = self.parse_union()
        kind, value = self.peek()
        if kind != "end":
            raise RegexSyntaxError(f"unexpected {value!r} in {self.text!r}")
        return node

    def parse_union(self) -> Regex:
        node = self.parse_concat()
        while self.peek()[0] == "bar":
            self.advance()
            node = Union(node, self.parse_concat())
        return node

    def parse_concat(self) -> Regex:
        parts = [self.parse_postfix()]
        while True:
            kind, _value = self.peek()
            if kind == "dot":
                self.advance()
                continue
            if kind in ("symbol", "lparen"):
                parts.append(self.parse_postfix())
                continue
            break
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def parse_postfix(self) -> Regex:
        node = self.parse_atom()
        while True:
            kind, _value = self.peek()
            if kind == "star":
                self.advance()
                node = Star(node)
            elif kind == "plus":
                self.advance()
                node = Plus(node)
            elif kind == "opt":
                self.advance()
                node = Optional_(node)
            else:
                return node

    def parse_atom(self) -> Regex:
        kind, value = self.advance()
        if kind == "symbol":
            return Sym(value)
        if kind == "lparen":
            if self.peek()[0] == "rparen":
                self.advance()
                return Epsilon()
            node = self.parse_union()
            kind, value = self.advance()
            if kind != "rparen":
                raise RegexSyntaxError(f"expected ')' but got {value!r} in {self.text!r}")
            return node
        raise RegexSyntaxError(f"unexpected {value or kind!r} in {self.text!r}")


def parse_regex(text: str) -> Regex:
    """Parse the textual regex syntax documented in the module docstring."""
    return _Parser(text).parse()


def random_regex(rng, alphabet: tuple[str, ...], depth: int, allow_inverse: bool = False) -> Regex:
    """Sample a random regex of the given structural depth (for fuzzing).

    Args:
        rng: a :class:`random.Random` instance (determinism is the
            caller's responsibility).
        alphabet: base symbols to draw letters from.
        depth: maximum AST depth.
        allow_inverse: also draw inverse letters (2RPQ syntax).
    """
    letters = list(alphabet)
    if allow_inverse:
        letters += [inverse(symbol) for symbol in alphabet]
    if depth <= 0 or rng.random() < 0.3:
        roll = rng.random()
        if roll < 0.05:
            return Epsilon()
        return Sym(rng.choice(letters))
    kind = rng.choice(["concat", "union", "star", "plus", "opt"])
    if kind == "concat":
        return Concat(
            random_regex(rng, alphabet, depth - 1, allow_inverse),
            random_regex(rng, alphabet, depth - 1, allow_inverse),
        )
    if kind == "union":
        return Union(
            random_regex(rng, alphabet, depth - 1, allow_inverse),
            random_regex(rng, alphabet, depth - 1, allow_inverse),
        )
    body = random_regex(rng, alphabet, depth - 1, allow_inverse)
    if kind == "star":
        return Star(body)
    if kind == "plus":
        return Plus(body)
    return Optional_(body)


def enumerate_language(regex: Regex, alphabet: tuple[str, ...], max_length: int) -> Iterator[Word]:
    """Every word of L(regex) over *alphabet* up to *max_length* (oracle)."""
    nfa = regex.to_nfa()
    for length in range(max_length + 1):
        for word in itertools.product(alphabet, repeat=length):
            if nfa.accepts(word):
                yield word
