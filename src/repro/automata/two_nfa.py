"""Two-way nondeterministic finite automata (2NFAs) with end-markers.

The paper (Section 3.2) defines a 2NFA as an NFA whose transition
function returns successor states *and* head directions in {-1, 0, +1}.
We use the standard end-marker formalization: the input word
``w = a1 ... an`` is presented on a tape ``⊢ a1 ... an ⊣`` with
positions ``0 .. n+1``, the head starts on ``⊢`` (position 0), and the
automaton accepts iff it reaches a final state while on ``⊣``
(position ``n+1``).  End-markers are a cosmetic convenience — they never
change the class of languages — and they make both Lemma 3's fold
construction and Lemma 4's complementation uniform at the tape ends.

Acceptance is decided by reachability over the finite configuration
graph ``S x {0..n+1}``, which is exact (no run-length bound needed).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from .alphabet import LEFT_MARKER, RIGHT_MARKER
from .nfa import Word

State = Hashable
Direction = int  # -1, 0, or +1

LEFT = -1
STAY = 0
RIGHT = 1


@dataclass(frozen=True)
class TwoNFA:
    """A 2NFA ``(Sigma, S, S0, rho, F)`` with end-marker tape semantics.

    Attributes:
        alphabet: the input symbols (end-markers are implicit and must
            not appear here).
        states: all states.
        initial: the set S0; the head starts on the left marker.
        final: the set F; accepting means final state on the right marker.
        transitions: mapping ``(state, tape_symbol) -> frozenset`` of
            ``(successor, direction)`` pairs, where ``tape_symbol`` is an
            alphabet symbol or one of the markers.
    """

    alphabet: tuple[str, ...]
    states: frozenset
    initial: frozenset
    final: frozenset
    transitions: Mapping[tuple[State, object], frozenset]

    @classmethod
    def build(
        cls,
        alphabet: Iterable[str],
        states: Iterable[State],
        initial: Iterable[State],
        final: Iterable[State],
        transitions: Iterable[tuple[State, object, State, Direction]],
    ) -> "TwoNFA":
        """Build from an edge list ``(state, tape_symbol, successor, dir)``."""
        table: dict[tuple[State, object], set] = {}
        for state, symbol, successor, direction in transitions:
            if direction not in (LEFT, STAY, RIGHT):
                raise ValueError(f"invalid direction {direction!r}")
            table.setdefault((state, symbol), set()).add((successor, direction))
        frozen = {key: frozenset(value) for key, value in table.items()}
        return cls(
            tuple(dict.fromkeys(alphabet)),
            frozenset(states),
            frozenset(initial),
            frozenset(final),
            frozen,
        )

    def moves(self, state: State, tape_symbol: object) -> frozenset:
        """rho(state, symbol): set of ``(successor, direction)`` pairs."""
        return self.transitions.get((state, tape_symbol), frozenset())

    @property
    def num_states(self) -> int:
        return len(self.states)

    def tape(self, word: Word) -> tuple:
        """The marked tape ``⊢ w ⊣`` as a tuple indexed by head position."""
        return (LEFT_MARKER,) + tuple(word) + (RIGHT_MARKER,)

    def accepts(self, word: Word) -> bool:
        """Exact acceptance via BFS over the configuration graph."""
        tape = self.tape(word)
        last = len(tape) - 1
        start = {(state, 0) for state in self.initial}
        seen = set(start)
        queue = deque(start)
        while queue:
            state, position = queue.popleft()
            if position == last and state in self.final:
                return True
            for successor, direction in self.moves(state, tape[position]):
                target = position + direction
                if 0 <= target <= last:
                    config = (successor, target)
                    if config not in seen:
                        seen.add(config)
                        queue.append(config)
        return False

    def enumerate_words(self, max_length: int) -> Iterator[Word]:
        """Every accepted word up to *max_length* (brute-force oracle)."""
        import itertools

        for length in range(max_length + 1):
            for word in itertools.product(self.alphabet, repeat=length):
                if self.accepts(word):
                    yield word

    def renumber(self) -> "TwoNFA":
        """Isomorphic copy with integer states 0..n-1."""
        order = {state: index for index, state in enumerate(sorted(self.states, key=repr))}
        transitions = [
            (order[state], symbol, order[successor], direction)
            for (state, symbol), moves in self.transitions.items()
            for successor, direction in moves
        ]
        return TwoNFA.build(
            self.alphabet,
            range(len(order)),
            [order[s] for s in self.initial],
            [order[s] for s in self.final],
            transitions,
        )


def one_way_as_two_way(nfa) -> TwoNFA:
    """Embed an ordinary NFA as a 2NFA (every move goes right).

    The embedding adds no states: initial states skip the left marker by
    a right move, and acceptance transfers because a one-way run ending
    in a final state corresponds to the head parking on ``⊣``.
    """
    transitions: list[tuple[State, object, State, Direction]] = [
        (state, LEFT_MARKER, state, RIGHT) for state in nfa.states
    ]
    for (state, symbol), targets in nfa.transitions.items():
        for target in targets:
            transitions.append((state, symbol, target, RIGHT))
    return TwoNFA.build(
        nfa.alphabet, nfa.states, nfa.initial, nfa.final, transitions
    )
