"""Classical 2NFA -> one-way conversion (Shepherdson-style tables).

This is the "standard approach" the paper contrasts with Lemma 4: first
reduce the two-way automaton to a one-way automaton with an exponential
blow-up, then complement.  The table construction below determinizes the
2NFA directly; its states are pairs ``(I, M)`` where, after reading the
prefix ``a1 .. ap`` of the tape ``⊢ a1 .. an ⊣``,

- ``I ⊆ S`` is the set of states in which the 2NFA can cross the
  boundary from position ``p`` to ``p+1`` starting from an initial
  configuration while staying inside positions ``0..p`` beforehand, and
- ``M ⊆ S x S`` holds ``(t, s)`` iff the 2NFA, dropped at position ``p``
  in state ``t``, can exit to position ``p+1`` in state ``s`` while
  staying inside ``0..p`` in between.

Both tables are computable left to right by a least-fixpoint closure in
the newly added column, so the result is a *complete deterministic*
automaton with at most ``2^{|S| + |S|^2}`` states — one exponential,
versus the two a naive NFA-conversion-then-subset-complement would pay.
It doubles as an independent oracle for Lemma 4 in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..budget import BudgetMeter
from .alphabet import LEFT_MARKER, RIGHT_MARKER
from .dfa import DFA
from .two_nfa import TwoNFA

Table = tuple[frozenset, frozenset]  # (I, M)


def _column_closure(
    two_nfa: TwoNFA,
    seeds: frozenset,
    tape_symbol: object,
    reenter: Callable[[object], frozenset],
) -> frozenset:
    """States reachable at the current column from *seeds*.

    A stay move remains in the column; a left move drops into the region
    to the left, from which *reenter(state)* gives the states that can
    come back into the column.
    """
    reached = set(seeds)
    queue = deque(seeds)
    while queue:
        state = queue.popleft()
        for successor, direction in two_nfa.moves(state, tape_symbol):
            if direction == 0:
                targets: frozenset = frozenset({successor})
            elif direction == -1:
                targets = reenter(successor)
            else:
                continue  # right moves exit the region; handled by caller
            for target in targets:
                if target not in reached:
                    reached.add(target)
                    queue.append(target)
    return frozenset(reached)


def _exits_right(two_nfa: TwoNFA, column: frozenset, tape_symbol: object) -> frozenset:
    return frozenset(
        successor
        for state in column
        for successor, direction in two_nfa.moves(state, tape_symbol)
        if direction == 1
    )


def _initial_table(two_nfa: TwoNFA) -> Table:
    """Tables for the region consisting of the left marker only."""
    no_reentry: Callable[[object], frozenset] = lambda _state: frozenset()  # noqa: E731
    start = _column_closure(two_nfa, frozenset(two_nfa.initial), LEFT_MARKER, no_reentry)
    crossing = _exits_right(two_nfa, start, LEFT_MARKER)
    pairs = set()
    for t in two_nfa.states:
        column = _column_closure(two_nfa, frozenset({t}), LEFT_MARKER, no_reentry)
        for s in _exits_right(two_nfa, column, LEFT_MARKER):
            pairs.add((t, s))
    return crossing, frozenset(pairs)


def _step_table(two_nfa: TwoNFA, table: Table, symbol: str) -> Table:
    """Extend the region by one input letter."""
    crossing, pairs = table
    reentry_map: dict[object, set] = {}
    for t, s in pairs:
        reentry_map.setdefault(t, set()).add(s)
    reenter: Callable[[object], frozenset] = lambda state: frozenset(  # noqa: E731
        reentry_map.get(state, ())
    )
    column = _column_closure(two_nfa, crossing, symbol, reenter)
    new_crossing = _exits_right(two_nfa, column, symbol)
    new_pairs = set()
    for t in two_nfa.states:
        t_column = _column_closure(two_nfa, frozenset({t}), symbol, reenter)
        for s in _exits_right(two_nfa, t_column, symbol):
            new_pairs.add((t, s))
    return new_crossing, frozenset(new_pairs)


def _accepts_from_table(two_nfa: TwoNFA, table: Table) -> bool:
    """Final check: play the right marker's column against the tables."""
    crossing, pairs = table
    reentry_map: dict[object, set] = {}
    for t, s in pairs:
        reentry_map.setdefault(t, set()).add(s)
    reenter: Callable[[object], frozenset] = lambda state: frozenset(  # noqa: E731
        reentry_map.get(state, ())
    )
    column = _column_closure(two_nfa, crossing, RIGHT_MARKER, reenter)
    return bool(column & two_nfa.final)


def two_nfa_to_dfa(
    two_nfa: TwoNFA,
    max_states: int | None = None,
    meter: "BudgetMeter | None" = None,
    tracer=None,
) -> DFA:
    """Determinize a 2NFA into a complete DFA over its alphabet.

    Args:
        two_nfa: the automaton to convert.
        max_states: optional budget; a :class:`StateBudgetExceeded` from
            :mod:`repro.automata.complement` is raised when exceeded.
        meter: optional :class:`repro.budget.BudgetMeter`; charges one
            ``"states"`` unit per table and polls the deadline.
        tracer: optional :class:`repro.obs.trace.Tracer`; records a
            ``shepherdson-tables`` span with the table count (set once
            on exit, never inside the construction loop).

    Returns:
        A :class:`DFA` with ``L(DFA) = L(two_nfa)``.
    """
    if tracer is not None:
        with tracer.span(
            "shepherdson-tables", two_nfa_states=two_nfa.num_states
        ) as span:
            dfa = _two_nfa_to_dfa(two_nfa, max_states, meter)
            span.count("tables", dfa.num_states)
            return dfa
    return _two_nfa_to_dfa(two_nfa, max_states, meter)


def _two_nfa_to_dfa(
    two_nfa: TwoNFA,
    max_states: int | None,
    meter: "BudgetMeter | None",
) -> DFA:
    from .complement import StateBudgetExceeded

    initial = _initial_table(two_nfa)
    states: set[Table] = {initial}
    if meter is not None:
        meter.charge("states")
    transitions: dict[tuple[Table, str], Table] = {}
    queue = deque([initial])
    while queue:
        table = queue.popleft()
        if meter is not None:
            meter.poll()
        for symbol in two_nfa.alphabet:
            nxt = _step_table(two_nfa, table, symbol)
            transitions[(table, symbol)] = nxt
            if nxt not in states:
                states.add(nxt)
                if meter is not None:
                    meter.charge("states")
                if max_states is not None and len(states) > max_states:
                    raise StateBudgetExceeded(
                        f"Shepherdson construction exceeded {max_states} states",
                        resource="states",
                        spent=len(states),
                        limit=max_states,
                    )
                queue.append(nxt)
    final = frozenset(
        table for table in states if _accepts_from_table(two_nfa, table)
    )
    return DFA(two_nfa.alphabet, frozenset(states), initial, final, transitions)


class LazyShepherdsonComplement:
    """Implicit automaton for the *complement* of a 2NFA's language.

    Because the table construction is deterministic, the complement is
    free: run the tables and flip the final check.  Exposes the
    implicit-automaton protocol of :mod:`repro.automata.onthefly`, so a
    product search explores exactly the tables reachable under the words
    the other factor can produce — one successor per (state, letter),
    which makes this the production path for 2RPQ containment.  (The
    Lemma 4 pipeline in :mod:`repro.automata.complement` is the
    paper-faithful alternative; benchmark E5 compares the two.)
    """

    def __init__(self, two_nfa: TwoNFA) -> None:
        self.two_nfa = two_nfa

    def initial_states(self):
        return [_initial_table(self.two_nfa)]

    def successor_states(self, state: Table, symbol: str):
        return [_step_table(self.two_nfa, state, symbol)]

    def is_final(self, state: Table) -> bool:
        return not _accepts_from_table(self.two_nfa, state)


def naive_complement_two_nfa(two_nfa: TwoNFA, max_states: int | None = None):
    """The baseline pipeline the paper deems too costly: convert, then flip.

    Returns the complement as an NFA, for size comparison with Lemma 4's
    construction in benchmark E4.
    """
    return two_nfa_to_dfa(two_nfa, max_states).complement().to_nfa()
