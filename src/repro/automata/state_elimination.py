"""NFA -> regular expression via state elimination (Kleene's theorem).

The paper's Section 1 leans on the "robust definability" of regular
languages — expressions and automata define the same class.  The
Thompson construction (:mod:`repro.automata.regex`) gives one direction;
this module gives the other, so RPQs extracted from automata-producing
pipelines (products, complements) can be displayed and re-parsed.

Classical GNFA algorithm: add a fresh initial and final state, label
every edge with a regex, then eliminate interior states one at a time,
rerouting each path ``p -> s -> q`` as ``R(p,s) . R(s,s)* . R(s,q)``.
Elimination order is by (in-degree x out-degree), the standard heuristic
for keeping the output small.
"""

from __future__ import annotations

from .nfa import NFA
from .regex import Concat, EmptySet, Epsilon, Regex, Star, Sym, Union


def _union(left: Regex | None, right: Regex | None) -> Regex | None:
    if left is None:
        return right
    if right is None:
        return left
    if left == right:
        return left
    return Union(left, right)


def _concat(*parts: Regex | None) -> Regex | None:
    out: Regex | None = None
    for part in parts:
        if part is None:
            return None
        if isinstance(part, Epsilon):
            continue
        out = part if out is None else Concat(out, part)
    return out if out is not None else Epsilon()


def _star(body: Regex | None) -> Regex:
    if body is None or isinstance(body, Epsilon):
        return Epsilon()
    return Star(body)


def nfa_to_regex(nfa: NFA) -> Regex:
    """A regular expression with ``L(result) = L(nfa)``.

    Output size can be exponential in the automaton in the worst case
    (that is intrinsic); the elimination-order heuristic keeps common
    cases reasonable.
    """
    trimmed = nfa.trim()
    if trimmed.is_empty():
        return EmptySet()
    START, END = ("__gnfa_start",), ("__gnfa_end",)
    labels: dict[tuple, Regex | None] = {}

    def get(p, q) -> Regex | None:
        return labels.get((p, q))

    def put(p, q, regex: Regex | None) -> None:
        if regex is None:
            labels.pop((p, q), None)
        else:
            labels[(p, q)] = regex

    for state in trimmed.initial:
        put(START, state, _union(get(START, state), Epsilon()))
    for state in trimmed.final:
        put(state, END, _union(get(state, END), Epsilon()))
    for source, symbol, target in trimmed.edges():
        put(source, target, _union(get(source, target), Sym(symbol)))

    interior = set(trimmed.states)

    def degree(state) -> int:
        into = sum(1 for (p, q) in labels if q == state and p != state)
        out = sum(1 for (p, q) in labels if p == state and q != state)
        return into * out

    while interior:
        state = min(sorted(interior, key=repr), key=degree)
        interior.discard(state)
        loop = _star(get(state, state))
        predecessors = [p for (p, q) in list(labels) if q == state and p != state]
        successors = [q for (p, q) in list(labels) if p == state and q != state]
        for p in predecessors:
            for q in successors:
                detour = _concat(get(p, state), loop, get(state, q))
                put(p, q, _union(get(p, q), detour))
        for key in [key for key in labels if state in key]:
            labels.pop(key, None)

    result = get(START, END)
    return result if result is not None else EmptySet()
