"""Lemma 4: single-exponential complementation of 2NFAs (Vardi 1989).

A word ``w = a1 .. an`` on the marked tape ``⊢ a1 .. an ⊣`` is *rejected*
by a 2NFA ``A = (Sigma, S, S0, rho, F)`` iff there is a family of sets
``T_0, .., T_{n+1} ⊆ S`` such that

1. ``S0 ⊆ T_0``  (the initial configurations are covered),
2. the family is *closed*: for every position p, every ``s in T_p`` and
   every move ``(s', d) in rho(s, tape[p])`` with ``0 <= p+d <= n+1``,
   we have ``s' in T_{p+d}``, and
3. ``T_{n+1}`` contains no final state (no accepting configuration).

If such a family exists, induction along any run shows every reachable
configuration ``(s, p)`` has ``s in T_p``, so no run accepts.  If ``w``
is rejected, the family ``T_p = { s : (s, p) reachable }`` works.  The
closure condition only couples *adjacent* sets, so a one-way NFA whose
states are pairs ``(T_{p-1}, T_p)`` can guess and verify the family left
to right: ``2^{O(|S|)}`` states.  This is the paper's Lemma 4.

The module offers the materialized NFA (for small inputs and the E4
benchmark) and a lazy version exposing the implicit-automaton protocol
used by the on-the-fly product-emptiness search of Theorem 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..budget import BudgetExhausted, BudgetMeter
from .alphabet import LEFT_MARKER, RIGHT_MARKER
from .nfa import NFA
from .two_nfa import TwoNFA


class StateBudgetExceeded(BudgetExhausted):
    """Raised when a materialized construction exceeds its state budget.

    A :class:`repro.budget.BudgetExhausted` subclass: the containment
    procedures catch the whole family and convert it into a structured
    bounded verdict, while direct kernel callers keep this type.
    """


def _move_targets(two_nfa: TwoNFA, states: frozenset, tape_symbol: object) -> dict[int, set]:
    """Successor states of *states* on *tape_symbol*, bucketed by direction."""
    buckets: dict[int, set] = {-1: set(), 0: set(), 1: set()}
    for state in states:
        for successor, direction in two_nfa.moves(state, tape_symbol):
            buckets[direction].add(successor)
    return buckets


@dataclass
class LazyComplement:
    """Implicit NFA for the complement of a 2NFA's language (Lemma 4).

    States are pairs ``(T_prev, T_cur)`` of frozensets of 2NFA states;
    after reading ``j`` letters a state asserts ``T_prev = T_j`` and
    ``T_cur = T_{j+1}`` for some valid prefix of a closed family.

    Successor enumeration yields candidate ``T_next`` supersets of the
    forced forward successors in order of increasing size, so that an
    on-the-fly search visits the most constrained (and usually
    sufficient) guesses first.
    """

    two_nfa: TwoNFA

    def __post_init__(self) -> None:
        self._all_states = tuple(sorted(self.two_nfa.states, key=repr))

    # -- implicit-automaton protocol ------------------------------------------

    def initial_states(self) -> Iterator[tuple[frozenset, frozenset]]:
        """All pairs ``(T_0, T_1)`` satisfying coverage and closure at ⊢."""
        initial = frozenset(self.two_nfa.initial)
        for t0 in self._supersets(initial):
            buckets = _move_targets(self.two_nfa, t0, LEFT_MARKER)
            # Left moves at the left marker fall off the tape: vacuous.
            if not buckets[0] <= t0:
                continue
            for t1 in self._supersets(frozenset(buckets[1])):
                yield (t0, t1)

    def successor_states(
        self, state: tuple[frozenset, frozenset], symbol: str
    ) -> Iterator[tuple[frozenset, frozenset]]:
        t_prev, t_cur = state
        buckets = _move_targets(self.two_nfa, t_cur, symbol)
        if not buckets[-1] <= t_prev or not buckets[0] <= t_cur:
            return
        for t_next in self._supersets(frozenset(buckets[1])):
            yield (t_cur, t_next)

    def is_final(self, state: tuple[frozenset, frozenset]) -> bool:
        t_prev, t_cur = state
        if t_cur & self.two_nfa.final:
            return False
        buckets = _move_targets(self.two_nfa, t_cur, RIGHT_MARKER)
        # Right moves at the right marker fall off the tape: vacuous.
        return buckets[-1] <= t_prev and buckets[0] <= t_cur

    # Note: pointwise subset ordering on (T_prev, T_cur) pairs is NOT a
    # sound simulation relation in either direction (a smaller T_prev can
    # violate a backward-closure obligation that a larger one satisfies,
    # and a larger T_cur can hit the final-state exclusion), so the
    # on-the-fly search performs no subsumption pruning.

    # -- helpers ---------------------------------------------------------------

    def _supersets(self, seed: frozenset) -> Iterator[frozenset]:
        """All supersets of *seed* within S, smallest first."""
        rest = [state for state in self._all_states if state not in seed]
        for size in range(len(rest) + 1):
            for extra in itertools.combinations(rest, size):
                yield seed | frozenset(extra)


def complement_two_nfa(
    two_nfa: TwoNFA,
    max_states: int | None = None,
    meter: BudgetMeter | None = None,
    tracer=None,
) -> NFA:
    """Materialize Lemma 4's complement NFA (reachable part only).

    Args:
        two_nfa: the automaton to complement.
        max_states: optional safety budget; :class:`StateBudgetExceeded`
            is raised when the reachable state space outgrows it.
        meter: optional :class:`repro.budget.BudgetMeter`; the
            construction charges one ``"states"`` unit per materialized
            state and polls the wall-clock deadline per transition.
        tracer: optional :class:`repro.obs.trace.Tracer`; records a
            ``lemma4-complement`` span with state/transition counts
            (set once on exit, never inside the BFS loop).

    Returns:
        An :class:`NFA` with ``L = Sigma* - L(two_nfa)`` over the 2NFA's
        alphabet.
    """
    if tracer is not None:
        with tracer.span(
            "lemma4-complement", two_nfa_states=two_nfa.num_states
        ) as span:
            return _complement_two_nfa(two_nfa, max_states, meter, span)
    return _complement_two_nfa(two_nfa, max_states, meter, None)


def _complement_two_nfa(
    two_nfa: TwoNFA,
    max_states: int | None,
    meter: BudgetMeter | None,
    span,
) -> NFA:
    lazy = LazyComplement(two_nfa)
    from collections import deque

    initial = []
    for state in lazy.initial_states():
        if meter is not None:
            meter.poll()
        initial.append(state)
    states: set = set(initial)
    if meter is not None:
        meter.charge("states", len(states))
    transitions: list[tuple[object, str, object]] = []
    queue = deque(initial)
    while queue:
        state = queue.popleft()
        for symbol in two_nfa.alphabet:
            for target in lazy.successor_states(state, symbol):
                if meter is not None:
                    meter.poll()
                transitions.append((state, symbol, target))
                if target not in states:
                    states.add(target)
                    if meter is not None:
                        meter.charge("states")
                    if max_states is not None and len(states) > max_states:
                        raise StateBudgetExceeded(
                            f"complement exceeded {max_states} states",
                            resource="states",
                            spent=len(states),
                            limit=max_states,
                        )
                    queue.append(target)
    final = [state for state in states if lazy.is_final(state)]
    if span is not None:
        span.count("states", len(states))
        span.count("transitions", len(transitions))
    return NFA.build(two_nfa.alphabet, states, initial, final, transitions)


def lemma4_state_bound(two_nfa: TwoNFA) -> int:
    """The 2^{O(n)} bound of Lemma 4, instantiated as 4^n (pairs of subsets)."""
    return 4 ** two_nfa.num_states
