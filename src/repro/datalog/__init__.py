"""Datalog (Section 2.2): syntax, parser, fixpoint engines, analysis,
unfolding, and containment procedures."""

from .analysis import (
    DependenceGraph,
    dependence_graph,
    is_linear,
    is_monadic,
    is_nonrecursive,
    predicate_depth,
    recursive_components,
    recursive_predicates,
)
from .containment import (
    cq_in_datalog,
    datalog_equivalent_bounded,
    datalog_in_datalog,
    datalog_in_ucq,
    ucq_in_datalog,
)
from .evaluation import (
    EvaluationStats,
    bounded_evaluate,
    evaluate,
    naive_evaluate,
    seminaive_evaluate,
)
from .parser import DatalogSyntaxError, parse_program, parse_rule
from .syntax import (
    Program,
    Rule,
    program_to_text,
    reachability_program,
    transitive_closure_program,
)
from .to_sql import SQLTranslationError, evaluate_via_sql, program_to_sql
from .unfolding import enumerate_expansions, unfold_nonrecursive

__all__ = [
    "DependenceGraph",
    "dependence_graph",
    "is_linear",
    "is_monadic",
    "is_nonrecursive",
    "predicate_depth",
    "recursive_components",
    "recursive_predicates",
    "cq_in_datalog",
    "datalog_equivalent_bounded",
    "datalog_in_datalog",
    "datalog_in_ucq",
    "ucq_in_datalog",
    "EvaluationStats",
    "bounded_evaluate",
    "evaluate",
    "naive_evaluate",
    "seminaive_evaluate",
    "DatalogSyntaxError",
    "parse_program",
    "parse_rule",
    "Program",
    "program_to_text",
    "Rule",
    "reachability_program",
    "transitive_closure_program",
    "SQLTranslationError",
    "evaluate_via_sql",
    "program_to_sql",
    "enumerate_expansions",
    "unfold_nonrecursive",
]
