"""Bottom-up Datalog evaluation: naive and semi-naive fixpoints.

The paper defines the semantics operationally (Section 2.2):
``P^i(D)`` is what ``i`` rule applications can derive and
``P^inf(D) = U_i P^i(D)``.  The *naive* engine recomputes every rule
body against the full instance each round — a direct transcription of
that definition.  The *semi-naive* engine is the classical optimization:
each round it only joins rule bodies in which at least one IDB atom is
bound to the facts newly derived in the previous round, which avoids
rediscovering old facts.  Both compute the same fixpoint; experiment
E10 measures the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..cq.syntax import CQ, Var, is_var
from ..cq.evaluation import bindings
from ..relational.instance import Instance
from .syntax import Program, Rule


@dataclass
class EvaluationStats:
    """Instrumentation for experiment E10."""

    iterations: int = 0
    facts_derived: int = 0
    rule_applications: int = 0
    derivations_per_iteration: list[int] = field(default_factory=list)


def _apply_rule(rule: Rule, instance: Instance) -> set[tuple]:
    """All head tuples derivable by one application of *rule*."""
    derived: set[tuple] = set()
    if not rule.body:
        derived.add(tuple(rule.head.args))
        return derived
    head_args = rule.head.args
    # Reuse the CQ engine: a rule body is a conjunctive query.
    body_query = CQ(tuple(sorted({v for a in rule.body for v in a.variables()})), rule.body)
    for binding in bindings(body_query, instance):
        derived.add(
            tuple(binding[arg] if is_var(arg) else arg for arg in head_args)
        )
    return derived


def _seed_instance(program: Program, edb: Instance) -> Instance:
    """A working copy of *edb* with every IDB relation declared.

    Declaring the IDB predicates (empty, at head arity) up front means
    rule bodies mentioning a predicate that never fires see an empty
    relation rather than an unknown name, and an IDB head whose arity
    clashes with an EDB relation of the same name fails loudly here
    instead of corrupting the fixpoint.
    """
    instance = edb.copy()
    for rule in program.rules:
        instance.declare(rule.head.predicate, len(rule.head.args))
    return instance


def naive_evaluate(
    program: Program, edb: Instance, stats: EvaluationStats | None = None
) -> dict[str, frozenset[tuple]]:
    """The textbook fixpoint: apply every rule to everything until stable."""
    instance = _seed_instance(program, edb)
    idb: dict[str, set[tuple]] = {pred: set() for pred in program.idb_predicates}
    while True:
        if stats is not None:
            stats.iterations += 1
        round_new: dict[str, set[tuple]] = {pred: set() for pred in idb}
        for rule in program.rules:
            if stats is not None:
                stats.rule_applications += 1
            for row in _apply_rule(rule, instance):
                if row not in idb[rule.head.predicate]:
                    round_new[rule.head.predicate].add(row)
        total_new = _commit(round_new, idb, instance)
        if stats is not None:
            stats.derivations_per_iteration.append(total_new)
            stats.facts_derived += total_new
        if not total_new:
            break
    return {pred: frozenset(rows) for pred, rows in idb.items()}


def _delta_rules(program: Program) -> list[tuple[Rule, int | None]]:
    """Semi-naive rewriting: one variant per IDB body atom (or None).

    A variant ``(rule, k)`` evaluates the rule with body atom ``k``
    restricted to the previous round's delta.  Rules with no IDB atom
    only need to run once (round zero), flagged with ``k = None``.
    """
    idb = program.idb_predicates
    variants: list[tuple[Rule, int | None]] = []
    for rule in program.rules:
        idb_positions = [
            index for index, atom in enumerate(rule.body) if atom.predicate in idb
        ]
        if not idb_positions:
            variants.append((rule, None))
        else:
            for index in idb_positions:
                variants.append((rule, index))
    return variants


def _apply_rule_with_delta(
    rule: Rule, delta_position: int, full: Instance, delta: Mapping[str, frozenset[tuple]]
) -> set[tuple]:
    """Apply *rule* with body atom *delta_position* bound to the delta."""
    delta_atom = rule.body[delta_position]
    delta_rows = delta.get(delta_atom.predicate, frozenset())
    if not delta_rows:
        return set()
    # Build a temporary instance where a fresh predicate name holds the
    # delta, and rewrite the rule to use it at the delta position.
    shadow = f"__delta__{delta_atom.predicate}"
    scratch = full.copy()
    for row in delta_rows:
        scratch.add(shadow, row)
    new_body = list(rule.body)
    new_body[delta_position] = delta_atom.__class__(shadow, delta_atom.args)
    rewritten = Rule(rule.head, tuple(new_body))
    return _apply_rule(rewritten, scratch)


def seminaive_evaluate(
    program: Program, edb: Instance, stats: EvaluationStats | None = None
) -> dict[str, frozenset[tuple]]:
    """Semi-naive (delta-driven) fixpoint; same result, fewer re-joins."""
    instance = _seed_instance(program, edb)
    idb: dict[str, set[tuple]] = {pred: set() for pred in program.idb_predicates}
    variants = _delta_rules(program)

    # Round zero: rules without IDB atoms, plus every rule evaluated on
    # the EDB alone (IDB relations are empty, so IDB-containing rules
    # derive nothing yet unless their IDB atoms are already satisfied).
    delta: dict[str, frozenset[tuple]] = {}
    round_new: dict[str, set[tuple]] = {pred: set() for pred in idb}
    if stats is not None:
        stats.iterations += 1
    for rule, position in variants:
        if position is not None:
            continue
        if stats is not None:
            stats.rule_applications += 1
        for row in _apply_rule(rule, instance):
            if row not in idb[rule.head.predicate]:
                round_new[rule.head.predicate].add(row)
    total_new = _commit(round_new, idb, instance)
    if stats is not None:
        stats.derivations_per_iteration.append(total_new)
        stats.facts_derived += total_new
    delta = {pred: frozenset(rows) for pred, rows in round_new.items()}

    while any(delta.values()):
        if stats is not None:
            stats.iterations += 1
        round_new = {pred: set() for pred in idb}
        for rule, position in variants:
            if position is None:
                continue
            if stats is not None:
                stats.rule_applications += 1
            for row in _apply_rule_with_delta(rule, position, instance, delta):
                if row not in idb[rule.head.predicate]:
                    round_new[rule.head.predicate].add(row)
        total_new = _commit(round_new, idb, instance)
        if stats is not None:
            stats.derivations_per_iteration.append(total_new)
            stats.facts_derived += total_new
        delta = {pred: frozenset(rows) for pred, rows in round_new.items()}
    return {pred: frozenset(rows) for pred, rows in idb.items()}


def _commit(
    round_new: Mapping[str, set[tuple]],
    idb: dict[str, set[tuple]],
    instance: Instance,
) -> int:
    total = 0
    for pred, rows in round_new.items():
        for row in rows:
            if row not in idb[pred]:
                idb[pred].add(row)
                instance.add(pred, row)
                total += 1
    return total


def evaluate(
    program: Program,
    edb: Instance,
    engine: str = "seminaive",
    stats: EvaluationStats | None = None,
) -> frozenset[tuple]:
    """Evaluate the program's *goal* relation over *edb*.

    Args:
        program: the Datalog query.
        edb: the extensional database.
        engine: ``"seminaive"`` (default) or ``"naive"``.
        stats: optional :class:`EvaluationStats` instrumentation.
    """
    if engine == "seminaive":
        idb = seminaive_evaluate(program, edb, stats)
    elif engine == "naive":
        idb = naive_evaluate(program, edb, stats)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return idb[program.goal]


def bounded_evaluate(program: Program, edb: Instance, rounds: int) -> frozenset[tuple]:
    """``P^i(D)``: goal facts derivable within *rounds* naive iterations.

    Implements the paper's stratified approximation semantics
    ``P^inf = U_i P^i`` observably: ``bounded_evaluate`` is monotone in
    *rounds* and reaches the fixpoint value for large enough *rounds*.
    """
    instance = _seed_instance(program, edb)
    idb: dict[str, set[tuple]] = {pred: set() for pred in program.idb_predicates}
    for _ in range(rounds):
        # Immediate-consequence operator: derive from the *previous*
        # round's facts only, so round i yields exactly P^i(D).
        round_new: dict[str, set[tuple]] = {pred: set() for pred in idb}
        for rule in program.rules:
            for row in _apply_rule(rule, instance):
                if row not in idb[rule.head.predicate]:
                    round_new[rule.head.predicate].add(row)
        if not any(round_new.values()):
            break
        _commit(round_new, idb, instance)
    return frozenset(idb[program.goal])
