"""Containment involving Datalog programs (Sections 2.3 and 4).

Exactly decidable directions implemented exactly:

- ``UCQ ⊆ Datalog`` (:func:`ucq_in_datalog`): evaluate the program over
  the canonical database of each disjunct — decidable because Datalog
  evaluation terminates; the classical reduction from [20].
- ``nonrecursive Datalog ⊆/⊇ anything UCQ-like``: via
  :func:`repro.datalog.unfolding.unfold_nonrecursive`.

The undecidable/expensive directions use the expansion characterization
(a Datalog query equals the union of its expansions), giving a sound
refutation procedure that is exact whenever the expansion space is
exhausted and reports ``HOLDS_UP_TO_BOUND`` otherwise — the contract
DESIGN.md section 2 spells out.  Full Datalog containment is undecidable
(the paper's [52]), so *some* bound is intrinsic, not an implementation
shortcut.
"""

from __future__ import annotations

from typing import Iterable

from ..automata.antichain import resolve_kernel
from ..budget import Budget, BudgetExhausted, bounded_result
from ..cq.containment import ucq_contained
from ..cq.evaluation import satisfies_ucq
from ..cq.syntax import CQ, UCQ
from ..obs.trace import maybe_span
from ..report import ContainmentResult, Counterexample, EquivalenceResult, Verdict
from ..relational.instance import Instance
from .analysis import is_nonrecursive
from .evaluation import evaluate
from .syntax import Program
from .unfolding import enumerate_expansions, unfold_nonrecursive

DEFAULT_EXPANSION_BUDGET = 2000


def _effective_bounds(budget, max_applications, max_expansions):
    """Budget fields override the legacy kwargs; deadline gets a meter."""
    app_bound, exp_bound, meter = max_applications, max_expansions, None
    if budget is not None and not budget.is_null:
        if budget.max_applications is not None:
            app_bound = budget.max_applications
        if budget.max_expansions is not None:
            exp_bound = budget.max_expansions
        meter = Budget(deadline_ms=budget.deadline_ms).start()
    return app_bound, exp_bound, meter


def cq_in_datalog(cq: CQ, program: Program) -> ContainmentResult:
    """Exact: ``cq ⊆ program`` iff the program derives the frozen head
    over the canonical database of *cq* (one terminating evaluation)."""
    if cq.arity != program.goal_arity:
        raise ValueError("arity mismatch between CQ and program goal")
    instance, head = cq.canonical_instance()
    answers = evaluate(program, instance)
    if head in answers:
        return ContainmentResult(Verdict.HOLDS, "canonical-db-evaluation")
    return ContainmentResult(
        Verdict.REFUTED,
        "canonical-db-evaluation",
        Counterexample(instance, head),
    )


def ucq_in_datalog(
    ucq: UCQ | CQ, program: Program, tracer=None, kernel: str = "auto"
) -> ContainmentResult:
    """Exact: every disjunct must map into the program's answers.

    *kernel* is accepted for engine-wide option uniformity and validated
    eagerly; canonical-database evaluation runs no language-inclusion
    search (the engine records ``selected: None``).
    """
    resolve_kernel(kernel)
    union = ucq if isinstance(ucq, UCQ) else UCQ((ucq,))
    with maybe_span(tracer, "canonical-db-evaluation") as span:
        checked = 0
        try:
            for disjunct in union:
                checked += 1
                result = cq_in_datalog(disjunct, program)
                if result.verdict is Verdict.REFUTED:
                    return result
        finally:
            span.count("disjuncts", checked)
    return ContainmentResult(Verdict.HOLDS, "canonical-db-evaluation")


def datalog_in_ucq(
    program: Program,
    ucq: UCQ | CQ,
    max_applications: int | None = None,
    max_expansions: int = DEFAULT_EXPANSION_BUDGET,
    budget: Budget | None = None,
    tracer=None,
    kernel: str = "auto",
) -> ContainmentResult:
    """``program ⊆ ucq`` via expansion enumeration.

    Exact (HOLDS/REFUTED) for nonrecursive programs; for recursive
    programs a REFUTED verdict is exact and a positive verdict is
    ``HOLDS_UP_TO_BOUND`` over the explored expansions.  An optional
    *budget*'s ``max_applications`` / ``max_expansions`` fields override
    the legacy kwargs; its deadline is polled cooperatively and produces
    a structured verdict, never an exception.  An optional *tracer*
    records an ``unfold-to-ucq`` span (nonrecursive path) or an
    ``expansion-loop`` span counting expansions.  *kernel* is accepted
    for engine-wide option uniformity and validated eagerly; the
    expansion procedure runs no language-inclusion search (the engine
    records ``selected: None``).
    """
    resolve_kernel(kernel)
    union = ucq if isinstance(ucq, UCQ) else UCQ((ucq,))
    if is_nonrecursive(program):
        with maybe_span(tracer, "unfold-to-ucq") as span:
            unfolded = unfold_nonrecursive(program)
            span.count("disjuncts", len(tuple(unfolded)))
            result = ucq_contained(unfolded, union)
        if result.holds:
            return ContainmentResult(Verdict.HOLDS, "unfold-to-ucq")
        instance, head = result.counterexample  # type: ignore[misc]
        return ContainmentResult(
            Verdict.REFUTED, "unfold-to-ucq", Counterexample(instance, head)
        )
    app_bound, exp_bound, meter = _effective_bounds(
        budget, max_applications, max_expansions
    )
    explored = 0
    try:
        with maybe_span(tracer, "expansion-loop", exhaustive=False) as span:
            try:
                for expansion in enumerate_expansions(
                    program,
                    max_applications=app_bound,
                    max_expansions=exp_bound,
                    meter=meter,
                ):
                    explored += 1
                    if meter is not None:
                        meter.note("expansions")
                    instance, head = expansion.canonical_instance()
                    if not satisfies_ucq(union, instance, head):
                        return ContainmentResult(
                            Verdict.REFUTED,
                            "expansion",
                            Counterexample(instance, head),
                            details={"expansions_checked": explored},
                        )
            finally:
                span.count("expansions", explored)
    except BudgetExhausted as exc:
        return bounded_result(
            "expansion", exc, meter, details={"expansions_checked": explored}
        )
    details = {"expansions_checked": explored}
    if meter is not None:
        details["budget"] = {"spend": meter.spend()}
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "expansion",
        bound=exp_bound if exp_bound is not None else -1,
        details=details,
    )


def datalog_in_datalog(
    left: Program,
    right: Program,
    max_applications: int | None = None,
    max_expansions: int = DEFAULT_EXPANSION_BUDGET,
    budget: Budget | None = None,
    tracer=None,
    kernel: str = "auto",
) -> ContainmentResult:
    """``left ⊆ right`` for two Datalog programs.

    For each expansion of *left*, check (exactly) whether its canonical
    database makes *right* derive the head — the [20]-style combination
    of expansions with terminating evaluation.  Undecidable in general
    [52], hence the bounded verdict; REFUTED is always exact, and a
    nonrecursive *left* exhausts its finite expansion space, upgrading
    the positive verdict to HOLDS.  An optional *budget* overrides the
    legacy kwargs and adds cooperative deadline polling (structured
    verdict on exhaustion, never an exception).  *kernel* is accepted
    for engine-wide option uniformity and validated eagerly; the
    expansion procedure runs no language-inclusion search (the engine
    records ``selected: None``).
    """
    resolve_kernel(kernel)
    if left.goal_arity != right.goal_arity:
        raise ValueError("arity mismatch between program goals")
    app_bound, exp_bound, meter = _effective_bounds(
        budget, max_applications, max_expansions
    )
    explored = 0
    exhausted = is_nonrecursive(left)
    iterator = enumerate_expansions(
        left,
        max_applications=None if exhausted else app_bound,
        max_expansions=None if exhausted else exp_bound,
        meter=meter,
    )
    try:
        with maybe_span(tracer, "expansion-loop", exhaustive=exhausted) as span:
            try:
                for expansion in iterator:
                    explored += 1
                    if meter is not None:
                        meter.note("expansions")
                    instance, head = expansion.canonical_instance()
                    if head not in evaluate(right, instance):
                        return ContainmentResult(
                            Verdict.REFUTED,
                            "expansion-vs-evaluation",
                            Counterexample(instance, head),
                            details={"expansions_checked": explored},
                        )
            finally:
                span.count("expansions", explored)
    except BudgetExhausted as exc:
        return bounded_result(
            "expansion-vs-evaluation",
            exc,
            meter,
            details={"expansions_checked": explored},
        )
    if exhausted:
        return ContainmentResult(
            Verdict.HOLDS,
            "expansion-vs-evaluation",
            details={"expansions_checked": explored},
        )
    details = {"expansions_checked": explored}
    if meter is not None:
        details["budget"] = {"spend": meter.spend()}
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "expansion-vs-evaluation",
        bound=exp_bound if exp_bound is not None else -1,
        details=details,
    )


def datalog_equivalent_bounded(
    left: Program,
    right: Program,
    max_expansions: int = DEFAULT_EXPANSION_BUDGET,
    exact: bool = False,
    budget: Budget | None = None,
) -> EquivalenceResult:
    """Bounded equivalence check via both containment directions.

    Returns an :class:`repro.report.EquivalenceResult` (truthy like the
    bool this used to return); with ``exact=True`` bounded directions do
    not count and are surfaced via ``bounded_directions``.
    """
    return EquivalenceResult(
        datalog_in_datalog(left, right, max_expansions=max_expansions, budget=budget),
        datalog_in_datalog(right, left, max_expansions=max_expansions, budget=budget),
        exact=exact,
    )
