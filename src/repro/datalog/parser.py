"""A small text parser for Datalog programs.

Syntax::

    % comments run to end of line (# also works)
    tc(x, y) :- edge(x, y).
    tc(x, z) :- tc(x, y), edge(y, z).

Terms starting with a letter are variables; integers and quoted strings
are constants.  The trailing period per rule is required.  The goal
predicate defaults to the head of the first rule.
"""

from __future__ import annotations

import re

from ..cq.syntax import Atom, Term, Var
from .syntax import Program, Rule


class DatalogSyntaxError(ValueError):
    """Raised when a program text cannot be parsed."""


_ATOM = re.compile(
    r"\s*(?P<pred>[A-Za-z_][A-Za-z0-9_+\-]*)\s*\(\s*(?P<args>[^()]*)\)\s*"
)


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        for marker in ("%", "#"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        lines.append(line)
    return "\n".join(lines)


def _parse_term(token: str) -> Term:
    token = token.strip()
    if not token:
        raise DatalogSyntaxError("empty term")
    if token.startswith(("'", '"')) and token.endswith(("'", '"')) and len(token) >= 2:
        return token[1:-1]
    if token.lstrip("-").isdigit():
        return int(token)
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return Var(token)
    raise DatalogSyntaxError(f"cannot parse term {token!r}")


def _parse_atom(text: str) -> tuple[Atom, str]:
    match = _ATOM.match(text)
    if match is None:
        raise DatalogSyntaxError(f"expected an atom at {text[:40]!r}")
    args_text = match.group("args").strip()
    args = (
        tuple(_parse_term(token) for token in args_text.split(","))
        if args_text
        else ()
    )
    return Atom(match.group("pred"), args), text[match.end():]


def parse_rule(text: str) -> Rule:
    """Parse a single rule (without the trailing period)."""
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
    else:
        head_text, body_text = text, ""
    head, rest = _parse_atom(head_text)
    if rest.strip():
        raise DatalogSyntaxError(f"junk after head atom: {rest!r}")
    body: list[Atom] = []
    remaining = body_text.strip()
    while remaining:
        atom, remaining = _parse_atom(remaining)
        body.append(atom)
        remaining = remaining.strip()
        if remaining.startswith(","):
            remaining = remaining[1:]
        elif remaining:
            raise DatalogSyntaxError(f"expected ',' between atoms at {remaining!r}")
    return Rule(head, tuple(body))


def parse_program(text: str, goal: str | None = None) -> Program:
    """Parse a full program; *goal* defaults to the first rule's head."""
    cleaned = _strip_comments(text)
    chunks = [chunk.strip() for chunk in cleaned.split(".") if chunk.strip()]
    if not chunks:
        raise DatalogSyntaxError("empty program")
    rules = tuple(parse_rule(chunk) for chunk in chunks)
    return Program(rules, goal if goal is not None else rules[0].head.predicate)
