"""Datalog -> SQL recursive CTEs (the paper's SQL:1999 connection).

Section 1 of the paper traces recursion in SQL to common table
expressions [29]; this module makes the connection executable by
compiling a (non-mutually-recursive) Datalog program into a
``WITH RECURSIVE`` query.  SQLite — in the standard library — then
serves as an *independent engine* whose answers the test suite compares
against the semi-naive fixpoint, a third implementation of the paper's
§2.2 semantics.

Supported programs: every GRQ program and, more generally, any program
whose dependence-graph SCCs are singletons (no mutual recursion — a SQL
CTE can only reference itself).  Constants may be ints or strings.

Layout: one CTE per IDB predicate in dependency order; each rule
becomes a SELECT with joins on shared variables, unioned per predicate.
EDB relations are tables named after the predicate with columns
``c0..c{k-1}``.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable

from ..cq.syntax import Atom, Var, is_var
from ..relational.instance import Instance
from .analysis import dependence_graph, recursive_predicates
from .syntax import Program, Rule


class SQLTranslationError(ValueError):
    """Raised for programs outside the translatable fragment."""


def _check_translatable(program: Program) -> None:
    graph = dependence_graph(program)
    for component in graph.strongly_connected_components():
        members = component & program.idb_predicates
        if len(members) > 1:
            raise SQLTranslationError(
                f"mutually recursive predicates {sorted(members)}: SQL CTEs "
                "cannot express mutual recursion"
            )
    recursive = recursive_predicates(program)
    for rule in program.rules:
        for atom in (rule.head, *rule.body):
            for term in atom.args:
                if is_var(term):
                    continue
                if not isinstance(term, (int, str)):
                    raise SQLTranslationError(
                        f"constant {term!r} is not representable in SQL"
                    )
        if rule.head.predicate in recursive:
            self_references = sum(
                1 for atom in rule.body if atom.predicate == rule.head.predicate
            )
            if self_references > 1:
                raise SQLTranslationError(
                    f"rule {rule!r} references its own predicate "
                    f"{self_references} times; SQLite recursive CTEs allow "
                    "exactly one self-reference (linear recursion only)"
                )


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _literal(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def _rule_select(rule: Rule) -> str:
    """One rule as a SELECT over its body atoms."""
    if not rule.body:
        values = ", ".join(_literal(term) for term in rule.head.args) or "1"
        return f"SELECT {values}"
    aliases = [f"t{i}" for i in range(len(rule.body))]
    first_binding: dict[Var, str] = {}
    conditions: list[str] = []
    for alias, atom in zip(aliases, rule.body):
        for position, term in enumerate(atom.args):
            column = f"{alias}.c{position}"
            if is_var(term):
                if term in first_binding:
                    conditions.append(f"{column} = {first_binding[term]}")
                else:
                    first_binding[term] = column
            else:
                conditions.append(f"{column} = {_literal(term)}")
    select_parts = []
    for term in rule.head.args:
        if is_var(term):
            select_parts.append(first_binding[term])
        else:
            select_parts.append(_literal(term))
    if not select_parts:
        select_parts = ["1"]  # zero-arity head: presence marker column
    from_clause = ", ".join(
        f"{_quote(atom.predicate)} AS {alias}"
        for alias, atom in zip(aliases, rule.body)
    )
    where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
    return f"SELECT {', '.join(select_parts)} FROM {from_clause}{where}"


def program_to_sql(program: Program) -> str:
    """The complete ``WITH RECURSIVE`` query selecting the goal relation."""
    _check_translatable(program)
    recursive = recursive_predicates(program)
    graph = dependence_graph(program)
    ordered = [
        predicate
        for component in reversed(graph.strongly_connected_components())
        for predicate in sorted(component)
        if predicate in program.idb_predicates
    ]
    ctes = []
    for predicate in ordered:
        arity = program.arity_of(predicate)
        assert arity is not None
        # Zero-arity predicates get a single presence-marker column.
        columns = ", ".join(f"c{i}" for i in range(max(arity, 1)))
        # SQLite requires the non-recursive branch(es) of a recursive
        # CTE to come first in the UNION.
        rules = sorted(
            program.rules_for(predicate),
            key=lambda rule: any(
                atom.predicate == predicate for atom in rule.body
            ),
        )
        selects = [_rule_select(rule) for rule in rules]
        body = "\n    UNION\n    ".join(selects)
        ctes.append(f"{_quote(predicate)}({columns}) AS (\n    {body}\n)")
    goal_arity = program.goal_arity
    goal_columns = ", ".join(f"c{i}" for i in range(goal_arity)) or "1"
    keyword = "WITH RECURSIVE" if recursive else "WITH"
    if goal_arity == 0:
        # Boolean goal: emit a 1-column presence marker.
        return (
            f"{keyword} " + ",\n".join(ctes) +
            f"\nSELECT DISTINCT 1 FROM {_quote(program.goal)}"
        )
    return (
        f"{keyword} " + ",\n".join(ctes) +
        f"\nSELECT DISTINCT {goal_columns} FROM {_quote(program.goal)}"
    )


def _load_edb(connection: sqlite3.Connection, program: Program, edb: Instance) -> None:
    for predicate in sorted(program.edb_predicates):
        arity = program.arity_of(predicate)
        rows = edb.tuples(predicate)
        if arity is None:
            arity = edb.arity(predicate) or 0
        width = max(arity, 1)
        columns = ", ".join(f"c{i}" for i in range(width))
        connection.execute(f"CREATE TABLE {_quote(predicate)} ({columns})")
        if rows:
            placeholders = ", ".join("?" for _ in range(width))
            connection.executemany(
                f"INSERT INTO {_quote(predicate)} VALUES ({placeholders})",
                [tuple(row) if row else (1,) for row in rows],
            )


def evaluate_via_sql(program: Program, edb: Instance) -> frozenset[tuple]:
    """Run the translated query on an in-memory SQLite database.

    Returns the goal relation, matching
    :func:`repro.datalog.evaluation.evaluate` on every supported
    program (the test suite enforces this).
    """
    sql = program_to_sql(program)
    with sqlite3.connect(":memory:") as connection:
        _load_edb(connection, program, edb)
        rows = connection.execute(sql).fetchall()
    if program.goal_arity == 0:
        return frozenset({()} if rows else set())
    return frozenset(tuple(row) for row in rows)
