"""Datalog programs: Horn rules with a designated goal (Section 2.2).

A rule ``P(x, z) :- E(x, y), Q(y, z)`` has a single head atom and a
conjunction of body atoms; body-only variables are implicitly
existential, so every rule *is* a conjunctive query (as the paper
notes).  Predicates occurring in some head are intensional (IDB); the
rest are extensional (EDB).  A query is a program plus a goal IDB
predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..cq.syntax import Atom, Term, Var, is_var


@dataclass(frozen=True)
class Rule:
    """A Horn rule ``head :- body`` (body empty = fact rule)."""

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        body_vars = {var for atom in self.body for var in atom.variables()}
        unsafe = [var for var in self.head.variables() if var not in body_vars]
        if self.body and unsafe:
            raise ValueError(f"unsafe rule: head variables {unsafe} not in body")
        if not self.body and self.head.variables():
            raise ValueError("fact rules must be ground")

    def variables(self) -> frozenset[Var]:
        out = set(self.head.variables())
        for atom in self.body:
            out.update(atom.variables())
        return frozenset(out)

    def substitute(self, mapping: Mapping[Var, Term]) -> "Rule":
        return Rule(
            self.head.substitute(mapping),
            tuple(atom.substitute(mapping) for atom in self.body),
        )

    def rename_with_suffix(self, suffix: str) -> "Rule":
        """Freshen every variable by appending *suffix* to its name."""
        mapping = {var: Var(f"{var.name}{suffix}") for var in self.variables()}
        return self.substitute(mapping)

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- " + ", ".join(repr(a) for a in self.body) + "."


@dataclass(frozen=True)
class Program:
    """A Datalog query: a rule set plus a goal predicate.

    >>> from repro.datalog.parser import parse_program
    >>> tc = parse_program('''
    ...     tc(x, y) :- edge(x, y).
    ...     tc(x, z) :- tc(x, y), edge(y, z).
    ... ''', goal="tc")
    """

    rules: tuple[Rule, ...]
    goal: str

    def __post_init__(self) -> None:
        if self.goal not in self.idb_predicates:
            raise ValueError(
                f"goal {self.goal!r} is not an IDB predicate of the program"
            )
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                existing = arities.setdefault(atom.predicate, atom.arity)
                if existing != atom.arity:
                    raise ValueError(
                        f"{atom.predicate} used with arities {existing} and {atom.arity}"
                    )

    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(rule.head.predicate for rule in self.rules)

    @property
    def edb_predicates(self) -> frozenset[str]:
        mentioned = {
            atom.predicate for rule in self.rules for atom in rule.body
        }
        return frozenset(mentioned - self.idb_predicates)

    @property
    def goal_arity(self) -> int:
        for rule in self.rules:
            if rule.head.predicate == self.goal:
                return rule.head.arity
        raise AssertionError("goal validated in __post_init__")  # pragma: no cover

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        return tuple(rule for rule in self.rules if rule.head.predicate == predicate)

    def arity_of(self, predicate: str) -> int | None:
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                if atom.predicate == predicate:
                    return atom.arity
        return None

    def rename_predicates(self, mapping: Mapping[str, str]) -> "Program":
        """Rename predicates (used to avoid IDB clashes when combining)."""
        def rename_atom(atom: Atom) -> Atom:
            return Atom(mapping.get(atom.predicate, atom.predicate), atom.args)

        rules = tuple(
            Rule(rename_atom(rule.head), tuple(rename_atom(a) for a in rule.body))
            for rule in self.rules
        )
        return Program(rules, mapping.get(self.goal, self.goal))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __repr__(self) -> str:
        lines = [repr(rule) for rule in self.rules]
        return f"Program(goal={self.goal}):\n  " + "\n  ".join(lines)


def program_to_text(program: Program) -> str:
    """Serialize a program in the :mod:`repro.datalog.parser` syntax.

    ``parse_program(program_to_text(p), goal=p.goal)`` round-trips any
    constant-free or int/str-constant program.
    """

    def term_text(term: Term) -> str:
        if isinstance(term, Var):
            return term.name
        if isinstance(term, str):
            return f"'{term}'"
        return str(term)

    def atom_text(atom: Atom) -> str:
        inner = ", ".join(term_text(t) for t in atom.args)
        return f"{atom.predicate}({inner})"

    lines = []
    for rule in program.rules:
        if rule.body:
            body = ", ".join(atom_text(a) for a in rule.body)
            lines.append(f"{atom_text(rule.head)} :- {body}.")
        else:
            lines.append(f"{atom_text(rule.head)}.")
    lines.append(f"% goal: {program.goal}")
    return "\n".join(lines) + "\n"


def transitive_closure_program(
    edge: str = "edge", goal: str = "tc", left_linear: bool = True
) -> Program:
    """The paper's flagship recursive program: the transitive closure E+.

    ``E+(x,y) :- E(x,y).  E+(x,z) :- E+(x,y), E(y,z).``  (Section 2.3.)
    """
    x, y, z = Var("x"), Var("y"), Var("z")
    base = Rule(Atom(goal, (x, y)), (Atom(edge, (x, y)),))
    if left_linear:
        step = Rule(Atom(goal, (x, z)), (Atom(goal, (x, y)), Atom(edge, (y, z))))
    else:
        step = Rule(Atom(goal, (x, z)), (Atom(edge, (x, y)), Atom(goal, (y, z))))
    return Program((base, step), goal)


def reachability_program(
    edge: str = "E", source_set: str = "P", goal: str = "Q"
) -> Program:
    """The paper's Monadic Datalog example (Section 2.3).

    ``Q(X) :- E(X,Y), P(Y).   Q(X) :- E(X,Y), Q(Y).``
    """
    x, y = Var("X"), Var("Y")
    return Program(
        (
            Rule(Atom(goal, (x,)), (Atom(edge, (x, y)), Atom(source_set, (y,)))),
            Rule(Atom(goal, (x,)), (Atom(edge, (x, y)), Atom(goal, (y,)))),
        ),
        goal,
    )
