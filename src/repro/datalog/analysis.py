"""Structural analysis of Datalog programs (Sections 2.2-2.3, 4.1).

Implements the paper's dependence graph — an edge from predicate Q to
predicate P when Q occurs in the body of a rule with head P ("P depends
on Q") — and the derived classifications the paper's narrative walks
through: recursive predicates, nonrecursive programs (≡ UCQ), Monadic
Datalog (decidable but cannot express E+), linear recursion, and the
strongly-connected-component machinery the GRQ membership test builds
on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from .syntax import Program, Rule


@dataclass(frozen=True)
class DependenceGraph:
    """The paper's dependence graph over the program's predicates."""

    nodes: frozenset[str]
    edges: frozenset[tuple[str, str]]  # (body predicate, head predicate)

    def successors(self, predicate: str) -> frozenset[str]:
        return frozenset(head for body, head in self.edges if body == predicate)

    def strongly_connected_components(self) -> list[frozenset[str]]:
        """Tarjan SCCs, successors-first (an SCC appears after none of
        the SCCs it has edges into)."""
        adjacency: dict[str, list[str]] = defaultdict(list)
        for body, head in self.edges:
            adjacency[body].append(head)
        index_counter = 0
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        result: list[frozenset[str]] = []

        def strongconnect(node: str) -> None:
            nonlocal index_counter
            index[node] = lowlink[node] = index_counter
            index_counter += 1
            stack.append(node)
            on_stack.add(node)
            for succ in adjacency[node]:
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(frozenset(component))

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * len(self.nodes) + 100))
        try:
            for node in sorted(self.nodes):
                if node not in index:
                    strongconnect(node)
        finally:
            sys.setrecursionlimit(old_limit)
        return result

    def has_self_loop(self, predicate: str) -> bool:
        return (predicate, predicate) in self.edges


def dependence_graph(program: Program) -> DependenceGraph:
    """Build the dependence graph of *program*."""
    nodes: set[str] = set()
    edges: set[tuple[str, str]] = set()
    for rule in program.rules:
        nodes.add(rule.head.predicate)
        for atom in rule.body:
            nodes.add(atom.predicate)
            edges.add((atom.predicate, rule.head.predicate))
    return DependenceGraph(frozenset(nodes), frozenset(edges))


def recursive_predicates(program: Program) -> frozenset[str]:
    """Predicates with a dependence-graph cycle through themselves."""
    graph = dependence_graph(program)
    recursive: set[str] = set()
    for component in graph.strongly_connected_components():
        if len(component) > 1:
            recursive |= component
        else:
            (only,) = component
            if graph.has_self_loop(only):
                recursive.add(only)
    return frozenset(recursive)


def is_nonrecursive(program: Program) -> bool:
    """True iff no predicate depends recursively on itself (≡ UCQ)."""
    return not recursive_predicates(program)


def is_monadic(program: Program) -> bool:
    """Monadic Datalog: every *recursive* predicate is one-place.

    (The paper notes the goal may be non-monadic; only recursion is
    restricted.)  Monadic programs have decidable containment [25] but
    cannot express E+ — that separation is experiment E9's subject.
    """
    return all(
        program.arity_of(predicate) == 1 for predicate in recursive_predicates(program)
    )


def is_linear(program: Program) -> bool:
    """Linear recursion: each rule body has at most one recursive atom."""
    recursive = recursive_predicates(program)
    for rule in program.rules:
        count = sum(1 for atom in rule.body if atom.predicate in recursive)
        if count > 1:
            return False
    return True


def recursive_components(program: Program) -> list[frozenset[str]]:
    """The recursive SCCs, dependencies first.

    Since dependence edges point from body predicates to heads, Tarjan
    emits the *depending* (downstream) components first; reversing gives
    bottom-up order — a component appears after everything it uses.
    """
    graph = dependence_graph(program)
    out: list[frozenset[str]] = []
    for component in reversed(graph.strongly_connected_components()):
        if len(component) > 1 or graph.has_self_loop(next(iter(component))):
            out.append(component & program.idb_predicates)
    return [component for component in out if component]


def predicate_depth(program: Program) -> dict[str, int]:
    """Longest IDB-dependency chain below each predicate (nonrecursive only).

    Used to bound unfolding; raises on recursive programs.
    """
    if not is_nonrecursive(program):
        raise ValueError("predicate_depth is only defined for nonrecursive programs")
    graph = dependence_graph(program)
    idb = program.idb_predicates
    depth: dict[str, int] = {}

    def compute(predicate: str) -> int:
        if predicate not in idb:
            return 0
        if predicate in depth:
            return depth[predicate]
        below = [
            compute(body)
            for body, head in graph.edges
            if head == predicate
        ]
        depth[predicate] = 1 + max(below, default=0)
        return depth[predicate]

    for predicate in idb:
        compute(predicate)
    return depth
