"""Unfolding and expansions: Datalog as (possibly infinite) unions of CQs.

Section 2.2 of the paper recalls two classical facts this module makes
executable:

- a *nonrecursive* program is equivalent to a finite UCQ
  (:func:`unfold_nonrecursive`), and
- a general program defines a possibly infinite union of conjunctive
  queries — its *expansions*, one per proof tree
  (:func:`enumerate_expansions`), which the expansion-based containment
  procedures of :mod:`repro.datalog.containment`, :mod:`repro.crpq` and
  :mod:`repro.rq` quantify over.

Rules may repeat variables in their heads (e.g. the image of RQ
selection under the Section 4.1 translation); unifying such a head with
a call site *identifies* call-site terms, and the identification is
applied to the entire partial expansion, including the goal tuple.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from ..cq.syntax import CQ, UCQ, Atom, Term, Var, is_var
from .analysis import is_nonrecursive
from .syntax import Program, Rule


@dataclass(frozen=True)
class PartialExpansion:
    """A partially unfolded goal: atoms over EDB and pending IDB atoms.

    ``head`` tracks the goal tuple through the variable identifications
    that repeated-head-variable rules force.
    """

    atoms: tuple[Atom, ...]
    head: tuple[Term, ...]
    applications: int  # how many rule substitutions produced this

    def first_idb_index(self, idb: frozenset[str]) -> int | None:
        for index, atom in enumerate(self.atoms):
            if atom.predicate in idb:
                return index
        return None


def _fresh_rule(rule: Rule, stamp: int) -> Rule:
    """Rename rule variables apart with a per-substitution stamp."""
    return rule.rename_with_suffix(f"~{stamp}")


def _unify_with_head(
    rule: Rule, atom: Atom, stamp: int
) -> tuple[tuple[Atom, ...], dict[Term, Term]] | None:
    """Substitute *atom* by the (freshened) body of *rule*.

    Head variables bind to the call-site terms; repeated head variables
    force identifications among call-site terms, returned as a rewrite
    map the caller must apply to the rest of the expansion.  Returns
    None when head constants clash with the call site.
    """
    fresh = _fresh_rule(rule, stamp)
    binding: dict[Var, Term] = {}
    forced: list[tuple[Term, Term]] = []
    for head_term, call_term in zip(fresh.head.args, atom.args):
        if is_var(head_term):
            if head_term in binding:
                forced.append((binding[head_term], call_term))
            else:
                binding[head_term] = call_term
        elif head_term != call_term:
            return None
    rewrite: dict[Term, Term] = {}
    for a, b in forced:
        a = rewrite.get(a, a)
        b = rewrite.get(b, b)
        if a == b:
            continue
        if not is_var(a) and not is_var(b):
            return None  # two distinct constants forced equal
        keep, drop = (a, b) if is_var(b) else (b, a)
        rewrite[drop] = keep
        rewrite = {key: (keep if value == drop else value) for key, value in rewrite.items()}

    def rw(term: Term) -> Term:
        return rewrite.get(term, term)

    body = tuple(
        Atom(a.predicate, tuple(rw(t) for t in a.args))
        for a in (atom_.substitute(binding) for atom_ in fresh.body)
    )
    return body, rewrite


def _apply_rewrite(atoms: tuple[Atom, ...], rewrite: dict[Term, Term]) -> tuple[Atom, ...]:
    if not rewrite:
        return atoms
    return tuple(
        Atom(a.predicate, tuple(rewrite.get(t, t) for t in a.args)) for a in atoms
    )


def enumerate_expansions(
    program: Program,
    max_applications: int | None = None,
    max_atoms: int | None = None,
    max_expansions: int | None = None,
    meter=None,
) -> Iterator[CQ]:
    """Enumerate the program's expansions breadth-first by proof size.

    Each yielded CQ's head is the goal tuple (variables ``g0..g{k-1}``,
    possibly identified by repeated-head-variable rules) and its body
    contains only EDB atoms.  Enumeration is by number of rule
    applications, so bounded containment checks meet the smallest
    counterexamples first.

    Args:
        program: the Datalog query.
        max_applications: stop exploring partial expansions beyond this
            many rule substitutions (None = unbounded; the iterator is
            then infinite for recursive programs).
        max_atoms: prune partial expansions whose atom count exceeds this.
        max_expansions: overall cap on yielded expansions.
        meter: optional :class:`repro.budget.BudgetMeter`; the BFS polls
            its wall-clock deadline at every queue pop, so a deadline
            interrupts the (possibly infinite) unfolding between yields.
    """
    idb = program.idb_predicates
    goal_arity = program.goal_arity
    head_vars: tuple[Term, ...] = tuple(Var(f"g{i}") for i in range(goal_arity))
    seed = PartialExpansion((Atom(program.goal, head_vars),), head_vars, 0)
    queue: deque[PartialExpansion] = deque([seed])
    stamp = itertools.count()
    yielded = 0
    seen: set[tuple] = set()
    while queue:
        partial = queue.popleft()
        if meter is not None:
            meter.poll()
        index = partial.first_idb_index(idb)
        if index is None:
            key = (partial.atoms, partial.head)
            if key in seen:
                continue
            seen.add(key)
            cq = _to_cq(partial)
            if cq is None:
                continue
            yield cq
            yielded += 1
            if max_expansions is not None and yielded >= max_expansions:
                return
            continue
        if max_applications is not None and partial.applications >= max_applications:
            continue
        atom = partial.atoms[index]
        for rule in program.rules_for(atom.predicate):
            unified = _unify_with_head(rule, atom, next(stamp))
            if unified is None:
                continue
            body, rewrite = unified
            before = _apply_rewrite(partial.atoms[:index], rewrite)
            after = _apply_rewrite(partial.atoms[index + 1 :], rewrite)
            new_atoms = before + body + after
            new_head = tuple(rewrite.get(t, t) for t in partial.head)
            if max_atoms is not None and len(new_atoms) > max_atoms:
                continue
            queue.append(
                PartialExpansion(new_atoms, new_head, partial.applications + 1)
            )


def _to_cq(partial: PartialExpansion) -> CQ | None:
    """Finalize a fully unfolded expansion as a CQ, or None if impossible.

    Expansions whose goal tuple contains a constant, or whose goal
    variable no longer occurs in the body (possible with constant-headed
    rules), are not expressible as plain CQs and are skipped; none of
    the translations in this package produce such programs.
    """
    if not all(is_var(term) for term in partial.head):
        return None
    body_vars = {v for a in partial.atoms for v in a.variables()}
    if not set(partial.head) <= body_vars:
        return None
    return CQ(tuple(partial.head), partial.atoms)  # type: ignore[arg-type]


def unfold_nonrecursive(program: Program) -> UCQ:
    """The finite UCQ equivalent to a nonrecursive program (Section 2.2).

    Raises ValueError on recursive programs.
    """
    if not is_nonrecursive(program):
        raise ValueError("only nonrecursive programs unfold to a finite UCQ")
    disjuncts = tuple(enumerate_expansions(program))
    if not disjuncts:
        raise ValueError(
            "program has no expansions (goal underivable for every database)"
        )
    return UCQ(disjuncts)
