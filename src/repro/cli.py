"""Command-line interface: evaluate, classify, and check containment.

Queries are given as ``kind:spec`` where *kind* is one of ``rpq``
(regex text), ``rq`` (rule syntax of :mod:`repro.rq.parser`), or
``datalog`` (program text); a spec starting with ``@`` is read from the
named file.  Databases load via :mod:`repro.graphdb.io` /
:mod:`repro.relational.io` by extension.

Examples::

    python -m repro classify "rpq:knows+ worksAt"
    python -m repro evaluate "rpq:knows+" --database graph.edges
    python -m repro contain "rpq:knows knows" "rpq:knows+"
    python -m repro contain "datalog:@router.dl" "datalog:@policy.dl"
    python -m repro batch workload.ndjson --workers 4 --backend thread
    python -m repro bench run --suite smoke
    python -m repro bench compare --baseline benchmarks/baseline.json

The ``batch`` subcommand reads an NDJSON workload — one JSON object per
line, ``{"id": "p1", "left": "rpq:a a", "right": "rpq:a+"}`` (``id``
optional; ``left``/``right`` use the same ``kind:spec`` syntax as
``contain``, including ``@file``) — runs all pairs on a worker pool,
and emits one NDJSON result line per pair, in input order.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Any

from .core.classify import classify, describe_tower
from .core.engine import check_containment
from .core.witness import holds_on
from .graphdb import io as graph_io
from .graphdb.database import GraphDatabase
from .relational import io as relational_io
from .rpq.rpq import RPQ, TwoRPQ


def parse_query(argument: str) -> Any:
    """Parse a ``kind:spec`` query argument (wire grammar; exits on error).

    CLI arguments are operator-supplied, so ``@`` file specs are
    allowed here — the server rejects them on the wire.
    """
    from .serve.protocol import ProtocolError, parse_query_spec

    try:
        return parse_query_spec(argument, allow_files=True)
    except ProtocolError as error:
        raise SystemExit(str(error)) from None


def load_database(path: str):
    """Load a graph or relational database by extension.

    ``.facts``/``.dl`` load as relational instances; everything else
    (``.edges``, ``.json``, ...) loads as a graph database, falling back
    to relational when binary-edge parsing fails.
    """
    suffix = pathlib.Path(path).suffix
    if suffix in (".facts", ".dl"):
        return relational_io.load(path)
    return graph_io.load(path)


def _cmd_classify(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(f"{classify(query).value}: {describe_tower(query)}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    database = load_database(args.database)
    from .core.witness import as_graph, as_instance
    from .datalog.evaluation import evaluate as datalog_evaluate
    from .datalog.syntax import Program
    from .rq.evaluation import evaluate_rq
    from .rq.syntax import RQ

    want_stats = getattr(args, "stats", False)
    tracer = None
    if want_stats:
        from .cache import clear_caches
        from .obs.metrics import reset_metrics
        from .obs.trace import Tracer

        # Start from a clean slate so the report describes this run only.
        clear_caches(reset_stats=True)
        reset_metrics()
        tracer = Tracer()

    if isinstance(query, TwoRPQ):
        from .obs.trace import maybe_span

        with maybe_span(tracer, "evaluate", query=str(query)):
            answers = query.evaluate(as_graph(database), tracer=tracer)
    elif isinstance(query, RQ):
        answers = evaluate_rq(query, as_graph(database))
    elif isinstance(query, Program):
        answers = datalog_evaluate(query, as_instance(database))
    else:  # pragma: no cover - parse_query only returns the above
        raise SystemExit(f"cannot evaluate {query!r}")
    for row in sorted(answers, key=repr):
        print("\t".join(str(value) for value in row))
    print(f"# {len(answers)} answers", file=sys.stderr)
    if want_stats:
        _print_evaluation_stats(tracer)
    return 0


def _print_evaluation_stats(tracer) -> None:
    """Render the ``evaluate --stats`` report (metrics, caches, spans)."""
    from .cache import cache_stats
    from .obs.metrics import metrics_snapshot

    print("# evaluation stats", file=sys.stderr)
    for name, data in sorted(metrics_snapshot().items()):
        if name.startswith("evaluation."):
            print(f"#   {name} = {data.get('value', 0)}", file=sys.stderr)
    for name in ("eval-context", "evaluation", "instantiate", "regex-nfa"):
        stats = cache_stats().get(name)
        if stats is not None:
            print(
                f"#   cache {name}: hits={stats['hits']} misses={stats['misses']} "
                f"size={stats['size']}",
                file=sys.stderr,
            )
    if tracer is not None and tracer.roots:
        from .obs.export import render_trace

        for root in tracer.roots:
            print(render_trace(root.to_dict()), file=sys.stderr)


def _cmd_contain(args: argparse.Namespace) -> int:
    from .budget import Budget

    q1 = parse_query(args.left)
    q2 = parse_query(args.right)
    options: dict[str, Any] = {}
    if args.max_expansions is not None:
        options["max_expansions"] = args.max_expansions
    if args.kernel is not None:
        options["kernel"] = args.kernel
    budget = None
    if args.auto_budget:
        budget = Budget.auto(
            deadline_ms=args.deadline_ms
        ) if args.deadline_ms is not None else "auto"
    elif args.deadline_ms is not None:
        budget = Budget(deadline_ms=args.deadline_ms)
    want_trace = args.trace or args.trace_json is not None
    result = check_containment(q1, q2, budget=budget, trace=want_trace, **options)
    print(result.describe())
    if want_trace:
        from .obs.export import render_trace, trace_to_ndjson

        trace = result.details.get("trace")
        if trace is None:
            print("(no trace recorded)", file=sys.stderr)
        else:
            if args.trace:
                print(render_trace(trace))
            if args.trace_json is not None:
                pathlib.Path(args.trace_json).write_text(trace_to_ndjson(trace))
                print(f"# trace written to {args.trace_json}", file=sys.stderr)
    if result.counterexample is not None and args.show_witness:
        print("counterexample database:")
        database = result.counterexample.database
        if isinstance(database, GraphDatabase):
            print(graph_io.to_edge_list(database), end="")
        else:
            print(relational_io.to_fact_text(database), end="")
        print(f"distinguishing output: {result.counterexample.output}")
    return 0 if result.holds else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .budget import Budget
    from .core.batch import BatchItem, check_containment_many
    from .serve.protocol import parse_workload, response_payload

    budget = None
    if args.auto_budget:
        budget = Budget.auto(
            deadline_ms=args.deadline_ms
        ) if args.deadline_ms is not None else "auto"
    elif args.deadline_ms is not None:
        budget = Budget(deadline_ms=args.deadline_ms)
    options: dict[str, Any] = {}
    if args.max_expansions is not None:
        options["max_expansions"] = args.max_expansions
    if args.kernel is not None:
        options["kernel"] = args.kernel

    # Parse the workload on the shared wire-protocol path: malformed
    # lines are isolated exactly like item failures — a bad line yields
    # an ERROR result line at its input position, not an abort.
    text = pathlib.Path(args.workload).read_text()
    parsed = parse_workload(text)
    pairs = [(request.left, request.right) for request in parsed.requests]
    pair_ids = {
        position: request.id
        for position, request in enumerate(parsed.requests)
    }

    batch = check_containment_many(
        pairs,
        workers=args.workers,
        backend=args.backend,
        budget=budget,
        trace=args.trace,
        pool_deadline_ms=args.pool_deadline_ms,
        **options,
    )

    # Re-interleave parse failures at their original line positions.
    merged: list[tuple[Any, BatchItem]] = []
    run_iter = iter(batch.items)
    for line_no in range(parsed.count):
        if line_no in parsed.failures:
            merged.append((None, parsed.failures[line_no]))
        else:
            item = next(run_iter)
            merged.append((pair_ids[item.index], item))

    out_lines = []
    for line_no, (identifier, item) in enumerate(merged):
        payload = response_payload(identifier, item, index=line_no)
        if args.trace and "trace" in dict(item.result.details):
            payload["trace"] = dict(item.result.details)["trace"]
        out_lines.append(json.dumps(payload, sort_keys=True))
    # An empty workload is an empty result — no stray blank line.
    output = "\n".join(out_lines) + "\n" if out_lines else ""
    if args.out is not None:
        pathlib.Path(args.out).write_text(output)
        print(f"# results written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(output)
    summary = batch.describe()
    if parsed.failures:
        summary += f"; {len(parsed.failures)} line(s) failed to parse"
    print(f"# {summary}", file=sys.stderr)
    had_errors = bool(batch.errors) or bool(parsed.failures)
    return 1 if had_errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .core.batch import DEFAULT_WORKERS
    from .serve.server import ContainmentServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers if args.workers is not None else DEFAULT_WORKERS,
        backend=args.backend,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline_ms,
        auto_budget=args.auto_budget,
        drain_grace_ms=args.drain_grace_ms,
        kernel=args.kernel,
        max_expansions=args.max_expansions,
        access_log=args.access_log,
        slow_ms=args.slow_ms,
        trace_sample_rate=args.trace_sample_rate,
        flight_recorder_size=args.flight_recorder_size,
        flight_dump=args.flight_dump,
        prom_port=args.prom_port,
    )
    server = ContainmentServer(config)
    if args.pipe:
        asyncio.run(server.serve_pipe())
    else:
        asyncio.run(server.serve_tcp())
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .obs.metrics import metrics_snapshot
    from .obs.promtext import render_prometheus
    from .serve.monitor import fetch_metrics, parse_addr

    if args.addr is not None:
        host, port = parse_addr(args.addr)
        try:
            payload = fetch_metrics(host, port, timeout=args.timeout)
        except OSError as error:
            raise SystemExit(f"cannot reach {host}:{port}: {error}") from None
        snapshot = payload.get("metrics", {})
    else:
        snapshot = metrics_snapshot()
    if args.prom:
        sys.stdout.write(render_prometheus(snapshot))
    else:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from .serve.monitor import fetch_metrics, parse_addr, render_top

    host, port = parse_addr(args.addr)
    try:
        previous = fetch_metrics(host, port, timeout=args.timeout)
    except OSError as error:
        raise SystemExit(f"cannot reach {host}:{port}: {error}") from None
    for _ in range(args.count):
        _time.sleep(args.interval)
        try:
            current = fetch_metrics(host, port, timeout=args.timeout)
        except OSError as error:
            print(f"# lost {host}:{port}: {error}", file=sys.stderr)
            return 1
        print(render_top(previous, current, addr=f"{host}:{port}"), flush=True)
        previous = current
    return 0


def _latest_run(path: str | None) -> pathlib.Path:
    """Resolve a run argument: explicit path, or the newest BENCH_*.json."""
    if path is not None:
        return pathlib.Path(path)
    candidates = sorted(pathlib.Path(".").glob("BENCH_*.json"))
    if not candidates:
        raise SystemExit(
            "no BENCH_*.json run documents here; record one with "
            "`repro bench run` or name one explicitly"
        )
    return candidates[-1]


def _load_run(path: pathlib.Path) -> dict:
    import json

    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"run document {path} does not exist") from None
    except ValueError as error:
        raise SystemExit(f"run document {path} is not valid JSON: {error}") from None


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from .obs.perf import run_suite, write_run
    from .obs.profile import render_profile

    document = run_suite(
        args.suite, repeats=args.repeats, profile=not args.no_profile
    )
    path = write_run(document, path=args.out, directory=args.dir)
    print(
        f"bench run {document['run_id']} (suite {document['suite']}, "
        f"{document['timing_repeats']} timing reps)"
    )
    for experiment in document["experiments"]:
        medians = ", ".join(
            f"{name} {timing['median_ms']:.3f}ms"
            for name, timing in experiment["timings"].items()
        )
        print(f"  {experiment['id']}: exact series recorded"
              + (f"; {medians}" if medians else ""))
    if "profile" in document:
        print()
        print(render_profile(document["profile"], top=args.top), end="")
    print(f"# run written to {path}", file=sys.stderr)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .obs.perf import compare_runs, render_comparison

    baseline = _load_run(pathlib.Path(args.baseline))
    current = _load_run(_latest_run(args.run))
    comparison = compare_runs(
        baseline, current, tolerance_mads=args.tolerance_mads
    )
    print(render_comparison(comparison), end="")
    if not comparison.ok:
        return 1
    if args.fail_on_timing and comparison.timing_regressions:
        return 1
    return 0


def _cmd_bench_profile(args: argparse.Namespace) -> int:
    from .obs.profile import render_profile

    path = _latest_run(args.run)
    document = _load_run(path)
    profile = document.get("profile")
    if not profile:
        print(f"{path} has no profile section (recorded with --no-profile?)",
              file=sys.stderr)
        return 1
    print(render_profile(profile, top=args.top), end="")
    return 0


def _cmd_rewrite(args: argparse.Namespace) -> int:
    from .rpq.views import answer_using_views, rewrite, view_graph

    query = parse_query(args.query)
    if not isinstance(query, RPQ):
        raise SystemExit("rewrite requires a one-way RPQ query (kind rpq:)")
    views: dict[str, RPQ] = {}
    for spec in args.view:
        name, _, regex = spec.partition("=")
        if not regex:
            raise SystemExit(f"view {spec!r} must look like name=regex")
        view = TwoRPQ.parse(regex)
        if not view.is_one_way():
            raise SystemExit(f"view {name!r} must be a one-way RPQ")
        views[name] = RPQ(view.regex)
    rewriting = rewrite(query, views)
    if rewriting.is_empty:
        print("no contained rewriting exists over these views")
        return 1
    kind = "exact" if rewriting.is_exact() else "maximally contained (partial)"
    print(f"rewriting ({kind}): {rewriting.to_regex()}")
    if args.database:
        materialized = view_graph(views, load_database(args.database))
        answers = answer_using_views(rewriting, materialized)
        for row in sorted(answers, key=repr):
            print("\t".join(str(value) for value in row))
        print(f"# {len(answers)} certain answers", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="regular-queries: evaluation and containment for the "
        "query classes of Vardi, PODS 2016",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify_p = sub.add_parser("classify", help="place a query in the towers")
    classify_p.add_argument("query", help="kind:spec (rpq / rq / datalog)")
    classify_p.set_defaults(func=_cmd_classify)

    evaluate_p = sub.add_parser("evaluate", help="run a query on a database")
    evaluate_p.add_argument("query", help="kind:spec")
    evaluate_p.add_argument("--database", required=True, help="database file")
    evaluate_p.add_argument(
        "--stats", action="store_true",
        help="report evaluation metrics, cache hit rates, and the span tree "
        "(snapshot-build / eval-bfs) on stderr",
    )
    evaluate_p.set_defaults(func=_cmd_evaluate)

    contain_p = sub.add_parser(
        "contain", help="decide Q1 ⊆ Q2 (exit 0 = not refuted)"
    )
    contain_p.add_argument("left", help="kind:spec for Q1")
    contain_p.add_argument("right", help="kind:spec for Q2")
    contain_p.add_argument(
        "--max-expansions", type=int, default=None,
        help="budget for expansion-based procedures",
    )
    contain_p.add_argument(
        "--kernel", choices=("subset", "antichain", "auto"), default=None,
        help="language-inclusion search kernel for automata-backed "
        "procedures (default auto = antichain; subset is the ablation "
        "baseline)",
    )
    contain_p.add_argument(
        "--deadline-ms", type=float, default=None,
        help="wall-clock deadline; exhaustion reports INCONCLUSIVE "
        "instead of running forever",
    )
    contain_p.add_argument(
        "--auto-budget", action="store_true",
        help="staged escalation: geometrically larger bounds until the "
        "verdict is exact or the deadline is spent",
    )
    contain_p.add_argument(
        "--show-witness", action="store_true",
        help="print the counterexample database on refutation",
    )
    contain_p.add_argument(
        "--trace", action="store_true",
        help="record and render the pipeline-stage span tree",
    )
    contain_p.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="record the span tree and dump it as ndjson to PATH",
    )
    contain_p.set_defaults(func=_cmd_contain)

    batch_p = sub.add_parser(
        "batch",
        help="check an NDJSON workload of query pairs on a worker pool "
        "(exit 0 = every pair produced a verdict, 1 = some errored)",
    )
    batch_p.add_argument(
        "workload",
        help="NDJSON file: one {\"id\", \"left\": \"kind:spec\", "
        "\"right\": \"kind:spec\"} object per line",
    )
    batch_p.add_argument(
        "--workers", type=int, default=4,
        help="worker-pool width (default 4)",
    )
    batch_p.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="thread pool (shared caches) or process pool "
        "(true parallelism; per-process caches)",
    )
    batch_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write NDJSON results here instead of stdout",
    )
    batch_p.add_argument(
        "--max-expansions", type=int, default=None,
        help="per-item budget for expansion-based procedures",
    )
    batch_p.add_argument(
        "--kernel", choices=("subset", "antichain", "auto"), default=None,
        help="per-item language-inclusion kernel (see `contain --kernel`)",
    )
    batch_p.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-item wall-clock deadline (INCONCLUSIVE on exhaustion)",
    )
    batch_p.add_argument(
        "--pool-deadline-ms", type=float, default=None,
        help="whole-batch deadline; unstarted items degrade to "
        "INCONCLUSIVE with budget accounting",
    )
    batch_p.add_argument(
        "--auto-budget", action="store_true",
        help="staged escalation per item (see `contain --auto-budget`)",
    )
    batch_p.add_argument(
        "--trace", action="store_true",
        help="attach each item's span tree to its result line",
    )
    batch_p.set_defaults(func=_cmd_batch)

    serve_p = sub.add_parser(
        "serve",
        help="long-lived NDJSON containment service (TCP or stdin/stdout) "
        "with admission control, load shedding, and graceful drain",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="TCP listen host (default local)"
    )
    serve_p.add_argument(
        "--port", type=int, default=7407,
        help="TCP listen port (0 picks a free port, announced on stderr; "
        "default 7407)",
    )
    serve_p.add_argument(
        "--pipe", action="store_true",
        help="serve one NDJSON stream on stdin/stdout instead of TCP",
    )
    serve_p.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width (default: core count, capped at 8)",
    )
    serve_p.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="worker-pool substrate: thread (default; shares the hot "
        "caches across requests) or process (multi-core, crash-isolated: "
        "workers warm-start, a crashing check yields an isolated error "
        "response while the pool rebuilds, and worker metrics/cache "
        "stats are repatriated to the metrics verb)",
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission capacity: max requests admitted but unfinished; "
        "beyond it requests shed with reason queue_full (default 64)",
    )
    serve_p.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request wall-clock deadline; frames may only "
        "tighten it (requests shed or degrade INCONCLUSIVE on exhaustion)",
    )
    serve_p.add_argument(
        "--auto-budget", action="store_true",
        help="run checks under staged escalation (see `contain --auto-budget`)",
    )
    serve_p.add_argument(
        "--drain-grace-ms", type=float, default=5000.0,
        help="after SIGTERM/SIGINT, how long connections may keep sending "
        "(each frame shed) before the server closes them (default 5000)",
    )
    serve_p.add_argument(
        "--kernel", choices=("subset", "antichain", "auto"), default=None,
        help="default language-inclusion kernel (see `contain --kernel`)",
    )
    serve_p.add_argument(
        "--max-expansions", type=int, default=None,
        help="default budget for expansion-based procedures",
    )
    serve_p.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one NDJSON access record per served frame to PATH "
        "(written off the event loop; full-queue records are dropped "
        "and counted, never block serving)",
    )
    serve_p.add_argument(
        "--slow-ms", type=float, default=250.0,
        help="flight-recorder slow threshold: requests at or above it "
        "retain their span trees for the debug verb (default 250)",
    )
    serve_p.add_argument(
        "--trace-sample-rate", type=float, default=0.0,
        help="fraction of containment requests traced live ([0, 1]; "
        "deterministic 1-in-round(1/rate) stride; default 0 = off); "
        "sampled traces feed the hotspot profile of the metrics verb",
    )
    serve_p.add_argument(
        "--flight-recorder-size", type=int, default=256,
        help="ring-buffer capacity of the flight recorder (default 256)",
    )
    serve_p.add_argument(
        "--flight-dump", default=None, metavar="PATH",
        help="dump the flight recorder as JSON to PATH on drain/SIGTERM",
    )
    serve_p.add_argument(
        "--prom-port", type=int, default=None,
        help="also listen on this TCP port, answering every HTTP request "
        "with the Prometheus text exposition of the metrics registry "
        "(0 picks a free port, announced on stderr)",
    )
    serve_p.set_defaults(func=_cmd_serve)

    metrics_p = sub.add_parser(
        "metrics",
        help="dump the metrics registry (local process, or a live "
        "server's via --addr) as JSON or Prometheus text",
    )
    metrics_p.add_argument(
        "--addr", default=None, metavar="HOST:PORT",
        help="fetch the snapshot from a live server's metrics verb "
        "instead of the local (empty) registry",
    )
    metrics_p.add_argument(
        "--prom", action="store_true",
        help="render the Prometheus text exposition instead of JSON",
    )
    metrics_p.add_argument(
        "--timeout", type=float, default=5.0,
        help="connect/read timeout in seconds (default 5)",
    )
    metrics_p.set_defaults(func=_cmd_metrics)

    top_p = sub.add_parser(
        "top",
        help="poll a live server's metrics verb and print request/shed "
        "rates, latency quantiles, and queue depth per interval",
    )
    top_p.add_argument("addr", help="server address as HOST:PORT")
    top_p.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls (default 2)",
    )
    top_p.add_argument(
        "--count", type=int, default=1000000,
        help="number of refreshes before exiting (default: practically "
        "forever; use a small count for scripting)",
    )
    top_p.add_argument(
        "--timeout", type=float, default=5.0,
        help="connect/read timeout in seconds (default 5)",
    )
    top_p.set_defaults(func=_cmd_top)

    bench_p = sub.add_parser(
        "bench",
        help="performance observatory: record, compare, profile bench runs",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)

    bench_run_p = bench_sub.add_parser(
        "run", help="execute a bench suite and write BENCH_<runid>.json"
    )
    bench_run_p.add_argument(
        "--suite", choices=("smoke", "full"), default="smoke",
        help="experiment tier to run (default: smoke)",
    )
    bench_run_p.add_argument(
        "--repeats", type=int, default=5,
        help="timing samples per workload (best-of-k; default 5)",
    )
    bench_run_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the run document here instead of ./BENCH_<runid>.json",
    )
    bench_run_p.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory for the default BENCH_<runid>.json name",
    )
    bench_run_p.add_argument(
        "--no-profile", action="store_true",
        help="skip the traced hotspot-profile section",
    )
    bench_run_p.add_argument(
        "--top", type=int, default=10,
        help="hotspot rows to print (the file keeps up to 20)",
    )
    bench_run_p.set_defaults(func=_cmd_bench_run)

    bench_compare_p = bench_sub.add_parser(
        "compare",
        help="gate a run against a baseline (exact series must match "
        "bit-for-bit; timings are MAD-gated)",
    )
    bench_compare_p.add_argument(
        "run", nargs="?", default=None,
        help="run document (default: newest ./BENCH_*.json)",
    )
    bench_compare_p.add_argument(
        "--baseline", default="benchmarks/baseline.json",
        help="baseline run document (default: benchmarks/baseline.json)",
    )
    bench_compare_p.add_argument(
        "--tolerance-mads", type=float, default=4.0,
        help="timing tolerance in baseline-MAD units (default 4.0)",
    )
    bench_compare_p.add_argument(
        "--fail-on-timing", action="store_true",
        help="exit non-zero on timing regressions too (default: warn only; "
        "exact-series mismatches always fail)",
    )
    bench_compare_p.set_defaults(func=_cmd_bench_compare)

    bench_profile_p = bench_sub.add_parser(
        "profile", help="render the hotspot profile stored in a run document"
    )
    bench_profile_p.add_argument(
        "run", nargs="?", default=None,
        help="run document (default: newest ./BENCH_*.json)",
    )
    bench_profile_p.add_argument(
        "--top", type=int, default=15, help="rows to show (default 15)"
    )
    bench_profile_p.set_defaults(func=_cmd_bench_profile)

    rewrite_p = sub.add_parser(
        "rewrite", help="rewrite an RPQ over views (maximally contained)"
    )
    rewrite_p.add_argument("query", help="rpq:spec")
    rewrite_p.add_argument(
        "--view", action="append", default=[], metavar="NAME=REGEX",
        help="a view definition (repeatable)",
    )
    rewrite_p.add_argument(
        "--database", default=None,
        help="optionally evaluate the rewriting over this database's views",
    )
    rewrite_p.set_defaults(func=_cmd_rewrite)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
