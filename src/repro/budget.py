"""The unified resource governor: budgets, meters, and graceful exhaustion.

Every non-trivial containment procedure in the paper's towers is
worst-case (2)EXPSPACE-complete (Theorems 5-8), so any deployment needs
resource limits that *degrade gracefully*: a search that runs out of
budget must report a calibrated bounded verdict with honest spend
accounting, never crash with a raw exception and never silently pretend
exactness (the point Figueira et al., arXiv:2003.04411, make for CRPQ
containment in practice).

Three pieces:

- :class:`Budget` — an immutable, hashable *specification* of limits: a
  wall-clock deadline plus per-resource counters (product
  configurations, materialized states, expansions, total word length,
  rule applications).  Being frozen, it participates in the engine's
  containment-cache keys.
- :class:`BudgetMeter` — the mutable *run* of a budget: procedures and
  kernels charge resources against it at loop heads; exceeding a limit
  (or the deadline) raises :class:`BudgetExhausted`.
- :class:`BudgetExhausted` — the internal control-flow signal.  It
  never escapes the engine: every containment procedure catches it and
  converts it into a structured bounded/inconclusive
  :class:`repro.report.ContainmentResult` via :func:`bounded_result`.

The legacy kernel exceptions (``SearchBudgetExceeded`` in
:mod:`repro.automata.onthefly`, ``StateBudgetExceeded`` in
:mod:`repro.automata.complement`) are subclasses of
:class:`BudgetExhausted`, so procedures catch the whole family with one
handler while direct kernel callers keep the historical types.

Degradation contract (DESIGN.md "Resource governance"):

- counter exhaustion (configs/states/expansions) yields
  ``Verdict.HOLDS_UP_TO_BOUND`` — the explored part of the search is a
  genuine bounded-exactness statement;
- deadline exhaustion yields ``Verdict.INCONCLUSIVE`` — wall-clock says
  nothing structural about the search space;
- both carry ``details["budget"]`` recording which resource ran out and
  the full spend snapshot (counters + elapsed ms).
"""

from __future__ import annotations

import contextlib
import gc
import threading
import time
from dataclasses import dataclass, fields, replace
from typing import Any, Iterator, Mapping

from .report import ContainmentResult, Verdict

#: Resources a meter enforces limits for (``max_<name>`` Budget fields).
RESOURCES = (
    "configs",
    "states",
    "expansions",
    "total_length",
    "applications",
)

#: How often (in charge/poll events) the wall clock is consulted.
_POLL_MASK = 63

#: Default deadline for ``budget="auto"`` staged escalation (engine).
DEFAULT_AUTO_DEADLINE_MS = 2000.0

#: Fraction of the deadline reserved for teardown.  ``deadline_ms`` is a
#: *completion* target: after the cooperative check fires, the engine
#: still has to unwind frames and deallocate the (possibly huge) search
#: containers accumulated up to that point, which costs time roughly
#: proportional to what was built.  Stopping the search slightly early
#: keeps the whole call — including cleanup — inside the deadline.
_DEADLINE_RESERVE_FRACTION = 0.10
_DEADLINE_RESERVE_CAP_MS = 1000.0


class BudgetExhausted(RuntimeError):
    """A search ran out of budget (internal signal; see module docstring).

    Attributes:
        resource: which limit tripped (``"deadline"``, ``"configs"``,
            ``"states"``, ``"expansions"``, ...).
        spent: how much of the resource was consumed.
        limit: the limit that was exceeded (None when unknown).
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        resource: str | None = None,
        spent: float | int | None = None,
        limit: float | int | None = None,
    ) -> None:
        if message is None:
            message = f"budget exhausted: {resource} (spent {spent}, limit {limit})"
        super().__init__(message)
        self.resource = resource
        self.spent = spent
        self.limit = limit


@dataclass(frozen=True)
class Budget:
    """An immutable resource-limit specification (all fields optional).

    Picklability is part of the contract: a ``Budget`` is a frozen
    dataclass of scalars, so it crosses the process boundary intact —
    the batch layer's ``backend="process"`` pools and ``repro serve
    --backend process`` pickle per-request budgets into worker
    processes, where each check builds its own :class:`BudgetMeter`
    (the meter, holding a running clock, never crosses; only the spec
    does).  ``deadline_ms`` is a *duration*: the meter's clock starts
    when the check starts in the worker, so a budget serialized before
    dispatch means the same thing after the hop.

    Attributes:
        deadline_ms: wall-clock budget for the whole check, in
            milliseconds (checked cooperatively at loop heads).
        max_configs: product configurations explored by the on-the-fly
            emptiness searches (RPQ/2RPQ pipelines).
        max_states: states materialized by explicit constructions
            (Lemma 4 complement, Shepherdson tables).
        max_expansions: expansions examined by the expansion-based
            checks (per disjunct for UC2RPQ, overall elsewhere).
        max_total_length: total word length per UC2RPQ expansion.
        max_applications: rule applications per Datalog expansion.
        escalate: engine-level flag — retry with geometrically growing
            limits until the verdict is exact or ``deadline_ms`` is
            spent (see ``check_containment(budget="auto")``).
    """

    deadline_ms: float | None = None
    max_configs: int | None = None
    max_states: int | None = None
    max_expansions: int | None = None
    max_total_length: int | None = None
    max_applications: int | None = None
    escalate: bool = False

    @classmethod
    def auto(cls, deadline_ms: float = DEFAULT_AUTO_DEADLINE_MS, **limits: Any) -> "Budget":
        """The staged-escalation budget behind ``budget="auto"``."""
        return cls(deadline_ms=deadline_ms, escalate=True, **limits)

    @classmethod
    def from_legacy(
        cls,
        max_configs: int | None = None,
        max_states: int | None = None,
        max_expansions: int | None = None,
        max_total_length: int | None = None,
        max_applications: int | None = None,
    ) -> "Budget":
        """A Budget equivalent to the deprecated per-procedure kwargs."""
        return cls(
            max_configs=max_configs,
            max_states=max_states,
            max_expansions=max_expansions,
            max_total_length=max_total_length,
            max_applications=max_applications,
        )

    def merged(self, **defaults: Any) -> "Budget":
        """A copy whose unset fields are filled from *defaults*.

        Explicit budget fields always win; this is how the legacy
        ``max_*`` kwargs act as deprecated aliases underneath a Budget.
        """
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        for name, value in defaults.items():
            if name not in values:
                raise TypeError(f"unknown budget field {name!r}")
            if values[name] is None:
                values[name] = value
        return Budget(**values)

    def tightened(self, deadline_ms: float | None) -> "Budget":
        """A copy whose deadline is the tighter of ours and *deadline_ms*.

        The serving layer's deadline-inheritance rule (DESIGN.md
        "Serving architecture"): a wire request inherits the server's
        default budget — counters, escalation policy, and all — and may
        only *tighten* the wall-clock deadline, never extend it past
        what the operator configured.  ``None`` inherits unchanged; a
        request deadline tighter than the server's (or a server with no
        deadline at all) adopts the request's.

        Raises ValueError on a non-positive deadline — a wire request
        asking for 0 ms is a protocol error to surface, not a budget to
        run.
        """
        if deadline_ms is None:
            return self
        if deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0, not {deadline_ms!r}"
            )
        if self.deadline_ms is not None:
            deadline_ms = min(self.deadline_ms, deadline_ms)
        return replace(self, deadline_ms=deadline_ms)

    def limit(self, resource: str) -> float | int | None:
        """The configured limit for *resource* (None = unbounded)."""
        if resource == "deadline":
            return self.deadline_ms
        return getattr(self, f"max_{resource}")

    @property
    def is_null(self) -> bool:
        """True when no limit at all is configured."""
        return all(getattr(self, f.name) in (None, False) for f in fields(self))

    def start(self) -> "BudgetMeter":
        """Begin a run: the deadline clock starts ticking now."""
        return BudgetMeter(self)


#: The do-nothing budget (never exhausts).
UNLIMITED = Budget()


class BudgetMeter:
    """The mutable spend tracker for one run of a :class:`Budget`.

    Procedures and kernels call :meth:`charge` (enforced counters),
    :meth:`note` (accounting only), and :meth:`poll` /
    :meth:`check_deadline` (wall clock) at loop heads.  All raise
    :class:`BudgetExhausted` on exhaustion — cooperatively, so a caller
    can catch the signal at a clean point and report how far it got.

    Ownership: a meter belongs to the single check that started it —
    each worker in a batch runs its own meter (meters are created
    inside the dispatched procedure, per call, never shared).  The
    frozen :class:`Budget` *specification* is safely shared across
    threads; the mutable meter is not.
    """

    __slots__ = ("budget", "spent", "_start", "_deadline", "_events")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.spent: dict[str, int] = {}
        self._start = time.monotonic()
        if budget.deadline_ms is None:
            self._deadline = None
        else:
            reserve = min(
                budget.deadline_ms * _DEADLINE_RESERVE_FRACTION,
                _DEADLINE_RESERVE_CAP_MS,
            )
            self._deadline = self._start + (budget.deadline_ms - reserve) / 1000.0
        self._events = 0

    def charge(self, resource: str, amount: int = 1) -> None:
        """Consume *amount* of *resource*; raise when the limit is passed."""
        total = self.spent.get(resource, 0) + amount
        self.spent[resource] = total
        limit = self.budget.limit(resource)
        if limit is not None and total > limit:
            raise BudgetExhausted(resource=resource, spent=total, limit=limit)
        self.poll()

    def note(self, resource: str, amount: int = 1) -> None:
        """Account *amount* of *resource* without enforcing a limit."""
        self.spent[resource] = self.spent.get(resource, 0) + amount
        self.poll()

    def poll(self) -> None:
        """Cheap periodic deadline check (every ``_POLL_MASK+1`` events)."""
        if self._deadline is None:
            return
        self._events += 1
        if self._events & _POLL_MASK:
            return
        self.check_deadline()

    def check_deadline(self) -> None:
        """Unconditional deadline check (use at coarse-grained points)."""
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise BudgetExhausted(
                resource="deadline",
                spent=round(self.elapsed_ms(), 3),
                limit=self.budget.deadline_ms,
            )

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self._start) * 1000.0

    def spend(self) -> dict[str, Any]:
        """Snapshot of everything consumed so far (for result details)."""
        return {**self.spent, "elapsed_ms": round(self.elapsed_ms(), 3)}


#: Refcount for nested/concurrent :func:`deadline_scope` entries.  The
#: cyclic collector is a process-global switch, so concurrent deadline
#: checks (the batch layer's worker threads) must not re-enable it
#: while a sibling check is still inside its scope: the first scope in
#: disables GC, the last one out restores it.
_GC_SCOPE_LOCK = threading.Lock()
_gc_scope_depth = 0
_gc_was_enabled = False


@contextlib.contextmanager
def deadline_scope(budget: Budget | None) -> Iterator[None]:
    """Suppress cyclic-GC pauses while a deadline-bearing check runs.

    The search containers the kernels build (frozenset pairs, config
    tuples) are acyclic and reclaimed by reference counting; the cyclic
    collector only *scans* them, and a generation-2 pass over a few
    million live objects stalls the interpreter for hundreds of
    milliseconds — silently blowing a cooperative deadline between two
    polls.  Within this scope the cyclic collector is paused (and
    restored on exit, including on :class:`BudgetExhausted` unwinds).
    No-op when *budget* has no deadline or GC is already disabled.

    Thread-safe and re-entrant: overlapping scopes (concurrent batch
    workers, escalation rounds inside an outer scope) refcount the
    toggle, so GC is re-enabled only when the outermost scope exits —
    never mid-flight under a sibling thread's deadline check.
    """
    global _gc_scope_depth, _gc_was_enabled
    if budget is None or budget.deadline_ms is None:
        yield
        return
    with _GC_SCOPE_LOCK:
        if _gc_scope_depth == 0:
            _gc_was_enabled = gc.isenabled()
            if _gc_was_enabled:
                gc.disable()
        _gc_scope_depth += 1
    try:
        yield
    finally:
        with _GC_SCOPE_LOCK:
            _gc_scope_depth -= 1
            if _gc_scope_depth == 0 and _gc_was_enabled:
                gc.enable()


def as_budget(budget: Budget | None, **legacy: Any) -> Budget:
    """Normalize an optional budget plus legacy ``max_*`` kwargs.

    The deprecated kwargs construct (or fill unset fields of) a Budget,
    so all existing call sites keep their behavior while new code passes
    one Budget object.
    """
    defaults = {key: value for key, value in legacy.items() if value is not None}
    if budget is None:
        return Budget(**defaults) if defaults else UNLIMITED
    return budget.merged(**defaults) if defaults else budget


def bounded_result(
    method: str,
    exc: BudgetExhausted,
    meter: BudgetMeter | None = None,
    details: Mapping[str, Any] | None = None,
) -> ContainmentResult:
    """The structured verdict for a budget-exhausted containment check.

    Counter exhaustion (configs/states/expansions/...) becomes
    ``HOLDS_UP_TO_BOUND`` — no counterexample exists within the explored
    part of the search, a genuine bounded statement.  Deadline
    exhaustion becomes ``INCONCLUSIVE`` — elapsed time bounds nothing
    structural.  Both always carry spend accounting in
    ``details["budget"]``.
    """
    accounting: dict[str, Any] = {
        "exhausted": exc.resource,
        "spent": exc.spent,
        "limit": exc.limit,
        "spend": meter.spend() if meter is not None else {},
    }
    merged: dict[str, Any] = dict(details) if details else {}
    merged["budget"] = accounting
    if exc.resource == "deadline":
        return ContainmentResult(Verdict.INCONCLUSIVE, method, details=merged)
    bound = exc.limit if exc.limit is not None else exc.spent
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        method,
        bound=int(bound) if bound is not None else 0,
        details=merged,
    )
