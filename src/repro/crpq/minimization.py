"""Minimization of C2RPQs and UC2RPQs — structural optimization, graph side.

The graph-database mirror of :mod:`repro.cq.minimization`, with the
verdict caveats that Theorem 6 forces (containment for this class is
only bounded-exact in general):

- :func:`canonicalize_atoms` — rewrite every regular atom through
  determinize -> Hopcroft-minimize -> state elimination, keeping the
  smaller expression; exact, always (language-preserving).
- :func:`minimize_c2rpq` — drop atoms whose removal keeps the query
  equivalent.  Removal can only enlarge answers, so a dropped atom needs
  ``smaller ⊑ original``; we drop only on an *exact* HOLDS verdict
  (finite expansion space) unless the caller opts into bounded evidence
  with ``allow_bounded=True``.
- :func:`minimize_uc2rpq` — additionally remove disjuncts subsumed by
  the rest of the union (same exactness policy), pruning against the
  shrinking union so one member of each equivalence class survives.
"""

from __future__ import annotations

from ..automata.dfa import determinize, reduce_nfa
from ..automata.state_elimination import nfa_to_regex
from ..report import Verdict
from ..rpq.rpq import TwoRPQ
from .containment import uc2rpq_contained
from .syntax import C2RPQ, UC2RPQ, RegularAtom


def _acceptable(verdict: Verdict, allow_bounded: bool) -> bool:
    if verdict is Verdict.HOLDS:
        return True
    return allow_bounded and verdict is Verdict.HOLDS_UP_TO_BOUND


def canonicalize_atoms(query: C2RPQ) -> C2RPQ:
    """Per-atom regex canonicalization (exact; never changes semantics).

    Each atom's language goes through the minimal DFA and back to an
    expression; the rewrite is kept only when it is syntactically
    smaller than the original.
    """
    atoms = []
    for atom in query.atoms:
        nfa = atom.query.nfa
        minimal = reduce_nfa(nfa)
        candidate = nfa_to_regex(minimal)
        if candidate.to_nfa().num_states and len(str(candidate)) < len(
            str(atom.query.regex)
        ):
            atoms.append(RegularAtom(TwoRPQ(candidate), atom.source, atom.target))
        else:
            atoms.append(atom)
    return C2RPQ(query.head_vars, tuple(atoms))


def minimize_c2rpq(
    query: C2RPQ,
    max_total_length: int = 6,
    allow_bounded: bool = False,
) -> C2RPQ:
    """Drop redundant atoms (the graph-side core computation).

    Args:
        query: the C2RPQ to minimize.
        max_total_length: expansion bound for the containment checks.
        allow_bounded: also drop atoms justified only up to the bound
            (the result is then equivalent *up to that evidence*; leave
            False for guaranteed-equivalent output).
    """
    current = query
    changed = True
    while changed and len(current.atoms) > 1:
        changed = False
        for index in range(len(current.atoms)):
            candidate_atoms = current.atoms[:index] + current.atoms[index + 1 :]
            remaining_vars = {
                var for atom in candidate_atoms for var in atom.variables()
            }
            if not set(current.head_vars) <= remaining_vars:
                continue
            candidate = C2RPQ(current.head_vars, candidate_atoms)
            verdict = uc2rpq_contained(
                candidate, current, max_total_length=max_total_length
            ).verdict
            if _acceptable(verdict, allow_bounded):
                current = candidate
                changed = True
                break
    return current


def minimize_uc2rpq(
    query: UC2RPQ | C2RPQ,
    max_total_length: int = 6,
    allow_bounded: bool = False,
) -> UC2RPQ:
    """Minimize each disjunct, then prune subsumed disjuncts."""
    union = query if isinstance(query, UC2RPQ) else UC2RPQ((query,))
    disjuncts = [
        minimize_c2rpq(d, max_total_length, allow_bounded) for d in union
    ]
    index = 0
    while index < len(disjuncts) and len(disjuncts) > 1:
        rest = disjuncts[:index] + disjuncts[index + 1 :]
        verdict = uc2rpq_contained(
            disjuncts[index], UC2RPQ(tuple(rest)), max_total_length=max_total_length
        ).verdict
        if _acceptable(verdict, allow_bounded):
            disjuncts = rest
        else:
            index += 1
    return UC2RPQ(tuple(disjuncts))
