"""Expansions of C2RPQs: canonical databases, one per word choice.

A C2RPQ ``Q(x1..xk) :- kappa_1(u1,v1) & ... & kappa_m(um,vm)`` is
equivalent to the (generally infinite) union over *expansions*: pick a
word ``w_i in L(kappa_i)`` per atom and replace the atom by a fresh
semipath spelling ``w_i``.  Each expansion is a concrete graph database
(its canonical database) plus the head nodes; the query's answer over
any D is the union over expansions of homomorphic images.

Containment ``Q1 ⊑ Q2`` therefore reduces to: every expansion of Q1,
viewed as a canonical database, must satisfy Q2 at the head — the
database-theoretic half of the paper's "automata + homomorphisms"
recipe for Theorem 6.  This module enumerates expansions breadth-first
by total word length, with exhaustion detection when every atom language
is finite.

An empty word chosen for an atom *identifies* its endpoints, so
expansion construction runs a union-find over the query variables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..automata.alphabet import base_symbol, is_inverse
from ..automata.nfa import Word
from ..cq.syntax import Var
from ..graphdb.database import GraphDatabase, Node
from .syntax import C2RPQ


@dataclass(frozen=True)
class Expansion:
    """One expansion of a C2RPQ: canonical database + head nodes + words."""

    database: GraphDatabase
    head: tuple[Node, ...]
    words: tuple[Word, ...]

    @property
    def total_length(self) -> int:
        return sum(len(word) for word in self.words)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict = {}

    def find(self, item):
        self.parent.setdefault(item, item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def build_expansion(query: C2RPQ, words: Sequence[Word]) -> Expansion:
    """The canonical database for one word choice per atom.

    Variables whose connecting word is empty are identified (union-find);
    non-empty words become fresh semipaths between the variables' class
    representatives, with inverse letters producing backward edges.
    """
    if len(words) != len(query.atoms):
        raise ValueError("need exactly one word per atom")
    classes = _UnionFind()
    for variable in query.variables():
        classes.find(variable)
    for atom, word in zip(query.atoms, words):
        if not word:
            classes.union(atom.source, atom.target)

    def node_of(variable: Var) -> Node:
        return ("v", classes.find(variable).name)

    db = GraphDatabase()
    for variable in query.variables():
        db.add_node(node_of(variable))
    for index, (atom, word) in enumerate(zip(query.atoms, words)):
        if not word:
            continue
        nodes: list[Node] = [node_of(atom.source)]
        nodes += [("p", index, j) for j in range(1, len(word))]
        nodes.append(node_of(atom.target))
        for j, letter in enumerate(word):
            here, there = nodes[j], nodes[j + 1]
            if is_inverse(letter):
                db.add_edge(there, base_symbol(letter), here)
            else:
                db.add_edge(here, letter, there)
    head = tuple(node_of(variable) for variable in query.head_vars)
    return Expansion(db, head, tuple(tuple(word) for word in words))


def _words_by_length(
    query: C2RPQ, max_length: int, meter=None
) -> list[list[list[Word]]]:
    """Per atom, per length, the list of words of L(kappa) of that length."""
    table: list[list[list[Word]]] = []
    for atom in query.atoms:
        nfa = atom.query.nfa
        per_length = []
        for length in range(max_length + 1):
            if meter is not None:
                meter.check_deadline()
            per_length.append(list(nfa.words_of_length(length)))
        table.append(per_length)
    return table


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways to split *total* into *parts* non-negative summands."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def enumerate_expansions(
    query: C2RPQ,
    max_total_length: int,
    max_expansions: int | None = None,
    meter=None,
) -> Iterator[Expansion]:
    """Expansions in order of increasing total word length.

    Args:
        query: the C2RPQ to expand.
        max_total_length: bound on the sum of chosen word lengths.
        max_expansions: overall cap (None = no cap).
        meter: optional :class:`repro.budget.BudgetMeter`; the
            enumeration polls its wall-clock deadline cooperatively
            (word-table precomputation and per expansion).
    """
    table = _words_by_length(query, max_total_length, meter=meter)
    yielded = 0
    arity = len(query.atoms)
    for total in range(max_total_length + 1):
        for split in _compositions(total, arity):
            if meter is not None:
                meter.poll()
            pools = [table[i][length] for i, length in enumerate(split)]
            if any(not pool for pool in pools):
                continue
            for choice in itertools.product(*pools):
                if meter is not None:
                    meter.poll()
                yield build_expansion(query, choice)
                yielded += 1
                if max_expansions is not None and yielded >= max_expansions:
                    return


def expansion_space_is_finite(query: C2RPQ) -> bool:
    """True iff every atom's language is finite (exhaustible expansions)."""
    return all(atom.query.nfa.language_is_finite() for atom in query.atoms)


def exhaustive_length_bound(query: C2RPQ) -> int | None:
    """Total length needed to exhaust a finite expansion space, else None."""
    total = 0
    for atom in query.atoms:
        longest = atom.query.nfa.longest_word_length()
        if longest is None:
            return None
        total += longest
    return total
