"""UC2RPQ -> Datalog: the paper's "can all be expressed in Datalog" claim.

Section 3.4 observes that RPQ, 2RPQ, UC2RPQ and RQ are all fragments of
graph-database Datalog.  For UC2RPQ the translation is the classical
product construction, rule by rule:

- ``adom(x)`` collects the active domain (endpoints of any edge);
- each regular atom ``kappa(x, y)`` compiles its NFA into *run
  predicates* ``run_q(x, y)`` — "starting at ``x``, some semipath read
  so far put the automaton in state ``q`` at node ``y``" — with one rule
  per transition (forward letters follow edges, inverse letters follow
  them backwards) and base rules ``run_q0(x, x) :- adom(x)``;
- a C2RPQ body conjoins the atoms' final-state predicates, and a UC2RPQ
  contributes one goal rule per disjunct.

The recursion this produces is *not* transitive-closure-shaped in
general (run predicates for different states are mutually recursive),
so the image typically sits in full Datalog, outside GRQ — precisely
the gap the paper's Section 4 closes from the other side.

Caveat (shared with every atoms-only formalism here): ``adom`` ranges
over edge-incident nodes, so epsilon self-pairs at isolated nodes are
not derived; see :mod:`repro.rq.embeddings`.
"""

from __future__ import annotations

import itertools

from ..automata.alphabet import base_symbol, is_inverse
from ..cq.syntax import Atom, Var
from ..datalog.syntax import Program, Rule
from .syntax import C2RPQ, UC2RPQ


class _Builder:
    def __init__(self, goal: str) -> None:
        self.rules: list[Rule] = []
        self.counter = itertools.count()
        self.goal = goal
        self._adom_done: set[str] = set()

    def ensure_adom(self, labels: frozenset[str]) -> None:
        x, y = Var("x"), Var("y")
        for label in sorted(labels - self._adom_done):
            self.rules.append(Rule(Atom("adom", (x,)), (Atom(label, (x, y)),)))
            self.rules.append(Rule(Atom("adom", (x,)), (Atom(label, (y, x)),)))
            self._adom_done.add(label)

    def add_regular_atom(self, atom) -> str:
        """Emit run predicates for one regular atom; return the answer
        predicate (binary, holding the atom's semantics)."""
        nfa = atom.query.nfa
        tag = next(self.counter)
        x, y, z = Var("x"), Var("y"), Var("z")

        def run(state) -> str:
            return f"run{tag}_s{_state_name(state)}"

        answer = f"atom{tag}"
        self.ensure_adom(atom.query.base_symbols())
        for state in nfa.initial:
            self.rules.append(
                Rule(Atom(run(state), (x, x)), (Atom("adom", (x,)),))
            )
        for source, symbol, target in nfa.edges():
            if is_inverse(symbol):
                edge_atom = Atom(base_symbol(symbol), (z, y))
            else:
                edge_atom = Atom(symbol, (y, z))
            self.rules.append(
                Rule(
                    Atom(run(target), (x, z)),
                    (Atom(run(source), (x, y)), edge_atom),
                )
            )
        for state in nfa.final:
            self.rules.append(
                Rule(Atom(answer, (x, y)), (Atom(run(state), (x, y)),))
            )
        if not nfa.final or not nfa.initial:
            # Empty language: emit an unsatisfiable definition so the
            # predicate exists (a body atom that can never hold).
            self.rules.append(
                Rule(
                    Atom(answer, (x, y)),
                    (Atom("__never", (x, y)),),
                )
            )
        return answer


def _state_name(state) -> str:
    return str(state).replace(" ", "").replace(",", "_").replace("(", "").replace(")", "")


def uc2rpq_to_datalog(query: UC2RPQ | C2RPQ, goal: str = "ans") -> Program:
    """Translate a UC2RPQ into an equivalent Datalog program.

    The program's EDB is the query's base symbols; its IDB contains
    ``adom``, per-atom run predicates, and *goal* with one rule per
    disjunct.
    """
    union = query if isinstance(query, UC2RPQ) else UC2RPQ((query,))
    builder = _Builder(goal)
    goal_rules: list[Rule] = []
    for disjunct in union:
        body: list[Atom] = []
        for atom in disjunct.atoms:
            answer = builder.add_regular_atom(atom)
            body.append(Atom(answer, (atom.source, atom.target)))
        goal_rules.append(Rule(Atom(goal, disjunct.head_vars), tuple(body)))
    # Align disjunct head variables: Program rules may use different
    # variable names per rule, which Datalog handles naturally.
    builder.rules.extend(goal_rules)
    return Program(tuple(builder.rules), goal)
