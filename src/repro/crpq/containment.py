"""UC2RPQ containment (Theorem 6 class) via the expansion characterization.

``Q1 ⊑ Q2`` iff for every expansion E of every disjunct of Q1, the head
nodes of E are in ``Q2(E.database)`` — the right-hand check is a plain
(exact) UC2RPQ evaluation, so each individual expansion is decided
exactly; only the quantification over expansions needs a bound when some
atom language is infinite.

Contract (DESIGN.md §2): REFUTED verdicts carry a real counterexample
database; HOLDS is only reported when the expansion space was exhausted
(all atom languages finite, explored to their maximal total length);
otherwise HOLDS_UP_TO_BOUND reports the *per-disjunct bounds actually
used* — a disjunct with a finite expansion space has its length bound
raised to the exhaustion bound, and the reported bound reflects that,
not the requested ``max_total_length``.  The exact procedure for this
class is EXPSPACE-complete (Theorem 6), so the bound is the calibrated
substitute for an algorithm that cannot run at scale on any hardware.

Budgets: an optional :class:`repro.budget.Budget` adds a wall-clock
deadline and global caps on top of the legacy per-disjunct kwargs;
exhaustion is caught here and reported as a bounded/inconclusive verdict
with spend accounting — never an exception.
"""

from __future__ import annotations

from ..automata.antichain import resolve_kernel
from ..budget import Budget, BudgetExhausted, bounded_result
from ..obs.trace import maybe_span
from ..report import ContainmentResult, Counterexample, EquivalenceResult, Verdict
from .evaluation import satisfies_uc2rpq
from .expansion import (
    enumerate_expansions,
    exhaustive_length_bound,
    expansion_space_is_finite,
)
from .syntax import C2RPQ, UC2RPQ

DEFAULT_LENGTH_BOUND = 6
DEFAULT_EXPANSION_BUDGET = 5000


def _as_union(query: UC2RPQ | C2RPQ) -> UC2RPQ:
    return query if isinstance(query, UC2RPQ) else UC2RPQ((query,))


def uc2rpq_contained(
    q1: UC2RPQ | C2RPQ,
    q2: UC2RPQ | C2RPQ,
    max_total_length: int = DEFAULT_LENGTH_BOUND,
    max_expansions: int | None = DEFAULT_EXPANSION_BUDGET,
    budget: Budget | None = None,
    tracer=None,
    kernel: str = "auto",
) -> ContainmentResult:
    """Expansion-based containment check for UC2RPQs.

    Args:
        q1, q2: the queries (C2RPQs are auto-wrapped).
        max_total_length: bound on the total word length per expansion
            of a Q1 disjunct; raised automatically to the exhaustion
            bound when the disjunct's expansion space is finite.
        max_expansions: per-disjunct cap on expansions examined.
        budget: optional :class:`repro.budget.Budget`; its
            ``max_total_length`` / ``max_expansions`` fields, when set,
            override the legacy kwargs, and its deadline is checked
            cooperatively.  Exhaustion yields a structured bounded or
            inconclusive verdict, never an exception.
        tracer: optional :class:`repro.obs.trace.Tracer`; records one
            ``disjunct-expansions`` span per Q1 disjunct, tagged with
            the finiteness verdict and effective length bound and
            counting the expansions examined.
        kernel: accepted for engine-wide option uniformity and
            validated eagerly; the expansion procedure runs no
            language-inclusion search, so the value selects nothing
            here (the engine records ``selected: None``).
    """
    resolve_kernel(kernel)
    left, right = _as_union(q1), _as_union(q2)
    if left.arity != right.arity:
        raise ValueError(
            f"containment between arities {left.arity} and {right.arity} is ill-typed"
        )
    length_bound = max_total_length
    per_disjunct_cap = max_expansions
    meter = None
    if budget is not None and not budget.is_null:
        if budget.max_total_length is not None:
            length_bound = budget.max_total_length
        if budget.max_expansions is not None:
            per_disjunct_cap = budget.max_expansions
        # The per-disjunct cap is enforced by the enumerator (legacy
        # semantics); the meter enforces only the deadline, and accounts
        # expansions for the spend report.
        meter = Budget(deadline_ms=budget.deadline_ms).start()
    exact = True
    checked = 0
    truncated_by_budget = False
    bounds_used: list[int] = []
    try:
        for index, disjunct in enumerate(left):
            bound = length_bound
            finite = expansion_space_is_finite(disjunct)
            if finite:
                exhaust = exhaustive_length_bound(disjunct)
                assert exhaust is not None
                bound = max(bound, exhaust)
            else:
                exact = False
            bounds_used.append(bound)
            count_before = checked
            with maybe_span(
                tracer,
                "disjunct-expansions",
                index=index,
                finite=finite,
                bound=bound,
            ) as span:
                try:
                    for expansion in enumerate_expansions(
                        disjunct, bound, per_disjunct_cap, meter=meter
                    ):
                        checked += 1
                        if meter is not None:
                            meter.note("expansions")
                        if not satisfies_uc2rpq(
                            right,
                            expansion.database,
                            expansion.head,
                            tracer=tracer,
                            meter=meter,
                        ):
                            return ContainmentResult(
                                Verdict.REFUTED,
                                "uc2rpq-expansion",
                                Counterexample(expansion.database, expansion.head),
                                details={
                                    "expansions_checked": checked,
                                    "witness_words": expansion.words,
                                },
                            )
                finally:
                    span.count("expansions", checked - count_before)
            if (
                per_disjunct_cap is not None
                and checked - count_before >= per_disjunct_cap
            ):
                # The expansion budget, not the length bound, stopped this
                # disjunct: the run is not exhaustive even when finite.
                truncated_by_budget = True
                exact = False
    except BudgetExhausted as exc:
        return bounded_result(
            "uc2rpq-expansion",
            exc,
            meter,
            details={
                "expansions_checked": checked,
                "disjunct_bounds": tuple(bounds_used),
            },
        )
    details = {
        "expansions_checked": checked,
        "disjunct_bounds": tuple(bounds_used),
    }
    if meter is not None:
        details["budget"] = {"spend": meter.spend()}
    if exact:
        return ContainmentResult(Verdict.HOLDS, "uc2rpq-expansion", details=details)
    details["truncated_by_budget"] = truncated_by_budget
    # Report the smallest bound actually applied across disjuncts: that
    # is the largest B for which "no counterexample of total length <= B"
    # is sound for the whole union.  A finite disjunct's bound may have
    # been raised to its exhaustion bound, so this can exceed the
    # requested max_total_length (the old code misreported the request);
    # the per-disjunct bounds are in details["disjunct_bounds"].
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "uc2rpq-expansion",
        bound=min(bounds_used) if bounds_used else length_bound,
        details=details,
    )


def uc2rpq_equivalent(
    q1: UC2RPQ | C2RPQ,
    q2: UC2RPQ | C2RPQ,
    max_total_length: int = DEFAULT_LENGTH_BOUND,
    exact: bool = False,
    budget: Budget | None = None,
) -> EquivalenceResult:
    """Equivalence via both containment directions.

    Returns an :class:`repro.report.EquivalenceResult` (truthy like the
    bool this used to return); with ``exact=True`` bounded directions do
    not count and are surfaced via ``bounded_directions``.
    """
    return EquivalenceResult(
        uc2rpq_contained(q1, q2, max_total_length, budget=budget),
        uc2rpq_contained(q2, q1, max_total_length, budget=budget),
        exact=exact,
    )
