"""UC2RPQ containment (Theorem 6 class) via the expansion characterization.

``Q1 ⊑ Q2`` iff for every expansion E of every disjunct of Q1, the head
nodes of E are in ``Q2(E.database)`` — the right-hand check is a plain
(exact) UC2RPQ evaluation, so each individual expansion is decided
exactly; only the quantification over expansions needs a bound when some
atom language is infinite.

Contract (DESIGN.md §2): REFUTED verdicts carry a real counterexample
database; HOLDS is only reported when the expansion space was exhausted
(all atom languages finite, explored to their maximal total length);
otherwise HOLDS_UP_TO_BOUND reports the explored bound.  The exact
procedure for this class is EXPSPACE-complete (Theorem 6), so the bound
is the calibrated substitute for an algorithm that cannot run at scale
on any hardware.
"""

from __future__ import annotations

from ..report import ContainmentResult, Counterexample, Verdict
from .evaluation import satisfies_uc2rpq
from .expansion import (
    enumerate_expansions,
    exhaustive_length_bound,
    expansion_space_is_finite,
)
from .syntax import C2RPQ, UC2RPQ

DEFAULT_LENGTH_BOUND = 6
DEFAULT_EXPANSION_BUDGET = 5000


def _as_union(query: UC2RPQ | C2RPQ) -> UC2RPQ:
    return query if isinstance(query, UC2RPQ) else UC2RPQ((query,))


def uc2rpq_contained(
    q1: UC2RPQ | C2RPQ,
    q2: UC2RPQ | C2RPQ,
    max_total_length: int = DEFAULT_LENGTH_BOUND,
    max_expansions: int | None = DEFAULT_EXPANSION_BUDGET,
) -> ContainmentResult:
    """Expansion-based containment check for UC2RPQs.

    Args:
        q1, q2: the queries (C2RPQs are auto-wrapped).
        max_total_length: bound on the total word length per expansion
            of a Q1 disjunct; raised automatically to the exhaustion
            bound when the disjunct's expansion space is finite.
        max_expansions: per-disjunct cap on expansions examined.
    """
    left, right = _as_union(q1), _as_union(q2)
    if left.arity != right.arity:
        raise ValueError(
            f"containment between arities {left.arity} and {right.arity} is ill-typed"
        )
    exact = True
    checked = 0
    for disjunct in left:
        bound = max_total_length
        finite = expansion_space_is_finite(disjunct)
        truncated_by_budget = False
        if finite:
            exhaust = exhaustive_length_bound(disjunct)
            assert exhaust is not None
            bound = max(bound, exhaust)
        else:
            exact = False
        count_before = checked
        for expansion in enumerate_expansions(disjunct, bound, max_expansions):
            checked += 1
            if not satisfies_uc2rpq(right, expansion.database, expansion.head):
                return ContainmentResult(
                    Verdict.REFUTED,
                    "uc2rpq-expansion",
                    Counterexample(expansion.database, expansion.head),
                    details={"expansions_checked": checked, "witness_words": expansion.words},
                )
        if (
            finite
            and max_expansions is not None
            and checked - count_before >= max_expansions
        ):
            # The budget, not the length bound, stopped us: not exhaustive.
            exact = False
    if exact:
        return ContainmentResult(
            Verdict.HOLDS, "uc2rpq-expansion", details={"expansions_checked": checked}
        )
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "uc2rpq-expansion",
        bound=max_total_length,
        details={"expansions_checked": checked},
    )


def uc2rpq_equivalent(
    q1: UC2RPQ | C2RPQ,
    q2: UC2RPQ | C2RPQ,
    max_total_length: int = DEFAULT_LENGTH_BOUND,
) -> bool:
    """Truthy equivalence (both directions non-refuted)."""
    return (
        uc2rpq_contained(q1, q2, max_total_length).holds
        and uc2rpq_contained(q2, q1, max_total_length).holds
    )
