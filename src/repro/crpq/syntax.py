"""C2RPQs and UC2RPQs (Section 3.3).

A C2RPQ is a conjunctive query whose atoms are 2RPQs: instead of
``r(x, y)`` one writes ``kappa(x, y)`` with ``kappa`` a regular
expression over Sigma±.  A UC2RPQ is a union of C2RPQs of equal arity —
the graph-database analogue of UCQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..automata.alphabet import base_symbol
from ..cq.syntax import Var
from ..rpq.rpq import TwoRPQ


@dataclass(frozen=True)
class RegularAtom:
    """An atom ``kappa(x, y)``: a 2RPQ constraining two variables."""

    query: TwoRPQ
    source: Var
    target: Var

    def variables(self) -> tuple[Var, ...]:
        return (self.source, self.target)

    def __repr__(self) -> str:
        return f"({self.query})({self.source!r}, {self.target!r})"


@dataclass(frozen=True)
class C2RPQ:
    """A conjunctive 2RPQ query.

    The paper's Example 1 (the "triangle query")::

        >>> q = C2RPQ.from_strings("x,y", [("r", "x", "y"),
        ...                                ("r", "x", "z"),
        ...                                ("r", "y", "z")])
    """

    head_vars: tuple[Var, ...]
    atoms: tuple[RegularAtom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a C2RPQ needs at least one atom")
        body_vars = self.variables()
        missing = [var for var in self.head_vars if var not in body_vars]
        if missing:
            raise ValueError(f"head variables {missing} do not occur in the body")

    @classmethod
    def from_strings(
        cls, head: str, atoms: Iterable[tuple[str, str, str]]
    ) -> "C2RPQ":
        """Terse constructor: regex text plus variable-name pairs."""
        parsed = tuple(
            RegularAtom(TwoRPQ.parse(regex), Var(source), Var(target))
            for regex, source, target in atoms
        )
        head_vars = tuple(Var(name.strip()) for name in head.split(",") if name.strip())
        return cls(head_vars, parsed)

    @property
    def arity(self) -> int:
        return len(self.head_vars)

    def variables(self) -> frozenset[Var]:
        return frozenset(var for atom in self.atoms for var in atom.variables())

    def base_symbols(self) -> frozenset[str]:
        out: set[str] = set()
        for atom in self.atoms:
            out |= atom.query.base_symbols()
        return frozenset(out)

    def is_one_way(self) -> bool:
        return all(atom.query.is_one_way() for atom in self.atoms)

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.head_vars)
        return f"C2RPQ({head} :- " + " & ".join(repr(a) for a in self.atoms) + ")"


@dataclass(frozen=True)
class UC2RPQ:
    """A union of C2RPQs of equal arity (Section 3.3)."""

    disjuncts: tuple[C2RPQ, ...]

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError("a UC2RPQ needs at least one disjunct")
        arities = {q.arity for q in self.disjuncts}
        if len(arities) != 1:
            raise ValueError(f"disjuncts disagree on arity: {sorted(arities)}")

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def base_symbols(self) -> frozenset[str]:
        out: set[str] = set()
        for disjunct in self.disjuncts:
            out |= disjunct.base_symbols()
        return frozenset(out)

    def __iter__(self) -> Iterator[C2RPQ]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __repr__(self) -> str:
        return " | ".join(repr(q) for q in self.disjuncts)


def two_rpq_as_uc2rpq(query: TwoRPQ) -> UC2RPQ:
    """Embed a 2RPQ as the single-atom UC2RPQ ``Q(x, y) :- kappa(x, y)``."""
    x, y = Var("x"), Var("y")
    return UC2RPQ((C2RPQ((x, y), (RegularAtom(query, x, y),)),))


def paper_example_1() -> tuple[C2RPQ, UC2RPQ]:
    """The paper's Example 1: the triangle C2RPQ and its two-rule UC2RPQ."""
    first = C2RPQ.from_strings(
        "x,y", [("r", "x", "y"), ("r", "x", "z"), ("r", "y", "z")]
    )
    second = C2RPQ.from_strings(
        "x,y", [("r", "x", "y"), ("r", "y", "z"), ("r", "z", "x")]
    )
    return first, UC2RPQ((first, second))
