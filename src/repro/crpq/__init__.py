"""C2RPQ / UC2RPQ (Section 3.3): syntax, evaluation, expansions,
containment (Theorem 6 class)."""

from .containment import uc2rpq_contained, uc2rpq_equivalent
from .evaluation import (
    evaluate_c2rpq,
    evaluate_uc2rpq,
    satisfies_c2rpq,
    satisfies_uc2rpq,
)
from .expansion import (
    Expansion,
    build_expansion,
    enumerate_expansions,
    exhaustive_length_bound,
    expansion_space_is_finite,
)
from .minimization import canonicalize_atoms, minimize_c2rpq, minimize_uc2rpq
from .to_datalog import uc2rpq_to_datalog
from .syntax import C2RPQ, UC2RPQ, RegularAtom, paper_example_1, two_rpq_as_uc2rpq

__all__ = [
    "canonicalize_atoms",
    "minimize_c2rpq",
    "minimize_uc2rpq",
    "uc2rpq_to_datalog",
    "uc2rpq_contained",
    "uc2rpq_equivalent",
    "evaluate_c2rpq",
    "evaluate_uc2rpq",
    "satisfies_c2rpq",
    "satisfies_uc2rpq",
    "Expansion",
    "build_expansion",
    "enumerate_expansions",
    "exhaustive_length_bound",
    "expansion_space_is_finite",
    "C2RPQ",
    "UC2RPQ",
    "RegularAtom",
    "paper_example_1",
    "two_rpq_as_uc2rpq",
]
