"""UC2RPQ evaluation (Section 3.3).

Exactly the paper's recipe: "to evaluate a C2RPQ Q over a graph database
D we first evaluate all the 2RPQs appearing in Q, instantiating each as
a binary relation over the elements of D, and then evaluate Q as a
conjunctive query over this collection of relations."
"""

from __future__ import annotations

from ..cq.evaluation import evaluate_cq, satisfies
from ..cq.syntax import CQ, Atom
from ..graphdb.database import GraphDatabase, Node
from ..relational.instance import Instance
from .syntax import C2RPQ, UC2RPQ


def _instantiate(query: C2RPQ, db: GraphDatabase) -> tuple[CQ, Instance]:
    """Materialize each regular atom as a relation; return the join CQ."""
    instance = Instance()
    atoms = []
    for index, atom in enumerate(query.atoms):
        relation = f"__atom{index}"
        pairs = atom.query.evaluate(db)
        for pair in pairs:
            instance.add(relation, pair)
        if not pairs:
            # Keep the predicate known (empty): the join is then empty.
            instance.declare(relation, 2)
        atoms.append(Atom(relation, (atom.source, atom.target)))
    return CQ(query.head_vars, tuple(atoms)), instance


def evaluate_c2rpq(query: C2RPQ, db: GraphDatabase) -> frozenset[tuple[Node, ...]]:
    """The answer relation Q(D)."""
    cq, instance = _instantiate(query, db)
    return evaluate_cq(cq, instance)


def evaluate_uc2rpq(query: UC2RPQ | C2RPQ, db: GraphDatabase) -> frozenset[tuple[Node, ...]]:
    union = query if isinstance(query, UC2RPQ) else UC2RPQ((query,))
    answers: set[tuple[Node, ...]] = set()
    for disjunct in union:
        answers |= evaluate_c2rpq(disjunct, db)
    return frozenset(answers)


def satisfies_c2rpq(query: C2RPQ, db: GraphDatabase, head: tuple[Node, ...]) -> bool:
    """Early-exit membership test ``head in Q(D)``.

    Used in the hot loop of expansion-based containment, where *db* is a
    small canonical database and only one tuple matters.
    """
    cq, instance = _instantiate(query, db)
    return satisfies(cq, instance, head)


def satisfies_uc2rpq(query: UC2RPQ | C2RPQ, db: GraphDatabase, head: tuple[Node, ...]) -> bool:
    union = query if isinstance(query, UC2RPQ) else UC2RPQ((query,))
    return any(satisfies_c2rpq(disjunct, db, head) for disjunct in union)
