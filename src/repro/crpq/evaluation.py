"""UC2RPQ evaluation (Section 3.3).

Exactly the paper's recipe: "to evaluate a C2RPQ Q over a graph database
D we first evaluate all the 2RPQs appearing in Q, instantiating each as
a binary relation over the elements of D, and then evaluate Q as a
conjunctive query over this collection of relations."

Set-at-a-time engineering on top of the recipe (ISSUE 7): each
**distinct** regular atom is instantiated once — atoms sharing a regex
share the materialized relation — and the whole ``(CQ, Instance)``
artifact is cached per ``(query canonical form, snapshot fingerprint)``
in :data:`repro.cache.instantiate_cache`.  That matters because
:func:`satisfies_c2rpq` is the hot loop of expansion-based containment:
the same query is tested against a stream of canonical databases, and
each database is probed for many heads, so re-materializing atom
relations per membership test dominated the pre-snapshot cost.
"""

from __future__ import annotations

from ..automata.indexed import indexed_kernels_enabled
from ..cache import instantiate_cache, query_cache_key
from ..cq.evaluation import evaluate_cq, satisfies
from ..cq.syntax import CQ, Atom
from ..graphdb.database import GraphDatabase, Node
from ..obs.metrics import counter
from ..obs.trace import maybe_span
from ..relational.instance import Instance
from .syntax import C2RPQ, UC2RPQ

_ATOMS_INSTANTIATED = counter("evaluation.atoms_instantiated")


def _materialize(
    query: C2RPQ, db: GraphDatabase, tracer=None, meter=None
) -> tuple[CQ, Instance]:
    """Materialize each *distinct* regular atom as a relation; join CQ.

    Atoms with equal regexes share one materialized relation (and hence
    one evaluation BFS); the returned Instance is treated as frozen by
    every caller, so it is safe to share through the cache.
    """
    instance = Instance()
    atoms = []
    relation_of: dict = {}
    for atom in query.atoms:
        relation = relation_of.get(atom.query)
        if relation is None:
            relation = f"__atom{len(relation_of)}"
            relation_of[atom.query] = relation
            with maybe_span(
                tracer, "atom-instantiate", relation=relation, regex=str(atom.query)
            ) as span:
                pairs = atom.query.evaluate(db, tracer=tracer, meter=meter)
                span.count("pairs", len(pairs))
            for pair in pairs:
                instance.add(relation, pair)
            if not pairs:
                # Keep the predicate known (empty): the join is then empty.
                instance.declare(relation, 2)
            _ATOMS_INSTANTIATED.inc()
        atoms.append(Atom(relation, (atom.source, atom.target)))
    return CQ(query.head_vars, tuple(atoms)), instance


def _instantiate(
    query: C2RPQ, db: GraphDatabase, tracer=None, meter=None
) -> tuple[CQ, Instance]:
    """The ``(CQ, Instance)`` pair for *query* over *db*, cached per snapshot.

    With the indexed kernels enabled the artifact is keyed on
    ``(query canonical form, snapshot fingerprint)``, so the expansion
    loop's repeated membership tests against one canonical database hit
    a single materialization.  Kernels off = the sequential baseline:
    every call re-materializes (the ablation arm benchmark A9 measures).
    """
    if indexed_kernels_enabled():
        key = query_cache_key(query)
        if key is not None:
            fingerprint = db.snapshot(tracer=tracer).fingerprint
            return instantiate_cache.get_or_compute(
                (key, fingerprint),
                lambda: _materialize(query, db, tracer=tracer, meter=meter),
            )
    return _materialize(query, db, tracer=tracer, meter=meter)


def evaluate_c2rpq(
    query: C2RPQ, db: GraphDatabase, tracer=None, meter=None
) -> frozenset[tuple[Node, ...]]:
    """The answer relation Q(D)."""
    cq, instance = _instantiate(query, db, tracer=tracer, meter=meter)
    return evaluate_cq(cq, instance)


def evaluate_uc2rpq(
    query: UC2RPQ | C2RPQ, db: GraphDatabase, tracer=None, meter=None
) -> frozenset[tuple[Node, ...]]:
    union = query if isinstance(query, UC2RPQ) else UC2RPQ((query,))
    answers: set[tuple[Node, ...]] = set()
    for disjunct in union:
        answers |= evaluate_c2rpq(disjunct, db, tracer=tracer, meter=meter)
    return frozenset(answers)


def satisfies_c2rpq(
    query: C2RPQ, db: GraphDatabase, head: tuple[Node, ...], tracer=None, meter=None
) -> bool:
    """Early-exit membership test ``head in Q(D)``.

    Used in the hot loop of expansion-based containment, where *db* is a
    small canonical database and only one tuple matters; the per-snapshot
    instantiate cache means successive heads against the same database
    skip straight to the join.
    """
    cq, instance = _instantiate(query, db, tracer=tracer, meter=meter)
    return satisfies(cq, instance, head)


def satisfies_uc2rpq(
    query: UC2RPQ | C2RPQ,
    db: GraphDatabase,
    head: tuple[Node, ...],
    tracer=None,
    meter=None,
) -> bool:
    union = query if isinstance(query, UC2RPQ) else UC2RPQ((query,))
    return any(
        satisfies_c2rpq(disjunct, db, head, tracer=tracer, meter=meter)
        for disjunct in union
    )
